//! Differential conformance for the banked Direct Rambus backend.
//!
//! Two contracts are locked down here:
//!
//! 1. **Degenerate equivalence** — the banked backend configured to the
//!    flat model's assumptions (single bank, closed-page policy, serial
//!    bus: [`BankedConfig::flat_equivalent`]) must reproduce the flat
//!    50 ns model *bit for bit*, on every preset grid cell `repro` can
//!    sweep. Any timing drift between the two code paths is a bug in
//!    one of them, and this suite finds it at the cell level.
//!
//! 2. **Fingerprint stability** — adding the banked variant must not
//!    move any existing flat configuration's cache fingerprint (pinned
//!    values below), and a banked override must always produce a
//!    *different* fingerprint, so persisted `cells.json` entries can
//!    never alias across backends.

use rampage_core::experiments::grids::preset_grids;
use rampage_core::experiments::{run_config, Job, SweepRunner, Workload};
use rampage_core::{DramKind, IssueRate, SystemConfig};
use rampage_dram::BankedConfig;
use std::collections::HashSet;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};

/// A unique scratch directory per test (no tempfile crate offline).
fn scratch(name: &str) -> PathBuf {
    static N: AtomicU32 = AtomicU32::new(0);
    let dir = std::env::temp_dir().join(format!(
        "rampage-dram-backend-{}-{name}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::SeqCst)
    ));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// The degenerate banked twin of a flat-Rambus config.
fn degenerate(cfg: &SystemConfig) -> SystemConfig {
    let mut banked = *cfg;
    banked.dram = DramKind::Banked(BankedConfig::flat_equivalent());
    banked
}

/// Every preset grid cell whose DRAM is the flat paper model, with its
/// grid and label for diagnostics, deduplicated by config.
fn flat_preset_cells() -> Vec<(String, SystemConfig)> {
    let probe = Workload::quick();
    let mut seen = HashSet::new();
    let mut cells = Vec::new();
    for grid in preset_grids() {
        for (label, cfg) in grid.cells {
            if cfg.dram != DramKind::Rambus {
                continue; // Sdram / pipelined / banked cells have no flat twin
            }
            if seen.insert(Job::new(cfg, probe).fingerprint()) {
                cells.push((format!("{}::{label}", grid.name), cfg));
            }
        }
    }
    cells
}

/// The conformance theorem: on every flat preset cell, the degenerate
/// banked backend produces the *identical* [`Cell`] — every timing,
/// ratio, and counter field equal to the last bit.
#[test]
fn degenerate_banked_matches_flat_on_every_preset_grid() {
    // Small but real workload: two interleaved programs, enough volume
    // to exercise queueing, faults, and writebacks in every preset.
    let w = Workload {
        nbench: 2,
        scale: 50_000,
        seed: 0x7a9e,
        solo: None,
    };
    let cells = flat_preset_cells();
    assert!(
        cells.len() >= 20,
        "expected a real cross-section of preset cells, got {}",
        cells.len()
    );
    for (where_, cfg) in &cells {
        let flat = run_config(cfg, &w);
        let banked = run_config(&degenerate(cfg), &w);
        assert_eq!(
            flat, banked,
            "degenerate banked backend diverged from the flat model at {where_}"
        );
    }
}

/// A solo (single-program) workload takes the same code path the
/// dramdiff study uses; conformance must hold there too.
#[test]
fn degenerate_banked_matches_flat_on_solo_workloads() {
    for (pi, size) in [(0usize, 128u64), (5, 1024), (17, 4096)] {
        let w = Workload::solo(pi, 200_000, 0x7a9e);
        for cfg in [
            SystemConfig::rampage(IssueRate::GHZ1, size),
            SystemConfig::baseline(IssueRate::GHZ1, size),
        ] {
            let flat = run_config(&cfg, &w);
            let banked = run_config(&degenerate(&cfg), &w);
            assert_eq!(flat, banked, "solo divergence: program {pi}, {size} B");
        }
    }
}

/// Pinned flat fingerprints: introducing the banked variant must not
/// perturb any existing config's cache identity. If this test fails,
/// every persisted `cells.json` in the wild silently cold-starts — a
/// change that must be deliberate (bump `CACHE_FORMAT_VERSION`), never
/// accidental.
#[test]
fn flat_fingerprints_are_pinned() {
    let w = Workload::paper(50);
    let fp = |cfg: SystemConfig| Job::new(cfg, w).fingerprint();
    let cases = [
        (
            "rampage@1GHz/1024",
            fp(SystemConfig::rampage(IssueRate::GHZ1, 1024)),
            PIN_RAMPAGE,
        ),
        (
            "baseline@1GHz/1024",
            fp(SystemConfig::baseline(IssueRate::GHZ1, 1024)),
            PIN_BASELINE,
        ),
        (
            "two_way@200MHz/128",
            fp(SystemConfig::two_way(IssueRate::MHZ200, 128)),
            PIN_TWO_WAY,
        ),
        (
            "rampage_switching@4GHz/4096",
            fp(SystemConfig::rampage_switching(IssueRate::GHZ4, 4096)),
            PIN_SWITCHING,
        ),
    ];
    let moved: Vec<String> = cases
        .iter()
        .filter(|(_, got, pinned)| got != pinned)
        .map(|(name, got, _)| format!("{name} is now {got:#018x}"))
        .collect();
    assert!(
        moved.is_empty(),
        "flat fingerprints moved — existing cell caches would silently \
         cold-start: {moved:?}"
    );
}

// The pinned values. Regenerate deliberately (and bump the cache format
// version) if the config or workload encoding legitimately changes.
const PIN_RAMPAGE: u64 = 0xbfdd_8f1d_ac5b_79af;
const PIN_BASELINE: u64 = 0x842a_c4ac_86bd_7d80;
const PIN_TWO_WAY: u64 = 0x2828_8302_d2f9_ac81;
const PIN_SWITCHING: u64 = 0xf0ad_4ee6_288a_79b4;

/// The override that must never alias: a banked job's fingerprint
/// always differs from its flat twin's, so one cache file can hold both
/// backends' cells without confusion.
#[test]
fn banked_override_always_changes_the_fingerprint() {
    let w = Workload::quick();
    for (_, cfg) in flat_preset_cells() {
        let flat = Job::new(cfg, w).fingerprint();
        let banked = Job::new(degenerate(&cfg), w).fingerprint();
        assert_ne!(flat, banked, "fingerprint aliased for {}", cfg.label());
        let paper = {
            let mut c = cfg;
            c.dram = DramKind::banked();
            Job::new(c, w).fingerprint()
        };
        assert_ne!(flat, paper);
        assert_ne!(banked, paper, "paper-geometry banked aliased degenerate");
    }
}

/// A flat sweep's persisted cells.json round-trips bit-identically and
/// is hit — not recomputed — by a fresh runner, with banked cells
/// coexisting in the same file under their own fingerprints.
#[test]
fn flat_cells_json_is_stable_and_shared_with_banked() {
    let dir = scratch("roundtrip");
    let path = dir.join("cells.json");
    let w = Workload::quick();
    let flat_cfg = SystemConfig::rampage(IssueRate::GHZ1, 512);
    let banked_cfg = degenerate(&flat_cfg);

    let first = SweepRunner::serial();
    let a = first.run_one(&flat_cfg, &w);
    let b = first.run_one(&banked_cfg, &w);
    assert_eq!(a, b, "degenerate equivalence");
    assert_eq!(first.cache().len(), 2, "two distinct fingerprints cached");
    first.cache().save_file(&path).expect("save cells.json");

    let second = SweepRunner::serial();
    let load = second.cache().load_file(&path);
    assert!(load.is_clean(), "reload must be clean: {}", load.describe());
    assert_eq!(load.loaded, 2);
    let a2 = second.run_one(&flat_cfg, &w);
    let b2 = second.run_one(&banked_cfg, &w);
    assert_eq!(second.cache().hits(), 2, "both cells must come from cache");
    assert_eq!(second.cache().computed(), 0);
    assert_eq!(a, a2, "flat cell changed across persistence");
    assert_eq!(b, b2, "banked cell changed across persistence");

    std::fs::remove_dir_all(&dir).ok();
}
