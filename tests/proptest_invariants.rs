//! Property-based tests over the core data structures.

use proptest::prelude::*;
use rampage::cache::{Cache, Geometry, PhysAddr, ReplacementPolicy};
use rampage::dram::{DirectRambus, MemoryDevice, Picos};
use rampage::vm::{ClockReplacer, FrameId, InvertedPageTable, Tlb, Vpn};
use rampage_trace::Asid;
use std::collections::{HashMap, VecDeque};

// ---------- Cache vs a reference LRU model ----------

/// A straightforward model of an LRU set-associative write-back cache.
struct ModelCache {
    geo: Geometry,
    /// Per set: (tag, dirty), most recent at the back.
    sets: Vec<VecDeque<(u64, bool)>>,
}

impl ModelCache {
    fn new(geo: Geometry) -> Self {
        ModelCache {
            sets: vec![VecDeque::new(); geo.sets() as usize],
            geo,
        }
    }

    /// Returns (hit, eviction).
    fn access(&mut self, addr: PhysAddr, write: bool) -> (bool, Option<(PhysAddr, bool)>) {
        let set = self.geo.set_index(addr) as usize;
        let tag = self.geo.tag(addr);
        let q = &mut self.sets[set];
        if let Some(pos) = q.iter().position(|&(t, _)| t == tag) {
            let (t, d) = q.remove(pos).expect("position is valid");
            q.push_back((t, d || write));
            return (true, None);
        }
        let mut evicted = None;
        if q.len() == self.geo.ways() as usize {
            let (t, d) = q.pop_front().expect("set is full");
            evicted = Some((self.geo.block_base(set as u64, t), d));
        }
        q.push_back((tag, write));
        (false, evicted)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn cache_matches_lru_model(
        ops in prop::collection::vec((0u64..4096, any::<bool>()), 1..400),
        size_kb in prop::sample::select(vec![1u64, 2, 4]),
        block in prop::sample::select(vec![32u64, 64]),
        ways in prop::sample::select(vec![1u32, 2, 4]),
    ) {
        let geo = Geometry::new(size_kb * 1024, block, ways).unwrap();
        let mut cache = Cache::new(geo, ReplacementPolicy::Lru);
        let mut model = ModelCache::new(geo);
        for (addr, write) in ops {
            let a = PhysAddr(addr).align_down(4);
            let got = cache.access(a, write);
            let (hit, evicted) = model.access(a, write);
            prop_assert_eq!(got.hit, hit, "hit/miss diverged at {:?}", a);
            let got_ev = got.eviction.map(|e| (e.addr, e.dirty));
            prop_assert_eq!(got_ev, evicted, "eviction diverged at {:?}", a);
        }
    }

    #[test]
    fn cache_occupancy_and_probe_invariants(
        ops in prop::collection::vec((0u64..100_000, any::<bool>()), 1..300),
    ) {
        let geo = Geometry::new(4096, 32, 2).unwrap();
        let mut cache = Cache::new(geo, ReplacementPolicy::Random);
        for (addr, write) in ops {
            let a = PhysAddr(addr);
            cache.access(a, write);
            prop_assert!(cache.occupancy() <= geo.blocks());
            // Just-accessed blocks are present.
            prop_assert!(cache.probe(a));
            // Probe never mutates hit/miss accounting.
            let s = cache.stats();
            let _ = cache.probe(PhysAddr(addr ^ 0xfff));
            prop_assert_eq!(cache.stats(), s);
        }
    }

    #[test]
    fn geometry_index_tag_roundtrip(
        addr in any::<u64>(),
        size_kb in prop::sample::select(vec![16u64, 64, 4096]),
        block in prop::sample::select(vec![32u64, 128, 4096]),
        ways in prop::sample::select(vec![1u32, 2]),
    ) {
        let geo = Geometry::new(size_kb * 1024, block, ways).unwrap();
        let a = PhysAddr(addr).align_down(block);
        prop_assert_eq!(geo.block_base(geo.set_index(a), geo.tag(a)), a);
        prop_assert!(geo.set_index(a) < geo.sets());
    }

    // ---------- Inverted page table vs a hash-map model ----------

    #[test]
    fn ipt_matches_map_model(ops in prop::collection::vec((0u8..3, 0u64..64), 1..300)) {
        let mut ipt = InvertedPageTable::new(32, PhysAddr(0x1000));
        let mut model: HashMap<u64, FrameId> = HashMap::new();
        let asid = Asid(1);
        for (op, vpn_raw) in ops {
            let vpn = Vpn(vpn_raw);
            match op {
                // Insert if absent and a frame is free.
                0 => {
                    if let std::collections::hash_map::Entry::Vacant(e) = model.entry(vpn_raw) {
                        if let Some(f) = ipt.alloc_free() {
                            ipt.insert(f, asid, vpn);
                            e.insert(f);
                        }
                    }
                }
                // Remove if present.
                1 => {
                    if let Some(f) = model.remove(&vpn_raw) {
                        let m = ipt.remove(f).expect("model says mapped");
                        prop_assert_eq!(m.vpn, vpn);
                    }
                }
                // Lookup.
                _ => {
                    let got = ipt.lookup(asid, vpn).frame;
                    prop_assert_eq!(got, model.get(&vpn_raw).copied());
                }
            }
            prop_assert_eq!(ipt.mapped_frames() as usize, model.len());
            prop_assert_eq!(ipt.free_frames(), 32 - model.len());
        }
        // Final coherence: every model entry resolves through the chains.
        for (vpn_raw, f) in &model {
            prop_assert_eq!(ipt.frame_of(asid, Vpn(*vpn_raw)), Some(*f));
            let m = ipt.mapping(*f).expect("mapped frame has a mapping");
            prop_assert_eq!(m.vpn, Vpn(*vpn_raw));
        }
    }

    // ---------- TLB ----------

    #[test]
    fn tlb_capacity_and_lookup_invariants(
        ops in prop::collection::vec((0u8..3, 0u64..256), 1..300),
        ways in prop::sample::select(vec![1usize, 4, 64]),
    ) {
        let mut tlb = Tlb::new(4, ways, 99);
        let asid = Asid(7);
        for (op, vpn_raw) in ops {
            let vpn = Vpn(vpn_raw);
            match op {
                0 => {
                    tlb.insert(asid, vpn, FrameId(vpn_raw as u32));
                    // An entry is visible immediately after insertion.
                    prop_assert_eq!(tlb.peek(asid, vpn), Some(FrameId(vpn_raw as u32)));
                }
                1 => {
                    tlb.flush_page(asid, vpn);
                    prop_assert_eq!(tlb.peek(asid, vpn), None);
                }
                _ => {
                    // A hit always returns the frame that was inserted
                    // for exactly this vpn (frames encode their vpn).
                    if let Some(f) = tlb.lookup(asid, vpn) {
                        prop_assert_eq!(f, FrameId(vpn_raw as u32));
                    }
                }
            }
            prop_assert!(tlb.occupancy() <= tlb.capacity());
        }
    }

    // ---------- Clock replacement ----------

    #[test]
    fn clock_victims_are_legal(pin_mask in 0u32..0x7fff) {
        // 16 frames, some pinned by the mask (never all: bit 15 clear).
        let mut ipt = InvertedPageTable::new(16, PhysAddr(0));
        for i in 0..16u32 {
            let f = ipt.alloc_free().unwrap();
            if pin_mask & (1 << i) != 0 {
                ipt.insert_pinned(f, Asid(0), Vpn(i as u64));
            } else {
                ipt.insert(f, Asid(1), Vpn(i as u64));
            }
        }
        let mut clock = ClockReplacer::new();
        for _ in 0..8 {
            let (victim, scanned) = clock.select_victim(&mut ipt);
            let m = *ipt.mapping(victim).expect("victim is mapped");
            prop_assert!(!m.pinned, "pinned frame selected");
            prop_assert!(!m.referenced || scanned > 0);
            prop_assert!(scanned <= 32, "at most two sweeps");
            // Replace it with a fresh page, as the OS would.
            ipt.remove(victim);
            let f = ipt.alloc_free().unwrap();
            ipt.insert(f, Asid(1), Vpn(1000 + victim.0 as u64));
        }
    }

    // ---------- Timing arithmetic ----------

    #[test]
    fn picos_cycles_ceil_is_a_proper_ceiling(t in 0u64..u64::MAX / 2, c in 1u64..100_000) {
        let cycles = Picos(t).cycles_ceil(Picos(c));
        prop_assert!(cycles * c >= t, "covers the duration");
        if cycles > 0 {
            prop_assert!((cycles - 1) * c < t, "minimal");
        }
    }

    #[test]
    fn rambus_transfer_time_is_monotone_and_superlinear_free(
        a in 0u64..1_000_000, b in 0u64..1_000_000,
    ) {
        let r = DirectRambus::non_pipelined();
        if a <= b {
            prop_assert!(r.transfer_time(a) <= r.transfer_time(b));
        }
        // One combined transfer never costs more than two separate ones
        // (the latency is paid once) — the Table 1 economics.
        if a > 0 && b > 0 {
            prop_assert!(
                r.transfer_time(a + b) <= r.transfer_time(a) + r.transfer_time(b)
            );
        }
    }
}

// ---------- Victim cache, standby list, interleaver, classifier ----------

use rampage::cache::{MissClassifier, VictimCache};
use rampage::cache::Eviction;
use rampage::vm::StandbyList;
use rampage_trace::{Interleaver, ScheduleEvent, TraceRecord, VecSource};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn victim_cache_never_exceeds_capacity_and_take_removes(
        ops in prop::collection::vec((0u64..64, any::<bool>(), any::<bool>()), 1..200),
        cap in 1usize..16,
    ) {
        let mut vc = VictimCache::new(cap, 32);
        for (block, dirty, is_take) in ops {
            let addr = PhysAddr(block * 32);
            if is_take {
                if let Some(e) = vc.take(addr) {
                    prop_assert_eq!(e.addr, addr);
                    prop_assert!(vc.take(addr).is_none(), "take removes");
                }
            } else {
                vc.insert(Eviction { addr, dirty });
            }
            prop_assert!(vc.len() <= cap);
        }
    }

    #[test]
    fn standby_list_is_fifo_and_bounded(
        vpns in prop::collection::vec(0u64..1000, 1..100),
        cap in 1usize..16,
    ) {
        let mut sb = StandbyList::new(cap);
        let mut order: Vec<u64> = Vec::new();
        for (i, vpn) in vpns.iter().enumerate() {
            if order.contains(vpn) {
                continue; // the simulator never double-lists a page
            }
            let out = sb.push(rampage::vm::StandbyEntry {
                asid: Asid(1),
                vpn: rampage::vm::Vpn(*vpn),
                frame: rampage::vm::FrameId(i as u32),
                dirty: false,
            });
            order.push(*vpn);
            if let Some(discarded) = out {
                prop_assert_eq!(discarded.vpn.0, order.remove(0), "FIFO discard");
            }
            prop_assert!(sb.len() <= cap);
        }
        // Everything still listed is reclaimable exactly once.
        for vpn in order {
            prop_assert!(sb.reclaim(Asid(1), rampage::vm::Vpn(vpn)).is_some());
            prop_assert!(sb.reclaim(Asid(1), rampage::vm::Vpn(vpn)).is_none());
        }
    }

    #[test]
    fn interleaver_conserves_and_orders_records(
        lens in prop::collection::vec(0usize..50, 1..6),
        quantum in 1u64..20,
    ) {
        let sources: Vec<VecSource> = lens
            .iter()
            .enumerate()
            .map(|(p, &n)| {
                VecSource::new(
                    format!("p{p}"),
                    (0..n).map(|i| TraceRecord::fetch((p * 1000 + i) as u64 * 4)).collect(),
                )
            })
            .collect();
        let mut il = Interleaver::new(sources, quantum);
        let mut per: Vec<Vec<u64>> = vec![Vec::new(); lens.len()];
        loop {
            match il.next_event() {
                ScheduleEvent::Record { pid, record } => per[pid.0].push(record.addr.0),
                ScheduleEvent::Switch { from, to } => prop_assert_ne!(from, to),
                ScheduleEvent::Finished => break,
            }
        }
        for (p, &n) in lens.iter().enumerate() {
            prop_assert_eq!(per[p].len(), n, "every record of p{} delivered", p);
            // Per-process order is preserved.
            let expected: Vec<u64> = (0..n).map(|i| (p * 1000 + i) as u64 * 4).collect();
            prop_assert_eq!(&per[p], &expected);
        }
    }

    #[test]
    fn classifier_agrees_with_plain_cache(
        ops in prop::collection::vec((0u64..2048, any::<bool>()), 1..300),
    ) {
        let geo = Geometry::new(2048, 32, 1).unwrap();
        let mut mc = MissClassifier::new(geo, ReplacementPolicy::Lru);
        let mut plain = Cache::new(geo, ReplacementPolicy::Lru);
        for (addr, w) in ops {
            let a = PhysAddr(addr);
            let classified_miss = mc.access(a, w).is_some();
            let plain_miss = !plain.access(a, w).hit;
            prop_assert_eq!(classified_miss, plain_miss);
        }
        let p = mc.profile();
        prop_assert_eq!(p.misses(), plain.stats().misses());
        // Compulsory misses are bounded by distinct blocks touched.
        prop_assert!(p.compulsory <= 2048 / 32 * 32, "sanity");
    }
}
