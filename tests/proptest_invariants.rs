//! Randomized model-based tests over the core data structures.
//!
//! Originally property-based; now driven by the in-tree seeded PRNG
//! (`crates/rand`) because the build environment is offline (see
//! README.md § Offline builds). Every case is deterministic: a fixed
//! seed per test, many sampled scenarios per run.

use rampage::cache::{Cache, Geometry, PhysAddr, ReplacementPolicy};
use rampage::dram::{DirectRambus, MemoryDevice, Picos};
use rampage::vm::{ClockReplacer, FrameId, InvertedPageTable, Tlb, Vpn};
use rampage_trace::Asid;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{HashMap, VecDeque};

fn pick<T: Copy>(rng: &mut StdRng, xs: &[T]) -> T {
    xs[rng.gen_range(0..xs.len())]
}

// ---------- Cache vs a reference LRU model ----------

/// A straightforward model of an LRU set-associative write-back cache.
struct ModelCache {
    geo: Geometry,
    /// Per set: (tag, dirty), most recent at the back.
    sets: Vec<VecDeque<(u64, bool)>>,
}

impl ModelCache {
    fn new(geo: Geometry) -> Self {
        ModelCache {
            sets: vec![VecDeque::new(); geo.sets() as usize],
            geo,
        }
    }

    /// Returns (hit, eviction).
    fn access(&mut self, addr: PhysAddr, write: bool) -> (bool, Option<(PhysAddr, bool)>) {
        let set = self.geo.set_index(addr) as usize;
        let tag = self.geo.tag(addr);
        let q = &mut self.sets[set];
        if let Some(pos) = q.iter().position(|&(t, _)| t == tag) {
            let (t, d) = q.remove(pos).expect("position is valid");
            q.push_back((t, d || write));
            return (true, None);
        }
        let mut evicted = None;
        if q.len() == self.geo.ways() as usize {
            let (t, d) = q.pop_front().expect("set is full");
            evicted = Some((self.geo.block_base(set as u64, t), d));
        }
        q.push_back((tag, write));
        (false, evicted)
    }
}

#[test]
fn cache_matches_lru_model() {
    let mut rng = StdRng::seed_from_u64(0x11a1);
    for _ in 0..64 {
        let size_kb = pick(&mut rng, &[1u64, 2, 4]);
        let block = pick(&mut rng, &[32u64, 64]);
        let ways = pick(&mut rng, &[1u32, 2, 4]);
        let geo = Geometry::new(size_kb * 1024, block, ways).unwrap();
        let mut cache = Cache::new(geo, ReplacementPolicy::Lru);
        let mut model = ModelCache::new(geo);
        let nops = rng.gen_range(1..400usize);
        for _ in 0..nops {
            let a = PhysAddr(rng.gen_range(0..4096u64)).align_down(4);
            let write = rng.gen::<bool>();
            let got = cache.access(a, write);
            let (hit, evicted) = model.access(a, write);
            assert_eq!(got.hit, hit, "hit/miss diverged at {a:?}");
            let got_ev = got.eviction.map(|e| (e.addr, e.dirty));
            assert_eq!(got_ev, evicted, "eviction diverged at {a:?}");
        }
    }
}

#[test]
fn cache_occupancy_and_probe_invariants() {
    let mut rng = StdRng::seed_from_u64(0x11a2);
    for _ in 0..64 {
        let geo = Geometry::new(4096, 32, 2).unwrap();
        let mut cache = Cache::new(geo, ReplacementPolicy::Random);
        let nops = rng.gen_range(1..300usize);
        for _ in 0..nops {
            let addr = rng.gen_range(0..100_000u64);
            let a = PhysAddr(addr);
            cache.access(a, rng.gen::<bool>());
            assert!(cache.occupancy() <= geo.blocks());
            // Just-accessed blocks are present.
            assert!(cache.probe(a));
            // Probe never mutates hit/miss accounting.
            let s = cache.stats();
            let _ = cache.probe(PhysAddr(addr ^ 0xfff));
            assert_eq!(cache.stats(), s);
        }
    }
}

#[test]
fn geometry_index_tag_roundtrip() {
    let mut rng = StdRng::seed_from_u64(0x11a3);
    for _ in 0..256 {
        let addr = rng.gen::<u64>();
        let size_kb = pick(&mut rng, &[16u64, 64, 4096]);
        let block = pick(&mut rng, &[32u64, 128, 4096]);
        let ways = pick(&mut rng, &[1u32, 2]);
        let geo = Geometry::new(size_kb * 1024, block, ways).unwrap();
        let a = PhysAddr(addr).align_down(block);
        assert_eq!(geo.block_base(geo.set_index(a), geo.tag(a)), a);
        assert!(geo.set_index(a) < geo.sets());
    }
}

// ---------- Inverted page table vs a hash-map model ----------

#[test]
fn ipt_matches_map_model() {
    let mut rng = StdRng::seed_from_u64(0x11a4);
    for _ in 0..64 {
        let mut ipt = InvertedPageTable::new(32, PhysAddr(0x1000));
        let mut model: HashMap<u64, FrameId> = HashMap::new();
        let asid = Asid(1);
        let nops = rng.gen_range(1..300usize);
        for _ in 0..nops {
            let op = rng.gen_range(0..3u8);
            let vpn_raw = rng.gen_range(0..64u64);
            let vpn = Vpn(vpn_raw);
            match op {
                // Insert if absent and a frame is free.
                0 => {
                    if let std::collections::hash_map::Entry::Vacant(e) = model.entry(vpn_raw) {
                        if let Some(f) = ipt.alloc_free() {
                            ipt.insert(f, asid, vpn);
                            e.insert(f);
                        }
                    }
                }
                // Remove if present.
                1 => {
                    if let Some(f) = model.remove(&vpn_raw) {
                        let m = ipt.remove(f).expect("model says mapped");
                        assert_eq!(m.vpn, vpn);
                    }
                }
                // Lookup.
                _ => {
                    let got = ipt.lookup(asid, vpn).frame;
                    assert_eq!(got, model.get(&vpn_raw).copied());
                }
            }
            assert_eq!(ipt.mapped_frames() as usize, model.len());
            assert_eq!(ipt.free_frames(), 32 - model.len());
        }
        // Final coherence: every model entry resolves through the chains.
        for (vpn_raw, f) in &model {
            assert_eq!(ipt.frame_of(asid, Vpn(*vpn_raw)), Some(*f));
            let m = ipt.mapping(*f).expect("mapped frame has a mapping");
            assert_eq!(m.vpn, Vpn(*vpn_raw));
        }
    }
}

// ---------- TLB ----------

#[test]
fn tlb_capacity_and_lookup_invariants() {
    let mut rng = StdRng::seed_from_u64(0x11a5);
    for _ in 0..64 {
        let ways = pick(&mut rng, &[1usize, 4, 64]);
        let mut tlb = Tlb::new(4, ways, 99);
        let asid = Asid(7);
        let nops = rng.gen_range(1..300usize);
        for _ in 0..nops {
            let op = rng.gen_range(0..3u8);
            let vpn_raw = rng.gen_range(0..256u64);
            let vpn = Vpn(vpn_raw);
            match op {
                0 => {
                    tlb.insert(asid, vpn, FrameId(vpn_raw as u32));
                    // An entry is visible immediately after insertion.
                    assert_eq!(tlb.peek(asid, vpn), Some(FrameId(vpn_raw as u32)));
                }
                1 => {
                    tlb.flush_page(asid, vpn);
                    assert_eq!(tlb.peek(asid, vpn), None);
                }
                _ => {
                    // A hit always returns the frame that was inserted
                    // for exactly this vpn (frames encode their vpn).
                    if let Some(f) = tlb.lookup(asid, vpn) {
                        assert_eq!(f, FrameId(vpn_raw as u32));
                    }
                }
            }
            assert!(tlb.occupancy() <= tlb.capacity());
        }
    }
}

// ---------- Clock replacement ----------

#[test]
fn clock_victims_are_legal() {
    let mut rng = StdRng::seed_from_u64(0x11a6);
    for _ in 0..64 {
        // 16 frames, some pinned by the mask (never all: bit 15 clear).
        let pin_mask = rng.gen_range(0..0x7fffu32);
        let mut ipt = InvertedPageTable::new(16, PhysAddr(0));
        for i in 0..16u32 {
            let f = ipt.alloc_free().unwrap();
            if pin_mask & (1 << i) != 0 {
                ipt.insert_pinned(f, Asid(0), Vpn(i as u64));
            } else {
                ipt.insert(f, Asid(1), Vpn(i as u64));
            }
        }
        let mut clock = ClockReplacer::new();
        for _ in 0..8 {
            let (victim, scanned) = clock.select_victim(&mut ipt);
            let m = *ipt.mapping(victim).expect("victim is mapped");
            assert!(!m.pinned, "pinned frame selected");
            assert!(!m.referenced || scanned > 0);
            assert!(scanned <= 32, "at most two sweeps");
            // Replace it with a fresh page, as the OS would.
            ipt.remove(victim);
            let f = ipt.alloc_free().unwrap();
            ipt.insert(f, Asid(1), Vpn(1000 + victim.0 as u64));
        }
    }
}

// ---------- Timing arithmetic ----------

#[test]
fn picos_cycles_ceil_is_a_proper_ceiling() {
    let mut rng = StdRng::seed_from_u64(0x11a7);
    for _ in 0..256 {
        let t = rng.gen_range(0..u64::MAX / 2);
        let c = rng.gen_range(1..100_000u64);
        let cycles = Picos(t).cycles_ceil(Picos(c));
        assert!(cycles * c >= t, "covers the duration");
        if cycles > 0 {
            assert!((cycles - 1) * c < t, "minimal");
        }
    }
}

#[test]
fn rambus_transfer_time_is_monotone_and_superlinear_free() {
    let mut rng = StdRng::seed_from_u64(0x11a8);
    let r = DirectRambus::non_pipelined();
    for _ in 0..256 {
        let a = rng.gen_range(0..1_000_000u64);
        let b = rng.gen_range(0..1_000_000u64);
        if a <= b {
            assert!(r.transfer_time(a) <= r.transfer_time(b));
        }
        // One combined transfer never costs more than two separate ones
        // (the latency is paid once) — the Table 1 economics.
        if a > 0 && b > 0 {
            assert!(r.transfer_time(a + b) <= r.transfer_time(a) + r.transfer_time(b));
        }
    }
}

// ---------- Victim cache, standby list, interleaver, classifier ----------

use rampage::cache::Eviction;
use rampage::cache::{MissClassifier, VictimCache};
use rampage::vm::StandbyList;
use rampage_trace::{Interleaver, ScheduleEvent, TraceRecord, VecSource};

#[test]
fn victim_cache_never_exceeds_capacity_and_take_removes() {
    let mut rng = StdRng::seed_from_u64(0x11a9);
    for _ in 0..64 {
        let cap = rng.gen_range(1..16usize);
        let mut vc = VictimCache::new(cap, 32);
        let nops = rng.gen_range(1..200usize);
        for _ in 0..nops {
            let addr = PhysAddr(rng.gen_range(0..64u64) * 32);
            if rng.gen::<bool>() {
                if let Some(e) = vc.take(addr) {
                    assert_eq!(e.addr, addr);
                    assert!(vc.take(addr).is_none(), "take removes");
                }
            } else {
                vc.insert(Eviction {
                    addr,
                    dirty: rng.gen::<bool>(),
                });
            }
            assert!(vc.len() <= cap);
        }
    }
}

#[test]
fn standby_list_is_fifo_and_bounded() {
    let mut rng = StdRng::seed_from_u64(0x11aa);
    for _ in 0..64 {
        let cap = rng.gen_range(1..16usize);
        let mut sb = StandbyList::new(cap);
        let mut order: Vec<u64> = Vec::new();
        let nvpns = rng.gen_range(1..100usize);
        for i in 0..nvpns {
            let vpn = rng.gen_range(0..1000u64);
            if order.contains(&vpn) {
                continue; // the simulator never double-lists a page
            }
            let out = sb.push(rampage::vm::StandbyEntry {
                asid: Asid(1),
                vpn: rampage::vm::Vpn(vpn),
                frame: rampage::vm::FrameId(i as u32),
                dirty: false,
            });
            order.push(vpn);
            if let Some(discarded) = out {
                assert_eq!(discarded.vpn.0, order.remove(0), "FIFO discard");
            }
            assert!(sb.len() <= cap);
        }
        // Everything still listed is reclaimable exactly once.
        for vpn in order {
            assert!(sb.reclaim(Asid(1), rampage::vm::Vpn(vpn)).is_some());
            assert!(sb.reclaim(Asid(1), rampage::vm::Vpn(vpn)).is_none());
        }
    }
}

#[test]
fn interleaver_conserves_and_orders_records() {
    let mut rng = StdRng::seed_from_u64(0x11ab);
    for _ in 0..64 {
        let nsources = rng.gen_range(1..6usize);
        let lens: Vec<usize> = (0..nsources).map(|_| rng.gen_range(0..50usize)).collect();
        let quantum = rng.gen_range(1..20u64);
        let sources: Vec<VecSource> = lens
            .iter()
            .enumerate()
            .map(|(p, &n)| {
                VecSource::new(
                    format!("p{p}"),
                    (0..n)
                        .map(|i| TraceRecord::fetch((p * 1000 + i) as u64 * 4))
                        .collect(),
                )
            })
            .collect();
        let mut il = Interleaver::new(sources, quantum);
        let mut per: Vec<Vec<u64>> = vec![Vec::new(); lens.len()];
        loop {
            match il.next_event() {
                ScheduleEvent::Record { pid, record } => per[pid.0].push(record.addr.0),
                ScheduleEvent::Switch { from, to } => assert_ne!(from, to),
                ScheduleEvent::Finished => break,
            }
        }
        for (p, &n) in lens.iter().enumerate() {
            assert_eq!(per[p].len(), n, "every record of p{p} delivered");
            // Per-process order is preserved.
            let expected: Vec<u64> = (0..n).map(|i| (p * 1000 + i) as u64 * 4).collect();
            assert_eq!(&per[p], &expected);
        }
    }
}

// ---------- Whole-engine invariants: time identity and histograms ----------

use rampage::core::{DramKind, Engine, IssueRate, SystemConfig};
use rampage_trace::TraceSource;

/// A random valid system: preset × unit size × issue rate × DRAM model.
/// Combinations the validator rejects are resampled.
fn random_config(rng: &mut StdRng) -> SystemConfig {
    loop {
        let rate = pick(rng, &[IssueRate::MHZ200, IssueRate::GHZ1, IssueRate::GHZ4]);
        let size = pick(rng, &[256u64, 512, 1024, 2048, 4096]);
        let mut cfg = match rng.gen_range(0..4u8) {
            0 => SystemConfig::baseline(rate, size),
            1 => SystemConfig::two_way(rate, size),
            2 => SystemConfig::rampage(rate, size),
            _ => SystemConfig::rampage_switching(rate, size),
        };
        cfg.dram = pick(
            rng,
            &[DramKind::Rambus, DramKind::RambusPipelined, DramKind::Sdram],
        );
        if cfg.validate().is_ok() {
            return cfg;
        }
    }
}

/// A short synthetic multiprogrammed trace: a few processes, each a mix
/// of fetches, loads, and stores over a handful of pages.
fn random_sources(rng: &mut StdRng) -> Vec<Vec<TraceRecord>> {
    let nprocs = rng.gen_range(1..4usize);
    (0..nprocs)
        .map(|_| {
            let n = rng.gen_range(20..300usize);
            (0..n)
                .map(|_| {
                    let addr = rng.gen_range(0..32u64) * 4096 + rng.gen_range(0..1024u64) * 4;
                    match rng.gen_range(0..3u8) {
                        0 => TraceRecord::fetch(addr),
                        1 => TraceRecord::read(addr),
                        _ => TraceRecord::write(addr),
                    }
                })
                .collect()
        })
        .collect()
}

fn boxed(recs: &[Vec<TraceRecord>]) -> Vec<Box<dyn TraceSource + Send>> {
    recs.iter()
        .enumerate()
        .map(|(p, r)| {
            Box::new(VecSource::new(format!("p{p}"), r.clone())) as Box<dyn TraceSource + Send>
        })
        .collect()
}

/// For any valid config and trace: the per-level time breakdown sums
/// exactly to the engine's elapsed cycles, and the latency histograms
/// reconcile sample-for-sample with the event counters.
#[test]
fn engine_time_identity_and_histogram_counts_hold() {
    let mut rng = StdRng::seed_from_u64(0x11ad);
    for _ in 0..24 {
        let cfg = random_config(&mut rng);
        let recs = random_sources(&mut rng);
        let out = Engine::new(&cfg, boxed(&recs)).run();
        let cycle = cfg.issue.cycle().0;
        assert_eq!(
            out.metrics.total_cycles(),
            out.elapsed.0 / cycle,
            "time breakdown must sum to elapsed cycles for {}",
            cfg.label()
        );
        let (h, c) = (&out.metrics.hist, &out.metrics.counts);
        assert_eq!(h.tlb.count(), c.tlb.misses, "{}", cfg.label());
        assert_eq!(
            h.fault.count(),
            c.page_faults + c.soft_faults,
            "{}",
            cfg.label()
        );
        assert_eq!(
            h.dram.count(),
            c.page_faults + c.dram_block_fetches + c.dram_writebacks + c.prefetches,
            "{}",
            cfg.label()
        );
        for hist in [&h.tlb, &h.fault, &h.dram] {
            assert_eq!(hist.bucket_sum(), hist.count());
            assert!(hist.mean() <= hist.max() as f64);
        }
    }
}

/// Tracing must be a pure observer under randomized configs too, and
/// the ring's count conservation (kept + dropped is cap-independent)
/// must hold for arbitrary capacities.
#[test]
fn tracing_never_perturbs_randomized_runs() {
    let mut rng = StdRng::seed_from_u64(0x11ae);
    for _ in 0..12 {
        let cfg = random_config(&mut rng);
        let recs = random_sources(&mut rng);
        let plain = Engine::new(&cfg, boxed(&recs)).run();
        let cap = rng.gen_range(1..5000usize);
        let mut traced = Engine::new(&cfg, boxed(&recs));
        traced.enable_trace(cap);
        let traced = traced.run();
        assert_eq!(plain.metrics.time, traced.metrics.time, "{}", cfg.label());
        assert_eq!(
            plain.metrics.counts,
            traced.metrics.counts,
            "{}",
            cfg.label()
        );
        assert_eq!(plain.elapsed, traced.elapsed, "{}", cfg.label());
        assert!(traced.events.len() <= cap, "ring exceeded cap {cap}");
        let mut full = Engine::new(&cfg, boxed(&recs));
        full.enable_trace(1 << 22);
        let full = full.run();
        assert_eq!(
            traced.events.len() as u64 + traced.events_dropped,
            full.events.len() as u64,
            "count conservation at cap {cap} for {}",
            cfg.label()
        );
    }
}

#[test]
fn classifier_agrees_with_plain_cache() {
    let mut rng = StdRng::seed_from_u64(0x11ac);
    for _ in 0..64 {
        let geo = Geometry::new(2048, 32, 1).unwrap();
        let mut mc = MissClassifier::new(geo, ReplacementPolicy::Lru);
        let mut plain = Cache::new(geo, ReplacementPolicy::Lru);
        let nops = rng.gen_range(1..300usize);
        for _ in 0..nops {
            let a = PhysAddr(rng.gen_range(0..2048u64));
            let w = rng.gen::<bool>();
            let classified_miss = mc.access(a, w).is_some();
            let plain_miss = !plain.access(a, w).hit;
            assert_eq!(classified_miss, plain_miss);
        }
        let p = mc.profile();
        assert_eq!(p.misses(), plain.stats().misses());
        // Compulsory misses are bounded by distinct blocks touched.
        assert!(p.compulsory <= 2048 / 32 * 32, "sanity");
    }
}
