//! Shape tests: small-scale versions of the paper's qualitative claims.
//!
//! These use workloads big enough for the shapes to emerge but small
//! enough for CI (the full-scale reproduction lives in `repro` /
//! EXPERIMENTS.md).

use rampage::prelude::*;
use rampage_core::experiments::{self, SweepRunner, Workload};
use rampage_dram::{efficiency, DirectRambus, Disk, MemoryDevice};

fn workload() -> Workload {
    Workload {
        nbench: 6,
        scale: 2000,
        seed: 0x7a9e,
        solo: None,
    }
}

fn runner() -> SweepRunner {
    SweepRunner::new(0)
}

#[test]
fn table1_dram_shares_disks_preference_for_large_units() {
    let rambus = DirectRambus::non_pipelined();
    let disk = Disk::paper_example();
    // Both devices' efficiency grows with transfer size...
    for dev in [&rambus as &dyn MemoryDevice, &disk] {
        let mut prev = 0.0;
        for bytes in [128u64, 1024, 64 * 1024, 4 << 20] {
            let e = efficiency(dev, bytes);
            assert!(e > prev, "{}: monotone at {bytes}", dev.name());
            prev = e;
        }
    }
    // ...but DRAM reaches high efficiency at page-sized units where disk
    // is still dismal (§3.5's 2,600-instruction vs 10-million-instruction
    // contrast).
    assert!(efficiency(&rambus, 4096) > 0.95);
    assert!(efficiency(&disk, 4096) < 0.05);
}

#[test]
fn fig4_shape_rampage_overhead_falls_with_page_size_baseline_flat() {
    let w = workload();
    let t3 = experiments::table3::run(&runner(), &w, &[IssueRate::GHZ1], &[128, 512, 4096]);
    let f4 = experiments::figures::figure4(&t3);
    // RAMpage: steep fall from 128 B to 4 KB (the paper's ~60% → ~5%).
    assert!(
        f4.rampage[0] > 3.0 * f4.rampage[2],
        "RAMpage overhead must collapse with page size: {:?}",
        f4.rampage
    );
    // Conventional: flat (the DRAM page size never changes).
    let spread = (f4.baseline[0] - f4.baseline[2]).abs();
    assert!(
        spread < 0.02,
        "baseline overhead flat across block size: {:?}",
        f4.baseline
    );
}

#[test]
fn table3_shape_dm_cache_suffers_at_huge_blocks() {
    let w = workload();
    let t3 = experiments::table3::run(&runner(), &w, &[IssueRate::MHZ200], &[128, 4096]);
    let small = t3.baseline[0][0].seconds;
    let huge = t3.baseline[0][1].seconds;
    assert!(
        huge > 1.2 * small,
        "4 KB blocks must hurt the DM cache at 200 MHz: {small} vs {huge}"
    );
}

#[test]
fn table3_shape_rampage_prefers_larger_pages_than_the_cache() {
    let w = workload();
    let t3 = experiments::table3::run(&runner(), &w, &[IssueRate::GHZ1], &[128, 1024]);
    // RAMpage 128 B pages lose to RAMpage 1 KB pages (TLB overhead).
    assert!(
        t3.rampage[0][0].seconds > t3.rampage[0][1].seconds,
        "small pages must hurt RAMpage"
    );
    // The cache prefers the smaller block at this scale.
    assert!(t3.baseline[0][0].seconds < t3.baseline[0][1].seconds);
}

#[test]
fn fig23_shape_dram_fraction_grows_with_issue_rate() {
    let w = workload();
    let t3 = experiments::table3::run(&runner(), &w, &[IssueRate::MHZ200, IssueRate::GHZ4], &[512]);
    for rows in [&t3.baseline, &t3.rampage] {
        let slow = rows[0][0].fractions.dram;
        let fast = rows[1][0].fractions.dram;
        assert!(
            fast > slow,
            "unimproved DRAM eats a growing fraction: {slow} -> {fast}"
        );
    }
    // And RAMpage spends a smaller fraction of its time in DRAM than the
    // DM cache at the fast end (the §5.3 claim).
    assert!(
        t3.rampage[1][0].fractions.dram < t3.baseline[1][0].fractions.dram,
        "RAMpage is more tolerant of DRAM latency"
    );
}

#[test]
fn rampage_has_fewer_dram_events_than_dm_cache_at_same_unit() {
    // Full associativity (paging) vs direct mapping, same transfer unit:
    // fewer misses is the paper's core mechanism.
    let w = workload();
    let t3 = experiments::table3::run(&runner(), &w, &[IssueRate::GHZ1], &[1024]);
    assert!(
        t3.rampage[0][0].dram_events < t3.baseline[0][0].dram_events,
        "RAMpage {} events vs DM {}",
        t3.rampage[0][0].dram_events,
        t3.baseline[0][0].dram_events
    );
}

#[test]
fn two_way_l2_beats_direct_mapped_l2() {
    let w = workload();
    let t3 = experiments::table3::run(&runner(), &w, &[IssueRate::GHZ1], &[512]);
    let t5 = experiments::table5::run(&runner(), &w, &[IssueRate::GHZ1], &[512]);
    // The 2-way run includes the switch trace, so compare miss counts
    // (associativity must reduce them) rather than raw seconds.
    assert!(
        t5.cells[0][0].l2_miss_ratio <= t3.baseline[0][0].l2_miss_ratio,
        "2-way associativity cannot increase the L2 miss ratio"
    );
}

#[test]
fn fig5_best_config_has_zero_slowdown() {
    let w = workload();
    let rates = [IssueRate::GHZ1];
    let sizes = [512, 2048];
    let t3 = experiments::table3::run(&runner(), &w, &rates, &sizes);
    let t4 = experiments::table4::run(&runner(), &w, &t3);
    let t5 = experiments::table5::run(&runner(), &w, &rates, &sizes);
    let f5 = experiments::fig5::derive(&t4, &t5);
    let min = f5.rampage[0]
        .iter()
        .chain(f5.two_way[0].iter())
        .copied()
        .fold(f64::MAX, f64::min);
    assert!(min.abs() < 1e-12, "someone is the best: {min}");
}
