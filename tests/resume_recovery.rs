//! Crash-safety tests for the durable sweep journal: a journaled run
//! resumes exactly where it stopped, concurrent owners drain one grid
//! without duplicating work, and (under `--features fault`) the `repro`
//! binary survives an injected crash at every crash point — the
//! resumed artifact must be bit-identical to an uninterrupted run.

use rampage_core::experiments::{
    scan_journal, table3, JournalOp, JournalState, LeaseConfig, SweepRunner, Workload,
};
use rampage_core::IssueRate;
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::atomic::AtomicBool;

const RATES: [IssueRate; 2] = [IssueRate::MHZ200, IssueRate::GHZ4];

/// A fresh scratch directory per test (tests run concurrently).
fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rampage-resume-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// Reference output: the full grid on a clean serial runner.
fn clean_cells(w: &Workload, sizes: &[u64]) -> String {
    let runner = SweepRunner::serial();
    table3::run(&runner, w, &RATES, sizes);
    runner.cache().to_json().pretty()
}

#[test]
fn journal_resume_skips_completed_cells_and_is_bit_identical() {
    let w = Workload::quick();
    let dir = scratch("resume");
    let jpath = dir.join("journal.jsonl");

    // Phase A: a journaled runner finishes half the grid, then "dies"
    // (drops — every completed cell is already fsync'd in the journal).
    {
        let runner = SweepRunner::serial()
            .with_journal(&jpath, LeaseConfig::new("A".into()))
            .expect("open journal");
        table3::run(&runner, &w, &RATES, &[256]);
        assert_eq!(
            runner.cache().computed(),
            4,
            "half grid: 2 rates x 2 systems"
        );
    }

    // Phase B: a new runner on the same journal resumes and runs the
    // full grid; phase A's cells must be adopted, not recomputed.
    let runner = SweepRunner::serial()
        .with_journal(&jpath, LeaseConfig::new("A".into()))
        .expect("reopen journal");
    assert_eq!(runner.resumed_cells(), 4, "phase A cells recovered");
    table3::run(&runner, &w, &RATES, &[256, 2048]);
    assert_eq!(runner.cache().computed(), 4, "only the new size simulated");
    assert_eq!(
        runner.cache().to_json().pretty(),
        clean_cells(&w, &[256, 2048]),
        "resumed cells.json differs from an uninterrupted run"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn two_owners_drain_one_grid_without_duplicate_computation() {
    let w = Workload::quick();
    let dir = scratch("two-owners");
    let jpath = dir.join("journal.jsonl");
    let sizes = [256u64, 2048];

    let make = |owner: &str| {
        SweepRunner::new(2)
            .with_journal(&jpath, LeaseConfig::new(owner.into()))
            .expect("open shared journal")
    };
    let a = make("A");
    let b = make("B");
    std::thread::scope(|s| {
        s.spawn(|| table3::run(&a, &w, &RATES, &sizes));
        s.spawn(|| table3::run(&b, &w, &RATES, &sizes));
    });

    // Both see the complete, correct artifact...
    let clean = clean_cells(&w, &sizes);
    assert_eq!(a.cache().to_json().pretty(), clean, "owner A artifact");
    assert_eq!(b.cache().to_json().pretty(), clean, "owner B artifact");
    // ...and the grid was computed exactly once across both owners.
    assert_eq!(
        a.cache().computed() + b.cache().computed(),
        8,
        "no duplicated or lost cell computations"
    );
    let records = scan_journal(&jpath).expect("scan journal");
    let mut done_per_fp: BTreeMap<u64, u32> = BTreeMap::new();
    for r in &records {
        if let JournalOp::Done { fp, .. } = r.op {
            *done_per_fp.entry(fp).or_insert(0) += 1;
        }
    }
    assert_eq!(done_per_fp.len(), 8, "every cell journaled done");
    assert!(
        done_per_fp.values().all(|&n| n == 1),
        "a cell was journaled done more than once: {done_per_fp:?}"
    );
    // The replayed claim table agrees: every cell done, no open claims.
    let state = JournalState::replay(&records);
    assert!(state.cells.values().all(|c| c.done_count == 1));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn shutdown_flag_interrupts_then_resume_completes() {
    static FLAG: AtomicBool = AtomicBool::new(true);
    let w = Workload::quick();
    let dir = scratch("shutdown");
    let jpath = dir.join("journal.jsonl");

    // The flag is already set: every cell drains as an interrupted
    // placeholder and nothing is journaled done.
    {
        let runner = SweepRunner::serial()
            .with_shutdown_flag(&FLAG)
            .with_journal(&jpath, LeaseConfig::new("A".into()))
            .expect("open journal");
        table3::run(&runner, &w, &RATES, &[256]);
        assert!(runner.interrupted(), "shutdown flag honored");
        assert_eq!(runner.cache().computed(), 0, "no cell computed");
    }

    // A fresh runner without the flag completes the grid from zero.
    let runner = SweepRunner::serial()
        .with_journal(&jpath, LeaseConfig::new("A".into()))
        .expect("reopen journal");
    assert_eq!(runner.resumed_cells(), 0);
    table3::run(&runner, &w, &RATES, &[256]);
    assert!(!runner.interrupted());
    assert_eq!(
        runner.cache().to_json().pretty(),
        clean_cells(&w, &[256]),
        "post-interrupt resume differs from a clean run"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Child-process crash drills through the real `repro` binary. These
/// need the injected crash points, so they only exist under the
/// `fault` feature (`cargo test --features fault`).
#[cfg(feature = "fault")]
mod drills {
    use super::scratch;
    use std::path::Path;
    use std::process::Command;

    /// Exit code of an injected crash (mirrors a real `kill -9`).
    const CRASH: i32 = 137;

    fn repro() -> Command {
        Command::new(env!("CARGO_BIN_EXE_repro"))
    }

    /// `repro table3` on the 2-benchmark grid at `scale` into `out`.
    fn run_scaled(out: &Path, scale: &str, jobs: &str, extra: &[&str]) -> std::process::Output {
        let mut cmd = repro();
        cmd.args(["--scale", scale, "--nbench", "2", "--jobs", jobs])
            .arg("--out")
            .arg(out)
            .args(extra)
            .arg("table3");
        cmd.output().expect("spawn repro")
    }

    /// The drills' default small grid.
    fn run_table3(out: &Path, extra: &[&str]) -> std::process::Output {
        run_scaled(out, "20000", "2", extra)
    }

    fn cells(dir: &Path) -> Vec<u8> {
        std::fs::read(dir.join("cells.json")).expect("read cells.json")
    }

    /// The uninterrupted `--jobs 1` reference artifact.
    fn clean_reference(name: &str) -> Vec<u8> {
        let dir = scratch(name);
        let mut cmd = repro();
        cmd.args(["--scale", "20000", "--nbench", "2", "--jobs", "1"])
            .arg("--out")
            .arg(&dir)
            .arg("table3");
        let out = cmd.output().expect("spawn repro");
        assert!(out.status.success(), "clean run failed: {out:?}");
        let bytes = cells(&dir);
        let _ = std::fs::remove_dir_all(&dir);
        bytes
    }

    /// Crash at `spec`, resume, and require the artifact to match the
    /// clean run byte for byte.
    fn crash_then_resume(name: &str, spec: &str) {
        let dir = scratch(name);
        let crashed = run_table3(&dir, &["--fault", spec]);
        assert_eq!(
            crashed.status.code(),
            Some(CRASH),
            "expected injected crash: {crashed:?}"
        );
        let resumed = run_table3(&dir, &["--resume"]);
        assert_eq!(resumed.status.code(), Some(0), "resume failed: {resumed:?}");
        assert_eq!(
            cells(&dir),
            clean_reference(&format!("{name}-clean")),
            "{spec}: resumed cells.json differs from an uninterrupted run"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn die_after_claim_then_resume_is_bit_identical() {
        crash_then_resume("die-after-claim", "die-after-claim");
    }

    #[test]
    fn die_mid_journal_append_truncates_torn_tail_and_resumes() {
        let dir = scratch("die-mid-append");
        let crashed = run_table3(&dir, &["--fault", "die-mid-append=5"]);
        assert_eq!(crashed.status.code(), Some(CRASH), "{crashed:?}");
        let resumed = run_table3(&dir, &["--resume"]);
        assert_eq!(resumed.status.code(), Some(0), "{resumed:?}");
        let stderr = String::from_utf8_lossy(&resumed.stderr);
        assert!(
            stderr.contains("torn tail"),
            "resume must report the truncated torn tail: {stderr}"
        );
        assert_eq!(
            cells(&dir),
            clean_reference("die-mid-append-clean"),
            "resumed cells.json differs from an uninterrupted run"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sigkill_mid_sweep_then_resume_is_bit_identical() {
        let dir = scratch("sigkill");
        let mut cmd = repro();
        cmd.args(["--scale", "2000", "--nbench", "2", "--jobs", "1"])
            .arg("--out")
            .arg(&dir)
            .arg("table3")
            .stdout(std::process::Stdio::null())
            .stderr(std::process::Stdio::null());
        let mut child = cmd.spawn().expect("spawn repro");
        std::thread::sleep(std::time::Duration::from_millis(400));
        // Whether or not the child got anywhere before SIGKILL, the
        // resumed artifact must match the clean run.
        child.kill().expect("SIGKILL child");
        child.wait().expect("reap child");
        let resumed = run_scaled(&dir, "2000", "2", &[]);
        assert_eq!(resumed.status.code(), Some(0), "{resumed:?}");
        let clean = {
            let cdir = scratch("sigkill-clean");
            let out = run_scaled(&cdir, "2000", "1", &[]);
            assert!(out.status.success(), "clean run failed: {out:?}");
            let bytes = cells(&cdir);
            let _ = std::fs::remove_dir_all(&cdir);
            bytes
        };
        assert_eq!(cells(&dir), clean, "post-SIGKILL resume differs");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn hung_cell_is_stalled_retried_and_tolerated_with_exit_3() {
        let dir = scratch("hang-cell");
        let out = run_table3(
            &dir,
            &[
                "--watchdog",
                "--stall-floor-ms",
                "100",
                "--stall-retries",
                "0",
                "--fault",
                "hang-cell",
                "--max-cell-failures",
                "1",
            ],
        );
        assert_eq!(
            out.status.code(),
            Some(3),
            "tolerated failures exit 3: {out:?}"
        );
        let metrics = std::fs::read_to_string(dir.join("metrics.json")).expect("metrics.json");
        assert!(
            metrics.contains("\"stalled\": 1"),
            "watchdog stall must reach telemetry: {metrics}"
        );
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains("stalled by watchdog"),
            "failure report names the watchdog: {stderr}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_on_empty_directory_is_a_usage_error() {
        let dir = scratch("resume-empty");
        let out = run_table3(&dir, &["--resume"]);
        assert_eq!(out.status.code(), Some(2), "{out:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
