//! Randomized invariants over the banked Direct Rambus backend,
//! driven by the in-tree seeded PRNG (see `proptest_invariants.rs` for
//! the convention). Every case is deterministic: fixed seed, many
//! sampled scenarios per run.

use rampage_core::DramChannel;
use rampage_dram::{
    AddressMapping, BankPlacement, BankTiming, BankedChannel, BankedConfig, DramCoord, DramModel,
    Picos, RowOutcome,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn pick<T: Copy>(rng: &mut StdRng, xs: &[T]) -> T {
    xs[rng.gen_range(0..xs.len())]
}

/// A random valid bitfield geometry (validator-rejected draws resampled).
fn random_mapping(rng: &mut StdRng) -> AddressMapping {
    loop {
        let m = AddressMapping {
            col_bits: rng.gen_range(1..16u32),
            bank_bits: rng.gen_range(0..8u32),
            row_bits: rng.gen_range(0..56u32),
            placement: if rng.gen::<bool>() {
                BankPlacement::LowAboveColumn
            } else {
                BankPlacement::HighAboveRow
            },
        };
        if m.validate().is_ok() {
            return m;
        }
    }
}

/// A random valid bank timing.
fn random_timing(rng: &mut StdRng) -> BankTiming {
    loop {
        let t = BankTiming {
            t_rp: Picos(rng.gen_range(0..60_000u64)),
            t_rcd: Picos(rng.gen_range(0..60_000u64)),
            t_cas: Picos(rng.gen_range(0..60_000u64)),
            per_pair: Picos(rng.gen_range(0..4_000u64)),
        };
        if t.validate().is_ok() {
            return t;
        }
    }
}

/// A random valid banked configuration across both policies and modes.
fn random_banked(rng: &mut StdRng) -> BankedConfig {
    BankedConfig {
        mapping: random_mapping(rng),
        timing: random_timing(rng),
        open_rows: rng.gen::<bool>(),
        pipelined: rng.gen::<bool>(),
    }
}

// ---------- Address mapping ----------

/// `decompose ∘ compose` is the identity on in-range coordinates, for
/// any valid geometry and either bank placement.
#[test]
fn mapping_round_trips_random_coordinates() {
    let mut rng = StdRng::seed_from_u64(0xd4a1);
    for _ in 0..512 {
        let m = random_mapping(&mut rng);
        let mask = |bits: u32| -> u64 {
            if bits >= 64 {
                u64::MAX
            } else {
                (1u64 << bits) - 1
            }
        };
        let coord = DramCoord {
            row: rng.gen::<u64>() & mask(m.row_bits),
            bank: rng.gen::<u64>() & mask(m.bank_bits),
            col: rng.gen::<u64>() & mask(m.col_bits),
        };
        assert_eq!(m.decompose(m.compose(coord)), coord, "{m:?}");
        // And the other direction on full-width geometries: any address
        // below 2^width survives compose ∘ decompose.
        let addr = rng.gen::<u64>() & mask(m.width());
        assert_eq!(m.compose(m.decompose(addr)), addr, "{m:?} addr {addr:#x}");
        // Fields are always in range, whatever the input address.
        let c = m.decompose(rng.gen::<u64>());
        assert!(c.col <= mask(m.col_bits) && c.bank <= mask(m.bank_bits));
        assert!(c.row <= mask(m.row_bits));
    }
}

// ---------- Bank timing ----------

/// The row-outcome cost hierarchy holds for every valid timing: an open
/// row is never dearer than an idle bank, which is never dearer than
/// evicting another row first.
#[test]
fn row_outcome_costs_are_ordered() {
    let mut rng = StdRng::seed_from_u64(0xd4a2);
    for _ in 0..512 {
        let t = random_timing(&mut rng);
        let hit = t.overhead(RowOutcome::Hit);
        let miss = t.overhead(RowOutcome::Miss);
        let conflict = t.overhead(RowOutcome::Conflict);
        assert!(hit <= miss, "{t:?}");
        assert!(miss <= conflict, "{t:?}");
        // Data time is monotone and proper: a pair is never free.
        let a = rng.gen_range(1..100_000u64);
        let b = rng.gen_range(1..100_000u64);
        if a <= b {
            assert!(t.data_time(a) <= t.data_time(b));
        }
        assert!(t.data_time(a) >= t.per_pair);
        assert_eq!(t.data_time(0), Picos::ZERO);
    }
}

// ---------- Banked channel ----------

/// No transfer time-travels: for any valid config and any request
/// sequence with non-decreasing issue times, `now ≤ start ≤ done`, the
/// bus high-water mark never recedes, and the byte/transfer counters
/// are conserved.
#[test]
fn banked_transfers_never_time_travel() {
    let mut rng = StdRng::seed_from_u64(0xd4a3);
    for _ in 0..64 {
        let cfg = random_banked(&mut rng);
        let mut ch = BankedChannel::new(cfg);
        let mut now = Picos::ZERO;
        let mut bus_seen = Picos::ZERO;
        let mut total_bytes = 0u64;
        let mut nonzero = 0u64;
        let nops = rng.gen_range(1..80usize);
        for i in 0..nops {
            now += Picos(rng.gen_range(0..200_000u64));
            let bytes = pick(&mut rng, &[0u64, 1, 2, 128, 2048, 4096, 10_000]);
            let addr = rng.gen::<u64>();
            let t = ch.request(now, addr, bytes);
            assert!(t.start >= now, "{cfg:?}: start {} < now {now}", t.start);
            assert!(t.done >= t.start, "{cfg:?}: done precedes start");
            if bytes > 0 {
                assert!(t.done > t.start, "{cfg:?}: nonzero burst took no time");
            }
            assert!(ch.bus_free() >= bus_seen, "{cfg:?}: bus receded");
            bus_seen = ch.bus_free();
            total_bytes += bytes;
            nonzero += u64::from(bytes > 0);
            assert_eq!(ch.transfers(), i as u64 + 1);
            assert_eq!(ch.bytes(), total_bytes);
        }
        // Every non-empty transfer touches at least one row; empty ones
        // touch none.
        let rows = ch.row_stats();
        let outcomes = rows.hits + rows.misses + rows.conflicts;
        assert!(
            outcomes >= nonzero,
            "{cfg:?}: fewer row outcomes ({outcomes}) than non-empty transfers ({nonzero})"
        );
    }
}

/// Adding bytes to a request never makes it finish earlier, whatever
/// the bank state it lands on (monotonicity in transfer size).
#[test]
fn banked_timing_is_monotone_in_bytes() {
    let mut rng = StdRng::seed_from_u64(0xd4a4);
    for _ in 0..64 {
        let cfg = random_banked(&mut rng);
        let mut ch = BankedChannel::new(cfg);
        // Random warmup to land in an arbitrary bank/bus state.
        let mut now = Picos::ZERO;
        for _ in 0..rng.gen_range(0..20usize) {
            now += Picos(rng.gen_range(0..100_000u64));
            ch.request(now, rng.gen::<u64>(), pick(&mut rng, &[128u64, 2048, 4096]));
        }
        let addr = rng.gen::<u64>();
        let a = rng.gen_range(0..20_000u64);
        let b = rng.gen_range(0..20_000u64);
        let (small, large) = (a.min(b), a.max(b));
        let t_small = ch.clone().request(now, addr, small);
        let t_large = ch.clone().request(now, addr, large);
        assert!(
            t_small.done <= t_large.done,
            "{cfg:?}: {small} B finished after {large} B ({} vs {})",
            t_small.done,
            t_large.done
        );
    }
}

/// The degenerate banked configuration tracks the flat channel
/// transfer-for-transfer on arbitrary request sequences — the
/// conformance theorem at the channel level, beyond the preset grids.
#[test]
fn degenerate_banked_matches_flat_on_random_sequences() {
    let mut rng = StdRng::seed_from_u64(0xd4a5);
    for _ in 0..64 {
        let mut flat = DramChannel::new(DramModel::rambus());
        let mut banked = BankedChannel::new(BankedConfig::flat_equivalent());
        let mut now = Picos::ZERO;
        let nops = rng.gen_range(1..200usize);
        for _ in 0..nops {
            now += Picos(rng.gen_range(0..3_000_000u64));
            let bytes = pick(&mut rng, &[0u64, 1, 2, 127, 128, 1024, 4096, 9999]);
            let addr = rng.gen::<u64>();
            let f = flat.request(now, bytes);
            let b = banked.request(now, addr, bytes);
            assert_eq!(f.start, b.start, "start diverged at {bytes} B");
            assert_eq!(f.done, b.done, "done diverged at {bytes} B");
        }
        assert_eq!(flat.transfers(), banked.transfers());
        assert_eq!(flat.bytes(), banked.bytes());
        assert_eq!(flat.busy_time(), banked.busy_time());
    }
}

/// With open rows on, re-reading the same address is never slower than
/// it was starting cold, and an idle single request is never *faster*
/// than the closed-page cost floor of the same geometry.
#[test]
fn open_rows_never_hurt_repeated_access() {
    let mut rng = StdRng::seed_from_u64(0xd4a6);
    for _ in 0..128 {
        let mut cfg = random_banked(&mut rng);
        cfg.open_rows = true;
        cfg.pipelined = false;
        // Keep the burst inside one row so the repeat is a pure hit.
        let bytes = rng.gen_range(1..cfg.mapping.row_bytes().min(4096) + 1);
        let addr = rng.gen::<u64>() & !(cfg.mapping.row_bytes() - 1);
        let mut ch = BankedChannel::new(cfg);
        let t1 = ch.request(Picos::ZERO, addr, bytes);
        let gap = t1.done + Picos(rng.gen_range(0..100_000u64));
        let t2 = ch.request(gap, addr, bytes);
        let d1 = t1.done - t1.start;
        let d2 = t2.done - t2.start;
        assert!(
            d2 <= d1,
            "{cfg:?}: row-buffer hit slower than cold access ({d2} > {d1})"
        );
        let rows = ch.row_stats();
        assert!(rows.hits >= 1, "{cfg:?}: repeat did not hit: {rows:?}");
    }
}
