//! Golden snapshots of the rendered paper artifacts.
//!
//! Every table and figure the `repro` binary prints is pinned here at
//! the quick workload: any change to simulation results, derived
//! statistics, or table formatting shows up as a readable text diff.
//!
//! To regenerate after an intentional change:
//!
//! ```text
//! UPDATE_SNAPSHOTS=1 cargo test --test snapshot_golden
//! git diff tests/snapshots/   # review what moved, then commit
//! ```

use rampage_core::experiments::{figures, table3, table4, table5, SweepRunner, Workload};
use rampage_core::IssueRate;
use std::path::PathBuf;

fn snapshot_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/snapshots")
        .join(format!("{name}.txt"))
}

/// Compare `rendered` against the pinned snapshot, or rewrite the pin
/// when `UPDATE_SNAPSHOTS=1` is set.
fn check(name: &str, rendered: &str) {
    let path = snapshot_path(name);
    if std::env::var_os("UPDATE_SNAPSHOTS").is_some_and(|v| v == "1") {
        std::fs::create_dir_all(path.parent().expect("snapshot dir")).expect("mkdir snapshots");
        std::fs::write(&path, rendered).expect("write snapshot");
        return;
    }
    let pinned = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing snapshot {} ({e}); run UPDATE_SNAPSHOTS=1 cargo test --test snapshot_golden",
            path.display()
        )
    });
    assert_eq!(
        pinned, rendered,
        "snapshot {name} diverged; if intentional, regenerate with \
         UPDATE_SNAPSHOTS=1 cargo test --test snapshot_golden"
    );
}

/// The shared sweep every snapshot derives from: both issue-rate
/// extremes, two sizes, quick workload. One runner so the cell cache
/// dedups across artifacts exactly as `repro` does.
fn fixture() -> (SweepRunner, Workload, table3::Table3) {
    let w = Workload::quick();
    let runner = SweepRunner::new(0);
    let rates = [IssueRate::MHZ200, IssueRate::GHZ4];
    let sizes = [256u64, 2048];
    let t3 = table3::run(&runner, &w, &rates, &sizes);
    (runner, w, t3)
}

#[test]
fn table3_render_matches_snapshot() {
    let (_, _, t3) = fixture();
    check("table3", &t3.render());
}

#[test]
fn table4_render_matches_snapshot() {
    let (runner, w, t3) = fixture();
    check("table4", &table4::run(&runner, &w, &t3).render());
}

#[test]
fn table5_render_matches_snapshot() {
    let (runner, w, _) = fixture();
    let t5 = table5::run(
        &runner,
        &w,
        &[IssueRate::MHZ200, IssueRate::GHZ4],
        &[256, 2048],
    );
    check("table5", &t5.render());
}

#[test]
fn figure2_render_matches_snapshot() {
    let (_, _, t3) = fixture();
    check(
        "fig2",
        &figures::level_figure(&t3, 200, "Figure 2").render(),
    );
}

#[test]
fn figure3_render_matches_snapshot() {
    let (_, _, t3) = fixture();
    check(
        "fig3",
        &figures::level_figure(&t3, 4000, "Figure 3").render(),
    );
}

/// The per-run report (headline metrics, per-process table, latency
/// histograms) is itself an output surface — pin it too.
#[test]
fn run_report_matches_snapshot() {
    use rampage_core::experiments::run_config_traced;
    use rampage_core::SystemConfig;
    let (_, out) = run_config_traced(
        &SystemConfig::rampage_switching(IssueRate::GHZ1, 4096),
        &Workload::quick(),
        1 << 20,
    );
    check("report_rampage_switching", &out.report());
}
