//! Golden tests for the sweep runner: the parallel pool must be
//! bit-identical to the serial path, and the cell cache must dedup
//! overlapping sweeps across artifacts.

use rampage_core::experiments::{
    ablations, table3, table4, table5, timeslice, Job, SweepRunner, Workload,
};
use rampage_core::{IssueRate, SystemConfig};
use rampage_json::ToJson;

#[test]
fn parallel_sweep_is_bit_identical_to_serial() {
    let w = Workload::quick();
    let rates = [IssueRate::MHZ200, IssueRate::GHZ4];
    let sizes = [256u64, 2048];
    let serial = table3::run(&SweepRunner::serial(), &w, &rates, &sizes);
    let parallel = table3::run(&SweepRunner::new(4), &w, &rates, &sizes);
    // Cell-for-cell equality in submission order...
    assert_eq!(serial.baseline, parallel.baseline);
    assert_eq!(serial.rampage, parallel.rampage);
    // ...and the rendered JSON (the persisted form) matches byte-for-byte.
    assert_eq!(serial.to_json().pretty(), parallel.to_json().pretty());
}

#[test]
fn parallel_batch_with_duplicates_keeps_order_and_dedups() {
    let w = Workload::quick();
    let a = Job::new(SystemConfig::baseline(IssueRate::GHZ1, 512), w);
    let b = Job::new(SystemConfig::rampage(IssueRate::GHZ1, 512), w);
    // Duplicates interleaved: each unique config simulates once.
    let jobs = [a, b, a, b, a];
    let runner = SweepRunner::new(4);
    let cells = runner.run_batch(&jobs);
    assert_eq!(cells.len(), 5);
    assert_eq!(cells[0], cells[2]);
    assert_eq!(cells[0], cells[4]);
    assert_eq!(cells[1], cells[3]);
    assert_ne!(cells[0], cells[1]);
    assert_eq!(runner.cache().computed(), 2, "two unique jobs simulated");
    assert_eq!(
        runner.cache().hits(),
        3,
        "three duplicates served from cache"
    );
    // The serial path returns the same vector.
    assert_eq!(SweepRunner::serial().run_batch(&jobs), cells);
}

#[test]
fn cache_dedups_across_artifacts() {
    // Table 5 and the time-slice study's fixed-refs regime sweep the same
    // 2-way configurations; Table 4's cells reappear as the ablations'
    // rampage Base knob and the ablations' two_way Base knob is a Table 5
    // cell. One shared runner must compute each unique config only once.
    let w = Workload::quick();
    let runner = SweepRunner::new(0);
    let rates = [IssueRate::GHZ1];
    let sizes = [1024u64];

    let t5 = table5::run(&runner, &w, &rates, &sizes);
    assert_eq!(runner.cache().hits(), 0, "first sweep is all cold");
    let after_t5 = runner.cache().computed();

    let ts = timeslice::run(&runner, &w, &rates, &sizes, timeslice::DEFAULT_SLICE_PS);
    assert!(
        runner.cache().hits() >= (rates.len() * sizes.len()) as u64,
        "the fixed-refs regime must come from the cache"
    );
    // The shared cells really are the same simulation results.
    assert_eq!(t5.cells[0][0], ts.fixed_refs[0][0]);

    let t3 = table3::run(&runner, &w, &rates, &sizes);
    table4::run(&runner, &w, &t3);
    let hits_before_ablations = runner.cache().hits();
    let a = ablations::run(&runner, &w, rates[0], sizes[0]);
    assert!(
        runner.cache().hits() >= hits_before_ablations + 2,
        "the ablations' Base pair must come from the cache"
    );
    assert_eq!(a.rows[0].two_way, t5.cells[0][0]);
    assert!(
        runner.cache().computed() > after_t5,
        "later sweeps still simulated their unique configs"
    );
}
