//! Golden tests for the sweep runner: the parallel pool must be
//! bit-identical to the serial path, the cell cache must dedup
//! overlapping sweeps across artifacts, and a failing job must be
//! isolated to its own cell instead of killing the sweep.

use rampage_core::experiments::{
    ablations, run_config_traced, table3, table4, table5, timeslice, Job, SweepRunner, Workload,
};
use rampage_core::obs::to_jsonl;
use rampage_core::{HierarchyKind, IssueRate, SystemConfig};
use rampage_json::{Json, ToJson};

/// A job that passes [`SystemConfig::validate`] but panics inside the
/// simulation: the standby list's capacity check only trips once the
/// RAMpage system computes its real frame count. This is a genuine
/// (undiagnosable-at-validation) runtime invariant, which is exactly
/// what the runner's isolation boundary exists for.
fn panicking_job(w: Workload) -> Job {
    let mut cfg = SystemConfig::rampage(IssueRate::GHZ1, 512);
    match cfg.hierarchy {
        HierarchyKind::Rampage(ref mut r) => r.standby_pages = Some(1_000_000),
        HierarchyKind::Conventional(_) => unreachable!("rampage preset"),
    }
    cfg.validate()
        .expect("job must pass validation to reach the panic");
    Job::new(cfg, w)
}

#[test]
fn parallel_sweep_is_bit_identical_to_serial() {
    let w = Workload::quick();
    let rates = [IssueRate::MHZ200, IssueRate::GHZ4];
    let sizes = [256u64, 2048];
    let serial = table3::run(&SweepRunner::serial(), &w, &rates, &sizes);
    let parallel = table3::run(&SweepRunner::new(4), &w, &rates, &sizes);
    // Cell-for-cell equality in submission order...
    assert_eq!(serial.baseline, parallel.baseline);
    assert_eq!(serial.rampage, parallel.rampage);
    // ...and the rendered JSON (the persisted form) matches byte-for-byte.
    assert_eq!(serial.to_json().pretty(), parallel.to_json().pretty());
}

#[test]
fn parallel_batch_with_duplicates_keeps_order_and_dedups() {
    let w = Workload::quick();
    let a = Job::new(SystemConfig::baseline(IssueRate::GHZ1, 512), w);
    let b = Job::new(SystemConfig::rampage(IssueRate::GHZ1, 512), w);
    // Duplicates interleaved: each unique config simulates once.
    let jobs = [a, b, a, b, a];
    let runner = SweepRunner::new(4);
    let cells = runner.run_batch(&jobs);
    assert_eq!(cells.len(), 5);
    assert_eq!(cells[0], cells[2]);
    assert_eq!(cells[0], cells[4]);
    assert_eq!(cells[1], cells[3]);
    assert_ne!(cells[0], cells[1]);
    assert_eq!(runner.cache().computed(), 2, "two unique jobs simulated");
    assert_eq!(
        runner.cache().hits(),
        3,
        "three duplicates served from cache"
    );
    // The serial path returns the same vector.
    assert_eq!(SweepRunner::serial().run_batch(&jobs), cells);
}

#[test]
fn panicking_job_yields_failed_cell_while_siblings_complete() {
    let w = Workload::quick();
    let good_a = Job::new(SystemConfig::baseline(IssueRate::GHZ1, 256), w);
    let bad = panicking_job(w);
    let good_b = Job::new(SystemConfig::rampage(IssueRate::GHZ1, 1024), w);
    for (label, runner) in [
        ("serial", SweepRunner::serial()),
        ("parallel", SweepRunner::new(4)),
    ] {
        let cells = runner.run_batch(&[good_a, bad, good_b]);
        assert_eq!(cells.len(), 3, "{label}: sweep keeps its shape");
        assert!(cells[0].seconds > 0.0, "{label}: first sibling simulated");
        assert_eq!(
            cells[1].seconds, 0.0,
            "{label}: failed slot holds the inert placeholder"
        );
        assert_eq!(cells[1].unit_bytes, 512, "{label}: placeholder is labelled");
        assert!(cells[2].seconds > 0.0, "{label}: second sibling simulated");

        let failures = runner.failures();
        assert_eq!(failures.len(), 1, "{label}: one failure recorded");
        let f = &failures[0];
        assert_eq!(f.attempts, 2, "{label}: a panicking cell is retried once");
        assert_eq!(f.unit_bytes, 512);
        assert_eq!(f.fingerprint, bad.fingerprint());
        assert!(
            f.error.contains("standby capacity"),
            "{label}: carries the panic message: {}",
            f.error
        );
        assert!(
            f.error.contains("rampage.rs"),
            "{label}: carries the panic location: {}",
            f.error
        );
        assert_eq!(
            runner.cache().len(),
            2,
            "{label}: failed cells are never cached"
        );
        assert!(runner.failure_report().contains("standby capacity"));
    }
}

#[test]
fn failed_cells_do_not_break_golden_equality() {
    let w = Workload::quick();
    let jobs = [
        Job::new(SystemConfig::baseline(IssueRate::GHZ1, 256), w),
        panicking_job(w),
        Job::new(SystemConfig::two_way(IssueRate::GHZ1, 512), w),
        panicking_job(w), // duplicate of the bad job: dedup still applies
    ];
    let serial = SweepRunner::serial();
    let parallel = SweepRunner::new(4);
    assert_eq!(
        serial.run_batch(&jobs),
        parallel.run_batch(&jobs),
        "pools must not change results, failures included"
    );
    assert_eq!(serial.failures(), parallel.failures());
    assert_eq!(serial.failure_count(), 1, "duplicate bad job fails once");
}

/// Drop keys whose values are wall-clock-derived (and therefore vary
/// run to run) before byte comparison. `telemetry_json` isolates all
/// of them under `"wall"`; `"workers"` is stripped too so documents
/// from different pool widths stay comparable.
fn strip_nondeterministic(doc: Json) -> String {
    match doc {
        Json::Obj(pairs) => Json::Obj(
            pairs
                .into_iter()
                .filter(|(k, _)| k != "wall" && k != "workers")
                .collect(),
        )
        .pretty(),
        other => other.pretty(),
    }
}

/// The persisted sweep outputs — `cells.json`, wall-stripped
/// `metrics.json`, and the event-trace JSONL — must be byte-identical
/// across repeat runs and across `--jobs 1` vs `--jobs N`.
#[test]
fn persisted_outputs_are_deterministic_across_jobs_and_reruns() {
    let w = Workload::quick();
    let rates = [IssueRate::MHZ200, IssueRate::GHZ4];
    let sizes = [256u64, 2048];
    let sweep = |jobs: usize| {
        let runner = SweepRunner::new(jobs);
        table3::run(&runner, &w, &rates, &sizes);
        (
            runner.cache().to_json().pretty(),
            strip_nondeterministic(runner.telemetry_json()),
        )
    };
    let (cells_1, metrics_1) = sweep(1);
    let (cells_n, metrics_n) = sweep(4);
    let (cells_n2, metrics_n2) = sweep(4);
    assert_eq!(cells_1, cells_n, "cells.json differs between jobs 1 and 4");
    assert_eq!(cells_n, cells_n2, "cells.json differs across reruns");
    assert_eq!(metrics_1, metrics_n, "metrics.json (wall-stripped) differs");
    assert_eq!(metrics_n, metrics_n2, "metrics.json differs across reruns");

    // The event trace of the same config is byte-identical across runs.
    let cfg = SystemConfig::rampage_switching(IssueRate::GHZ1, 4096);
    let (_, a) = run_config_traced(&cfg, &w, 1 << 20);
    let (_, b) = run_config_traced(&cfg, &w, 1 << 20);
    assert_eq!(
        to_jsonl(&a.events),
        to_jsonl(&b.events),
        "event-trace JSONL differs across reruns"
    );

    // And a runner whose workload also produced a trace yields the same
    // cells as one that never traced: tracing cannot leak into sweeps.
    let runner = SweepRunner::new(4);
    table3::run(&runner, &w, &rates, &sizes);
    assert_eq!(
        runner.cache().to_json().pretty(),
        cells_1,
        "a traced run alongside the sweep changed cached cells"
    );
}

#[test]
fn cache_dedups_across_artifacts() {
    // Table 5 and the time-slice study's fixed-refs regime sweep the same
    // 2-way configurations; Table 4's cells reappear as the ablations'
    // rampage Base knob and the ablations' two_way Base knob is a Table 5
    // cell. One shared runner must compute each unique config only once.
    let w = Workload::quick();
    let runner = SweepRunner::new(0);
    let rates = [IssueRate::GHZ1];
    let sizes = [1024u64];

    let t5 = table5::run(&runner, &w, &rates, &sizes);
    assert_eq!(runner.cache().hits(), 0, "first sweep is all cold");
    let after_t5 = runner.cache().computed();

    let ts = timeslice::run(&runner, &w, &rates, &sizes, timeslice::DEFAULT_SLICE_PS);
    assert!(
        runner.cache().hits() >= (rates.len() * sizes.len()) as u64,
        "the fixed-refs regime must come from the cache"
    );
    // The shared cells really are the same simulation results.
    assert_eq!(t5.cells[0][0], ts.fixed_refs[0][0]);

    let t3 = table3::run(&runner, &w, &rates, &sizes);
    table4::run(&runner, &w, &t3);
    let hits_before_ablations = runner.cache().hits();
    let a = ablations::run(&runner, &w, rates[0], sizes[0]);
    assert!(
        runner.cache().hits() >= hits_before_ablations + 2,
        "the ablations' Base pair must come from the cache"
    );
    assert_eq!(a.rows[0].two_way, t5.cells[0][0]);
    assert!(
        runner.cache().computed() > after_t5,
        "later sweeps still simulated their unique configs"
    );
}
