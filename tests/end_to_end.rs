//! Cross-crate integration tests: the full simulator stack driven
//! end-to-end on small workloads.

use rampage::prelude::*;
use rampage_core::{HierarchyKind, TlbConfig};

fn run(cfg: &SystemConfig, nbench: usize, refs: u64) -> RunOutcome {
    Engine::for_suite(cfg, nbench, refs, 1234).run()
}

#[test]
fn all_three_systems_complete_and_account_time() {
    for cfg in [
        SystemConfig::baseline(IssueRate::GHZ1, 512),
        SystemConfig::two_way(IssueRate::GHZ1, 512),
        SystemConfig::rampage(IssueRate::GHZ1, 512),
        SystemConfig::rampage_switching(IssueRate::GHZ1, 512),
    ] {
        let out = run(&cfg, 4, 30_000);
        let m = out.metrics;
        assert!(
            m.counts.user_refs >= 4 * 29_000,
            "{}: all refs consumed",
            cfg.label()
        );
        // Time conservation: the bucket sum is the total.
        let t = m.time;
        assert_eq!(
            m.total_cycles(),
            t.l1i_cycles + t.l1d_cycles + t.l2_sram_cycles + t.dram_cycles + t.idle_cycles
        );
        // Fractions sum to 1.
        let f = t.fractions();
        assert!((f.l1i + f.l1d + f.l2_sram + f.dram + f.idle - 1.0).abs() < 1e-9);
        // Base time: at least one cycle per instruction fetch.
        assert!(m.total_cycles() >= m.counts.user_ifetches);
        assert!(out.seconds > 0.0);
    }
}

#[test]
fn identical_configs_are_bit_deterministic() {
    let cfg = SystemConfig::rampage_switching(IssueRate::GHZ2, 1024);
    let a = run(&cfg, 5, 20_000);
    let b = run(&cfg, 5, 20_000);
    assert_eq!(a.metrics.total_cycles(), b.metrics.total_cycles());
    assert_eq!(a.metrics.counts, b.metrics.counts);
    assert_eq!(a.elapsed, b.elapsed);
}

#[test]
fn issue_rate_scales_simulated_seconds_not_dram_work() {
    // The same workload at a faster issue rate finishes sooner in wall
    // clock but performs at least as many DRAM cycles (fixed nanoseconds
    // cost more cycles).
    let slow = run(&SystemConfig::baseline(IssueRate::MHZ200, 512), 4, 30_000);
    let fast = run(&SystemConfig::baseline(IssueRate::GHZ4, 512), 4, 30_000);
    assert!(
        fast.seconds < slow.seconds,
        "faster CPU, less simulated time"
    );
    assert!(
        fast.metrics.time.dram_cycles > slow.metrics.time.dram_cycles,
        "same transfers cost more cycles at 4 GHz"
    );
    // DRAM *events* are identical — the workload didn't change.
    assert_eq!(
        fast.metrics.counts.dram_block_fetches,
        slow.metrics.counts.dram_block_fetches
    );
}

#[test]
fn rampage_never_references_dram_on_pure_tlb_misses() {
    // A workload fitting comfortably in SRAM: after warm-up, TLB misses
    // must not produce DRAM traffic (§2.3's guarantee).
    let cfg = SystemConfig::rampage(IssueRate::GHZ1, 1024);
    let out = run(&cfg, 2, 40_000);
    let m = out.metrics;
    assert!(
        m.counts.tlb.misses > m.counts.page_faults,
        "some TLB misses hit resident pages ({} misses, {} faults)",
        m.counts.tlb.misses,
        m.counts.page_faults
    );
    // Every DRAM byte moved is page transfers (faults + writebacks) —
    // no block fetches exist in RAMpage.
    assert_eq!(m.counts.dram_block_fetches, 0);
}

#[test]
fn conventional_inclusion_holds_under_load() {
    // The debug_assert inside the system enforces inclusion per write-back;
    // this test just drives enough traffic through both L2 flavours that
    // a violation would trip it.
    for cfg in [
        SystemConfig::baseline(IssueRate::GHZ1, 128),
        SystemConfig::two_way(IssueRate::GHZ1, 4096),
    ] {
        let out = run(&cfg, 6, 40_000);
        assert!(
            out.metrics.counts.inclusion_probes > 0,
            "L2 evictions probed L1"
        );
    }
}

#[test]
fn bigger_tlb_reduces_handler_overhead() {
    let small = SystemConfig::rampage(IssueRate::GHZ1, 128);
    let mut big = small;
    big.tlb = TlbConfig::large_2way();
    let a = run(&small, 4, 40_000);
    let b = run(&big, 4, 40_000);
    assert!(
        b.metrics.counts.handler_overhead_ratio() < a.metrics.counts.handler_overhead_ratio(),
        "1K-entry TLB must cut refill overhead ({:.3} vs {:.3})",
        b.metrics.counts.handler_overhead_ratio(),
        a.metrics.counts.handler_overhead_ratio()
    );
    assert!(b.seconds < a.seconds, "and run time with it");
}

#[test]
fn standby_list_turns_hard_faults_into_soft_faults() {
    // A short quantum makes processes alternate, so replaced pages get
    // revisited soon — the reuse pattern a standby list exists for. The
    // workload must also overflow the ~1025 user frames of 4 KB each.
    let mut base = SystemConfig::rampage(IssueRate::GHZ1, 4096);
    base.quantum = 50_000;
    let mut with_standby = base;
    if let HierarchyKind::Rampage(ref mut r) = with_standby.hierarchy {
        r.standby_pages = Some(128);
    }
    let a = run(&base, 12, 500_000);
    let b = run(&with_standby, 12, 500_000);
    assert_eq!(
        a.metrics.counts.soft_faults, 0,
        "no standby, no soft faults"
    );
    assert!(b.metrics.counts.soft_faults > 0, "standby reclaims happen");
    // Soft faults avoid DRAM page transfers; the list also reserves
    // frames (reducing effective capacity), so hard faults stay at most
    // equal, not strictly lower.
    assert!(
        b.metrics.counts.page_faults <= a.metrics.counts.page_faults,
        "standby must not increase DRAM page transfers ({} vs {})",
        b.metrics.counts.page_faults,
        a.metrics.counts.page_faults
    );
}

#[test]
fn switch_on_miss_converts_dram_stall_into_overlap() {
    let stall_cfg = SystemConfig::rampage(IssueRate::GHZ4, 4096);
    let mut switch_cfg = SystemConfig::rampage_switching(IssueRate::GHZ4, 4096);
    switch_cfg.switch_trace = true;
    let a = run(&stall_cfg, 8, 30_000);
    let b = run(&switch_cfg, 8, 30_000);
    assert!(b.metrics.counts.switches_on_miss > 0);
    assert!(
        b.metrics.time.dram_cycles < a.metrics.time.dram_cycles,
        "blocked transfers are not charged as DRAM stall"
    );
}

#[test]
fn pipelined_rambus_never_slows_a_run() {
    let mut base = SystemConfig::rampage_switching(IssueRate::GHZ4, 1024);
    base.switch_trace = true;
    let mut piped = base;
    piped.dram = rampage_core::DramKind::RambusPipelined;
    let a = run(&base, 6, 30_000);
    let b = run(&piped, 6, 30_000);
    assert!(
        b.seconds <= a.seconds * 1.0 + 1e-12,
        "pipelining queued transfers cannot hurt ({} vs {})",
        b.seconds,
        a.seconds
    );
}
