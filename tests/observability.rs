//! The observability layer's contract: tracing and histograms must be
//! pure observers. The headline tests prove the simulation is
//! bit-identical with tracing enabled vs disabled on every hierarchy
//! preset, that the bounded event ring never perturbs what it observes,
//! and that both export formats (JSONL and Chrome `trace_event`) are
//! well-formed.

use rampage_core::experiments::{run_config, run_config_traced, Workload};
use rampage_core::obs::{chrome_trace, to_jsonl, EventKind};
use rampage_core::{Engine, IssueRate, SystemConfig};
use rampage_json::{Json, ToJson};

/// Every hierarchy preset the simulator models, at the quick workload.
fn presets() -> Vec<(&'static str, SystemConfig)> {
    vec![
        ("baseline", SystemConfig::baseline(IssueRate::GHZ1, 512)),
        ("two_way", SystemConfig::two_way(IssueRate::GHZ1, 512)),
        ("rampage", SystemConfig::rampage(IssueRate::GHZ1, 4096)),
        (
            "rampage_switching",
            SystemConfig::rampage_switching(IssueRate::GHZ1, 4096),
        ),
    ]
}

/// The headline guarantee: enabling tracing changes NOTHING about the
/// simulation — not the time breakdown, not a single counter, not the
/// derived cell — on any hierarchy preset.
#[test]
fn tracing_is_bit_identical_to_untraced_on_every_preset() {
    let w = Workload::quick();
    for (name, cfg) in presets() {
        let plain = run_config(&cfg, &w);
        let (traced_cell, out) = run_config_traced(&cfg, &w, 1 << 20);
        assert_eq!(
            plain, traced_cell,
            "{name}: tracing perturbed the derived cell"
        );
        // Cross-check against a second untraced engine run at the
        // metrics level: TimeBreakdown and Counters bit-identical.
        let untraced = Engine::new(&cfg, w.sources()).run();
        assert_eq!(
            untraced.metrics.time, out.metrics.time,
            "{name}: tracing perturbed the time breakdown"
        );
        assert_eq!(
            untraced.metrics.counts, out.metrics.counts,
            "{name}: tracing perturbed the counters"
        );
        assert_eq!(untraced.elapsed, out.elapsed, "{name}: elapsed differs");
        assert!(
            untraced.events.is_empty(),
            "{name}: untraced run has events"
        );
        assert!(!out.events.is_empty(), "{name}: traced run saw no events");
        assert_eq!(out.events_dropped, 0, "{name}: large ring dropped events");
    }
}

/// The bounded ring drops oldest-first and never loses count: a tiny
/// ring sees the same total number of events as an unbounded one.
#[test]
fn bounded_ring_keeps_the_newest_events_and_the_full_count() {
    let w = Workload::quick();
    let cfg = SystemConfig::rampage_switching(IssueRate::GHZ1, 4096);
    let (_, full) = run_config_traced(&cfg, &w, 1 << 20);
    assert_eq!(full.events_dropped, 0);
    let total = full.events.len() as u64;
    assert!(total > 64, "workload too small to exercise the ring");

    let cap = 64usize;
    let (small_cell, small) = run_config_traced(&cfg, &w, cap);
    assert!(small.events.len() <= cap, "ring exceeded its capacity");
    assert_eq!(
        small.events.len() as u64 + small.events_dropped,
        total,
        "events were lost, not just evicted"
    );
    // The survivors are exactly the newest events, in order.
    assert_eq!(
        small.events,
        full.events[full.events.len() - small.events.len()..],
        "ring did not keep the newest suffix"
    );
    // And the tiny ring still didn't perturb the simulation.
    assert_eq!(small_cell, run_config(&cfg, &w));
}

/// The traced RAMpage run produces every event family the hierarchy
/// can emit, and the conventional hierarchy produces its own set.
#[test]
fn expected_event_kinds_appear() {
    let w = Workload::quick();
    let has = |events: &[rampage_core::Event], k: EventKind| events.iter().any(|e| e.kind == k);

    let (_, rp) = run_config_traced(
        &SystemConfig::rampage_switching(IssueRate::GHZ1, 4096),
        &w,
        1 << 20,
    );
    for kind in [
        EventKind::L1iMiss,
        EventKind::TlbMiss,
        EventKind::PageFault,
        EventKind::DramTransfer,
        EventKind::ContextSwitch,
    ] {
        assert!(has(&rp.events, kind), "rampage trace lacks {kind:?}");
    }

    let (_, dm) = run_config_traced(&SystemConfig::baseline(IssueRate::GHZ1, 512), &w, 1 << 20);
    for kind in [
        EventKind::L1iMiss,
        EventKind::L2Miss,
        EventKind::DramTransfer,
    ] {
        assert!(has(&dm.events, kind), "conventional trace lacks {kind:?}");
    }
    assert!(
        !has(&dm.events, EventKind::PageFault),
        "conventional hierarchy must not page-fault"
    );
}

/// Every JSONL line is a standalone JSON object following the schema:
/// `at_ps`, `dur_ps`, `kind`, `asid` (null for system-wide events),
/// `arg`.
#[test]
fn jsonl_lines_parse_and_follow_the_schema() {
    let w = Workload::quick();
    let (_, out) = run_config_traced(
        &SystemConfig::rampage_switching(IssueRate::GHZ1, 4096),
        &w,
        1 << 20,
    );
    let jsonl = to_jsonl(&out.events);
    let lines: Vec<&str> = jsonl.lines().collect();
    assert_eq!(lines.len(), out.events.len());
    for line in &lines {
        let doc = Json::parse(line).expect("line parses");
        for key in ["at_ps", "dur_ps", "kind", "asid", "arg"] {
            assert!(doc.get(key).is_some(), "missing {key} in {line}");
        }
        assert!(doc.get("at_ps").unwrap().as_u64().is_some());
        assert!(doc.get("kind").unwrap().as_str().is_some());
    }
    // Lines round-trip the events they came from.
    let first = Json::parse(lines[0]).unwrap();
    assert_eq!(
        first.get("at_ps").unwrap().as_u64().unwrap(),
        out.events[0].at.0
    );
    assert_eq!(
        first.get("kind").unwrap().as_str().unwrap(),
        out.events[0].kind.name()
    );
}

/// The Chrome `trace_event` document has the shape chrome://tracing
/// and Perfetto expect: complete events (`ph: "X"`) with microsecond
/// timestamps, plus the caller's metadata.
#[test]
fn chrome_trace_document_has_the_expected_shape() {
    let w = Workload::quick();
    let cfg = SystemConfig::rampage(IssueRate::GHZ1, 4096);
    let (_, out) = run_config_traced(&cfg, &w, 1 << 20);
    let doc = chrome_trace(
        &out.events,
        vec![("config".to_string(), cfg.label().to_json())],
    );
    assert_eq!(
        doc.get("displayTimeUnit").and_then(Json::as_str),
        Some("ns")
    );
    assert_eq!(
        doc.get("metadata")
            .and_then(|m| m.get("config"))
            .and_then(Json::as_str),
        Some(cfg.label().as_str())
    );
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_array)
        .expect("traceEvents array");
    assert_eq!(events.len(), out.events.len());
    for (e, src) in events.iter().zip(&out.events) {
        assert_eq!(e.get("ph").and_then(Json::as_str), Some("X"));
        assert_eq!(e.get("pid").and_then(Json::as_u64), Some(0));
        assert!(e.get("tid").and_then(Json::as_u64).is_some());
        assert_eq!(e.get("name").and_then(Json::as_str), Some(src.kind.name()));
        let ts = e.get("ts").and_then(Json::as_f64).expect("ts");
        assert!((ts - src.at.0 as f64 / 1e6).abs() < 1e-9);
        assert!(e.get("dur").and_then(Json::as_f64).is_some());
    }
    // The document itself survives a print/parse round trip.
    assert!(Json::parse(&doc.pretty()).is_ok());
}

/// The latency histograms (always on — they are pure counters) must
/// reconcile exactly with the event counters on every preset.
#[test]
fn histograms_reconcile_with_counters_on_every_preset() {
    let w = Workload::quick();
    for (name, cfg) in presets() {
        let out = Engine::new(&cfg, w.sources()).run();
        let (h, c) = (&out.metrics.hist, &out.metrics.counts);
        assert_eq!(
            h.tlb.count(),
            c.tlb.misses,
            "{name}: one TLB-walk sample per TLB miss"
        );
        assert_eq!(
            h.fault.count(),
            c.page_faults + c.soft_faults,
            "{name}: one fault-service sample per fault"
        );
        assert_eq!(
            h.dram.count(),
            c.page_faults + c.dram_block_fetches + c.dram_writebacks + c.prefetches,
            "{name}: one DRAM-service sample per transfer"
        );
        for hist in [&h.tlb, &h.fault, &h.dram] {
            assert_eq!(hist.bucket_sum(), hist.count(), "{name}: bucket sums");
        }
    }
}
