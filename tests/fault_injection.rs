//! The fault-injection suite (`cargo test --features fault`): arm a
//! deterministic fault, run the machinery that should absorb it, and
//! check the typed failure surfaces exactly where the design says it
//! does. Injection state is process-global, so every test holds a
//! [`fault::InjectionScope`] — it serializes tests against each other
//! and disarms everything on entry and on drop.

#![cfg(feature = "fault")]

use rampage_core::experiments::{fault, CellCache, Job, SweepRunner, Workload};
use rampage_core::{IssueRate, SystemConfig};
use rampage_trace::io::{BinReader, BinWriter, TraceIoError};
use rampage_trace::{TraceRecord, TraceSource};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};

/// Every test opens with this: exclusive, disarmed injection state that
/// re-disarms when the guard drops, even if the test fails.
fn armed_section() -> fault::InjectionScope {
    fault::InjectionScope::acquire()
}

fn scratch(name: &str) -> PathBuf {
    static N: AtomicU32 = AtomicU32::new(0);
    let dir = std::env::temp_dir().join(format!(
        "rampage-fault-injection-{}-{name}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::SeqCst)
    ));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

#[test]
fn scope_isolates_armed_state_between_tests() {
    let job = Job::new(
        SystemConfig::rampage(IssueRate::GHZ1, 512),
        Workload::quick(),
    );
    {
        let _g = armed_section();
        // Armed but never fired: a test that bails here must not leak
        // the armed panic into whoever acquires the scope next.
        fault::arm_cell_panic(job.fingerprint(), u32::MAX);
        fault::arm_torn_save(u32::MAX);
    }
    let _g = armed_section();
    let runner = SweepRunner::serial();
    let cells = runner.run_batch(&[job]);
    assert!(cells[0].seconds > 0.0, "stale armed state was disarmed");
    assert_eq!(runner.failure_count(), 0);
}

#[test]
fn injected_panic_is_retried_to_success() {
    let _g = armed_section();
    let job = Job::new(
        SystemConfig::rampage(IssueRate::GHZ1, 512),
        Workload::quick(),
    );
    fault::arm_cell_panic(job.fingerprint(), 1);
    let runner = SweepRunner::serial();
    let cells = runner.run_batch(&[job]);
    assert!(cells[0].seconds > 0.0, "the retry produced a real cell");
    assert_eq!(runner.failure_count(), 0, "a transient panic is absorbed");
    assert_eq!(runner.cache().len(), 1, "the retried cell is cached");
}

#[test]
fn persistent_panic_becomes_failed_cell_while_siblings_complete() {
    let _g = armed_section();
    let w = Workload::quick();
    let bad = Job::new(SystemConfig::rampage(IssueRate::GHZ1, 512), w);
    let good = Job::new(SystemConfig::baseline(IssueRate::GHZ1, 256), w);
    fault::arm_cell_panic(bad.fingerprint(), 2);
    let runner = SweepRunner::new(4);
    let cells = runner.run_batch(&[good, bad]);
    assert!(cells[0].seconds > 0.0, "sibling completes");
    assert_eq!(cells[1].seconds, 0.0, "failed slot holds the placeholder");
    let failures = runner.failures();
    assert_eq!(failures.len(), 1);
    assert_eq!(failures[0].attempts, 2, "one retry before giving up");
    assert_eq!(failures[0].fingerprint, bad.fingerprint());
    assert!(
        failures[0].error.contains("injected fault"),
        "{}",
        failures[0].error
    );
    assert_eq!(runner.cache().len(), 1, "failed cells are never cached");
}

#[test]
fn torn_save_is_quarantined_on_the_next_load() {
    let _g = armed_section();
    let dir = scratch("torn");
    let path = dir.join("cells.json");
    let runner = SweepRunner::serial();
    runner.run_one(
        &SystemConfig::baseline(IssueRate::GHZ1, 256),
        &Workload::quick(),
    );

    fault::arm_torn_save(1);
    runner
        .cache()
        .save_file(&path)
        .expect("the torn save itself reports success");
    let half = std::fs::metadata(&path).expect("file exists").len();

    let cache = CellCache::new();
    let load = cache.load_file(&path);
    assert!(!load.is_clean(), "a torn file must not load cleanly");
    assert_eq!(load.loaded, 0);
    assert!(load.error.is_some());
    assert!(load.quarantined.is_some());
    assert!(!path.exists(), "the torn file is moved aside");

    // Disarmed, the save is atomic again and strictly longer than the
    // torn half, and reloads cleanly.
    runner.cache().save_file(&path).expect("clean save");
    assert!(std::fs::metadata(&path).expect("file exists").len() > half);
    assert!(CellCache::new().load_file(&path).is_clean());
}

#[test]
fn corrupt_trace_record_surfaces_as_typed_error_not_panic() {
    let _g = armed_section();
    let mut w = BinWriter::new(Vec::new()).expect("header");
    for i in 0..5u64 {
        w.write(TraceRecord::read(0x1000 + 8 * i)).expect("write");
    }
    let bytes = w.finish().expect("finish");

    rampage_trace::fault::arm_corrupt_record(3);
    let mut r = BinReader::new(&bytes[..]).expect("magic");
    assert!(r.next_record().is_some());
    assert!(r.next_record().is_some());
    assert_eq!(r.next_record(), None, "stream ends at the corrupt record");
    match r.error() {
        Some(TraceIoError::Malformed(what, 3)) => {
            assert!(what.contains("kind byte"), "{what}");
        }
        other => panic!("expected Malformed at record 3, got {other:?}"),
    }
    assert_eq!(r.next_record(), None, "the stream stays ended");

    // Disarmed, the same bytes decode in full.
    rampage_trace::fault::disarm();
    let mut r = BinReader::new(&bytes[..]).expect("magic");
    let n = std::iter::from_fn(|| r.next_record()).count();
    assert_eq!(n, 5);
    assert!(r.error().is_none());
}
