//! Robustness: arbitrary valid configurations must simulate without
//! panicking and uphold the accounting invariants.
//!
//! Originally property-based; now driven by the in-tree seeded PRNG
//! (`crates/rand`) because the build environment is offline (see
//! README.md § Offline builds).

use rampage::prelude::*;
use rampage_core::{DramKind, HierarchyKind, TlbConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn pick<T: Copy>(rng: &mut StdRng, xs: &[T]) -> T {
    xs[rng.gen_range(0..xs.len())]
}

fn arb_config(rng: &mut StdRng) -> SystemConfig {
    let issue = pick(
        rng,
        &[
            IssueRate::MHZ200,
            IssueRate::MHZ500,
            IssueRate::GHZ1,
            IssueRate::GHZ2,
            IssueRate::GHZ4,
        ],
    );
    let unit = pick(rng, &[128u64, 256, 512, 1024, 2048, 4096]);
    let mut cfg = match rng.gen_range(0..4u8) {
        0 => SystemConfig::baseline(issue, unit),
        1 => SystemConfig::two_way(issue, unit),
        2 => SystemConfig::rampage(issue, unit),
        _ => SystemConfig::rampage_switching(issue, unit),
    };
    cfg.dram = pick(
        rng,
        &[DramKind::Rambus, DramKind::RambusPipelined, DramKind::Sdram],
    );
    cfg.dram_channels = rng.gen_range(1..4u32);
    if rng.gen::<bool>() {
        cfg.tlb = TlbConfig::large_2way();
    }
    if matches!(cfg.hierarchy, HierarchyKind::Conventional(_)) && rng.gen::<bool>() {
        cfg.l1_victim_blocks = Some(rng.gen_range(1..64usize));
    }
    if rng.gen::<bool>() {
        cfg.write_buffer_depth = Some(rng.gen_range(1..32usize));
    }
    if rng.gen::<bool>() {
        if let HierarchyKind::Rampage(ref mut r) = cfg.hierarchy {
            r.standby_pages = Some(rng.gen_range(16..128usize));
        }
    }
    cfg
}

#[test]
fn any_valid_config_simulates_cleanly() {
    let mut rng = StdRng::seed_from_u64(0xc0b1);
    // Each case simulates ~30k references; keep the count moderate.
    for _ in 0..24 {
        let cfg = arb_config(&mut rng);
        let seed = rng.gen_range(0..1000u64);
        let out = Engine::for_suite(&cfg, 3, 10_000, seed).run();
        let m = out.metrics;
        // Conservation and sanity invariants.
        assert!(m.counts.user_refs >= 3 * 9_000);
        let t = m.time;
        assert_eq!(
            m.total_cycles(),
            t.l1i_cycles + t.l1d_cycles + t.l2_sram_cycles + t.dram_cycles + t.idle_cycles
        );
        assert!(m.total_cycles() >= m.counts.user_ifetches);
        assert!(out.seconds > 0.0);
        let f = t.fractions();
        let sum = f.l1i + f.l1d + f.l2_sram + f.dram + f.idle;
        assert!((sum - 1.0).abs() < 1e-9, "fractions sum to {sum}");
        // Per-process accounting matches the totals.
        let refs: u64 = out.per_process.iter().map(|p| p.refs).sum();
        assert_eq!(refs, m.counts.user_refs);
        // Hierarchy-specific invariants.
        match cfg.hierarchy {
            HierarchyKind::Conventional(_) => {
                assert_eq!(m.counts.page_faults, 0, "conventional never page-faults");
            }
            HierarchyKind::Rampage(_) => {
                assert_eq!(
                    m.counts.dram_block_fetches, 0,
                    "RAMpage never block-fetches"
                );
                assert_eq!(m.counts.l2.accesses(), 0, "RAMpage has no L2 cache");
            }
        }
        if !cfg.switch_on_miss {
            assert_eq!(m.counts.switches_on_miss, 0);
            assert_eq!(t.idle_cycles, 0, "stall model never idles");
        }
        if cfg.write_buffer_depth.is_none() {
            assert_eq!(
                m.counts.write_buffer_stalls, 0,
                "perfect buffer never stalls"
            );
        }
    }
}

#[test]
fn determinism_over_arbitrary_configs() {
    let mut rng = StdRng::seed_from_u64(0xc0b2);
    for _ in 0..8 {
        let cfg = arb_config(&mut rng);
        let a = Engine::for_suite(&cfg, 2, 5_000, 77).run();
        let b = Engine::for_suite(&cfg, 2, 5_000, 77).run();
        assert_eq!(a.metrics.total_cycles(), b.metrics.total_cycles());
        assert_eq!(a.metrics.counts, b.metrics.counts);
    }
}
