//! Robustness: arbitrary valid configurations must simulate without
//! panicking and uphold the accounting invariants.

use proptest::prelude::*;
use rampage::prelude::*;
use rampage_core::{DramKind, HierarchyKind, TlbConfig};

fn arb_config() -> impl Strategy<Value = SystemConfig> {
    let issue = prop::sample::select(vec![
        IssueRate::MHZ200,
        IssueRate::MHZ500,
        IssueRate::GHZ1,
        IssueRate::GHZ2,
        IssueRate::GHZ4,
    ]);
    let unit = prop::sample::select(vec![128u64, 256, 512, 1024, 2048, 4096]);
    let kind = 0..4u8;
    let dram = prop::sample::select(vec![
        DramKind::Rambus,
        DramKind::RambusPipelined,
        DramKind::Sdram,
    ]);
    let channels = 1..4u32;
    let tlb_big = any::<bool>();
    let victim = prop::option::of(1..64usize);
    let wbuf = prop::option::of(1..32usize);
    let standby = prop::option::of(16..128usize);
    (
        issue, unit, kind, dram, channels, tlb_big, victim, wbuf, standby,
    )
        .prop_map(
            |(issue, unit, kind, dram, channels, tlb_big, victim, wbuf, standby)| {
                let mut cfg = match kind {
                    0 => SystemConfig::baseline(issue, unit),
                    1 => SystemConfig::two_way(issue, unit),
                    2 => SystemConfig::rampage(issue, unit),
                    _ => SystemConfig::rampage_switching(issue, unit),
                };
                cfg.dram = dram;
                cfg.dram_channels = channels;
                if tlb_big {
                    cfg.tlb = TlbConfig::large_2way();
                }
                if matches!(cfg.hierarchy, HierarchyKind::Conventional(_)) {
                    cfg.l1_victim_blocks = victim;
                }
                cfg.write_buffer_depth = wbuf;
                if let HierarchyKind::Rampage(ref mut r) = cfg.hierarchy {
                    r.standby_pages = standby;
                }
                cfg
            },
        )
}

proptest! {
    // Each case simulates ~30k references; keep the count moderate.
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn any_valid_config_simulates_cleanly(cfg in arb_config(), seed in 0u64..1000) {
        let out = Engine::for_suite(&cfg, 3, 10_000, seed).run();
        let m = out.metrics;
        // Conservation and sanity invariants.
        prop_assert!(m.counts.user_refs >= 3 * 9_000);
        let t = m.time;
        prop_assert_eq!(
            m.total_cycles(),
            t.l1i_cycles + t.l1d_cycles + t.l2_sram_cycles + t.dram_cycles + t.idle_cycles
        );
        prop_assert!(m.total_cycles() >= m.counts.user_ifetches);
        prop_assert!(out.seconds > 0.0);
        let f = t.fractions();
        let sum = f.l1i + f.l1d + f.l2_sram + f.dram + f.idle;
        prop_assert!((sum - 1.0).abs() < 1e-9, "fractions sum to {sum}");
        // Per-process accounting matches the totals.
        let refs: u64 = out.per_process.iter().map(|p| p.refs).sum();
        prop_assert_eq!(refs, m.counts.user_refs);
        // Hierarchy-specific invariants.
        match cfg.hierarchy {
            HierarchyKind::Conventional(_) => {
                prop_assert_eq!(m.counts.page_faults, 0, "conventional never page-faults");
            }
            HierarchyKind::Rampage(_) => {
                prop_assert_eq!(m.counts.dram_block_fetches, 0, "RAMpage never block-fetches");
                prop_assert_eq!(m.counts.l2.accesses(), 0, "RAMpage has no L2 cache");
            }
        }
        if !cfg.switch_on_miss {
            prop_assert_eq!(m.counts.switches_on_miss, 0);
            prop_assert_eq!(t.idle_cycles, 0, "stall model never idles");
        }
        if cfg.write_buffer_depth.is_none() {
            prop_assert_eq!(m.counts.write_buffer_stalls, 0, "perfect buffer never stalls");
        }
    }

    #[test]
    fn determinism_over_arbitrary_configs(cfg in arb_config()) {
        let a = Engine::for_suite(&cfg, 2, 5_000, 77).run();
        let b = Engine::for_suite(&cfg, 2, 5_000, 77).run();
        prop_assert_eq!(a.metrics.total_cycles(), b.metrics.total_cycles());
        prop_assert_eq!(a.metrics.counts, b.metrics.counts);
    }
}
