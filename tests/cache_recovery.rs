//! Crash-safety tests for the persisted cell cache: a damaged
//! `cells.json` — however it got that way — must load as an empty or
//! partial cache with the bad file quarantined, and must never panic or
//! abort the run.

use rampage_core::experiments::{CellCache, Job, SweepRunner, Workload, CACHE_FORMAT_VERSION};
use rampage_core::{IssueRate, SystemConfig};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};

/// A unique scratch directory per test (no tempfile crate offline).
fn scratch(name: &str) -> PathBuf {
    static N: AtomicU32 = AtomicU32::new(0);
    let dir = std::env::temp_dir().join(format!(
        "rampage-cache-recovery-{}-{name}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::SeqCst)
    ));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// Run a tiny sweep and persist its cache, returning the runner (for
/// reference cells) and the saved file's path.
fn saved_cache(dir: &std::path::Path) -> (SweepRunner, PathBuf, Vec<Job>) {
    let w = Workload::quick();
    let jobs = vec![
        Job::new(SystemConfig::baseline(IssueRate::GHZ1, 256), w),
        Job::new(SystemConfig::rampage(IssueRate::GHZ1, 512), w),
        Job::new(SystemConfig::two_way(IssueRate::GHZ1, 1024), w),
    ];
    let runner = SweepRunner::serial();
    runner.run_batch(&jobs);
    let path = dir.join("cells.json");
    runner.cache().save_file(&path).expect("save");
    (runner, path, jobs)
}

#[test]
fn missing_file_is_a_clean_cold_start() {
    let dir = scratch("missing");
    let cache = CellCache::new();
    let load = cache.load_file(&dir.join("cells.json"));
    assert!(load.is_clean());
    assert_eq!(load.loaded, 0);
    assert!(load.quarantined.is_none());
    assert!(cache.is_empty());
    assert!(!dir.join("cells.json.corrupt").exists());
}

#[test]
fn save_is_atomic_and_reloads_cleanly() {
    let dir = scratch("atomic");
    let (runner, path, jobs) = saved_cache(&dir);
    assert!(
        !dir.join("cells.json.tmp").exists(),
        "the temp file must not survive a successful save"
    );
    // Overwriting an existing file also works.
    runner.cache().save_file(&path).expect("overwrite");
    let fresh = CellCache::new();
    let load = fresh.load_file(&path);
    assert!(load.is_clean(), "{}", load.describe());
    assert_eq!(load.loaded, jobs.len());
    for job in &jobs {
        assert_eq!(
            fresh.get(job.fingerprint()),
            runner.cache().get(job.fingerprint())
        );
    }
}

#[test]
fn truncated_file_is_quarantined_not_fatal() {
    let dir = scratch("truncated");
    let (_, path, _) = saved_cache(&dir);
    let text = std::fs::read_to_string(&path).expect("read back");
    std::fs::write(&path, &text[..text.len() / 2]).expect("truncate");

    let cache = CellCache::new();
    let load = cache.load_file(&path);
    assert!(!load.is_clean());
    assert!(load.error.is_some(), "torn JSON is a whole-file error");
    assert_eq!(load.loaded, 0);
    assert!(cache.is_empty());
    assert!(load.describe().contains("quarantined"));
    let q = load.quarantined.expect("file quarantined");
    assert!(q.ends_with("cells.json.corrupt"));
    assert!(q.exists());
    assert!(!path.exists(), "the bad file is moved aside");

    // The next save rebuilds a clean file in its place.
    cache.save_file(&path).expect("rebuild");
    assert!(CellCache::new().load_file(&path).is_clean());
}

#[test]
fn empty_file_is_quarantined_not_fatal() {
    let dir = scratch("empty");
    let path = dir.join("cells.json");
    std::fs::write(&path, "").expect("write empty file");
    let cache = CellCache::new();
    let load = cache.load_file(&path);
    assert!(!load.is_clean());
    assert_eq!(load.loaded, 0);
    assert!(load.quarantined.is_some());
    assert!(!path.exists());
}

#[test]
fn bit_flipped_entry_is_skipped_and_file_quarantined() {
    let dir = scratch("bitflip");
    let (_, path, jobs) = saved_cache(&dir);
    // Tamper with one entry's stored checksum: the entry no longer
    // matches its body, exactly as a flipped bit in the body would fail
    // to match the stored sum.
    let text = std::fs::read_to_string(&path).expect("read back");
    let i = text.find("\"sum\": ").expect("a sum field") + "\"sum\": ".len();
    let mut bytes = text.into_bytes();
    bytes[i] = if bytes[i] == b'1' { b'2' } else { b'1' };
    std::fs::write(&path, &bytes).expect("tamper");

    let cache = CellCache::new();
    let load = cache.load_file(&path);
    assert_eq!(load.skipped(), 1, "{}", load.describe());
    assert!(
        matches!(
            load.entry_errors.as_slice(),
            [rampage_core::error::CacheIoError::BadChecksum { .. }]
        ),
        "the skip is recorded as a typed checksum error: {}",
        load.describe()
    );
    assert_eq!(load.loaded, jobs.len() - 1, "good neighbours survive");
    assert!(load.quarantined.is_some(), "partial rot still quarantines");
    assert_eq!(cache.len(), jobs.len() - 1);
}

#[test]
fn version_bump_is_quarantined_and_rebuilt() {
    let dir = scratch("version");
    let (runner, path, jobs) = saved_cache(&dir);
    let text = std::fs::read_to_string(&path).expect("read back");
    let old = format!("\"version\": {CACHE_FORMAT_VERSION}");
    assert!(text.contains(&old), "header present");
    std::fs::write(&path, text.replacen(&old, "\"version\": 1", 1)).expect("downgrade");

    let cache = CellCache::new();
    let load = cache.load_file(&path);
    assert!(!load.is_clean());
    assert_eq!(load.loaded, 0, "stale fingerprints must not serve cells");
    assert!(load.describe().contains("version"), "{}", load.describe());
    assert!(load.quarantined.is_some());
    assert!(cache.is_empty());

    // A run after the quarantine starts cold and persists the new format.
    runner.cache().save_file(&path).expect("rebuild");
    let fresh = CellCache::new();
    let reload = fresh.load_file(&path);
    assert!(reload.is_clean());
    assert_eq!(reload.loaded, jobs.len());
}

#[test]
fn garbage_json_shape_is_quarantined() {
    // Valid JSON, wrong shape: not this cache's format at all.
    let dir = scratch("shape");
    let path = dir.join("cells.json");
    std::fs::write(&path, "[1, 2, 3]\n").expect("write garbage");
    let cache = CellCache::new();
    let load = cache.load_file(&path);
    assert!(!load.is_clean());
    assert!(load.quarantined.is_some());
    assert!(cache.is_empty());
}
