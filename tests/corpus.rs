//! Integration tests for the trace corpus subsystem: record → replay
//! bit-identity, compression, interleaving across block boundaries,
//! `--trace-dir` sweep equivalence, corruption quarantine, and the
//! committed sample corpus fixture.
//!
//! The fixture under `tests/fixtures/corpus/` is regenerated with:
//!
//! ```text
//! UPDATE_FIXTURES=1 cargo test --test corpus
//! git diff tests/fixtures/corpus/   # review, then commit
//! ```

use rampage_core::experiments::{
    corpus_source_stats, set_trace_dir, sweep_sizes, CorpusSourceStats, SweepRunner, Workload,
};
use rampage_core::{IssueRate, SystemConfig};
use rampage_json::ToJson;
use rampage_trace::corpus::{
    fidelity_tolerance, record_profiles, verify_dir, CorpusReader, Manifest,
};
use rampage_trace::{profiles, Interleaver, ScheduleEvent, TraceRecord, TraceSource};
use std::path::PathBuf;

/// Quick-workload parameters (kept in sync with [`Workload::quick`] by
/// an assertion in the sweep test).
const QUICK_SCALE: u64 = 20_000;
const QUICK_SEED: u64 = 0x7a9e;
const QUICK_NBENCH: usize = 4;

fn tmp_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("rampage-corpus-it-{tag}-{}", std::process::id()))
}

fn fixture_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/corpus")
}

fn drain<S: TraceSource>(source: &mut S) -> Vec<TraceRecord> {
    std::iter::from_fn(|| source.next_record()).collect()
}

#[test]
fn record_then_replay_is_bit_identical_and_3x_smaller() {
    let dir = tmp_dir("roundtrip");
    std::fs::remove_dir_all(&dir).ok();
    let suite = &profiles::TABLE2[..QUICK_NBENCH];
    let manifest = record_profiles(&dir, suite, QUICK_SCALE, QUICK_SEED, 2048).expect("record");

    for p in suite {
        let meta = manifest.find(p.name).expect("shard recorded");
        let mut replay = CorpusReader::open(dir.join(&meta.file)).expect("open shard");
        let mut synth = p.source(QUICK_SCALE, QUICK_SEED);
        assert_eq!(
            drain(&mut replay),
            drain(&mut synth),
            "{} replay must be bit-identical to synthesis",
            p.name
        );
        assert!(replay.warnings().is_empty());
    }

    // The acceptance bar: >= 3x smaller than the raw Bin encoding
    // (8-byte magic + 9 bytes per record per shard).
    let raw: u64 = manifest.shards.iter().map(|s| 8 + 9 * s.records).sum();
    assert!(
        manifest.total_bytes() * 3 <= raw,
        "corpus {} bytes vs raw bin {raw} bytes",
        manifest.total_bytes()
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// Satellite (b): interleaving corpus-backed sources must produce the
/// exact event stream that interleaving the generating synthetic
/// sources does — at the paper's 500 k quantum and at a tiny quantum
/// that forces process switches inside (and across) storage blocks.
#[test]
fn interleaver_quantum_boundaries_match_synthesis() {
    let dir = tmp_dir("interleave");
    std::fs::remove_dir_all(&dir).ok();
    let suite = &profiles::TABLE2[..QUICK_NBENCH];
    // 512-byte blocks: every shard spans many blocks, so quanta land
    // mid-block and sources resume across block boundaries.
    let manifest = record_profiles(&dir, suite, QUICK_SCALE, QUICK_SEED, 512).expect("record");

    for quantum in [500_000u64, 257] {
        let synth: Vec<_> = suite
            .iter()
            .map(|p| Box::new(p.source(QUICK_SCALE, QUICK_SEED)) as Box<dyn TraceSource + Send>)
            .collect();
        let replay: Vec<_> = suite
            .iter()
            .map(|p| {
                let meta = manifest.find(p.name).expect("shard recorded");
                let reader = CorpusReader::open(dir.join(&meta.file)).expect("open shard");
                Box::new(reader.with_name(p.name)) as Box<dyn TraceSource + Send>
            })
            .collect();
        let mut a = Interleaver::new(synth, quantum);
        let mut b = Interleaver::new(replay, quantum);
        let mut events = 0u64;
        loop {
            let ea = a.next_event();
            let eb = b.next_event();
            assert_eq!(ea, eb, "event {events} diverged at quantum {quantum}");
            events += 1;
            if matches!(ea, ScheduleEvent::Finished) {
                break;
            }
        }
        assert!(events > 1, "interleaver produced a real stream");
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// The tentpole acceptance check: a sweep over corpus-backed sources
/// produces cells (and their persisted JSON) identical to the synthetic
/// sweep, and every source actually came from disk.
///
/// The trace-dir routing is process-global, so this is the only test in
/// this binary that touches `set_trace_dir` or `Workload::sources`.
#[test]
fn sweep_through_trace_dir_is_bit_identical() {
    let dir = tmp_dir("sweep");
    std::fs::remove_dir_all(&dir).ok();
    let w = Workload::quick();
    assert_eq!(
        (w.nbench, w.scale, w.seed),
        (QUICK_NBENCH, QUICK_SCALE, QUICK_SEED),
        "corpus fixture parameters drifted from Workload::quick()"
    );
    record_profiles(
        &dir,
        &profiles::TABLE2[..QUICK_NBENCH],
        QUICK_SCALE,
        QUICK_SEED,
        4096,
    )
    .expect("record");

    let sizes = [256u64, 2048];
    let synth_cells = sweep_sizes(
        &SweepRunner::new(2),
        "corpus-synth",
        SystemConfig::rampage,
        IssueRate::GHZ1,
        &sizes,
        &w,
    );

    set_trace_dir(Some(dir.clone()));
    CorpusSourceStats::reset();
    let replay_cells = sweep_sizes(
        &SweepRunner::new(2),
        "corpus-replay",
        SystemConfig::rampage,
        IssueRate::GHZ1,
        &sizes,
        &w,
    );
    let stats = corpus_source_stats();
    set_trace_dir(None);

    assert_eq!(
        synth_cells, replay_cells,
        "cells must not depend on the route"
    );
    assert_eq!(
        synth_cells.to_json().pretty(),
        replay_cells.to_json().pretty(),
        "persisted JSON must match byte-for-byte"
    );
    assert_eq!(
        stats,
        CorpusSourceStats {
            opened: (sizes.len() * QUICK_NBENCH) as u64,
            fallback: 0,
        },
        "every source must have replayed from disk"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// On-disk corruption: a flipped payload byte must quarantine exactly
/// one block (its records vanish, a warning is recorded) and must fail
/// `verify_dir`, while the rest of the corpus stays usable.
#[test]
fn corrupt_block_on_disk_is_quarantined_and_flagged() {
    let dir = tmp_dir("corrupt");
    std::fs::remove_dir_all(&dir).ok();
    let suite = &profiles::TABLE2[..2];
    let manifest = record_profiles(&dir, suite, QUICK_SCALE, QUICK_SEED, 512).expect("record");
    let victim = manifest.find(suite[0].name).expect("shard recorded");
    assert!(victim.blocks > 2, "need multiple blocks to corrupt one");

    // Flip a byte in the middle of the file — inside some block payload,
    // far from the header and the index.
    let path = dir.join(&victim.file);
    let mut bytes = std::fs::read(&path).expect("read shard");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xff;
    std::fs::write(&path, &bytes).expect("rewrite shard");

    let mut reader = CorpusReader::open(&path).expect("index still loads");
    let got = drain(&mut reader);
    let warnings = reader.warnings();
    assert_eq!(warnings.len(), 1, "exactly one block quarantined");
    assert_eq!(
        got.len() as u64 + warnings[0].records_lost,
        victim.records,
        "stream = all records minus the quarantined block"
    );

    let report = verify_dir(&dir, 2).expect("verify runs");
    assert!(!report.ok(), "verification must flag the tampered shard");
    assert_eq!(report.failed(), 1);
    let healthy = report
        .shards
        .iter()
        .find(|s| s.name == suite[1].name)
        .expect("second shard reported");
    assert!(healthy.ok(), "untouched shard still verifies");
    std::fs::remove_dir_all(&dir).ok();
}

/// Satellite (c): profile fidelity. A recorded shard's stats must sit
/// within [`FIDELITY_TOLERANCE`] of its generating Table 2 parameters,
/// and a manifest whose expectations are doctored past the tolerance
/// must fail verification.
#[test]
fn profile_fidelity_is_checked_against_table2() {
    let dir = tmp_dir("fidelity");
    std::fs::remove_dir_all(&dir).ok();
    let suite = &profiles::TABLE2[..3];
    let mut manifest = record_profiles(&dir, suite, QUICK_SCALE, QUICK_SEED, 2048).expect("record");

    for (p, s) in suite.iter().zip(&manifest.shards) {
        let expect = s.profile.as_ref().expect("profile recorded");
        assert_eq!(expect.name, p.name);
        assert!(
            expect.drift(&s.stats) <= fidelity_tolerance(s.records),
            "{} drifted {:.4} from Table 2 (tolerance {:.4})",
            p.name,
            expect.drift(&s.stats),
            fidelity_tolerance(s.records)
        );
    }
    assert!(verify_dir(&dir, 2).expect("verify").ok());

    // Doctor one expectation beyond the tolerance: verify must fail it.
    let doctor = 2.0 * fidelity_tolerance(manifest.shards[0].records);
    if let Some(e) = manifest.shards[0].profile.as_mut() {
        e.ifetch_frac = (e.ifetch_frac + doctor).min(1.0);
    }
    manifest.save(&dir).expect("save doctored manifest");
    let report = verify_dir(&dir, 2).expect("verify");
    assert!(!report.ok(), "drift past tolerance must fail");
    assert!(
        report.shards[0]
            .problems
            .iter()
            .any(|p| p.contains("drift")),
        "failure names the drift: {:?}",
        report.shards[0].problems
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// Satellite (d): the committed sample corpus. Two small shards plus a
/// manifest live in `tests/fixtures/corpus/` (< 100 KiB total); they
/// must verify clean and replay bit-identically to their generating
/// profiles on every platform.
#[test]
fn sample_fixture_verifies_and_replays() {
    const FIXTURE_SCALE: u64 = 20_000;
    const FIXTURE_SEED: u64 = 0x0f1d;
    let dir = fixture_dir();
    let suite = &profiles::TABLE2[..2];

    if std::env::var_os("UPDATE_FIXTURES").is_some_and(|v| v == "1") {
        std::fs::remove_dir_all(&dir).ok();
        record_profiles(&dir, suite, FIXTURE_SCALE, FIXTURE_SEED, 1024).expect("record fixture");
    }

    let manifest = Manifest::load(&dir).unwrap_or_else(|e| {
        panic!(
            "missing corpus fixture at {} ({e}); regenerate with \
             UPDATE_FIXTURES=1 cargo test --test corpus",
            dir.display()
        )
    });
    assert_eq!(manifest.shards.len(), 2);

    // Size budget: the fixture must stay a tiny committed artifact.
    let on_disk: u64 = std::fs::read_dir(&dir)
        .expect("fixture dir")
        .flatten()
        .map(|e| e.metadata().map(|m| m.len()).unwrap_or(0))
        .sum();
    assert!(on_disk < 100 * 1024, "fixture grew to {on_disk} bytes");

    assert!(
        verify_dir(&dir, 2).expect("verify").ok(),
        "committed fixture must verify clean"
    );

    for p in suite {
        let meta = manifest
            .find_recorded(p.name, FIXTURE_SEED, FIXTURE_SCALE)
            .expect("fixture shard matches identity");
        assert!(meta.blocks > 1, "fixture shards span multiple blocks");
        let mut replay = CorpusReader::open(dir.join(&meta.file)).expect("open fixture shard");
        let mut synth = p.source(FIXTURE_SCALE, FIXTURE_SEED);
        assert_eq!(
            drain(&mut replay),
            drain(&mut synth),
            "fixture {} diverged from its generator; regenerate with \
             UPDATE_FIXTURES=1 cargo test --test corpus",
            p.name
        );
    }
}

/// Seek + resume across block boundaries: `open_at` from any record
/// number must continue exactly where a full replay would be.
#[test]
fn seek_resume_matches_full_replay() {
    let dir = tmp_dir("seek");
    std::fs::remove_dir_all(&dir).ok();
    let p = &profiles::TABLE2[0];
    let manifest = record_profiles(&dir, &profiles::TABLE2[..1], QUICK_SCALE, QUICK_SEED, 256)
        .expect("record");
    let meta = manifest.find(p.name).expect("shard");
    assert!(meta.blocks > 4, "small blocks force many");
    let path = dir.join(&meta.file);

    let mut full = CorpusReader::open(&path).expect("open");
    let all = drain(&mut full);
    assert_eq!(all.len() as u64, meta.records);

    for at in [
        0,
        1,
        meta.records / 3,
        meta.records / 2,
        meta.records - 1,
        meta.records,
    ] {
        let mut r = CorpusReader::open_at(&path, at).expect("open_at");
        assert_eq!(
            drain(&mut r),
            all[at as usize..],
            "open_at({at}) must resume exactly"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Fault drill (the check.sh corpus gate runs this under
/// `--features fault`): an armed corpus-block fault makes every reader
/// quarantine that block — records skipped, warning recorded, no abort.
#[cfg(feature = "fault")]
#[test]
fn armed_block_fault_is_quarantined() {
    use rampage_trace::fault;

    let dir = tmp_dir("fault");
    std::fs::remove_dir_all(&dir).ok();
    let p = &profiles::TABLE2[0];
    let manifest = record_profiles(&dir, &profiles::TABLE2[..1], QUICK_SCALE, QUICK_SEED, 512)
        .expect("record");
    let meta = manifest.find(p.name).expect("shard");
    assert!(meta.blocks > 2, "need a middle block to corrupt");
    let path = dir.join(&meta.file);

    fault::arm_corrupt_block(1);
    let mut reader = CorpusReader::open(&path).expect("open");
    let got = drain(&mut reader);
    let warnings = reader.warnings();
    fault::disarm();

    assert_eq!(warnings.len(), 1, "exactly one block quarantined");
    assert_eq!(warnings[0].block, 1);
    assert!(
        warnings[0].reason.contains("checksum"),
        "{}",
        warnings[0].reason
    );
    assert_eq!(
        got.len() as u64 + warnings[0].records_lost,
        meta.records,
        "stream = all records minus the faulted block"
    );

    // Disarmed, the same shard replays in full: the file was never the
    // problem.
    let mut clean = CorpusReader::open(&path).expect("reopen");
    assert_eq!(drain(&mut clean).len() as u64, meta.records);
    assert!(clean.warnings().is_empty());
    std::fs::remove_dir_all(&dir).ok();
}
