#!/usr/bin/env bash
# Repo-wide verification: formatting, lints, build, tests.
#
# Usage: scripts/check.sh
#
# Everything here runs offline (all dependencies are in-tree path
# crates; see README.md § Offline builds).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --all --check"
cargo fmt --all --check

echo "==> cargo clippy --workspace --all-targets --all-features -- -D warnings"
cargo clippy --workspace --all-targets --all-features -- -D warnings

# Library code must not unwrap/expect: every fallible path either
# returns a typed error or panics via a documented invariant assert.
# Tests and benches are exempt (unwrap is the right tool there).
LIB_CRATES=(rampage-json rand criterion rampage-trace rampage-cache rampage-dram rampage-vm rampage-core)
for crate in "${LIB_CRATES[@]}"; do
  echo "==> cargo clippy --lib -p ${crate} (deny unwrap/expect)"
  cargo clippy -q --lib -p "${crate}" -- \
    -D warnings -D clippy::unwrap_used -D clippy::expect_used
done

echo "==> cargo build --release (tier-1)"
cargo build --release

echo "==> cargo test -q (tier-1)"
cargo test -q

echo "==> cargo test -q --workspace"
cargo test -q --workspace

echo "==> cargo test -q --features fault (fault-injection suite)"
cargo test -q --features fault

echo "All checks passed."
