#!/usr/bin/env bash
# Repo-wide verification: formatting, lints, build, tests.
#
# Usage: scripts/check.sh
#
# Everything here runs offline (all dependencies are in-tree path
# crates; see README.md § Offline builds).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --all --check"
cargo fmt --all --check

echo "==> cargo clippy --workspace --all-targets --all-features -- -D warnings"
cargo clippy --workspace --all-targets --all-features -- -D warnings

echo "==> cargo build --release (tier-1)"
cargo build --release

echo "==> cargo test -q (tier-1)"
cargo test -q

echo "==> cargo test -q --workspace"
cargo test -q --workspace

echo "All checks passed."
