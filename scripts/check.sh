#!/usr/bin/env bash
# Repo-wide verification: formatting, lints, build, tests.
#
# Usage: scripts/check.sh
#
# Everything here runs offline (all dependencies are in-tree path
# crates; see README.md § Offline builds).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --all --check"
cargo fmt --all --check

echo "==> cargo clippy --workspace --all-targets --all-features -- -D warnings"
cargo clippy --workspace --all-targets --all-features -- -D warnings

# Library code must not unwrap/expect: every fallible path either
# returns a typed error or panics via a documented invariant assert.
# It must not print either: all human-facing output goes through the
# binaries or rendered reports, never stray println!/eprintln! in a
# library (criterion is the one exemption — printing results is its
# job). Tests and benches are exempt (unwrap is the right tool there).
LIB_CRATES=(rampage-json rand criterion rampage-trace rampage-cache rampage-dram rampage-vm rampage-core rampage-analysis)
for crate in "${LIB_CRATES[@]}"; do
  PRINT_DENIES=(-D clippy::print_stdout -D clippy::print_stderr)
  if [[ "${crate}" == "criterion" ]]; then
    PRINT_DENIES=()
  fi
  echo "==> cargo clippy --lib -p ${crate} (deny unwrap/expect/print)"
  cargo clippy -q --lib -p "${crate}" -- \
    -D warnings -D clippy::unwrap_used -D clippy::expect_used \
    "${PRINT_DENIES[@]+"${PRINT_DENIES[@]}"}"
done

echo "==> cargo build --release (tier-1)"
cargo build --release

# The in-tree static analyzer: determinism lints, panic discipline, and
# structural rules (EXPERIMENTS.md § Static analysis). Hard gate — any
# unwaived finding fails the build.
echo "==> repro lint"
./target/release/repro lint --quiet

# Model-check every experiment preset's sweep grid against
# SystemConfig::validate(), so a bad preset fails here, not mid-sweep.
echo "==> repro lint --configs"
./target/release/repro lint --configs

echo "==> cargo test -q (tier-1)"
cargo test -q

echo "==> cargo test -q --workspace"
cargo test -q --workspace

echo "==> cargo test -q --test observability --test snapshot_golden (observability gate)"
cargo test -q --test observability --test snapshot_golden

echo "==> cargo test -q --features fault (fault-injection suite)"
cargo test -q --features fault

echo "==> cargo test -q --test corpus (trace corpus gate: record → replay determinism)"
cargo test -q --test corpus

echo "==> cargo test -q --test corpus --features fault (armed corrupt-block quarantine)"
cargo test -q --test corpus --features fault

# End-to-end corrupt-block drill through the CLI: record a corpus,
# verify it clean, smash a byte mid-file, and the verifier must fail.
echo "==> trace corpus CLI drill (record, verify, corrupt, re-verify)"
CORPUS_TMP=$(mktemp -d)
trap 'rm -rf "${CORPUS_TMP}"' EXIT
./target/release/repro trace record --dir "${CORPUS_TMP}" --scale 20000 --nbench 2 >/dev/null
./target/release/repro trace verify --dir "${CORPUS_TMP}" >/dev/null
SHARD=$(ls "${CORPUS_TMP}"/*.rct | head -1)
SHARD_BYTES=$(wc -c <"${SHARD}")
printf '\xff\xff\xff\xff\xff\xff\xff\xff' |
  dd of="${SHARD}" bs=1 seek=$((SHARD_BYTES / 2)) conv=notrunc status=none
if ./target/release/repro trace verify --dir "${CORPUS_TMP}" >/dev/null 2>&1; then
  echo "FAIL: trace verify did not flag a corrupted shard" >&2
  exit 1
fi

echo "All checks passed."
