#!/usr/bin/env bash
# Repo-wide verification: formatting, lints, build, tests, crash drill.
#
# Usage: scripts/check.sh
#
# Everything here runs offline (all dependencies are in-tree path
# crates; see README.md § Offline builds).
set -euo pipefail
cd "$(dirname "$0")/.."

# Per-step timeout: a hung cell (or wedged test binary) fails the gate
# instead of wedging CI forever. Override with CHECK_STEP_TIMEOUT
# (seconds).
STEP_TIMEOUT="${CHECK_STEP_TIMEOUT:-1800}"
step() {
  echo "==> $*"
  timeout --kill-after=30 "${STEP_TIMEOUT}" "$@"
}

step cargo fmt --all --check

step cargo clippy --workspace --all-targets --all-features -- -D warnings

# Library code must not unwrap/expect: every fallible path either
# returns a typed error or panics via a documented invariant assert.
# It must not print either: all human-facing output goes through the
# binaries or rendered reports, never stray println!/eprintln! in a
# library (criterion is the one exemption — printing results is its
# job). Tests and benches are exempt (unwrap is the right tool there).
LIB_CRATES=(rampage-json rand criterion rampage-trace rampage-cache rampage-dram rampage-vm rampage-core rampage-analysis)
for crate in "${LIB_CRATES[@]}"; do
  PRINT_DENIES=(-D clippy::print_stdout -D clippy::print_stderr)
  if [[ "${crate}" == "criterion" ]]; then
    PRINT_DENIES=()
  fi
  echo "==> cargo clippy --lib -p ${crate} (deny unwrap/expect/print)"
  timeout --kill-after=30 "${STEP_TIMEOUT}" cargo clippy -q --lib -p "${crate}" -- \
    -D warnings -D clippy::unwrap_used -D clippy::expect_used \
    "${PRINT_DENIES[@]+"${PRINT_DENIES[@]}"}"
done

echo "==> cargo build --release (tier-1)"
step cargo build --release

# The in-tree static analyzer: determinism lints, panic discipline, and
# structural rules (EXPERIMENTS.md § Static analysis). Hard gate — any
# unwaived finding fails the build.
step ./target/release/repro lint --quiet

# The dataflow tier on top: unit-mix, nondet-taint, claim-readback,
# cancel-poll (AST/CFG/dataflow passes). Also a hard gate.
step ./target/release/repro lint --tier=dataflow --quiet

# Schema sanity: the JSON report's `active` count and the SARIF
# document's unsuppressed-result count must agree — the two renderings
# describe the same findings.
echo "==> repro lint --json vs --format sarif count agreement"
LINT_TMP=$(mktemp -d)
./target/release/repro lint --tier=dataflow --json >"${LINT_TMP}/report.json" || true
./target/release/repro lint --tier=dataflow --format sarif >"${LINT_TMP}/report.sarif" || true
JSON_ACTIVE=$(grep -o '"active":[0-9]*' "${LINT_TMP}/report.json" | head -1 | cut -d: -f2)
SARIF_RESULTS=$(grep -o '"ruleId"' "${LINT_TMP}/report.sarif" | wc -l)
SARIF_SUPPRESSED=$(grep -o '"suppressions"' "${LINT_TMP}/report.sarif" | wc -l)
SARIF_ACTIVE=$((SARIF_RESULTS - SARIF_SUPPRESSED))
if [[ "${JSON_ACTIVE}" -ne "${SARIF_ACTIVE}" ]]; then
  echo "FAIL: JSON active=${JSON_ACTIVE} but SARIF unsuppressed=${SARIF_ACTIVE}" >&2
  exit 1
fi
rm -rf "${LINT_TMP}"

# Model-check every experiment preset's sweep grid against
# SystemConfig::validate(), so a bad preset fails here, not mid-sweep.
step ./target/release/repro lint --configs

echo "==> cargo test -q (tier-1)"
step cargo test -q

step cargo test -q --workspace

echo "==> cargo test -q --test observability --test snapshot_golden (observability gate)"
step cargo test -q --test observability --test snapshot_golden

echo "==> cargo test -q --features fault (fault-injection suite)"
step cargo test -q --features fault

echo "==> cargo test -q --test corpus (trace corpus gate: record → replay determinism)"
step cargo test -q --test corpus

echo "==> cargo test -q --test corpus --features fault (armed corrupt-block quarantine)"
step cargo test -q --test corpus --features fault

# Banked-backend smoke: the same sweep at the other DRAM fidelity, plus
# the dramdiff ablation, whose divergence summary must land in
# metrics.json (the tentpole contract of the banked backend).
echo "==> banked DRAM backend smoke (--dram-backend banked + dramdiff divergence)"
BANKED_TMP=$(mktemp -d)
step ./target/release/repro --scale 20000 --nbench 2 --dram-backend banked \
  --out "${BANKED_TMP}" table3 dramdiff >/dev/null
if ! grep -q '"dram_divergence"' "${BANKED_TMP}/metrics.json"; then
  echo "FAIL: dramdiff did not record dram_divergence in metrics.json" >&2
  exit 1
fi
rm -rf "${BANKED_TMP}"

# End-to-end corrupt-block drill through the CLI: record a corpus,
# verify it clean, smash a byte mid-file, and the verifier must fail.
echo "==> trace corpus CLI drill (record, verify, corrupt, re-verify)"
CORPUS_TMP=$(mktemp -d)
DRILL_TMP=$(mktemp -d)
trap 'rm -rf "${CORPUS_TMP}" "${DRILL_TMP}"' EXIT
./target/release/repro trace record --dir "${CORPUS_TMP}" --scale 20000 --nbench 2 >/dev/null
./target/release/repro trace verify --dir "${CORPUS_TMP}" >/dev/null
SHARD=$(ls "${CORPUS_TMP}"/*.rct | head -1)
SHARD_BYTES=$(wc -c <"${SHARD}")
printf '\xff\xff\xff\xff\xff\xff\xff\xff' |
  dd of="${SHARD}" bs=1 seek=$((SHARD_BYTES / 2)) conv=notrunc status=none
if ./target/release/repro trace verify --dir "${CORPUS_TMP}" >/dev/null 2>&1; then
  echo "FAIL: trace verify did not flag a corrupted shard" >&2
  exit 1
fi

# End-to-end crash drill through the CLI: kill a journaled sweep at the
# injected die-after-claim crash point, resume it, and require the
# artifact to be bit-identical to an uninterrupted --jobs 1 run.
# (table3 is the smallest journaled sweep — table1 is analytic and
# never touches the runner. This rebuilds the release binary with the
# fault feature, so it runs after every gate that uses the normal one.)
echo "==> crash drill (die-after-claim → kill → resume → diff vs clean run)"
step cargo build --release --features fault
set +e
timeout --kill-after=30 "${STEP_TIMEOUT}" ./target/release/repro \
  --scale 20000 --nbench 2 --jobs 2 --out "${DRILL_TMP}/crash" \
  --fault die-after-claim table3 >/dev/null 2>&1
CRASH_CODE=$?
set -e
if [[ "${CRASH_CODE}" -ne 137 ]]; then
  echo "FAIL: injected crash exited ${CRASH_CODE}, expected 137" >&2
  exit 1
fi
step ./target/release/repro --scale 20000 --nbench 2 --jobs 2 \
  --out "${DRILL_TMP}/crash" --resume table3 >/dev/null
step ./target/release/repro --scale 20000 --nbench 2 --jobs 1 \
  --out "${DRILL_TMP}/clean" table3 >/dev/null
if ! cmp "${DRILL_TMP}/crash/cells.json" "${DRILL_TMP}/clean/cells.json"; then
  echo "FAIL: resumed cells.json differs from the uninterrupted run" >&2
  exit 1
fi
# Leave the normal (fault-free) binary in place for anything after us.
step cargo build --release

echo "All checks passed."
