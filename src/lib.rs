//! # rampage — the RAMpage memory hierarchy, reproduced in Rust
//!
//! This is the umbrella crate of a full reproduction of
//! *"Hardware-Software Trade-Offs in a Direct Rambus Implementation of the
//! RAMpage Memory Hierarchy"* (Machanick, Salverda, Pompe — ASPLOS VIII,
//! 1998). It re-exports the workspace crates:
//!
//! * [`trace`] — address traces and synthetic workloads ([`rampage_trace`])
//! * [`cache`] — cache structures ([`rampage_cache`])
//! * [`dram`] — DRAM/disk timing models ([`rampage_dram`])
//! * [`vm`] — virtual-memory substrate ([`rampage_vm`])
//! * [`core`] — the simulator and experiments ([`rampage_core`])
//!
//! See `README.md` for a tour, `DESIGN.md` for the system inventory, and
//! `EXPERIMENTS.md` for paper-vs-measured results.
//!
//! ```
//! use rampage::prelude::*;
//!
//! // Simulate a small workload on both hierarchies at a 1 GHz issue rate.
//! let cfg = SystemConfig::baseline(IssueRate::GHZ1, 512);
//! let mut engine = Engine::for_suite(&cfg, 4, 20_000, 99);
//! let outcome = engine.run();
//! assert!(outcome.metrics.total_cycles() > 0);
//! ```

#![forbid(unsafe_code)]

pub use rampage_cache as cache;
pub use rampage_core as core;
pub use rampage_dram as dram;
pub use rampage_trace as trace;
pub use rampage_vm as vm;

/// Convenient glob import for examples and quick experiments.
pub mod prelude {
    pub use rampage_core::prelude::*;
    pub use rampage_trace::{profiles, AccessKind, Interleaver, TraceRecord, TraceSource};
}
