//! Simulate externally supplied trace files (Dinero `.din` or the
//! binary format) on any of the paper's systems — one process per file.
//!
//! ```text
//! simtrace [--system dm|2way|rampage|rampage-switch] [--unit BYTES]
//!          [--mhz N] [--quantum N] <trace-file>...
//! ```
//!
//! This closes the loop with the paper's methodology: where the original
//! Tracebase `.din` traces (or any other Dinero traces) are available,
//! they can drive this simulator directly in place of the synthetic
//! workload.

use rampage_core::prelude::*;
use rampage_trace::io::{BinReader, DinReader};
use rampage_trace::TraceSource;
use std::fs::File;
use std::io::BufReader;

const USAGE: &str = "usage: simtrace [--system dm|2way|rampage|rampage-switch] \
[--unit BYTES] [--mhz N] [--quantum N] <trace-file>...";

/// A trace source with a file name attached for reports.
struct NamedSource {
    inner: Box<dyn TraceSource + Send>,
    name: String,
}

impl TraceSource for NamedSource {
    fn next_record(&mut self) -> Option<rampage_trace::TraceRecord> {
        self.inner.next_record()
    }

    fn name(&self) -> &str {
        &self.name
    }
}

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn main() {
    if let Err(e) = run() {
        eprintln!("simtrace: {e}");
        std::process::exit(1);
    }
}

fn run() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let system = flag(&args, "--system").unwrap_or_else(|| "rampage".into());
    let unit: u64 = flag(&args, "--unit")
        .map(|v| v.parse())
        .transpose()?
        .unwrap_or(1024);
    let mhz: u32 = flag(&args, "--mhz")
        .map(|v| v.parse())
        .transpose()?
        .unwrap_or(1000);
    let quantum: u64 = flag(&args, "--quantum")
        .map(|v| v.parse())
        .transpose()?
        .unwrap_or(500_000);

    // Positional arguments = trace files (skip flags and their values).
    let mut files = Vec::new();
    let mut i = 0;
    while i < args.len() {
        if args[i].starts_with("--") {
            i += 2;
        } else {
            files.push(args[i].clone());
            i += 1;
        }
    }
    if files.is_empty() {
        return Err(USAGE.into());
    }

    let issue = IssueRate::from_mhz(mhz);
    let mut cfg = match system.as_str() {
        "dm" => SystemConfig::baseline(issue, unit),
        "2way" => SystemConfig::two_way(issue, unit),
        "rampage" => SystemConfig::rampage(issue, unit),
        "rampage-switch" => SystemConfig::rampage_switching(issue, unit),
        other => return Err(format!("unknown system {other:?}\n{USAGE}").into()),
    };
    cfg.quantum = quantum;

    let sources: Vec<Box<dyn TraceSource + Send>> = files
        .iter()
        .map(
            |path| -> Result<Box<dyn TraceSource + Send>, Box<dyn std::error::Error>> {
                let name = path.rsplit('/').next().unwrap_or(path).to_string();
                let inner: Box<dyn TraceSource + Send> = if path.ends_with(".bin") {
                    Box::new(BinReader::new(BufReader::new(File::open(path)?))?)
                } else {
                    Box::new(DinReader::new(BufReader::new(File::open(path)?)))
                };
                Ok(Box::new(NamedSource { inner, name }))
            },
        )
        .collect::<Result<_, _>>()?;

    eprintln!(
        "# {} on {} trace file(s), {} B unit, {}",
        cfg.label(),
        files.len(),
        unit,
        issue
    );
    let out = Engine::new(&cfg, sources).run();
    println!("simulated time : {:.6} s", out.seconds);
    println!("metrics        : {}", out.metrics);
    for p in &out.per_process {
        println!(
            "  {:<16} {:>10} refs  {:>12} stall cycles  {} blocked faults",
            p.name, p.refs, p.stall_cycles, p.faults_blocked
        );
    }
    Ok(())
}
