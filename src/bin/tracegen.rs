//! Generate synthetic Table 2 traces as files (Dinero `.din` text or the
//! compact binary format), and inspect existing trace files.
//!
//! ```text
//! tracegen gen  <program|all> <out-dir> [--refs N] [--seed S] [--format din|bin]
//! tracegen info <file.din|file.bin> [--limit N]
//! ```
//!
//! The `.din` output is the classic Dinero format the paper's Tracebase
//! traces used, so generated workloads can drive other cache simulators.

use rampage_trace::io::{BinReader, BinWriter, DinReader, DinWriter};
use rampage_trace::{profiles, TraceStats};
use std::fs::File;
use std::io::{BufReader, BufWriter};

const USAGE: &str = "usage:
  tracegen gen  <program|all> <out-dir> [--refs N] [--seed S] [--format din|bin]
  tracegen info <file.din|file.bin> [--limit N]";

fn flag_value(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("gen") => cmd_gen(&args[1..]),
        Some("info") => cmd_info(&args[1..]),
        _ => {
            eprintln!("{USAGE}");
            std::process::exit(2);
        }
    };
    if let Err(e) = result {
        eprintln!("tracegen: {e}");
        std::process::exit(1);
    }
}

fn cmd_gen(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let program = args.first().ok_or(USAGE)?;
    let out_dir = args.get(1).ok_or(USAGE)?;
    let refs: u64 = flag_value(args, "--refs")
        .map(|v| v.parse())
        .transpose()?
        .unwrap_or(1_000_000);
    let seed: u64 = flag_value(args, "--seed")
        .map(|v| v.parse())
        .transpose()?
        .unwrap_or(0x7a9e);
    let format = flag_value(args, "--format").unwrap_or_else(|| "din".into());
    std::fs::create_dir_all(out_dir)?;

    let selected: Vec<_> = profiles::TABLE2
        .iter()
        .filter(|p| program == "all" || p.name == *program)
        .collect();
    if selected.is_empty() {
        return Err(format!(
            "unknown program {program:?}; expected one of: all, {}",
            profiles::TABLE2
                .iter()
                .map(|p| p.name)
                .collect::<Vec<_>>()
                .join(", ")
        )
        .into());
    }

    for p in selected {
        // Scale each program so it contributes ~`refs` references.
        let scale = (((p.refs_millions * 1e6) as u64) / refs).max(1);
        let mut src = p.source(scale, seed);
        let path = format!("{out_dir}/{}.{format}", p.name);
        let file = BufWriter::new(File::create(&path)?);
        let written = match format.as_str() {
            "din" => {
                let mut w = DinWriter::new(file);
                let n = rampage_trace::io::copy_din(&mut src, &mut w)?;
                w.finish()?;
                n
            }
            "bin" => {
                let mut w = BinWriter::new(file)?;
                let n = rampage_trace::io::copy_bin(&mut src, &mut w)?;
                w.finish()?;
                n
            }
            other => return Err(format!("unknown format {other:?} (din|bin)").into()),
        };
        println!("{path}: {written} references");
    }
    Ok(())
}

fn cmd_info(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let path = args.first().ok_or(USAGE)?;
    let limit: u64 = flag_value(args, "--limit")
        .map(|v| v.parse())
        .transpose()?
        .unwrap_or(u64::MAX);

    let stats = if path.ends_with(".bin") {
        let mut r = BinReader::new(BufReader::new(File::open(path)?))?;
        let s = TraceStats::collect(&mut r, limit, 32, 4096);
        if let Some(e) = r.error() {
            return Err(format!("{e}").into());
        }
        s
    } else {
        let mut r = DinReader::new(BufReader::new(File::open(path)?));
        let s = TraceStats::collect(&mut r, limit, 32, 4096);
        if let Some(e) = r.error() {
            return Err(format!("{e}").into());
        }
        s
    };

    let mix = stats.mix();
    println!("{path}:");
    println!("  references : {}", stats.total);
    println!(
        "  mix        : {:.1}% ifetch, {:.1}% read, {:.1}% write",
        100.0 * mix.ifetch,
        100.0 * mix.read,
        100.0 * mix.write
    );
    println!(
        "  footprint  : {} x 32 B blocks, {} x 4 KiB pages ({} KiB)",
        stats.unique_blocks,
        stats.unique_pages,
        stats.page_footprint_bytes(4096) / 1024
    );
    Ok(())
}
