//! Regenerates every table and figure of the RAMpage paper.
//!
//! ```text
//! repro [--scale N] [--nbench N] [--out DIR] <artifact>...
//!
//! artifacts: table1 table2 table3 fig2 fig3 fig4 table4 table5 fig5
//!            ablations perbench diag all
//! ```
//!
//! `--scale N` divides the paper's 1.1-billion-reference trace volume
//! (default 50; use 1 for the full volume). Results are printed as text
//! tables and, with `--out`, also dumped as JSON for EXPERIMENTS.md.

use rampage_core::experiments::{
    ablations, anatomy, fig5, figures, per_benchmark, table1, table2, table3, table4, table5,
    timeslice, Workload, PAPER_SIZES,
};
use rampage_core::IssueRate;
use std::collections::BTreeMap;
use std::io::Write as _;
use std::time::Instant;

#[derive(Clone)]
struct Options {
    scale: u64,
    nbench: usize,
    out_dir: Option<String>,
    artifacts: Vec<String>,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        scale: 50,
        nbench: 18,
        out_dir: None,
        artifacts: Vec::new(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--scale" => {
                let v = args.next().ok_or("--scale needs a value")?;
                opts.scale = v.parse().map_err(|_| format!("bad scale: {v}"))?;
                if opts.scale == 0 {
                    return Err("scale must be positive".into());
                }
            }
            "--nbench" => {
                let v = args.next().ok_or("--nbench needs a value")?;
                opts.nbench = v.parse().map_err(|_| format!("bad nbench: {v}"))?;
                if !(1..=18).contains(&opts.nbench) {
                    return Err("nbench must be 1..=18".into());
                }
            }
            "--out" => opts.out_dir = Some(args.next().ok_or("--out needs a directory")?),
            "--help" | "-h" => return Err(USAGE.into()),
            other if other.starts_with('-') => return Err(format!("unknown flag {other}\n{USAGE}")),
            other => opts.artifacts.push(other.to_string()),
        }
    }
    if opts.artifacts.is_empty() {
        return Err(USAGE.into());
    }
    Ok(opts)
}

const USAGE: &str = "usage: repro [--scale N] [--nbench N] [--out DIR] \
<table1|table2|table3|fig2|fig3|fig4|table4|table5|fig5|ablations|perbench|anatomy|timeslice|all>...";

fn main() {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    let workload = Workload {
        nbench: opts.nbench,
        scale: opts.scale,
        seed: 0x7a9e,
    };
    eprintln!(
        "# workload: {} benchmarks, scale 1/{}, {} total refs",
        workload.nbench,
        workload.scale,
        workload.total_refs()
    );

    let mut wanted: Vec<String> = opts.artifacts.clone();
    if wanted.iter().any(|a| a == "all") {
        wanted = [
            "table1", "table2", "table3", "fig2", "fig3", "fig4", "table4", "table5", "fig5",
            "ablations", "perbench", "anatomy", "timeslice",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
    }

    // Table 3 feeds figs 2-4 and Table 4; compute it lazily, once.
    let mut t3_cache: Option<table3::Table3> = None;
    let mut t4_cache: Option<table4::Table4> = None;
    let mut t5_cache: Option<table5::Table5> = None;
    let mut json: BTreeMap<String, serde_json::Value> = BTreeMap::new();

    let needs_t3 = |a: &str| matches!(a, "table3" | "fig2" | "fig3" | "fig4" | "table4" | "fig5");
    let get_t3 = |cache: &mut Option<table3::Table3>, w: &Workload| -> table3::Table3 {
        cache
            .get_or_insert_with(|| {
                let t0 = Instant::now();
                let t = table3::run_paper(w);
                eprintln!("# table3 sweep took {:.1}s", t0.elapsed().as_secs_f64());
                t
            })
            .clone()
    };

    for artifact in &wanted {
        let t0 = Instant::now();
        let text = match artifact.as_str() {
            "table1" => {
                let t = table1::run();
                json.insert("table1".into(), serde_json::to_value(&t.rows).unwrap());
                t.render()
            }
            "table2" => table2::render(),
            a if needs_t3(a) => {
                let t3 = get_t3(&mut t3_cache, &workload);
                match a {
                    "table3" => {
                        json.insert("table3".into(), serde_json::to_value(&t3).unwrap());
                        t3.render()
                    }
                    "fig2" => {
                        let f = figures::level_figure(&t3, 200, "Figure 2");
                        json.insert("fig2".into(), serde_json::to_value(&f).unwrap());
                        f.render()
                    }
                    "fig3" => {
                        let f = figures::level_figure(&t3, 4000, "Figure 3");
                        json.insert("fig3".into(), serde_json::to_value(&f).unwrap());
                        f.render()
                    }
                    "fig4" => {
                        let f = figures::figure4(&t3);
                        json.insert("fig4".into(), serde_json::to_value(&f).unwrap());
                        f.render()
                    }
                    "table4" => {
                        let t4 = t4_cache
                            .get_or_insert_with(|| table4::run(&workload, &t3))
                            .clone();
                        json.insert("table4".into(), serde_json::to_value(&t4).unwrap());
                        t4.render()
                    }
                    "fig5" => {
                        let t4 = t4_cache
                            .get_or_insert_with(|| table4::run(&workload, &t3))
                            .clone();
                        let t5 = t5_cache
                            .get_or_insert_with(|| {
                                table5::run(&workload, &IssueRate::PAPER_SWEEP, &PAPER_SIZES)
                            })
                            .clone();
                        let f = fig5::derive(&t4, &t5);
                        json.insert("fig5".into(), serde_json::to_value(&f).unwrap());
                        f.render()
                    }
                    _ => unreachable!(),
                }
            }
            "table5" => {
                let t5 = t5_cache
                    .get_or_insert_with(|| {
                        table5::run(&workload, &IssueRate::PAPER_SWEEP, &PAPER_SIZES)
                    })
                    .clone();
                json.insert("table5".into(), serde_json::to_value(&t5).unwrap());
                t5.render()
            }
            "diag" => {
                use rampage_core::experiments::{run_config, PAPER_SIZES};
                use rampage_core::SystemConfig;
                let mut out = String::from(
                    "diag: per-config detail @ 1 GHz\nsystem size secs cpr l1i% l1d% l2% tlb% ovh% dram_ev frac(L1i/L1d/L2S/DRAM/idle)\n",
                );
                for &size in &PAPER_SIZES {
                    for (name, cfg) in [
                        ("DM   ", SystemConfig::baseline(IssueRate::GHZ1, size)),
                        ("RAMp ", SystemConfig::rampage(IssueRate::GHZ1, size)),
                        ("2way ", SystemConfig::two_way(IssueRate::GHZ1, size)),
                    ] {
                        let c = run_config(&cfg, &workload);
                        let f = c.fractions;
                        out.push_str(&format!(
                            "{name} {size:5} {:.4} {:.2} {:.2} {:.2} {:.2} {:.2} {:.1} {} {:.2}/{:.2}/{:.2}/{:.2}/{:.2}\n",
                            c.seconds,
                            c.cycles_per_ref,
                            100.0 * c.l1i_miss_ratio,
                            100.0 * c.l1d_miss_ratio,
                            100.0 * c.l2_miss_ratio,
                            100.0 * c.tlb_miss_ratio,
                            100.0 * c.overhead,
                            c.dram_events,
                            f.l1i, f.l1d, f.l2_sram, f.dram, f.idle
                        ));
                    }
                }
                out
            }
            "anatomy" => {
                let a = anatomy::run(&workload, IssueRate::GHZ1, &PAPER_SIZES);
                json.insert("anatomy".into(), serde_json::to_value(&a).unwrap());
                a.render()
            }
            "timeslice" => {
                let ts = timeslice::run(
                    &workload,
                    &[IssueRate::MHZ200, IssueRate::GHZ1, IssueRate::GHZ4],
                    &PAPER_SIZES,
                    timeslice::DEFAULT_SLICE_PS,
                );
                json.insert("timeslice".into(), serde_json::to_value(&ts).unwrap());
                ts.render()
            }
            "perbench" => {
                // Each program alone: give each the average per-program
                // volume of the interleaved workload.
                let refs = (61_000_000 / opts.scale).max(10_000);
                let s = per_benchmark::run(IssueRate::GHZ1, &PAPER_SIZES, refs, 0x7a9e);
                json.insert("perbench".into(), serde_json::to_value(&s).unwrap());
                s.render()
            }
            "ablations" => {
                let a = ablations::run(&workload, IssueRate::GHZ1, 1024);
                json.insert("ablations".into(), serde_json::to_value(&a).unwrap());
                a.render()
            }
            other => {
                eprintln!("unknown artifact: {other}\n{USAGE}");
                std::process::exit(2);
            }
        };
        println!("{text}");
        eprintln!("# {artifact} done in {:.1}s\n", t0.elapsed().as_secs_f64());
    }

    if let Some(dir) = &opts.out_dir {
        std::fs::create_dir_all(dir).expect("create output dir");
        let path = format!("{dir}/results.json");
        let mut f = std::fs::File::create(&path).expect("create results.json");
        let doc = serde_json::json!({
            "scale": opts.scale,
            "nbench": opts.nbench,
            "results": json,
        });
        writeln!(f, "{}", serde_json::to_string_pretty(&doc).unwrap()).expect("write json");
        eprintln!("# wrote {path}");
    }
}
