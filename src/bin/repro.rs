//! Regenerates every table and figure of the RAMpage paper.
//!
//! ```text
//! repro [--scale N] [--nbench N] [--jobs N] [--out DIR] [--trace-dir DIR]
//!       [--max-cell-failures N] [--trace-events PATH] [--trace-cap N]
//!       [--resume] [--owner-id ID] [--no-journal] [--watchdog]
//!       [--stall-floor-ms N] [--stall-retries N]
//!       <artifact>...
//! repro trace record    --dir DIR [--scale N] [--nbench N] [--seed S] [--block-bytes N]
//! repro trace info      --dir DIR
//! repro trace verify    --dir DIR [--jobs N]
//! repro trace import-din --dir DIR --name NAME FILE [--block-bytes N]
//! repro lint [--tier token|dataflow] [--format text|json|sarif] [--quiet] [--root DIR]
//! repro lint --explain RULE
//! repro lint --configs [--json]
//!
//! artifacts: table1 table2 table3 fig2 fig3 fig4 table4 table5 fig5
//!            ablations perbench diag dramdiff all
//! ```
//!
//! `--scale N` divides the paper's 1.1-billion-reference trace volume
//! (default 50; use 1 for the full volume). `--jobs N` sets the worker
//! pool width (default: all cores; 1 = serial). Results are printed as
//! text tables and, with `--out`, also dumped as JSON for
//! EXPERIMENTS.md; `--out` additionally persists the cell cache
//! (`cells.json`) so overlapping sweeps across invocations are reused,
//! plus sweep telemetry (`metrics.json`: worker counts, per-cell wall
//! time, cache hit statistics).
//!
//! `--trace-events PATH` runs one traced RAMpage simulation (the 4 KB
//! switching configuration at 1 GHz) and writes its event stream as
//! JSONL to PATH and as a Chrome `trace_event` document to
//! `PATH.chrome.json` (load via chrome://tracing or Perfetto).
//! `--trace-cap N` bounds the in-memory event ring (default 262144;
//! the oldest events are dropped past the cap).
//!
//! `--trace-dir DIR` replays workloads from a recorded trace corpus
//! (see `repro trace record`) instead of regenerating them in memory:
//! shards whose name, seed, and scale match are streamed from disk
//! (bit-identical to synthesis, so cells and caches are unaffected);
//! anything unmatched silently falls back to synthesis.
//!
//! Failed cells (invalid configs, simulation panics) do not abort the
//! run: their table slots hold inert zero cells, a failure report is
//! printed at the end, and the exit code distinguishes the outcomes
//! (see below). Failures beyond `--max-cell-failures` (default 0) turn
//! the run into a hard failure, but only after every artifact has
//! rendered.
//!
//! With `--out`, sweeps are additionally crash-safe: every cell
//! transition is appended to a durable journal (`DIR/journal.jsonl`),
//! so a killed run resumes from its last completed cell when rerun
//! with the same `--out`, and several concurrent `repro` processes
//! sharing one `--out` cooperatively drain the grid via per-cell
//! leases (give each a distinct `--owner-id`, or let the pid-based
//! default apply). `--resume` asserts a journal already exists (a
//! typo'd fresh directory fails instead of silently restarting);
//! `--no-journal` turns journaling off. SIGINT/SIGTERM request a
//! graceful shutdown: in-flight cells finish, the journal and cell
//! cache are persisted, and the exit code says "resumable".
//! `--watchdog` arms the hung-cell watchdog (budget = p99 of completed
//! cells × 8, floored at `--stall-floor-ms`, doubled per retry up to
//! `--stall-retries` extra attempts); see EXPERIMENTS.md § Resumable
//! sweeps.
//!
//! Exit codes: 0 clean; 1 hard failure (failures over budget, or a
//! persistence error); 2 usage; 3 completed but with tolerated failed
//! cells; 4 interrupted by SIGINT/SIGTERM — partial, resumable.

use rampage_core::experiments::{
    ablations, anatomy, dram_backend, fig5, figures, per_benchmark, table1, table2, table3, table4,
    table5, timeslice, LeaseConfig, SweepRunner, WatchdogConfig, Workload, PAPER_SIZES,
};
use rampage_core::{DramKind, IssueRate};
use rampage_json::{obj, Json, ToJson};
use std::collections::BTreeMap;
use std::io::Write as _;
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

#[derive(Clone)]
struct Options {
    scale: u64,
    nbench: usize,
    jobs: usize,
    out_dir: Option<String>,
    max_cell_failures: usize,
    trace_events: Option<String>,
    trace_cap: usize,
    trace_dir: Option<String>,
    owner_id: Option<String>,
    resume: bool,
    no_journal: bool,
    watchdog: bool,
    stall_floor_ms: Option<u64>,
    stall_retries: Option<u32>,
    fault_specs: Vec<String>,
    dram_banked: bool,
    artifacts: Vec<String>,
}

/// Set by the SIGINT/SIGTERM handler; the runner checks it between
/// cells and drains the rest of the batch as resumable placeholders.
static SHUTDOWN: AtomicBool = AtomicBool::new(false);

extern "C" fn request_shutdown(_signum: i32) {
    // Async-signal-safe: a single atomic store, nothing else.
    SHUTDOWN.store(true, Ordering::SeqCst);
}

/// Install the graceful-shutdown handler for SIGINT (2) and SIGTERM
/// (15). Raw libc `signal` via an extern declaration: the handler is a
/// plain atomic flag, so the simplest registration primitive suffices
/// and no signal-handling dependency is needed.
fn install_signal_handlers() {
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    // SAFETY: `request_shutdown` only performs an atomic store, which
    // is async-signal-safe; the fn pointer matches the C signature.
    unsafe {
        let _ = signal(2, request_shutdown); // SIGINT
        let _ = signal(15, request_shutdown); // SIGTERM
    }
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        scale: 50,
        nbench: 18,
        jobs: 0, // 0 = all available cores
        out_dir: None,
        max_cell_failures: 0,
        trace_events: None,
        trace_cap: 1 << 18,
        trace_dir: None,
        owner_id: None,
        resume: false,
        no_journal: false,
        watchdog: false,
        stall_floor_ms: None,
        stall_retries: None,
        fault_specs: Vec::new(),
        dram_banked: false,
        artifacts: Vec::new(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--scale" => {
                let v = args.next().ok_or("--scale needs a value")?;
                opts.scale = v.parse().map_err(|_| format!("bad scale: {v}"))?;
                if opts.scale == 0 {
                    return Err("scale must be positive".into());
                }
            }
            "--nbench" => {
                let v = args.next().ok_or("--nbench needs a value")?;
                opts.nbench = v.parse().map_err(|_| format!("bad nbench: {v}"))?;
                if !(1..=18).contains(&opts.nbench) {
                    return Err("nbench must be 1..=18".into());
                }
            }
            "--jobs" | "-j" => {
                let v = args.next().ok_or("--jobs needs a value")?;
                opts.jobs = v.parse().map_err(|_| format!("bad jobs: {v}"))?;
            }
            "--out" => opts.out_dir = Some(args.next().ok_or("--out needs a directory")?),
            "--max-cell-failures" => {
                let v = args.next().ok_or("--max-cell-failures needs a value")?;
                opts.max_cell_failures = v
                    .parse()
                    .map_err(|_| format!("bad max-cell-failures: {v}"))?;
            }
            "--trace-events" => {
                opts.trace_events = Some(args.next().ok_or("--trace-events needs a path")?);
            }
            "--trace-dir" => {
                opts.trace_dir = Some(args.next().ok_or("--trace-dir needs a directory")?);
            }
            "--trace-cap" => {
                let v = args.next().ok_or("--trace-cap needs a value")?;
                opts.trace_cap = v.parse().map_err(|_| format!("bad trace-cap: {v}"))?;
                if opts.trace_cap == 0 {
                    return Err("trace-cap must be positive".into());
                }
            }
            "--owner-id" => {
                let v = args.next().ok_or("--owner-id needs a value")?;
                if v.is_empty() {
                    return Err("owner-id must not be empty".into());
                }
                opts.owner_id = Some(v);
            }
            "--resume" => opts.resume = true,
            "--no-journal" => opts.no_journal = true,
            "--watchdog" => opts.watchdog = true,
            "--stall-floor-ms" => {
                let v = args.next().ok_or("--stall-floor-ms needs a value")?;
                let ms = v.parse().map_err(|_| format!("bad stall-floor-ms: {v}"))?;
                opts.stall_floor_ms = Some(ms);
                opts.watchdog = true;
            }
            "--stall-retries" => {
                let v = args.next().ok_or("--stall-retries needs a value")?;
                let n = v.parse().map_err(|_| format!("bad stall-retries: {v}"))?;
                opts.stall_retries = Some(n);
                opts.watchdog = true;
            }
            "--fault" => {
                opts.fault_specs
                    .push(args.next().ok_or("--fault needs a spec")?);
            }
            "--dram-backend" => {
                let v = args.next().ok_or("--dram-backend needs flat or banked")?;
                opts.dram_banked = match v.as_str() {
                    "flat" => false,
                    "banked" => true,
                    other => return Err(format!("bad dram-backend: {other} (flat|banked)")),
                };
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other if other.starts_with('-') => {
                return Err(format!("unknown flag {other}\n{USAGE}"))
            }
            other => opts.artifacts.push(other.to_string()),
        }
    }
    if opts.artifacts.is_empty() && opts.trace_events.is_none() {
        return Err(USAGE.into());
    }
    if opts.resume && opts.out_dir.is_none() {
        return Err("--resume needs --out DIR (the journal lives next to cells.json)".into());
    }
    if opts.resume && opts.no_journal {
        return Err("--resume and --no-journal are contradictory".into());
    }
    if !opts.fault_specs.is_empty() && !cfg!(feature = "fault") {
        return Err("--fault requires a build with --features fault".into());
    }
    Ok(opts)
}

const USAGE: &str = "usage: repro [--scale N] [--nbench N] [--jobs N] [--out DIR] \
[--trace-dir DIR] [--max-cell-failures N] [--trace-events PATH] [--trace-cap N] \
[--resume] [--owner-id ID] [--no-journal] [--watchdog] [--stall-floor-ms N] \
[--stall-retries N] [--dram-backend flat|banked] \
<table1|table2|table3|fig2|fig3|fig4|table4|table5|fig5|ablations|perbench|anatomy|timeslice|dramdiff|all>...\n\
       repro trace <record|info|verify|import-din> (see repro trace --help)\n\
       repro lint [--configs] [--json] (see repro lint --help)\n\
exit codes: 0 clean, 1 hard failure, 2 usage, 3 tolerated failed cells, \
4 interrupted (resumable)";

fn main() {
    if std::env::args().nth(1).as_deref() == Some("trace") {
        let code = trace_main(std::env::args().skip(2).collect());
        std::process::exit(code);
    }
    if std::env::args().nth(1).as_deref() == Some("lint") {
        let code = lint_main(std::env::args().skip(2).collect());
        std::process::exit(code);
    }
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    if let Some(dir) = &opts.trace_dir {
        rampage_core::experiments::set_trace_dir(Some(dir.into()));
        eprintln!("# trace corpus: replaying matching shards from {dir}");
    }
    #[cfg(feature = "fault")]
    for spec in &opts.fault_specs {
        if let Err(e) = rampage_core::experiments::fault::arm_from_spec(spec) {
            eprintln!("bad --fault spec: {e}");
            std::process::exit(2);
        }
    }
    install_signal_handlers();
    let workload = Workload {
        nbench: opts.nbench,
        scale: opts.scale,
        seed: 0x7a9e,
        solo: None,
    };
    // Heartbeat: one stderr line per simulated cell, so long sweeps are
    // visibly alive and carry a rough completion estimate.
    let mut runner = SweepRunner::new(opts.jobs).with_progress(|p| {
        eprintln!(
            "# cell {}/{} ({} cached): {} B @ {} MHz in {:.1}s{}, ~{:.0}s left",
            p.batch_done,
            p.batch_total,
            p.batch_cached,
            p.unit_bytes,
            p.issue_mhz,
            p.cell_secs,
            if p.failed { " [FAILED]" } else { "" },
            p.eta_secs
        );
    });
    runner = runner.with_shutdown_flag(&SHUTDOWN);
    if opts.dram_banked {
        // Re-point every preset sweep at the banked Direct Rambus
        // backend; fingerprints change with the config, so cached flat
        // cells are never reused for banked runs.
        eprintln!(
            "# dram backend: banked ({})",
            DramKind::banked().diagnostics()
        );
        runner = runner.with_dram(DramKind::banked());
    }
    if opts.watchdog {
        let mut cfg = WatchdogConfig::default();
        if let Some(ms) = opts.stall_floor_ms {
            cfg.floor_ms = ms;
        }
        if let Some(n) = opts.stall_retries {
            cfg.max_stall_retries = n;
        }
        runner = runner.with_watchdog(cfg);
    }
    eprintln!(
        "# workload: {} benchmarks, scale 1/{}, {} total refs; {} worker(s)",
        workload.nbench,
        workload.scale,
        workload.total_refs(),
        runner.jobs()
    );

    // A persisted cell cache under --out carries finished cells across
    // invocations (the fingerprint covers config + workload, so stale
    // reuse is impossible; a version bump invalidates the file).
    let cells_path = opts
        .out_dir
        .as_ref()
        .map(|d| Path::new(d).join("cells.json"));
    if let Some(dir) = &opts.out_dir {
        // The journal (and later the persisted artifacts) need the
        // directory up front, not at save time.
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create --out {dir}: {e}");
            std::process::exit(1);
        }
    }
    if let Some(path) = &cells_path {
        let load = runner.cache().load_file(path);
        if !load.is_clean() || load.loaded > 0 {
            eprintln!("# cache {}: {}", path.display(), load.describe());
        }
    }
    // Crash safety: with --out, every cell transition goes through a
    // durable journal so a killed run resumes and concurrent processes
    // sharing the directory drain the grid cooperatively.
    if let Some(dir) = &opts.out_dir {
        if opts.no_journal {
            eprintln!("# journal: disabled (--no-journal)");
        } else {
            let jpath = Path::new(dir).join("journal.jsonl");
            if opts.resume && !jpath.exists() {
                eprintln!(
                    "--resume: no journal at {} — nothing to resume \
                     (drop --resume to start fresh)",
                    jpath.display()
                );
                std::process::exit(2);
            }
            let owner = opts
                .owner_id
                .clone()
                .unwrap_or_else(|| format!("pid{}", std::process::id()));
            runner = match runner.with_journal(&jpath, LeaseConfig::new(owner)) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("cannot open journal {}: {e}", jpath.display());
                    std::process::exit(1);
                }
            };
            if let Some(summary) = runner.resume_summary() {
                eprintln!("# {summary}");
            }
        }
    }

    let mut wanted: Vec<String> = opts.artifacts.clone();
    if wanted.iter().any(|a| a == "all") {
        wanted = [
            "table1",
            "table2",
            "table3",
            "fig2",
            "fig3",
            "fig4",
            "table4",
            "table5",
            "fig5",
            "ablations",
            "perbench",
            "anatomy",
            "timeslice",
            "dramdiff",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
    }

    // Table 3 feeds figs 2-4 and Table 4, and Table 5 feeds Figure 5;
    // re-deriving them per artifact is free because every cell comes out
    // of the runner's cache after the first sweep.
    let mut json: BTreeMap<String, Json> = BTreeMap::new();
    // The dramdiff study's compact summary, folded into metrics.json.
    let mut dram_divergence: Option<Json> = None;

    let needs_t3 = |a: &str| matches!(a, "table3" | "fig2" | "fig3" | "fig4" | "table4" | "fig5");
    let get_t3 = |runner: &SweepRunner, w: &Workload| -> table3::Table3 {
        let t0 = Instant::now();
        let t = table3::run_paper(runner, w);
        eprintln!("# table3 sweep took {:.1}s", t0.elapsed().as_secs_f64());
        t
    };
    let get_t5 = |runner: &SweepRunner, w: &Workload| -> table5::Table5 {
        table5::run(runner, w, &IssueRate::PAPER_SWEEP, &PAPER_SIZES)
    };

    for artifact in &wanted {
        let t0 = Instant::now();
        let text = match artifact.as_str() {
            "table1" => {
                let t = table1::run();
                json.insert("table1".into(), t.rows.to_json());
                t.render()
            }
            "table2" => table2::render(),
            a if needs_t3(a) => {
                let t3 = get_t3(&runner, &workload);
                match a {
                    "table3" => {
                        json.insert("table3".into(), t3.to_json());
                        t3.render()
                    }
                    "fig2" => {
                        let f = figures::level_figure(&t3, 200, "Figure 2");
                        json.insert("fig2".into(), f.to_json());
                        f.render()
                    }
                    "fig3" => {
                        let f = figures::level_figure(&t3, 4000, "Figure 3");
                        json.insert("fig3".into(), f.to_json());
                        f.render()
                    }
                    "fig4" => {
                        let f = figures::figure4(&t3);
                        json.insert("fig4".into(), f.to_json());
                        f.render()
                    }
                    "table4" => {
                        let t4 = table4::run(&runner, &workload, &t3);
                        json.insert("table4".into(), t4.to_json());
                        t4.render()
                    }
                    "fig5" => {
                        let t4 = table4::run(&runner, &workload, &t3);
                        let t5 = get_t5(&runner, &workload);
                        let f = fig5::derive(&t4, &t5);
                        json.insert("fig5".into(), f.to_json());
                        f.render()
                    }
                    _ => unreachable!(),
                }
            }
            "table5" => {
                let t5 = get_t5(&runner, &workload);
                json.insert("table5".into(), t5.to_json());
                t5.render()
            }
            "diag" => {
                use rampage_core::SystemConfig;
                let mut out = String::from(
                    "diag: per-config detail @ 1 GHz\nsystem size secs cpr l1i% l1d% l2% tlb% ovh% dram_ev frac(L1i/L1d/L2S/DRAM/idle)\n",
                );
                for &size in &PAPER_SIZES {
                    for (name, cfg) in [
                        ("DM   ", SystemConfig::baseline(IssueRate::GHZ1, size)),
                        ("RAMp ", SystemConfig::rampage(IssueRate::GHZ1, size)),
                        ("2way ", SystemConfig::two_way(IssueRate::GHZ1, size)),
                    ] {
                        let c = runner.run_one(&cfg, &workload);
                        let f = c.fractions;
                        out.push_str(&format!(
                            "{name} {size:5} {:.4} {:.2} {:.2} {:.2} {:.2} {:.2} {:.1} {} {:.2}/{:.2}/{:.2}/{:.2}/{:.2}\n",
                            c.seconds,
                            c.cycles_per_ref,
                            100.0 * c.l1i_miss_ratio,
                            100.0 * c.l1d_miss_ratio,
                            100.0 * c.l2_miss_ratio,
                            100.0 * c.tlb_miss_ratio,
                            100.0 * c.overhead,
                            c.dram_events,
                            f.l1i, f.l1d, f.l2_sram, f.dram, f.idle
                        ));
                    }
                }
                out
            }
            "anatomy" => {
                let a = anatomy::run(&workload, IssueRate::GHZ1, &PAPER_SIZES);
                json.insert("anatomy".into(), a.to_json());
                a.render()
            }
            "timeslice" => {
                let ts = timeslice::run(
                    &runner,
                    &workload,
                    &[IssueRate::MHZ200, IssueRate::GHZ1, IssueRate::GHZ4],
                    &PAPER_SIZES,
                    timeslice::DEFAULT_SLICE_PS,
                );
                json.insert("timeslice".into(), ts.to_json());
                ts.render()
            }
            "perbench" => {
                // Each program alone: give each the average per-program
                // volume of the interleaved workload.
                let refs = (61_000_000 / opts.scale).max(10_000);
                let s = per_benchmark::run(&runner, IssueRate::GHZ1, &PAPER_SIZES, refs, 0x7a9e);
                json.insert("perbench".into(), s.to_json());
                s.render()
            }
            "ablations" => {
                let a = ablations::run(&runner, &workload, IssueRate::GHZ1, 1024);
                json.insert("ablations".into(), a.to_json());
                a.render()
            }
            "dramdiff" => {
                // Same per-program volume as perbench: each Table 2
                // program alone, through both backends.
                let refs = (61_000_000 / opts.scale).max(10_000);
                let s = dram_backend::run(
                    &runner,
                    IssueRate::GHZ1,
                    &dram_backend::DIVERGENCE_SIZES,
                    refs,
                    0x7a9e,
                );
                json.insert("dramdiff".into(), s.to_json());
                dram_divergence = Some(s.metrics_json());
                s.render()
            }
            other => {
                eprintln!("unknown artifact: {other}\n{USAGE}");
                std::process::exit(2);
            }
        };
        println!("{text}");
        eprintln!("# {artifact} done in {:.1}s", t0.elapsed().as_secs_f64());
        eprintln!(
            "# cells: {} simulated, {} cache hit(s) so far\n",
            runner.cache().computed(),
            runner.cache().hits()
        );
        if runner.interrupted() {
            eprintln!("# shutdown requested: stopping after {artifact}; state is resumable");
            break;
        }
    }

    // Persistence failures must not discard the rendered results above:
    // warn and carry the failure into the exit code instead of dying.
    let mut persist_failed = false;
    if let Some(path) = &opts.trace_events {
        use rampage_core::experiments::run_config_traced;
        use rampage_core::obs::{chrome_trace, to_jsonl};
        use rampage_core::SystemConfig;
        let cfg = SystemConfig::rampage_switching(IssueRate::GHZ1, 4096);
        let t0 = Instant::now();
        let (_, out) = run_config_traced(&cfg, &workload, opts.trace_cap);
        eprintln!(
            "# traced {} in {:.1}s: {} event(s), {} dropped",
            cfg.label(),
            t0.elapsed().as_secs_f64(),
            out.events.len(),
            out.events_dropped
        );
        println!("{}", out.report());
        let metadata = vec![
            ("config".to_string(), cfg.label().to_json()),
            ("dram".to_string(), cfg.dram.diagnostics().to_json()),
            ("trace_cap".to_string(), (opts.trace_cap as u64).to_json()),
            ("events_dropped".to_string(), out.events_dropped.to_json()),
        ];
        let chrome_path = format!("{path}.chrome.json");
        let parent = Path::new(path)
            .parent()
            .filter(|p| !p.as_os_str().is_empty());
        let write = parent
            .map_or(Ok(()), std::fs::create_dir_all)
            .and_then(|()| std::fs::write(path, to_jsonl(&out.events)))
            .and_then(|()| {
                std::fs::write(&chrome_path, chrome_trace(&out.events, metadata).pretty())
            });
        match write {
            Ok(()) => eprintln!("# wrote {path} and {chrome_path}"),
            Err(e) => {
                eprintln!("# WARNING: could not write event trace: {e}");
                persist_failed = true;
            }
        }
    }
    if let Some(dir) = &opts.out_dir {
        if runner.interrupted() {
            // Interrupted tables hold placeholder cells; publishing
            // them as results.json would look like real output. The
            // journal and cell cache below carry the resumable state.
            eprintln!("# interrupted: skipping results.json (tables are partial)");
        } else {
            let results: Vec<(String, Json)> = json.into_iter().collect();
            let doc = obj! {
                "scale" => opts.scale,
                "nbench" => opts.nbench,
                "results" => Json::Obj(results),
            };
            let path = format!("{dir}/results.json");
            match std::fs::create_dir_all(dir)
                .and_then(|()| std::fs::File::create(&path))
                .and_then(|mut f| writeln!(f, "{}", doc.pretty()))
            {
                Ok(()) => eprintln!("# wrote {path}"),
                Err(e) => {
                    eprintln!("# WARNING: could not write {path}: {e}");
                    persist_failed = true;
                }
            }
        }
        if let Some(cpath) = &cells_path {
            match runner.cache().save_file(cpath) {
                Ok(()) => eprintln!(
                    "# wrote {} ({} cell(s))",
                    cpath.display(),
                    runner.cache().len()
                ),
                Err(e) => {
                    eprintln!("# WARNING: could not write {}: {e}", cpath.display());
                    persist_failed = true;
                }
            }
        }
        let mpath = format!("{dir}/metrics.json");
        let mut mdoc = runner.telemetry_json();
        if let (Some(d), Json::Obj(pairs)) = (&dram_divergence, &mut mdoc) {
            pairs.push(("dram_divergence".to_string(), d.clone()));
        }
        match std::fs::File::create(&mpath).and_then(|mut f| writeln!(f, "{}", mdoc.pretty())) {
            Ok(()) => eprintln!("# wrote {mpath}"),
            Err(e) => {
                eprintln!("# WARNING: could not write {mpath}: {e}");
                persist_failed = true;
            }
        }
    }

    if opts.trace_dir.is_some() {
        let s = rampage_core::experiments::corpus_source_stats();
        eprintln!(
            "# trace corpus: {} source(s) replayed from disk, {} synthesized (fallback)",
            s.opened, s.fallback
        );
    }

    let failures = runner.failure_count();
    if failures > 0 {
        eprintln!("{}", runner.failure_report());
    }
    if runner.interrupted() {
        eprintln!(
            "# INTERRUPTED: shutdown requested mid-sweep; rerun with the same --out to resume"
        );
        std::process::exit(4);
    }
    if failures > opts.max_cell_failures {
        eprintln!(
            "# FAILED: {failures} failed cell(s) exceeds --max-cell-failures {}",
            opts.max_cell_failures
        );
        std::process::exit(1);
    }
    if persist_failed {
        std::process::exit(1);
    }
    if failures > 0 {
        // Tolerated (within --max-cell-failures) but not clean: a
        // distinct code so scripts can tell "complete" from
        // "complete with placeholder cells".
        eprintln!("# completed with {failures} tolerated failed cell(s)");
        std::process::exit(3);
    }
}

const TRACE_USAGE: &str = "usage: repro trace <subcommand>\n\
  record     --dir DIR [--scale N] [--nbench N] [--seed S] [--block-bytes N]\n\
             Record the first N Table 2 profiles at 1/scale volume into a\n\
             corpus directory (shard files + manifest.json).\n\
  info       --dir DIR\n\
             Summarize a corpus: shards, records, bytes, compression.\n\
  verify     --dir DIR [--jobs N]\n\
             Re-read every shard in parallel, checking checksums, counts,\n\
             stats, and Table 2 profile fidelity. Non-zero exit on failure.\n\
  import-din --dir DIR --name NAME FILE [--block-bytes N]\n\
             Convert a Dinero ASCII ('din') trace file into a corpus shard\n\
             and add it to the manifest.";

/// Flag parsing shared by the `trace` subcommands.
struct TraceArgs {
    dir: Option<String>,
    name: Option<String>,
    scale: u64,
    nbench: usize,
    seed: u64,
    jobs: usize,
    block_bytes: usize,
    positional: Vec<String>,
}

fn parse_trace_args(args: &[String]) -> Result<TraceArgs, String> {
    let mut out = TraceArgs {
        dir: None,
        name: None,
        scale: 50,
        nbench: 18,
        seed: 0x7a9e,
        jobs: std::thread::available_parallelism().map_or(1, |n| n.get()),
        block_bytes: rampage_trace::corpus::DEFAULT_BLOCK_BYTES,
        positional: Vec::new(),
    };
    let mut it = args.iter();
    let need = |it: &mut std::slice::Iter<String>, flag: &str| {
        it.next().cloned().ok_or(format!("{flag} needs a value"))
    };
    while let Some(a) = it.next() {
        match a.as_str() {
            "--dir" => out.dir = Some(need(&mut it, "--dir")?),
            "--name" => out.name = Some(need(&mut it, "--name")?),
            "--scale" => {
                out.scale = need(&mut it, "--scale")?
                    .parse()
                    .map_err(|_| "bad scale".to_string())?;
                if out.scale == 0 {
                    return Err("scale must be positive".into());
                }
            }
            "--nbench" => {
                out.nbench = need(&mut it, "--nbench")?
                    .parse()
                    .map_err(|_| "bad nbench".to_string())?;
                if !(1..=18).contains(&out.nbench) {
                    return Err("nbench must be 1..=18".into());
                }
            }
            "--seed" => {
                out.seed = need(&mut it, "--seed")?
                    .parse()
                    .map_err(|_| "bad seed".to_string())?;
            }
            "--jobs" | "-j" => {
                out.jobs = need(&mut it, "--jobs")?
                    .parse()
                    .map_err(|_| "bad jobs".to_string())?;
            }
            "--block-bytes" => {
                out.block_bytes = need(&mut it, "--block-bytes")?
                    .parse()
                    .map_err(|_| "bad block-bytes".to_string())?;
            }
            "--help" | "-h" => {
                println!("{TRACE_USAGE}");
                std::process::exit(0);
            }
            other if other.starts_with('-') => return Err(format!("unknown flag {other}")),
            other => out.positional.push(other.to_string()),
        }
    }
    Ok(out)
}

/// Raw `Bin`-format bytes the same records would occupy (the 8-byte
/// magic plus nine bytes per record) — the compression yardstick.
fn bin_equivalent_bytes(records: u64) -> u64 {
    8 + 9 * records
}

fn trace_main(args: Vec<String>) -> i32 {
    use rampage_trace::corpus;
    use rampage_trace::profiles::TABLE2;

    let Some(cmd) = args.first().cloned() else {
        eprintln!("{TRACE_USAGE}");
        return 2;
    };
    if cmd == "--help" || cmd == "-h" {
        println!("{TRACE_USAGE}");
        return 0;
    }
    let parsed = match parse_trace_args(&args[1..]) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{e}\n{TRACE_USAGE}");
            return 2;
        }
    };
    let Some(dir) = parsed.dir.clone() else {
        eprintln!("{cmd}: --dir DIR is required\n{TRACE_USAGE}");
        return 2;
    };
    let dir = Path::new(&dir);

    match cmd.as_str() {
        "record" => {
            let t0 = Instant::now();
            let profiles = &TABLE2[..parsed.nbench];
            eprintln!(
                "# recording {} profile(s) at scale 1/{} seed {:#x} into {}",
                profiles.len(),
                parsed.scale,
                parsed.seed,
                dir.display()
            );
            match corpus::record_profiles(
                dir,
                profiles,
                parsed.scale,
                parsed.seed,
                parsed.block_bytes,
            ) {
                Ok(m) => {
                    let records = m.total_records();
                    let bytes = m.total_bytes();
                    let raw = bin_equivalent_bytes(records);
                    println!(
                        "recorded {} shard(s): {} records, {} bytes ({:.2} B/record, {:.1}x smaller than raw Bin) in {:.1}s",
                        m.shards.len(),
                        records,
                        bytes,
                        bytes as f64 / records.max(1) as f64,
                        raw as f64 / bytes.max(1) as f64,
                        t0.elapsed().as_secs_f64()
                    );
                    0
                }
                Err(e) => {
                    eprintln!("record failed: {e}");
                    1
                }
            }
        }
        "info" => match corpus::Manifest::load(dir) {
            Ok(m) => {
                println!(
                    "{:12} {:>10} {:>7} {:>10} {:>7} {:>6} {:>10} {:>6}  profile-drift",
                    "shard", "records", "blocks", "bytes", "B/rec", "ratio", "scale", "seed"
                );
                for s in &m.shards {
                    let drift = s
                        .profile
                        .as_ref()
                        .map(|p| format!("{:.4}", p.drift(&s.stats)))
                        .unwrap_or_else(|| "-".to_string());
                    println!(
                        "{:12} {:>10} {:>7} {:>10} {:>7.2} {:>5.1}x {:>10} {:>6}  {drift}",
                        s.name,
                        s.records,
                        s.blocks,
                        s.bytes,
                        s.bytes as f64 / s.records.max(1) as f64,
                        bin_equivalent_bytes(s.records) as f64 / s.bytes.max(1) as f64,
                        s.scale.map_or("-".to_string(), |v| v.to_string()),
                        s.seed.map_or("-".to_string(), |v| format!("{v:#x}")),
                    );
                }
                let raw = bin_equivalent_bytes(m.total_records());
                println!(
                    "total: {} records in {} bytes ({:.1}x smaller than raw Bin)",
                    m.total_records(),
                    m.total_bytes(),
                    raw as f64 / m.total_bytes().max(1) as f64
                );
                0
            }
            Err(e) => {
                eprintln!("info failed: {e}");
                1
            }
        },
        "verify" => {
            let t0 = Instant::now();
            match corpus::verify_dir(dir, parsed.jobs) {
                Ok(report) => {
                    print!("{}", report.render());
                    eprintln!("# verified in {:.1}s", t0.elapsed().as_secs_f64());
                    if report.ok() {
                        0
                    } else {
                        1
                    }
                }
                Err(e) => {
                    eprintln!("verify failed: {e}");
                    1
                }
            }
        }
        "import-din" => {
            let Some(name) = parsed.name.clone() else {
                eprintln!("import-din: --name NAME is required");
                return 2;
            };
            let Some(file) = parsed.positional.first() else {
                eprintln!("import-din: a din FILE argument is required");
                return 2;
            };
            let input = match std::fs::File::open(file) {
                Ok(f) => std::io::BufReader::new(f),
                Err(e) => {
                    eprintln!("import-din: cannot open {file}: {e}");
                    return 1;
                }
            };
            let mut source = rampage_trace::io::DinReader::new(input);
            let meta = match corpus::record_source(
                dir,
                &name,
                &mut source,
                parsed.block_bytes,
                None,
                None,
                None,
            ) {
                Ok(meta) => meta,
                Err(e) => {
                    eprintln!("import-din failed: {e}");
                    return 1;
                }
            };
            if let Some(err) = source.error() {
                eprintln!("import-din: input ended with an error: {err}");
                return 1;
            }
            let mut manifest = corpus::Manifest::load(dir).unwrap_or_default();
            manifest.shards.retain(|s| s.name != name);
            println!(
                "imported {name}: {} records in {} blocks, {} bytes",
                meta.records, meta.blocks, meta.bytes
            );
            manifest.shards.push(meta);
            manifest.shards.sort_by(|a, b| a.name.cmp(&b.name));
            match manifest.save(dir) {
                Ok(()) => 0,
                Err(e) => {
                    eprintln!("import-din: could not update manifest: {e}");
                    1
                }
            }
        }
        other => {
            eprintln!("unknown trace subcommand: {other}\n{TRACE_USAGE}");
            2
        }
    }
}

const LINT_USAGE: &str =
    "usage: repro lint [--tier TIER] [--format FMT] [--json] [--quiet] [--root DIR]
       repro lint --explain RULE
       repro lint --configs [--json]

Runs the workspace static analyzer (rampage-analysis): determinism
lints, panic discipline, and structural checks over every crate.

--tier token     fast token-stream passes only (default)
--tier dataflow  adds the AST/CFG/dataflow rules: unit-mix,
                 nondet-taint, claim-readback, cancel-poll
--format FMT     text (default), json, or sarif (CI annotation)
--explain RULE   print one rule's help text and exit

With --configs it instead enumerates every experiment preset's sweep
grid and runs SystemConfig::validate() on each cell, so a bad preset
fails at lint time rather than mid-sweep.

exit codes: 0 clean, 1 findings / invalid cells, 2 usage or I/O error";

/// `repro lint`: the analyzer as a first-class subcommand, plus the
/// `--configs` model-check mode over the preset grids in
/// [`rampage_core::experiments::grids`].
fn lint_main(args: Vec<String>) -> i32 {
    use rampage_analysis::Tier;

    let mut format = String::from("text");
    let mut quiet = false;
    let mut configs = false;
    let mut tier = Tier::Token;
    let mut root: Option<std::path::PathBuf> = None;
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => format = "json".into(),
            "--quiet" => quiet = true,
            "--configs" => configs = true,
            "--tier" => match it.next().as_deref().and_then(Tier::from_flag) {
                Some(t) => tier = t,
                None => {
                    eprintln!("--tier needs token|dataflow\n{LINT_USAGE}");
                    return 2;
                }
            },
            "--format" => match it.next() {
                Some(f) if matches!(f.as_str(), "text" | "json" | "sarif") => format = f,
                _ => {
                    eprintln!("--format needs text|json|sarif\n{LINT_USAGE}");
                    return 2;
                }
            },
            "--explain" => {
                use rampage_analysis::diag::RuleId;
                return match it
                    .next()
                    .as_deref()
                    .and_then(RuleId::from_waiver_str_or_meta)
                {
                    Some(rule) => {
                        println!("{}", rule.explain());
                        0
                    }
                    None => {
                        let ids: Vec<&str> = RuleId::ALL.iter().map(|r| r.as_str()).collect();
                        eprintln!("--explain needs one of: {}", ids.join(", "));
                        2
                    }
                };
            }
            "--root" => match it.next() {
                Some(p) => root = Some(p.into()),
                None => {
                    eprintln!("--root needs a path\n{LINT_USAGE}");
                    return 2;
                }
            },
            "--help" | "-h" => {
                println!("{LINT_USAGE}");
                return 0;
            }
            other => {
                if let Some(t) = other.strip_prefix("--tier=") {
                    match Tier::from_flag(t) {
                        Some(t) => {
                            tier = t;
                            continue;
                        }
                        None => {
                            eprintln!("--tier needs token|dataflow\n{LINT_USAGE}");
                            return 2;
                        }
                    }
                }
                if let Some(f) = other.strip_prefix("--format=") {
                    if matches!(f, "text" | "json" | "sarif") {
                        format = f.to_string();
                        continue;
                    }
                    eprintln!("--format needs text|json|sarif\n{LINT_USAGE}");
                    return 2;
                }
                eprintln!("unknown lint argument: {other}\n{LINT_USAGE}");
                return 2;
            }
        }
    }

    if configs {
        return lint_configs(format == "json");
    }

    let root = root.or_else(|| {
        let cwd = std::env::current_dir().ok()?;
        rampage_analysis::find_workspace_root(&cwd)
    });
    let Some(root) = root else {
        eprintln!("could not locate the workspace root; pass --root DIR");
        return 2;
    };
    let started = std::time::Instant::now();
    let report = match rampage_analysis::analyze_workspace_tier(&root, tier) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("lint: failed to analyze {}: {e}", root.display());
            return 2;
        }
    };
    let elapsed = started.elapsed();
    let diags = report.diagnostics;
    let active = diags.iter().filter(|d| d.is_active()).count();
    let waived = diags.len() - active;
    match format.as_str() {
        "json" => println!("{}", rampage_analysis::diag::render_json_report(&diags)),
        "sarif" => println!("{}", rampage_analysis::sarif::render_sarif(&diags)),
        _ => {
            if !quiet {
                for d in &diags {
                    println!("{}", d.render_text());
                }
            }
            println!("analysis: {active} finding(s), {waived} waived");
            println!(
                "analysis: tier={} files={} elapsed={:.0}ms",
                tier.as_str(),
                report.files,
                elapsed.as_secs_f64() * 1000.0
            );
        }
    }
    if active == 0 {
        0
    } else {
        1
    }
}

/// `repro lint --configs`: validate every cell of every preset grid.
fn lint_configs(json: bool) -> i32 {
    use rampage_core::experiments::grids;

    let grid_list = grids::preset_grids();
    let cells: usize = grid_list.iter().map(|g| g.cells.len()).sum();
    let errors = grids::validate_presets();
    if json {
        let errs: Vec<Json> = errors
            .iter()
            .map(|e| {
                obj! {
                    "grid" => e.grid,
                    "cell" => e.cell.as_str(),
                    "error" => e.error.to_string(),
                }
            })
            .collect();
        let doc = obj! {
            "presets" => grid_list.len(),
            "cells" => cells,
            "invalid" => errors.len(),
            "errors" => Json::Arr(errs),
        };
        println!("{}", doc.pretty());
    } else {
        for e in &errors {
            println!("{e}");
        }
        println!(
            "configs: {} preset grid(s), {cells} cell(s), {} invalid",
            grid_list.len(),
            errors.len()
        );
    }
    if errors.is_empty() {
        0
    } else {
        1
    }
}
