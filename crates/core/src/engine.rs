//! The multiprogramming engine.

use crate::config::SystemConfig;
use crate::metrics::Metrics;
use crate::obs::{Event, EventKind, TraceSink, ASID_NONE};
use crate::report::TableBuilder;
use crate::system::{self, MemorySystem};
use rampage_dram::Picos;
use rampage_trace::{profiles, AccessKind, Asid, TraceSource};
use std::fmt::Write as _;

/// One simulated process: a trace plus scheduling state.
struct Process {
    source: Box<dyn TraceSource + Send>,
    asid: Asid,
    blocked_until: Option<Picos>,
    finished: bool,
    refs: u64,
    ifetches: u64,
    stall_cycles: u64,
    faults: u64,
}

impl Process {
    fn runnable(&self, now: Picos) -> bool {
        !self.finished && self.blocked_until.is_none_or(|t| t <= now)
    }
}

/// What a completed run produced.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Accumulated time and counters.
    pub metrics: Metrics,
    /// Simulated elapsed time.
    pub elapsed: Picos,
    /// Simulated elapsed seconds (the paper's tables).
    pub seconds: f64,
    /// The memory system's description.
    pub system_label: String,
    /// Per-process accounting, in process-table order.
    pub per_process: Vec<ProcessSummary>,
    /// Recorded trace events, oldest first (empty unless
    /// [`Engine::enable_trace`] was called).
    pub events: Vec<Event>,
    /// Events the bounded ring had to discard (oldest-first eviction).
    pub events_dropped: u64,
}

impl RunOutcome {
    /// Render the full per-run report: headline metrics, the per-process
    /// table (stalls and blocked faults included), and the three latency
    /// histograms.
    pub fn report(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "system: {}", self.system_label);
        let _ = writeln!(
            s,
            "simulated: {:.4} s ({} ps elapsed)",
            self.seconds, self.elapsed.0
        );
        let _ = writeln!(s, "{}", self.metrics);
        let mut t = TableBuilder::new(vec![
            "process".into(),
            "refs".into(),
            "ifetches".into(),
            "stall cycles".into(),
            "blocked faults".into(),
        ]);
        for p in &self.per_process {
            t.row(vec![
                p.name.clone(),
                p.refs.to_string(),
                p.ifetches.to_string(),
                p.stall_cycles.to_string(),
                p.faults_blocked.to_string(),
            ]);
        }
        s.push_str(&t.render());
        s.push_str(&self.metrics.hist.dram.render("dram service (cycles)"));
        s.push_str(&self.metrics.hist.fault.render("fault service (cycles)"));
        s.push_str(&self.metrics.hist.tlb.render("tlb walk (cycles)"));
        if !self.events.is_empty() || self.events_dropped > 0 {
            let _ = writeln!(
                s,
                "trace: {} event(s) recorded, {} dropped",
                self.events.len(),
                self.events_dropped
            );
        }
        s
    }
}

/// How one process fared within the multiprogrammed run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProcessSummary {
    /// The trace's name (its Table 2 program, for suite workloads).
    pub name: String,
    /// References it issued.
    pub refs: u64,
    /// Of which instruction fetches.
    pub ifetches: u64,
    /// Stall cycles charged while it ran (memory system + handlers).
    pub stall_cycles: u64,
    /// Times it blocked on a page fault (switch-on-miss runs).
    pub faults_blocked: u64,
}

/// Drives interleaved traces through a memory system.
///
/// Reproduces the paper's workload construction (§4.2): round-robin over
/// the benchmark traces with a 500 000-reference quantum. Depending on the
/// configuration it also:
///
/// * inserts the ~400-reference context-switch trace at each switch
///   (§4.6, `switch_trace`);
/// * on a RAMpage page fault, blocks the faulting process until its DRAM
///   transfer completes and switches to another process
///   (`switch_on_miss`, Table 4), accounting idle time when no process is
///   runnable.
pub struct Engine {
    cfg: SystemConfig,
    system: Box<dyn MemorySystem + Send>,
    processes: Vec<Process>,
    current: usize,
    used_in_quantum: u64,
    /// Simulated time consumed in the current quantum (time-based mode).
    quantum_started: Picos,
    now: Picos,
    cycle: Picos,
    metrics: Metrics,
    trace: TraceSink,
}

impl Engine {
    /// Build an engine over explicit trace sources (one process each).
    ///
    /// # Panics
    ///
    /// Panics if `sources` is empty.
    pub fn new(cfg: &SystemConfig, sources: Vec<Box<dyn TraceSource + Send>>) -> Self {
        assert!(!sources.is_empty(), "need at least one process");
        let processes = sources
            .into_iter()
            .enumerate()
            .map(|(i, source)| Process {
                source,
                asid: Asid(i as u16),
                blocked_until: None,
                finished: false,
                refs: 0,
                ifetches: 0,
                stall_cycles: 0,
                faults: 0,
            })
            .collect();
        Engine {
            cfg: *cfg,
            system: system::build(cfg),
            processes,
            current: 0,
            used_in_quantum: 0,
            quantum_started: Picos::ZERO,
            now: Picos::ZERO,
            cycle: cfg.issue.cycle(),
            metrics: Metrics::default(),
            trace: TraceSink::disabled(),
        }
    }

    /// Turn on event tracing into a fresh ring bounded at `cap` events;
    /// the memory system shares the same ring. The recorded events come
    /// back in [`RunOutcome::events`].
    pub fn enable_trace(&mut self, cap: usize) {
        self.trace = TraceSink::bounded(cap);
        self.system.attach_trace(self.trace.clone());
    }

    /// Convenience: the first `nbench` programs of the paper's Table 2
    /// suite, each scaled to roughly `refs_per_bench` references.
    ///
    /// # Panics
    ///
    /// Panics if `nbench` is zero or `refs_per_bench` is zero.
    pub fn for_suite(cfg: &SystemConfig, nbench: usize, refs_per_bench: u64, seed: u64) -> Self {
        assert!(nbench > 0 && refs_per_bench > 0, "empty workload");
        let sources: Vec<Box<dyn TraceSource + Send>> = profiles::TABLE2
            .iter()
            .cycle()
            .take(nbench)
            .map(|p| {
                let scale = (((p.refs_millions * 1e6) as u64) / refs_per_bench).max(1);
                Box::new(p.source(scale, seed)) as Box<dyn TraceSource + Send>
            })
            .collect();
        Engine::new(cfg, sources)
    }

    /// The configuration this engine runs.
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    fn next_runnable_after(&self, from: usize) -> Option<usize> {
        let n = self.processes.len();
        (1..=n)
            .map(|d| (from + d) % n)
            .find(|&i| self.processes[i].runnable(self.now))
    }

    /// Rotate to the next runnable process, charging switch cost when the
    /// configuration includes the switch trace. Returns false when no
    /// other process could be scheduled (single-process case).
    fn rotate(&mut self, m_switch_on_miss: bool) {
        self.used_in_quantum = 0;
        self.quantum_started = self.now;
        let Some(next) = self.next_runnable_after(self.current) else {
            return;
        };
        if next == self.current {
            return;
        }
        let at = self.now;
        if self.cfg.switch_trace {
            let stall = self
                .system
                .run_switch(self.current, next, self.now, &mut self.metrics);
            self.now += Picos(stall * self.cycle.0);
        }
        if m_switch_on_miss {
            self.metrics.counts.switches_on_miss += 1;
        } else {
            self.metrics.counts.context_switches += 1;
        }
        let dur = self.now.saturating_sub(at);
        let from_asid = self.processes[self.current].asid;
        self.trace.emit(|| Event {
            at,
            dur,
            kind: if m_switch_on_miss {
                EventKind::SwitchOnMiss
            } else {
                EventKind::ContextSwitch
            },
            asid: from_asid.0,
            arg: next as u64,
        });
        self.current = next;
    }

    /// Make sure `self.current` is runnable, idling the clock forward if
    /// every live process is blocked. Returns false when all processes
    /// have finished.
    fn ensure_runnable(&mut self) -> bool {
        loop {
            if self.processes.iter().all(|p| p.finished) {
                return false;
            }
            // Clear expired blocks.
            for p in &mut self.processes {
                if let Some(t) = p.blocked_until {
                    if t <= self.now {
                        p.blocked_until = None;
                    }
                }
            }
            if self.processes[self.current].runnable(self.now) {
                return true;
            }
            if let Some(next) = self.next_runnable_after(self.current) {
                self.current = next;
                self.used_in_quantum = 0;
                return true;
            }
            // Everyone is blocked on DRAM: idle until the earliest wakes.
            let Some(wake) = self
                .processes
                .iter()
                .filter(|p| !p.finished)
                .filter_map(|p| p.blocked_until)
                .min()
            else {
                // Scheduler invariant: this branch is only reached when no
                // process is runnable yet some are unfinished, and an
                // unfinished, non-runnable process always carries a wake
                // time.
                unreachable!("engine invariant: unfinished processes are blocked");
            };
            let idle = wake.saturating_sub(self.now).cycles_ceil(self.cycle).max(1);
            self.metrics.time.idle_cycles += idle;
            let at = self.now;
            let cycle = self.cycle;
            self.trace.emit(|| Event {
                at,
                dur: Picos(idle * cycle.0),
                kind: EventKind::Idle,
                asid: ASID_NONE,
                arg: idle,
            });
            self.now += Picos(idle * self.cycle.0);
        }
    }

    /// Run every trace to completion and report the outcome.
    pub fn run(&mut self) -> RunOutcome {
        while self.ensure_runnable() {
            let p = &mut self.processes[self.current];
            let asid = p.asid;
            match p.source.next_record() {
                None => {
                    p.finished = true;
                    self.rotate(false);
                }
                Some(rec) => {
                    self.metrics.counts.user_refs += 1;
                    p.refs += 1;
                    if rec.kind == AccessKind::InstrFetch {
                        // Only instruction fetches add base time (§4.3).
                        self.metrics.counts.user_ifetches += 1;
                        p.ifetches += 1;
                        self.metrics.time.l1i_cycles += 1;
                        self.now += self.cycle;
                    }
                    let out = self
                        .system
                        .access_user(asid, rec, self.now, &mut self.metrics);
                    self.now += Picos(out.stall_cycles * self.cycle.0);
                    self.processes[self.current].stall_cycles += out.stall_cycles;
                    if let Some(ready_at) = out.blocked_until {
                        let p = &mut self.processes[self.current];
                        p.blocked_until = Some(ready_at);
                        p.faults += 1;
                        self.rotate(true);
                    } else {
                        self.used_in_quantum += 1;
                        let expired = match self.cfg.quantum_time {
                            // Real-time-clock slice (§5.5): a faster CPU
                            // packs more references into each quantum.
                            Some(slice) => self.now - self.quantum_started >= slice,
                            None => self.used_in_quantum >= self.cfg.quantum,
                        };
                        if expired {
                            self.rotate(false);
                        }
                    }
                }
            }
        }
        self.system.finalize(&mut self.metrics);
        let (events, events_dropped) = self.trace.drain();
        RunOutcome {
            metrics: self.metrics,
            events,
            events_dropped,
            elapsed: self.now,
            seconds: self.cfg.issue.cycles_to_secs(
                // Elapsed picoseconds back to cycles exactly.
                self.now.0 / self.cycle.0,
            ),
            system_label: self.system.label(),
            per_process: self
                .processes
                .iter()
                .map(|p| ProcessSummary {
                    name: p.source.name().to_string(),
                    refs: p.refs,
                    ifetches: p.ifetches,
                    stall_cycles: p.stall_cycles,
                    faults_blocked: p.faults,
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SystemConfig;
    use crate::time::IssueRate;
    use rampage_trace::{TraceRecord, VecSource};

    fn tiny_sources(n: usize, refs: usize) -> Vec<Box<dyn TraceSource + Send>> {
        (0..n)
            .map(|p| {
                let recs = (0..refs)
                    .map(|i| TraceRecord::fetch(0x40_0000 + ((p * 7919 + i) as u64 % 4096) * 4))
                    .collect();
                Box::new(VecSource::new(format!("p{p}"), recs)) as Box<dyn TraceSource + Send>
            })
            .collect()
    }

    #[test]
    fn consumes_every_reference() {
        let cfg = SystemConfig::baseline(IssueRate::GHZ1, 128);
        let mut e = Engine::new(&cfg, tiny_sources(3, 1000));
        let out = e.run();
        assert_eq!(out.metrics.counts.user_refs, 3000);
        assert_eq!(out.metrics.counts.user_ifetches, 3000);
        assert!(out.metrics.total_cycles() >= 3000, "at least 1 cycle/fetch");
        assert!(out.seconds > 0.0);
    }

    #[test]
    fn quantum_switching_counts() {
        let mut cfg = SystemConfig::baseline(IssueRate::GHZ1, 128);
        cfg.quantum = 100;
        cfg.switch_trace = true;
        let mut e = Engine::new(&cfg, tiny_sources(2, 300));
        let out = e.run();
        // 600 refs, quantum 100: at least 5 switches (plus end-of-trace).
        assert!(
            out.metrics.counts.context_switches >= 5,
            "switches: {}",
            out.metrics.counts.context_switches
        );
        assert!(out.metrics.counts.switch_refs > 0, "switch trace charged");
    }

    #[test]
    fn no_switch_trace_means_no_switch_refs() {
        let mut cfg = SystemConfig::baseline(IssueRate::GHZ1, 128);
        cfg.quantum = 100;
        let mut e = Engine::new(&cfg, tiny_sources(2, 300));
        let out = e.run();
        assert_eq!(out.metrics.counts.switch_refs, 0);
        assert!(out.metrics.counts.context_switches >= 5, "still rotates");
    }

    #[test]
    fn rampage_switch_on_miss_overlaps_and_may_idle() {
        let cfg = SystemConfig::rampage_switching(IssueRate::GHZ4, 4096);
        // Two processes touching disjoint pages: faults overlap.
        let sources: Vec<Box<dyn TraceSource + Send>> = (0..2)
            .map(|p| {
                let recs = (0..200)
                    .map(|i| TraceRecord::read((p as u64) << 24 | (i as u64 * 4096)))
                    .collect();
                Box::new(VecSource::new(format!("p{p}"), recs)) as Box<dyn TraceSource + Send>
            })
            .collect();
        let mut e = Engine::new(&cfg, sources);
        let out = e.run();
        assert!(out.metrics.counts.switches_on_miss > 0, "misses switched");
        assert_eq!(out.metrics.counts.user_refs, 400);
        // With only faulting processes, sometimes everyone blocks.
        assert!(
            out.metrics.time.idle_cycles > 0,
            "pure-fault workload must idle sometimes"
        );
    }

    #[test]
    fn single_process_never_switches() {
        let mut cfg = SystemConfig::baseline(IssueRate::GHZ1, 128);
        cfg.quantum = 10;
        cfg.switch_trace = true;
        let mut e = Engine::new(&cfg, tiny_sources(1, 100));
        let out = e.run();
        assert_eq!(out.metrics.counts.context_switches, 0);
        assert_eq!(out.metrics.counts.user_refs, 100);
    }

    #[test]
    fn for_suite_builds_scaled_workload() {
        let cfg = SystemConfig::rampage(IssueRate::GHZ1, 1024);
        let mut e = Engine::for_suite(&cfg, 4, 5_000, 1);
        let out = e.run();
        // 4 benchmarks × ~5000 refs (±rounding from integer scale).
        assert!(
            (15_000..30_000).contains(&out.metrics.counts.user_refs),
            "refs: {}",
            out.metrics.counts.user_refs
        );
    }

    #[test]
    fn per_process_accounting_sums_to_totals() {
        let cfg = SystemConfig::rampage(IssueRate::GHZ1, 1024);
        let mut e = Engine::for_suite(&cfg, 4, 10_000, 7);
        let out = e.run();
        assert_eq!(out.per_process.len(), 4);
        let refs: u64 = out.per_process.iter().map(|p| p.refs).sum();
        assert_eq!(refs, out.metrics.counts.user_refs);
        let ifetches: u64 = out.per_process.iter().map(|p| p.ifetches).sum();
        assert_eq!(ifetches, out.metrics.counts.user_ifetches);
        // Names come from the Table 2 suite.
        assert_eq!(out.per_process[0].name, "alvinn");
        assert!(out.per_process.iter().any(|p| p.stall_cycles > 0));
    }

    #[test]
    fn blocked_fault_counts_attributed_to_faulting_process() {
        let cfg = SystemConfig::rampage_switching(IssueRate::GHZ1, 4096);
        let sources: Vec<Box<dyn TraceSource + Send>> = (0..2)
            .map(|p| {
                let recs = (0..50)
                    .map(|i| TraceRecord::read(((p as u64) << 28) + i * 4096))
                    .collect();
                Box::new(VecSource::new(format!("p{p}"), recs)) as Box<dyn TraceSource + Send>
            })
            .collect();
        let out = Engine::new(&cfg, sources).run();
        let blocked: u64 = out.per_process.iter().map(|p| p.faults_blocked).sum();
        // Every blocking fault is a page fault; an actual switch only
        // happens when another process is runnable, so the switch count
        // is bounded by (not equal to) the block count.
        assert_eq!(blocked, out.metrics.counts.page_faults);
        assert!(out.metrics.counts.switches_on_miss <= blocked);
        assert!(out.metrics.counts.switches_on_miss > 0);
        assert!(out.per_process.iter().all(|p| p.faults_blocked > 0));
    }

    #[test]
    fn deterministic_across_runs() {
        let cfg = SystemConfig::rampage(IssueRate::GHZ1, 512);
        let run = || Engine::for_suite(&cfg, 3, 10_000, 7).run();
        let (a, b) = (run(), run());
        assert_eq!(a.metrics.total_cycles(), b.metrics.total_cycles());
        assert_eq!(a.metrics.counts, b.metrics.counts);
    }

    #[test]
    fn report_surfaces_per_process_stalls_and_blocked_faults() {
        let cfg = SystemConfig::rampage_switching(IssueRate::GHZ1, 4096);
        let sources: Vec<Box<dyn TraceSource + Send>> = (0..2)
            .map(|p| {
                let recs = (0..50)
                    .map(|i| TraceRecord::read(((p as u64) << 28) + i * 4096))
                    .collect();
                Box::new(VecSource::new(format!("p{p}"), recs)) as Box<dyn TraceSource + Send>
            })
            .collect();
        let out = Engine::new(&cfg, sources).run();
        let text = out.report();
        assert!(text.contains("stall cycles"), "column header present");
        assert!(text.contains("blocked faults"), "column header present");
        for p in &out.per_process {
            assert!(p.stall_cycles > 0 && p.faults_blocked > 0);
            assert!(
                text.contains(&p.stall_cycles.to_string()),
                "stall figure for {} rendered",
                p.name
            );
            assert!(text.contains(&p.name), "process name rendered");
        }
        assert!(text.contains("fault service (cycles)"));
    }

    #[test]
    fn tracing_records_events_without_changing_metrics() {
        let cfg = SystemConfig::rampage(IssueRate::GHZ1, 1024);
        let plain = Engine::new(&cfg, tiny_sources(2, 500)).run();
        let mut traced = Engine::new(&cfg, tiny_sources(2, 500));
        traced.enable_trace(1 << 16);
        let traced = traced.run();
        assert_eq!(plain.metrics.time, traced.metrics.time);
        assert_eq!(plain.metrics.counts, traced.metrics.counts);
        assert!(plain.events.is_empty() && plain.events_dropped == 0);
        assert!(!traced.events.is_empty(), "events recorded when enabled");
        // Events arrive in nondecreasing simulated-time order per source,
        // and every event carries a named kind.
        assert!(traced.events.iter().all(|e| !e.kind.name().is_empty()));
    }
}
