//! The conventional two-level cache hierarchy (paper §4.4, §4.7).

use crate::channel::ChannelSet;
use crate::config::{HierarchyKind, SystemConfig, DRAM_PAGE_SIZE, L1_MISS_PENALTY};
use crate::metrics::Metrics;
use crate::obs::{Event, EventKind, TraceSink, ASID_NONE};
use crate::system::{AccessOutcome, MemorySystem};
use rampage_cache::{Cache, PhysAddr, ReplacementPolicy, ShadowTracker, VictimCache, WriteBuffer};
use rampage_dram::Picos;
use rampage_trace::{AccessKind, Asid, TraceRecord, VirtAddr};
use rampage_vm::os::{HandlerRef, OsLayout, OsModel};
use rampage_vm::{InvertedPageTable, PageSize, Tlb};

/// DRAM frames modelled (1 GiB of 4 KB pages — "infinite DRAM ... with no
/// misses to disk", §4.3; exceeding this is a configuration error).
const DRAM_FRAMES: u32 = 1 << 18;

/// Physical base of the kernel region (code, PCBs, page tables). Placed
/// far above the user frame space so kernel blocks never collide with
/// user frames, but still cached normally in L1/L2 — the conventional
/// hierarchy's TLB-miss handler *can* go all the way to DRAM (§2.3's
/// contrast).
const KERNEL_BASE: u64 = 1 << 40;

/// Which software activity a handler run is charged to.
#[derive(Clone, Copy, PartialEq, Eq)]
enum HandlerKind {
    TlbRefill,
    Switch,
}

/// The conventional system: L1 I/D → L2 cache → DRAM, with a TLB over
/// DRAM-physical translations and inclusion maintained between L1 and L2.
pub struct Conventional {
    cycle: Picos,
    l1i: Cache,
    l1d: Cache,
    l2: Cache,
    tlb: Tlb,
    /// DRAM-level page table (inverted, like the paper, §2.4).
    page_table: InvertedPageTable,
    os: OsModel,
    channel: ChannelSet,
    handler_buf: Vec<HandlerRef>,
    l2_block: u64,
    /// Optional Jouppi victim buffer between L1 and L2 (§3.2 ablation).
    victim: Option<VictimCache>,
    /// Write buffer (perfect in the paper's configuration, §4.3).
    wbuf: WriteBuffer,
    /// Optional 3C classification of L2 misses.
    classifier: Option<ShadowTracker>,
    /// Event-trace sink shared with the engine (disabled by default).
    trace: TraceSink,
}

impl Conventional {
    /// Build from a configuration.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.hierarchy` is not [`HierarchyKind::Conventional`].
    pub fn new(cfg: &SystemConfig) -> Self {
        let l2cfg = match cfg.hierarchy {
            HierarchyKind::Conventional(l2) => l2,
            HierarchyKind::Rampage(_) => panic!("conventional system given a RAMpage config"),
        };
        let os_layout = OsLayout::at(PhysAddr(KERNEL_BASE));
        // The page table sits after the OS code + PCBs in kernel space.
        let table_base = PhysAddr(KERNEL_BASE + (1 << 20));
        let mut page_table = InvertedPageTable::new(DRAM_FRAMES, table_base);
        // Realistic OS page placement: the free list is effectively
        // random, so first-touch allocation scatters pages over the
        // physical space (the page-placement conflict problem of §3.2's
        // page-coloring citations). Sequential allocation would be
        // near-perfect page coloring and flatter the DM baseline.
        page_table.shuffle_free(0x00a1_10c8);
        Conventional {
            cycle: cfg.issue.cycle(),
            l1i: Cache::new(cfg.l1.geometry(), ReplacementPolicy::Lru),
            l1d: Cache::new(cfg.l1.geometry(), ReplacementPolicy::Lru),
            l2: Cache::new(l2cfg.geometry(), l2cfg.policy),
            tlb: Tlb::new(cfg.tlb.sets, cfg.tlb.ways, 0x71b_5eed),
            page_table,
            os: OsModel::new(cfg.os_costs, os_layout),
            channel: ChannelSet::new(cfg.dram, cfg.dram_channels),
            handler_buf: Vec::with_capacity(1024),
            l2_block: l2cfg.block,
            victim: cfg
                .l1_victim_blocks
                .map(|n| VictimCache::new(n, cfg.l1.block)),
            wbuf: cfg
                .write_buffer_depth
                .map(WriteBuffer::with_depth)
                .unwrap_or_default(),
            classifier: cfg
                .classify_l2
                .then(|| ShadowTracker::new(l2cfg.geometry().blocks() as usize, l2cfg.block)),
            trace: TraceSink::disabled(),
        }
    }

    /// The DRAM page size used for translation.
    fn dram_page(&self) -> PageSize {
        let Some(p) = PageSize::new(DRAM_PAGE_SIZE) else {
            // invariant: DRAM_PAGE_SIZE is a power-of-two constant.
            unreachable!("DRAM_PAGE_SIZE is a valid power-of-two constant");
        };
        p
    }

    /// Service a block from L2 (and DRAM below it). Returns stall cycles.
    /// `now` is the absolute time the reference started stalling.
    fn l2_service(&mut self, pa: PhysAddr, now: Picos, m: &mut Metrics) -> u64 {
        // L1 miss penalty covers the L2 tag check + transfer to L1.
        let mut stall = L1_MISS_PENALTY;
        m.time.l2_sram_cycles += L1_MISS_PENALTY;
        let res = self.l2.access(pa, false);
        if let Some(c) = self.classifier.as_mut() {
            c.observe(pa, res.hit);
        }
        if res.hit {
            return stall;
        }
        // L2 miss: maintain inclusion over the victim, then fetch.
        if let Some(ev) = res.eviction {
            let mut victim_dirty = ev.dirty;
            let mut wb_cycles = 0u64;
            let mut probes = 0u64;
            for l1 in [&mut self.l1i, &mut self.l1d] {
                probes += l1.invalidate_region(ev.addr, self.l2_block, |e| {
                    if e.dirty {
                        // Dirty L1 data folds into the outgoing L2 block.
                        victim_dirty = true;
                        wb_cycles += L1_MISS_PENALTY;
                    }
                });
            }
            if let Some(vc) = self.victim.as_mut() {
                // The victim buffer obeys inclusion too: its blocks are
                // L2-backed, so the outgoing L2 block sweeps it as well.
                vc.invalidate_region(ev.addr, self.l2_block, |e| {
                    if e.dirty {
                        victim_dirty = true;
                        wb_cycles += L1_MISS_PENALTY;
                    }
                });
            }
            // Inclusion probes cost one (L1 hit-time) cycle each, split
            // between the two caches for attribution.
            m.counts.inclusion_probes += probes;
            m.time.l1i_cycles += probes / 2;
            m.time.l1d_cycles += probes - probes / 2;
            m.time.l2_sram_cycles += wb_cycles;
            stall += probes + wb_cycles;
            if victim_dirty {
                let at = now + Picos(stall * self.cycle.0);
                let tr =
                    self.channel
                        .request(at, self.l2_block, ev.addr.block_number(self.l2_block));
                let wb_stall = tr.done.saturating_sub(now).cycles_ceil(self.cycle) - stall;
                m.time.dram_cycles += wb_stall;
                m.counts.dram_writebacks += 1;
                m.hist
                    .dram
                    .record(tr.done.saturating_sub(at).cycles_ceil(self.cycle));
                let block = self.l2_block;
                self.trace.emit(|| Event {
                    at: tr.start,
                    dur: tr.done.saturating_sub(tr.start),
                    kind: EventKind::DramTransfer,
                    asid: ASID_NONE,
                    arg: block,
                });
                stall += wb_stall;
            }
        }
        // Fetch the needed block from DRAM.
        let at = now + Picos(stall * self.cycle.0);
        let tr = self
            .channel
            .request(at, self.l2_block, pa.block_number(self.l2_block));
        let fetch_stall = tr.done.saturating_sub(now).cycles_ceil(self.cycle) - stall;
        m.time.dram_cycles += fetch_stall;
        m.counts.dram_block_fetches += 1;
        m.hist
            .dram
            .record(tr.done.saturating_sub(at).cycles_ceil(self.cycle));
        let block = self.l2_block;
        self.trace.emit(|| Event {
            at: tr.start,
            dur: tr.done.saturating_sub(tr.start),
            kind: EventKind::DramTransfer,
            asid: ASID_NONE,
            arg: block,
        });
        let total = stall + fetch_stall;
        let cycle = self.cycle;
        self.trace.emit(|| Event {
            at: now,
            dur: Picos(total * cycle.0),
            kind: EventKind::L2Miss,
            asid: ASID_NONE,
            arg: pa.0,
        });
        total
    }

    /// One physical reference through L1 → L2 → DRAM. Returns stall
    /// cycles beyond the base issue cycle.
    fn access_phys(&mut self, pa: PhysAddr, kind: AccessKind, now: Picos, m: &mut Metrics) -> u64 {
        let l1 = match kind {
            AccessKind::InstrFetch => &mut self.l1i,
            _ => &mut self.l1d,
        };
        let res = l1.access(pa, kind.is_write());
        if res.hit {
            // Read/fetch hits are pipelined. Write hits are absorbed by
            // the write buffer — perfect (free) in the paper's
            // configuration; a finite buffer charges a drain stall when
            // full (the ablation checking §4.3's assumption).
            if kind.is_write() && !self.wbuf.push() {
                m.counts.write_buffer_stalls += 1;
                m.time.l2_sram_cycles += L1_MISS_PENALTY;
                self.wbuf.drain(1);
                let ok = self.wbuf.push();
                debug_assert!(ok, "buffer has space after draining");
                return L1_MISS_PENALTY;
            }
            return 0;
        }
        // Victim-cache probe: a swap-back serves the miss in one cycle
        // without touching L2 (Jouppi's design, §3.2).
        if let Some(vc) = self.victim.as_mut() {
            if let Some(hit) = vc.take(pa) {
                m.counts.victim_hits += 1;
                m.time.l2_sram_cycles += 1;
                if hit.dirty {
                    let l1 = match kind {
                        AccessKind::InstrFetch => &mut self.l1i,
                        _ => &mut self.l1d,
                    };
                    l1.mark_dirty(pa);
                }
                let mut stall = 1;
                if let Some(ev) = res.eviction {
                    stall += self.stash_victim(ev, m);
                }
                let cycle = self.cycle;
                self.trace.emit(|| Event {
                    at: now,
                    dur: Picos(stall * cycle.0),
                    kind: match kind {
                        AccessKind::InstrFetch => EventKind::L1iMiss,
                        _ => EventKind::L1dMiss,
                    },
                    asid: ASID_NONE,
                    arg: pa.0,
                });
                return stall;
            }
        }
        // Write the dirty L1 victim back into L2 *before* the fill: the
        // fill's L2 eviction might otherwise displace the very block the
        // victim belongs to. At this point inclusion still holds, so the
        // write-back must hit (with a victim cache, the displaced block
        // goes to the buffer instead).
        let mut stall = 0;
        if let Some(ev) = res.eviction {
            if self.victim.is_some() {
                stall += self.stash_victim(ev, m);
            } else if ev.dirty {
                stall += L1_MISS_PENALTY;
                m.time.l2_sram_cycles += L1_MISS_PENALTY;
                let wb = self.l2.access(ev.addr, true);
                debug_assert!(wb.hit, "inclusion guarantees L1 victims are in L2");
            }
        }
        stall += self.l2_service(pa, now, m);
        let cycle = self.cycle;
        self.trace.emit(|| Event {
            at: now,
            dur: Picos(stall * cycle.0),
            kind: match kind {
                AccessKind::InstrFetch => EventKind::L1iMiss,
                _ => EventKind::L1dMiss,
            },
            asid: ASID_NONE,
            arg: pa.0,
        });
        // Stall cycles are drain opportunities for the write buffer.
        self.wbuf.drain((stall / L1_MISS_PENALTY) as usize);
        stall
    }

    /// Push an L1 eviction into the victim buffer; an overflowing dirty
    /// block is written back to L2. Returns stall cycles.
    fn stash_victim(&mut self, ev: rampage_cache::Eviction, m: &mut Metrics) -> u64 {
        let Some(vc) = self.victim.as_mut() else {
            // invariant: stash_victim is only called after the caller
            // checked that a victim buffer is configured.
            unreachable!("stash_victim requires a configured victim buffer");
        };
        let mut stall = 0;
        if let Some(out) = vc.insert(ev) {
            if out.dirty {
                stall += L1_MISS_PENALTY;
                m.time.l2_sram_cycles += L1_MISS_PENALTY;
                let wb = self.l2.access(out.addr, true);
                debug_assert!(wb.hit, "victim blocks stay L2-backed");
            }
        }
        stall
    }

    /// Run buffered handler references through the hierarchy. Handler
    /// instruction fetches cost their base cycle too (they are extra
    /// instructions the CPU must issue).
    fn run_handler(&mut self, kind: HandlerKind, now: Picos, m: &mut Metrics) -> u64 {
        let refs = std::mem::take(&mut self.handler_buf);
        let mut stall = 0u64;
        for r in &refs {
            if r.kind == AccessKind::InstrFetch {
                stall += 1;
                m.time.l1i_cycles += 1;
            }
            let at = now + Picos(stall * self.cycle.0);
            stall += self.access_phys(r.addr, r.kind, at, m);
        }
        match kind {
            HandlerKind::TlbRefill => m.counts.tlb_handler_refs += refs.len() as u64,
            HandlerKind::Switch => m.counts.switch_refs += refs.len() as u64,
        }
        self.handler_buf = refs;
        self.handler_buf.clear();
        stall
    }

    /// Translate a virtual address, running the TLB-miss handler when
    /// needed. Returns the physical address and handler stall cycles.
    fn translate(
        &mut self,
        asid: Asid,
        va: VirtAddr,
        now: Picos,
        m: &mut Metrics,
    ) -> (PhysAddr, u64) {
        let page = self.dram_page();
        let vpn = page.vpn(va);
        if let Some(frame) = self.tlb.lookup(asid, vpn) {
            return (PhysAddr(frame.base_addr(page).0 + page.offset(va)), 0);
        }
        // Software refill: probe the page table in (cached) DRAM space.
        let lk = self.page_table.lookup(asid, vpn);
        let frame = match lk.frame {
            Some(f) => f,
            None => {
                // First touch: allocate a DRAM frame ("infinite DRAM").
                // Exhaustion is a genuine capacity failure, not a logic
                // bug: keep it a panic with an actionable message (the
                // sweep runner converts it into a recorded FailedCell).
                let f = match self.page_table.alloc_free() {
                    Some(f) => f,
                    // lint: allow(panic-doc) — deliberate actionable panic; the sweep runner converts it into a recorded FailedCell
                    None => panic!(
                        "DRAM frame space exhausted ({} frames of {} bytes); raise DRAM_FRAMES",
                        DRAM_FRAMES, DRAM_PAGE_SIZE
                    ),
                };
                self.page_table.insert(f, asid, vpn);
                f
            }
        };
        self.os.tlb_refill(&lk.probe_addrs, &mut self.handler_buf);
        let stall = self.run_handler(HandlerKind::TlbRefill, now, m);
        self.tlb.insert(asid, vpn, frame);
        m.hist.tlb.record(stall);
        let cycle = self.cycle;
        let probes = lk.probes() as u64;
        self.trace.emit(|| Event {
            at: now,
            dur: Picos(stall * cycle.0),
            kind: EventKind::TlbMiss,
            asid: asid.0,
            arg: probes,
        });
        (PhysAddr(frame.base_addr(page).0 + page.offset(va)), stall)
    }
}

impl MemorySystem for Conventional {
    fn access_user(
        &mut self,
        asid: Asid,
        rec: TraceRecord,
        now: Picos,
        m: &mut Metrics,
    ) -> AccessOutcome {
        let (pa, mut stall) = self.translate(asid, rec.addr, now, m);
        let at = now + Picos(stall * self.cycle.0);
        stall += self.access_phys(pa, rec.kind, at, m);
        AccessOutcome {
            stall_cycles: stall,
            blocked_until: None,
        }
    }

    fn run_switch(&mut self, from: usize, to: usize, now: Picos, m: &mut Metrics) -> u64 {
        self.os.context_switch(from, to, &mut self.handler_buf);
        self.run_handler(HandlerKind::Switch, now, m)
    }

    fn finalize(&mut self, m: &mut Metrics) {
        m.counts.l1i = self.l1i.stats();
        m.counts.l1d = self.l1d.stats();
        m.counts.l2 = self.l2.stats();
        m.counts.tlb = self.tlb.stats();
        if let Some(c) = &self.classifier {
            m.counts.l2_miss_profile = c.profile();
        }
    }

    fn label(&self) -> String {
        format!(
            "conventional ({}-way L2, {} B blocks)",
            self.l2.geometry().ways(),
            self.l2_block
        )
    }

    fn attach_trace(&mut self, sink: TraceSink) {
        self.trace = sink;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SystemConfig;
    use crate::time::IssueRate;

    fn system(block: u64) -> Conventional {
        Conventional::new(&SystemConfig::baseline(IssueRate::GHZ1, block))
    }

    fn metrics() -> Metrics {
        Metrics::default()
    }

    #[test]
    fn first_touch_costs_tlb_handler_and_dram() {
        let mut s = system(128);
        let mut m = metrics();
        let out = s.access_user(Asid(1), TraceRecord::read(0x1000), Picos::ZERO, &mut m);
        assert!(out.stall_cycles > 0, "cold reference must stall");
        assert!(m.counts.tlb_handler_refs > 0, "TLB refill ran");
        assert!(m.counts.dram_block_fetches >= 1, "block came from DRAM");
        assert!(m.time.dram_cycles > 0);
        assert_eq!(out.blocked_until, None, "conventional never blocks");
    }

    #[test]
    fn warm_reference_is_free() {
        let mut s = system(128);
        let mut m = metrics();
        s.access_user(Asid(1), TraceRecord::read(0x1000), Picos::ZERO, &mut m);
        let out = s.access_user(Asid(1), TraceRecord::read(0x1008), Picos::ZERO, &mut m);
        assert_eq!(out.stall_cycles, 0, "same block, TLB warm: fully pipelined");
    }

    #[test]
    fn l1_miss_l2_hit_costs_12_cycles() {
        let mut s = system(4096);
        let mut m = metrics();
        // Warm the page + L2 block.
        s.access_user(Asid(1), TraceRecord::read(0x0), Picos::ZERO, &mut m);
        // 0x800 is in the same 4 KB L2 block and same DRAM page, but a
        // different L1 block (and maps to a different L1 set).
        let before_dram = m.counts.dram_block_fetches;
        let out = s.access_user(Asid(1), TraceRecord::read(0x800), Picos::ZERO, &mut m);
        assert_eq!(out.stall_cycles, L1_MISS_PENALTY);
        assert_eq!(m.counts.dram_block_fetches, before_dram, "no DRAM traffic");
    }

    #[test]
    fn dram_stall_scales_with_block_size() {
        let mut small = system(128);
        let mut big = system(4096);
        let mut m1 = metrics();
        let mut m2 = metrics();
        // Use an address whose page is TLB-warm to isolate the fetch.
        small.access_user(Asid(1), TraceRecord::read(0x0), Picos::ZERO, &mut m1);
        big.access_user(Asid(1), TraceRecord::read(0x0), Picos::ZERO, &mut m2);
        assert!(
            m2.time.dram_cycles > m1.time.dram_cycles,
            "4 KB blocks transfer longer than 128 B ({} vs {})",
            m2.time.dram_cycles,
            m1.time.dram_cycles
        );
    }

    #[test]
    fn different_asids_do_not_share_tlb_entries() {
        let mut s = system(128);
        let mut m = metrics();
        s.access_user(Asid(1), TraceRecord::read(0x1000), Picos::ZERO, &mut m);
        let refills_before = m.counts.tlb_handler_refs;
        s.access_user(Asid(2), TraceRecord::read(0x1000), Picos::ZERO, &mut m);
        assert!(
            m.counts.tlb_handler_refs > refills_before,
            "second ASID needs its own translation"
        );
    }

    #[test]
    fn context_switch_charges_about_400_refs() {
        let mut s = system(128);
        let mut m = metrics();
        let stall = s.run_switch(0, 1, Picos::ZERO, &mut m);
        assert!(stall > 0);
        assert!(
            (390..=410).contains(&m.counts.switch_refs),
            "switch refs {}",
            m.counts.switch_refs
        );
    }

    #[test]
    fn inclusion_invalidates_l1_on_l2_eviction() {
        // Physical page placement is (realistically) shuffled, so force
        // L2 conflicts statistically: dirty a set of pages, then stream
        // reads over far more data than the 4 MB L2 holds. Evictions must
        // probe L1 (inclusion maintenance); the debug_assert on the
        // write-back path would catch any inclusion violation.
        let mut s = system(128);
        let mut m = metrics();
        for i in 0..64u64 {
            s.access_user(Asid(1), TraceRecord::write(i * 4096), Picos::ZERO, &mut m);
        }
        for i in 0..3000u64 {
            s.access_user(
                Asid(1),
                TraceRecord::read(0x100_0000 + i * 4096),
                Picos::ZERO,
                &mut m,
            );
        }
        assert!(
            m.counts.inclusion_probes > 0,
            "L2 evictions must probe L1 for inclusion"
        );
        assert!(m.counts.dram_block_fetches > 3000, "streamed past capacity");
    }

    #[test]
    fn victim_cache_serves_conflict_misses_without_dram() {
        let mut cfg = SystemConfig::baseline(IssueRate::GHZ1, 4096);
        cfg.l1_victim_blocks = Some(16);
        let mut s = Conventional::new(&cfg);
        let mut m = metrics();
        // Physical placement is shuffled, so force conflicts by
        // pigeonhole: 8 page-aligned blocks can only occupy 4 distinct
        // page-slots of the 16 KB L1, so round-robin touching them
        // ping-pongs at least 4 of them through the victim buffer.
        for round in 0..12 {
            for i in 0..8u64 {
                s.access_user(Asid(1), TraceRecord::read(i * 4096), Picos::ZERO, &mut m);
            }
            if round == 0 {
                // Warm-up round done: everything is L2-resident now.
                m.counts.dram_block_fetches = 0;
            }
        }
        assert!(
            m.counts.victim_hits > 10,
            "swap-backs: {}",
            m.counts.victim_hits
        );
        assert_eq!(
            m.counts.dram_block_fetches, 0,
            "steady-state ping-pong served without DRAM traffic"
        );
    }

    #[test]
    fn finite_write_buffer_eventually_stalls() {
        let mut cfg = SystemConfig::baseline(IssueRate::GHZ1, 128);
        cfg.write_buffer_depth = Some(2);
        let mut s = Conventional::new(&cfg);
        let mut m = metrics();
        // Warm one block, then hammer write hits with no stalls to drain.
        s.access_user(Asid(1), TraceRecord::write(0x40), Picos::ZERO, &mut m);
        for _ in 0..16 {
            s.access_user(Asid(1), TraceRecord::write(0x48), Picos::ZERO, &mut m);
        }
        assert!(
            m.counts.write_buffer_stalls > 0,
            "a depth-2 buffer must fill under back-to-back write hits"
        );
    }

    #[test]
    fn classify_l2_profiles_misses() {
        let mut cfg = SystemConfig::baseline(IssueRate::GHZ1, 128);
        cfg.classify_l2 = true;
        let mut s = Conventional::new(&cfg);
        let mut m = metrics();
        for i in 0..4000u64 {
            s.access_user(Asid(1), TraceRecord::read(i * 4096), Picos::ZERO, &mut m);
        }
        s.finalize(&mut m);
        let p = m.counts.l2_miss_profile;
        assert!(p.compulsory >= 4000, "every page cold-missed: {p:?}");
        assert_eq!(
            p.misses(),
            m.counts.l2.misses(),
            "classifier agrees with the L2's own accounting"
        );
        // Diagnosis is free in simulated time: rerun without it.
        let mut s2 = Conventional::new(&SystemConfig::baseline(IssueRate::GHZ1, 128));
        let mut m2 = metrics();
        for i in 0..4000u64 {
            s2.access_user(Asid(1), TraceRecord::read(i * 4096), Picos::ZERO, &mut m2);
        }
        assert_eq!(m.time, m2.time, "classification charges no cycles");
    }

    #[test]
    fn finalize_copies_stats() {
        let mut s = system(128);
        let mut m = metrics();
        s.access_user(Asid(1), TraceRecord::fetch(0x400000), Picos::ZERO, &mut m);
        s.finalize(&mut m);
        assert!(m.counts.l1i.accesses() > 0);
        assert!(m.counts.tlb.misses > 0);
    }
}
