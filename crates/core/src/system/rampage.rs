//! The RAMpage hierarchy: SRAM main memory over a DRAM paging device
//! (paper §2, §4.5, §4.6).

use crate::channel::ChannelSet;
use crate::config::{HierarchyKind, SystemConfig, L1_MISS_PENALTY, RAMPAGE_WRITEBACK_PENALTY};
use crate::metrics::Metrics;
use crate::obs::{Event, EventKind, TraceSink, ASID_NONE};
use crate::system::{AccessOutcome, MemorySystem};
use rampage_cache::{Cache, PhysAddr, ReplacementPolicy, WriteBuffer};
use rampage_dram::Picos;
use rampage_trace::{AccessKind, Asid, TraceRecord};
use rampage_vm::os::{HandlerRef, OsLayout, OsModel};
use rampage_vm::{ClockReplacer, FrameId, InvertedPageTable, PageSize, StandbyList, Tlb, Vpn};

/// ASID reserved for the pinned OS region.
const KERNEL_ASID: Asid = Asid(u16::MAX);

#[derive(Clone, Copy, PartialEq, Eq)]
enum HandlerKind {
    TlbRefill,
    Fault,
    Switch,
}

/// The RAMpage system.
///
/// The SRAM level has no tags: a page is "present" iff the inverted page
/// table (itself pinned in SRAM, along with the OS handlers) maps it, so
/// full associativity costs nothing at hit time (§2.2). The TLB caches
/// virtual → SRAM-physical translations, so a TLB miss is serviced
/// entirely within SRAM; only a page fault goes to DRAM (§2.3). Page
/// faults run a simulated software handler (clock replacement, table
/// updates) and transfer whole SRAM pages over the Rambus channel; with
/// [`SystemConfig::switch_on_miss`] the faulting process blocks and the
/// CPU switches to another process instead of stalling (§4.6).
pub struct Rampage {
    cycle: Picos,
    l1i: Cache,
    l1d: Cache,
    tlb: Tlb,
    ipt: InvertedPageTable,
    clock: ClockReplacer,
    standby: Option<StandbyList>,
    page: PageSize,
    os: OsModel,
    channel: ChannelSet,
    switch_on_miss: bool,
    handler_buf: Vec<HandlerRef>,
    /// Frames pinned for OS code + page table (never replaced).
    pinned_frames: u32,
    /// Write buffer (perfect in the paper's configuration, §4.3).
    wbuf: WriteBuffer,
    /// Sequential next-page prefetch on faults (§3.2 extension).
    prefetch_next: bool,
    /// Prefetched pages not yet referenced, for usefulness accounting.
    prefetched: std::collections::HashSet<(Asid, Vpn)>,
    /// Event-trace sink shared with the engine (disabled by default).
    trace: TraceSink,
}

impl Rampage {
    /// Build from a configuration.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.hierarchy` is not [`HierarchyKind::Rampage`], or if
    /// the OS pinned region would leave no user frames.
    pub fn new(cfg: &SystemConfig) -> Self {
        let rcfg = match cfg.hierarchy {
            HierarchyKind::Rampage(r) => r,
            HierarchyKind::Conventional(_) => panic!("RAMpage system given a cache config"),
        };
        let page = rcfg.page_size;
        let num_frames = rcfg.num_frames();

        // OS residency (§4.5): handler code + PCBs at SRAM physical 0,
        // then the inverted page table; everything rounded up to whole
        // pages and pinned.
        let os_layout = OsLayout::at(PhysAddr(0));
        let os_code_bytes = os_layout.code_bytes + 16 * 1024; // code + PCB array
        let table_base = PhysAddr(os_code_bytes);
        let mut ipt = InvertedPageTable::new(num_frames, table_base);
        let os_bytes = os_code_bytes + ipt.table_bytes();
        let pinned_frames = os_bytes.div_ceil(page.get()) as u32;
        assert!(
            pinned_frames < num_frames,
            "OS region ({os_bytes} bytes) leaves no user frames at page size {page}"
        );
        for i in 0..pinned_frames {
            let Some(f) = ipt.alloc_free() else {
                // The assert above guarantees pinned_frames < num_frames,
                // so a fresh table cannot run out of free frames here.
                unreachable!("RAMpage init: fresh table has free frames");
            };
            debug_assert_eq!(f, FrameId(i), "pinned frames are the low frames");
            ipt.insert_pinned(f, KERNEL_ASID, Vpn(i as u64));
        }
        if let Some(k) = rcfg.standby_pages {
            let user_frames = (num_frames - pinned_frames) as usize;
            assert!(
                2 * k < user_frames,
                "standby capacity {k} too large for {user_frames} user frames"
            );
        }

        Rampage {
            cycle: cfg.issue.cycle(),
            l1i: Cache::new(cfg.l1.geometry(), ReplacementPolicy::Lru),
            l1d: Cache::new(cfg.l1.geometry(), ReplacementPolicy::Lru),
            tlb: Tlb::new(cfg.tlb.sets, cfg.tlb.ways, 0x71b_5eed),
            ipt,
            clock: ClockReplacer::new(),
            standby: rcfg.standby_pages.map(StandbyList::new),
            page,
            os: OsModel::new(cfg.os_costs, os_layout),
            channel: ChannelSet::new(cfg.dram, cfg.dram_channels),
            switch_on_miss: cfg.switch_on_miss,
            handler_buf: Vec::with_capacity(1024),
            pinned_frames,
            wbuf: cfg
                .write_buffer_depth
                .map(WriteBuffer::with_depth)
                .unwrap_or_default(),
            prefetch_next: rcfg.prefetch_next,
            prefetched: std::collections::HashSet::new(),
            trace: TraceSink::disabled(),
        }
    }

    /// Frames pinned for the OS (reproduces the paper's §4.5 numbers).
    pub fn pinned_frames(&self) -> u32 {
        self.pinned_frames
    }

    /// Total SRAM frames.
    pub fn total_frames(&self) -> u32 {
        self.ipt.num_frames()
    }

    /// One physical reference through L1 → SRAM main memory. Never goes
    /// to DRAM (presence was established by translation). `at` is the
    /// absolute time the reference issues (event timestamps only — the
    /// SRAM service itself is time-independent). Returns stall cycles.
    fn access_phys(&mut self, pa: PhysAddr, kind: AccessKind, at: Picos, m: &mut Metrics) -> u64 {
        let l1 = match kind {
            AccessKind::InstrFetch => &mut self.l1i,
            _ => &mut self.l1d,
        };
        let res = l1.access(pa, kind.is_write());
        if res.hit {
            // Write hits go to the write buffer — free when perfect
            // (§4.3), a drain stall when a finite buffer is full.
            if kind.is_write() && !self.wbuf.push() {
                m.counts.write_buffer_stalls += 1;
                m.time.l2_sram_cycles += RAMPAGE_WRITEBACK_PENALTY;
                self.wbuf.drain(1);
                let ok = self.wbuf.push();
                debug_assert!(ok, "buffer has space after draining");
                return RAMPAGE_WRITEBACK_PENALTY;
            }
            return 0;
        }
        // L1 miss: a plain SRAM read, no tag check — 12 cycles (§4.3).
        let mut stall = L1_MISS_PENALTY;
        m.time.l2_sram_cycles += L1_MISS_PENALTY;
        if let Some(ev) = res.eviction {
            if ev.dirty {
                // Write-back into SRAM: 9 cycles, "since there is no L2
                // tag to update" (§4.3). The page becomes dirty.
                stall += RAMPAGE_WRITEBACK_PENALTY;
                m.time.l2_sram_cycles += RAMPAGE_WRITEBACK_PENALTY;
                let frame = FrameId((ev.addr.0 >> self.page.bits()) as u32);
                if self.ipt.mapping(frame).is_some() {
                    self.ipt.set_dirty(frame);
                }
            }
        }
        let cycle = self.cycle;
        self.trace.emit(|| Event {
            at,
            dur: Picos(stall * cycle.0),
            kind: match kind {
                AccessKind::InstrFetch => EventKind::L1iMiss,
                _ => EventKind::L1dMiss,
            },
            asid: ASID_NONE,
            arg: pa.0,
        });
        // Stall cycles are drain opportunities for the write buffer.
        self.wbuf
            .drain((stall / RAMPAGE_WRITEBACK_PENALTY) as usize);
        stall
    }

    /// Run buffered handler references (all SRAM-resident by
    /// construction: handler code and tables are pinned). `now` is the
    /// handler's entry time (event timestamps only).
    fn run_handler(&mut self, kind: HandlerKind, now: Picos, m: &mut Metrics) -> u64 {
        let refs = std::mem::take(&mut self.handler_buf);
        let mut stall = 0u64;
        for r in &refs {
            if r.kind == AccessKind::InstrFetch {
                stall += 1;
                m.time.l1i_cycles += 1;
            }
            let at = now + Picos(stall * self.cycle.0);
            stall += self.access_phys(r.addr, r.kind, at, m);
        }
        match kind {
            HandlerKind::TlbRefill => m.counts.tlb_handler_refs += refs.len() as u64,
            HandlerKind::Fault => m.counts.fault_handler_refs += refs.len() as u64,
            HandlerKind::Switch => m.counts.switch_refs += refs.len() as u64,
        }
        self.handler_buf = refs;
        self.handler_buf.clear();
        stall
    }

    /// Evict the page in `victim`, invalidating its L1 blocks (charged as
    /// probes) and scheduling a DRAM write-back if dirty. Returns extra
    /// stall cycles. The frame is left unmapped and free.
    fn evict_page(&mut self, victim: FrameId, now: Picos, m: &mut Metrics) -> u64 {
        let Some(&mapping) = self.ipt.mapping(victim) else {
            // Replacement invariant: the clock hand only selects frames
            // the IPT currently maps.
            unreachable!("RAMpage eviction: victim {victim} is mapped");
        };
        // A prefetched page dying unreferenced was wasted bandwidth.
        self.prefetched.remove(&(mapping.asid, mapping.vpn));
        self.tlb.flush_page(mapping.asid, mapping.vpn);
        let base = victim.base_addr(self.page);
        let mut stall = 0u64;
        let mut dirty = mapping.dirty;
        let mut wb_cycles = 0u64;
        let mut probes = 0u64;
        for l1 in [&mut self.l1i, &mut self.l1d] {
            probes += l1.invalidate_region(base, self.page.get(), |e| {
                if e.dirty {
                    dirty = true;
                    wb_cycles += RAMPAGE_WRITEBACK_PENALTY;
                }
            });
        }
        m.counts.inclusion_probes += probes;
        m.time.l1i_cycles += probes / 2;
        m.time.l1d_cycles += probes - probes / 2;
        m.time.l2_sram_cycles += wb_cycles;
        stall += probes + wb_cycles;

        if let Some(standby) = self.standby.as_mut() {
            // Software victim cache: the page stands by instead of dying.
            let Some(removed) = self.ipt.remove_reserved(victim) else {
                // Same replacement invariant: the mapping was read above.
                unreachable!("RAMpage eviction: victim {victim} is mapped");
            };
            let out = standby.push(rampage_vm::StandbyEntry {
                asid: removed.asid,
                vpn: removed.vpn,
                frame: victim,
                dirty: dirty || removed.dirty,
            });
            if let Some(discarded) = out {
                if discarded.dirty {
                    let at = now + Picos(stall * self.cycle.0);
                    let tr = self
                        .channel
                        .request(at, self.page.get(), discarded.frame.0 as u64);
                    let wb = tr.done.saturating_sub(now).cycles_ceil(self.cycle) - stall;
                    m.time.dram_cycles += wb;
                    m.counts.dram_writebacks += 1;
                    m.hist
                        .dram
                        .record(tr.done.saturating_sub(at).cycles_ceil(self.cycle));
                    let page_bytes = self.page.get();
                    self.trace.emit(|| Event {
                        at: tr.start,
                        dur: tr.done.saturating_sub(tr.start),
                        kind: EventKind::DramTransfer,
                        asid: ASID_NONE,
                        arg: page_bytes,
                    });
                    stall += wb;
                }
                self.ipt.release(discarded.frame);
            }
        } else {
            // Reserve rather than free: the caller maps the incoming page
            // straight into this frame.
            self.ipt.remove_reserved(victim);
            if dirty {
                let at = now + Picos(stall * self.cycle.0);
                let tr = self.channel.request(at, self.page.get(), victim.0 as u64);
                let wb = tr.done.saturating_sub(now).cycles_ceil(self.cycle) - stall;
                m.time.dram_cycles += wb;
                m.counts.dram_writebacks += 1;
                m.hist
                    .dram
                    .record(tr.done.saturating_sub(at).cycles_ceil(self.cycle));
                let page_bytes = self.page.get();
                self.trace.emit(|| Event {
                    at: tr.start,
                    dur: tr.done.saturating_sub(tr.start),
                    kind: EventKind::DramTransfer,
                    asid: ASID_NONE,
                    arg: page_bytes,
                });
                stall += wb;
            }
        }
        stall
    }

    /// Run the clock to pick and evict one victim, accounting the scan.
    /// Returns the victim frame (reserved and unmapped in non-standby
    /// mode; pushed onto the standby list otherwise) and the table
    /// addresses the scan read.
    fn clock_scan(
        &mut self,
        stall: &mut u64,
        now: Picos,
        m: &mut Metrics,
    ) -> (FrameId, Vec<PhysAddr>) {
        let hand0 = self.clock.hand().0;
        let n = self.ipt.num_frames();
        let (victim, scanned) = self.clock.select_victim(&mut self.ipt);
        let scan_addrs: Vec<PhysAddr> = (0..scanned)
            .map(|i| self.ipt.entry_addr(FrameId((hand0 + i) % n)))
            .collect();
        self.trace.emit(|| Event {
            at: now,
            dur: Picos::ZERO,
            kind: EventKind::ClockSweep,
            asid: ASID_NONE,
            arg: scanned as u64,
        });
        *stall += self.evict_page(victim, now, m);
        (victim, scan_addrs)
    }

    /// Obtain an unmapped frame: the free pool first, then replacement.
    ///
    /// Without a standby list, the clock victim's frame is reserved and
    /// reused directly. With one, victims are pushed onto the standby
    /// list until its overflow discards the longest-standing page, whose
    /// frame then lands in the free pool (§3.2: "the page which is on
    /// the list longest is the one actually discarded"); the first
    /// post-warmup fault populates the list in a burst. Returns the
    /// frame and the table addresses any clock scans read.
    fn acquire_frame(
        &mut self,
        stall: &mut u64,
        now: Picos,
        m: &mut Metrics,
    ) -> (FrameId, Vec<PhysAddr>) {
        if let Some(f) = self.ipt.alloc_free() {
            return (f, Vec::new());
        }
        if self.standby.is_none() {
            return self.clock_scan(stall, now, m);
        }
        let mut scan_addrs = Vec::new();
        loop {
            // The victim lands on the standby list (its frame is not
            // reusable — the contents are standing by); an overflow
            // releases the oldest frame into the free pool.
            let (_victim, scans) = self.clock_scan(stall, now, m);
            scan_addrs.extend(scans);
            if let Some(f) = self.ipt.alloc_free() {
                return (f, scan_addrs);
            }
        }
    }

    /// Handle a page fault: find a frame, run the fault handler, transfer
    /// the page from DRAM. Returns `(frame, stall, blocked_until)`.
    fn page_fault(
        &mut self,
        asid: Asid,
        vpn: Vpn,
        probe_addrs: &[PhysAddr],
        now: Picos,
        m: &mut Metrics,
    ) -> (FrameId, u64, Option<Picos>) {
        let mut stall = 0u64;

        // Soft fault: the page is still on the standby list.
        if let Some(standby) = self.standby.as_mut() {
            if let Some(e) = standby.reclaim(asid, vpn) {
                m.counts.soft_faults += 1;
                self.ipt.insert(e.frame, asid, vpn);
                if e.dirty {
                    self.ipt.set_dirty(e.frame);
                }
                // Only the (short) software path runs: reuse the fault
                // handler with no scan and a single table update.
                let update = self.ipt.entry_addr(e.frame);
                self.os
                    .page_fault(probe_addrs, &[], &[update], &mut self.handler_buf);
                stall += self.run_handler(HandlerKind::Fault, now, m);
                self.tlb.insert(asid, vpn, e.frame);
                m.hist.fault.record(stall);
                let cycle = self.cycle;
                self.trace.emit(|| Event {
                    at: now,
                    dur: Picos(stall * cycle.0),
                    kind: EventKind::SoftFault,
                    asid: asid.0,
                    arg: vpn.0,
                });
                return (e.frame, stall, None);
            }
        }

        // Choose a frame: free pool first, then replacement.
        let (frame, scan_addrs) = self.acquire_frame(&mut stall, now, m);

        // Fault-handler software (the DRAM-side translation lookup is
        // folded into the handler instruction budget — see DESIGN.md).
        let updates = [self.ipt.entry_addr(frame)];
        self.os
            .page_fault(probe_addrs, &scan_addrs, &updates, &mut self.handler_buf);
        stall += self.run_handler(HandlerKind::Fault, now, m);

        // Optional §3.2 extension: also bring in the next virtual page.
        // The prefetch frame is acquired *before* the demand mapping is
        // inserted (so replacement can never steal the demand frame),
        // and a page on the standby list is left for its cheaper soft
        // fault. Eviction work for the prefetch frame is charged like
        // any other; the transfer itself queues behind the demand
        // transfer and never stalls — its cost surfaces as channel
        // occupancy and as pollution when the speculation proves useless.
        let next = Vpn(vpn.0 + 1);
        let prefetch_frame = if self.prefetch_next
            && self.ipt.frame_of(asid, next).is_none()
            && self
                .standby
                .as_ref()
                .is_none_or(|sb| !sb.contains(asid, next))
        {
            Some(self.acquire_frame(&mut stall, now, m).0)
        } else {
            None
        };

        // The demand page transfer itself.
        let at = now + Picos(stall * self.cycle.0);
        let tr = self.channel.request(at, self.page.get(), frame.0 as u64);
        m.counts.page_faults += 1;
        self.ipt.insert(frame, asid, vpn);
        self.tlb.insert(asid, vpn, frame);
        m.hist
            .dram
            .record(tr.done.saturating_sub(at).cycles_ceil(self.cycle));
        m.hist
            .fault
            .record(tr.done.saturating_sub(now).cycles_ceil(self.cycle));
        let page_bytes = self.page.get();
        self.trace.emit(|| Event {
            at: tr.start,
            dur: tr.done.saturating_sub(tr.start),
            kind: EventKind::DramTransfer,
            asid: ASID_NONE,
            arg: page_bytes,
        });
        self.trace.emit(|| Event {
            at: now,
            dur: tr.done.saturating_sub(now),
            kind: EventKind::PageFault,
            asid: asid.0,
            arg: vpn.0,
        });

        if let Some(pf) = prefetch_frame {
            let ptr = self.channel.request(tr.done, self.page.get(), pf.0 as u64);
            self.ipt.insert(pf, asid, next);
            self.prefetched.insert((asid, next));
            m.counts.prefetches += 1;
            m.hist
                .dram
                .record(ptr.done.saturating_sub(tr.done).cycles_ceil(self.cycle));
            self.trace.emit(|| Event {
                at: ptr.start,
                dur: ptr.done.saturating_sub(ptr.start),
                kind: EventKind::DramTransfer,
                asid: ASID_NONE,
                arg: page_bytes,
            });
        }

        if self.switch_on_miss {
            // The process blocks until the transfer completes; the CPU
            // will run someone else (§4.6). Software time already stalled.
            (frame, stall, Some(tr.done))
        } else {
            let total = tr.done.saturating_sub(now).cycles_ceil(self.cycle);
            let dram = total.saturating_sub(stall);
            m.time.dram_cycles += dram;
            (frame, stall + dram, None)
        }
    }
}

impl MemorySystem for Rampage {
    fn access_user(
        &mut self,
        asid: Asid,
        rec: TraceRecord,
        now: Picos,
        m: &mut Metrics,
    ) -> AccessOutcome {
        let vpn = self.page.vpn(rec.addr);
        let mut stall = 0u64;
        let mut blocked_until = None;
        let frame = match self.tlb.lookup(asid, vpn) {
            Some(f) => f,
            None => {
                // TLB refill entirely within SRAM (§2.3).
                let lk = self.ipt.lookup(asid, vpn);
                self.os.tlb_refill(&lk.probe_addrs, &mut self.handler_buf);
                let refill = self.run_handler(HandlerKind::TlbRefill, now, m);
                stall += refill;
                m.hist.tlb.record(refill);
                let cycle = self.cycle;
                let probes = lk.probes() as u64;
                self.trace.emit(|| Event {
                    at: now,
                    dur: Picos(refill * cycle.0),
                    kind: EventKind::TlbMiss,
                    asid: asid.0,
                    arg: probes,
                });
                match lk.frame {
                    Some(f) => {
                        if self.prefetched.remove(&(asid, vpn)) {
                            m.counts.prefetches_useful += 1;
                        }
                        self.tlb.insert(asid, vpn, f);
                        f
                    }
                    None => {
                        let at = now + Picos(stall * self.cycle.0);
                        let (f, fault_stall, blocked) =
                            self.page_fault(asid, vpn, &lk.probe_addrs, at, m);
                        stall += fault_stall;
                        blocked_until = blocked;
                        f
                    }
                }
            }
        };
        let pa = PhysAddr(frame.base_addr(self.page).0 + self.page.offset(rec.addr));
        let at = now + Picos(stall * self.cycle.0);
        stall += self.access_phys(pa, rec.kind, at, m);
        AccessOutcome {
            stall_cycles: stall,
            blocked_until,
        }
    }

    fn run_switch(&mut self, from: usize, to: usize, now: Picos, m: &mut Metrics) -> u64 {
        // Switch code and PCBs are pinned in SRAM (§4.6), so the whole
        // sequence is SRAM-resident.
        self.os.context_switch(from, to, &mut self.handler_buf);
        self.run_handler(HandlerKind::Switch, now, m)
    }

    fn finalize(&mut self, m: &mut Metrics) {
        m.counts.l1i = self.l1i.stats();
        m.counts.l1d = self.l1d.stats();
        m.counts.tlb = self.tlb.stats();
        if let Some(sb) = &self.standby {
            m.counts.soft_faults = sb.soft_faults();
        }
    }

    fn label(&self) -> String {
        format!(
            "RAMpage ({} pages, {} frames, {} pinned)",
            self.page,
            self.ipt.num_frames(),
            self.pinned_frames
        )
    }

    fn attach_trace(&mut self, sink: TraceSink) {
        self.trace = sink;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SystemConfig;
    use crate::time::IssueRate;

    fn system(page: u64) -> Rampage {
        Rampage::new(&SystemConfig::rampage(IssueRate::GHZ1, page))
    }

    #[test]
    fn pinned_region_matches_paper_scale() {
        // §4.5: "6 pages of the SRAM main memory when simulating a
        // 4 Kbyte SRAM page ... up to 5336 pages for a 128 byte block
        // size". Our OS model reproduces the order of magnitude.
        let big = system(4096);
        assert!(
            (5..=16).contains(&big.pinned_frames()),
            "4 KB pages pin {} frames",
            big.pinned_frames()
        );
        let small = system(128);
        assert!(
            (4000..=8000).contains(&small.pinned_frames()),
            "128 B pages pin {} frames",
            small.pinned_frames()
        );
    }

    #[test]
    fn cold_access_faults_and_transfers_page() {
        let mut s = system(1024);
        let mut m = Metrics::default();
        let out = s.access_user(Asid(1), TraceRecord::read(0x1000), Picos::ZERO, &mut m);
        assert_eq!(m.counts.page_faults, 1);
        assert!(m.counts.tlb_handler_refs > 0);
        assert!(m.counts.fault_handler_refs > 0);
        assert!(m.time.dram_cycles > 0, "page transfer charged");
        assert!(out.stall_cycles > 1000, "1 KB page at 1 GHz ≈ 1330 cycles");
    }

    #[test]
    fn warm_access_is_free() {
        let mut s = system(1024);
        let mut m = Metrics::default();
        s.access_user(Asid(1), TraceRecord::read(0x1000), Picos::ZERO, &mut m);
        let out = s.access_user(Asid(1), TraceRecord::read(0x1010), Picos::ZERO, &mut m);
        assert_eq!(out.stall_cycles, 0, "TLB warm, L1 warm (same block)");
    }

    #[test]
    fn tlb_miss_on_resident_page_stays_in_sram() {
        let mut s = system(128);
        let mut m = Metrics::default();
        // Touch 70 distinct pages: evicts some TLB entries (64-entry TLB)
        // but all pages stay resident in SRAM.
        for i in 0..70u64 {
            s.access_user(
                Asid(1),
                TraceRecord::read(0x10000 + i * 128),
                Picos::ZERO,
                &mut m,
            );
        }
        let faults_before = m.counts.page_faults;
        let dram_before = m.time.dram_cycles;
        // Page 0x10000 was touched 70 pages ago: TLB-cold, SRAM-resident.
        s.access_user(Asid(1), TraceRecord::read(0x10000), Picos::ZERO, &mut m);
        assert_eq!(m.counts.page_faults, faults_before, "no new fault");
        assert_eq!(m.time.dram_cycles, dram_before, "TLB refill never hit DRAM");
    }

    #[test]
    fn page_replacement_evicts_and_writes_back_dirty() {
        // 4 KB pages: 1025 frames, ~7 pinned → ~1018 user frames. Touch
        // more pages than that with writes to force dirty replacements.
        let mut s = system(4096);
        let mut m = Metrics::default();
        let user_frames = (s.total_frames() - s.pinned_frames()) as u64;
        for i in 0..(user_frames + 50) {
            s.access_user(Asid(1), TraceRecord::write(i * 4096), Picos::ZERO, &mut m);
        }
        assert!(
            m.counts.page_faults > user_frames,
            "every touch faults once, then replacements begin"
        );
        assert!(m.counts.dram_writebacks > 0, "dirty pages written back");
        // Note: TLB flushes on replacement are rare here because the
        // 64-entry TLB evicted those translations by capacity long before
        // the clock reached their pages (flush behaviour itself is
        // unit-tested in rampage-vm).
    }

    #[test]
    fn replacing_a_tlb_resident_page_flushes_its_entry() {
        let mut s = system(4096);
        let mut m = Metrics::default();
        let user_frames = (s.total_frames() - s.pinned_frames()) as u64;
        // Fill memory, then re-touch the first 32 pages so they are both
        // TLB-resident and clock-victims-to-be (referenced bits get a
        // second chance, but the sweep clears them and later picks them).
        for i in 0..user_frames {
            s.access_user(Asid(1), TraceRecord::read(i * 4096), Picos::ZERO, &mut m);
        }
        for i in 0..32u64 {
            s.access_user(Asid(1), TraceRecord::read(i * 4096), Picos::ZERO, &mut m);
        }
        // Fault in enough new pages that the clock wraps over pages 0..32
        // while their TLB entries are still live.
        for i in 0..64u64 {
            s.access_user(
                Asid(1),
                TraceRecord::read((user_frames + i) * 4096),
                Picos::ZERO,
                &mut m,
            );
        }
        s.finalize(&mut m);
        assert!(m.counts.tlb.flushes > 0, "some replaced page was TLB-hot");
    }

    #[test]
    fn switch_on_miss_blocks_instead_of_stalling() {
        let mut cfg = SystemConfig::rampage_switching(IssueRate::GHZ1, 4096);
        cfg.switch_trace = true;
        let mut s = Rampage::new(&cfg);
        let mut m = Metrics::default();
        let out = s.access_user(Asid(1), TraceRecord::read(0x4000), Picos::ZERO, &mut m);
        let ready = out.blocked_until.expect("fault must block");
        // The transfer takes 50 ns + 4096/2 × 1.25 ns = 2610 ns.
        assert!(ready >= Picos::from_nanos(2610));
        // Software time still stalls, but far less than the transfer.
        assert!(out.stall_cycles < 2610);
        assert_eq!(
            m.time.dram_cycles, 0,
            "transfer overlaps execution, not charged as stall"
        );
    }

    #[test]
    fn standby_list_serves_soft_faults() {
        let mut cfg = SystemConfig::rampage(IssueRate::GHZ1, 4096);
        if let HierarchyKind::Rampage(ref mut r) = cfg.hierarchy {
            r.standby_pages = Some(64);
        }
        let mut s = Rampage::new(&cfg);
        let mut m = Metrics::default();
        let user_frames = (s.total_frames() - s.pinned_frames()) as u64;
        // Fill all user frames, then touch a few more to push the first
        // pages onto the standby list.
        for i in 0..(user_frames + 8) {
            s.access_user(Asid(1), TraceRecord::read(i * 4096), Picos::ZERO, &mut m);
        }
        // A recently replaced page is still standing by. (Page 0 is not:
        // the standby burst filled the list with pages 0..64 and the 8
        // subsequent faults discarded the oldest few, so pick page 20.)
        let dram_before = m.time.dram_cycles;
        let faults_before = m.counts.page_faults;
        s.access_user(Asid(1), TraceRecord::read(20 * 4096), Picos::ZERO, &mut m);
        s.finalize(&mut m);
        assert!(m.counts.soft_faults >= 1, "standby reclaim happened");
        assert_eq!(m.counts.page_faults, faults_before, "no DRAM page transfer");
        assert_eq!(m.time.dram_cycles, dram_before);
    }

    #[test]
    fn l1_writeback_marks_page_dirty_for_replacement() {
        let mut s = system(4096);
        let mut m = Metrics::default();
        // Write into a page, then force its L1 block out via a conflicting
        // address (L1 is 16 KB: +16 KB aliases the same set).
        s.access_user(Asid(1), TraceRecord::write(0x8000), Picos::ZERO, &mut m);
        s.access_user(
            Asid(1),
            TraceRecord::read(0x8000 + 16 * 1024),
            Picos::ZERO,
            &mut m,
        );
        // Now replace every page and count write-backs: page 0x8000 was
        // dirtied purely by the L1 write-back path.
        let user_frames = (s.total_frames() - s.pinned_frames()) as u64;
        for i in 2..(user_frames + 2) {
            s.access_user(
                Asid(1),
                TraceRecord::read(i * 4096 + 0x100000),
                Picos::ZERO,
                &mut m,
            );
        }
        assert!(
            m.counts.dram_writebacks >= 1,
            "dirty page went back to DRAM"
        );
    }

    #[test]
    fn prefetch_next_page_avoids_sequential_faults() {
        let mut cfg = SystemConfig::rampage(IssueRate::GHZ1, 1024);
        if let HierarchyKind::Rampage(ref mut r) = cfg.hierarchy {
            r.prefetch_next = true;
        }
        let mut s = Rampage::new(&cfg);
        let mut m = Metrics::default();
        // A pure sequential page walk: after the first fault, every next
        // page should already be prefetched (only odd-indexed pages
        // fault: each fault prefetches page n+1).
        for i in 0..64u64 {
            s.access_user(Asid(1), TraceRecord::read(i * 1024), Picos::ZERO, &mut m);
        }
        assert!(
            m.counts.prefetches > 20,
            "prefetches: {}",
            m.counts.prefetches
        );
        assert!(
            m.counts.page_faults <= 34,
            "~half the faults avoided: {}",
            m.counts.page_faults
        );
        assert!(
            m.counts.prefetches_useful > 20,
            "sequential walk uses its prefetches: {}",
            m.counts.prefetches_useful
        );
    }

    #[test]
    fn prefetch_works_with_standby_after_warmup() {
        // Regression guard for the standby/prefetch interaction: the
        // prefetch frame must come from the free pool (standby overflow),
        // never from a frame whose contents are standing by.
        let mut cfg = SystemConfig::rampage(IssueRate::GHZ1, 4096);
        if let HierarchyKind::Rampage(ref mut r) = cfg.hierarchy {
            r.prefetch_next = true;
            r.standby_pages = Some(32);
        }
        let mut s = Rampage::new(&cfg);
        let mut m = Metrics::default();
        let user_frames = (s.total_frames() - s.pinned_frames()) as u64;
        for i in 0..(2 * user_frames) {
            s.access_user(Asid(1), TraceRecord::read(i * 4096), Picos::ZERO, &mut m);
        }
        assert!(m.counts.prefetches > 0);
        assert!(m.counts.soft_faults > 0 || m.counts.page_faults > 0);
    }

    #[test]
    fn kernel_asid_is_isolated_from_users() {
        let mut s = system(1024);
        let mut m = Metrics::default();
        // User ASID u16::MAX-1 is fine; the kernel ASID is reserved but a
        // user using high ASIDs must not collide with pinned pages.
        let out = s.access_user(
            Asid(u16::MAX - 1),
            TraceRecord::read(0),
            Picos::ZERO,
            &mut m,
        );
        assert!(out.stall_cycles > 0);
        assert_eq!(m.counts.page_faults, 1);
    }
}
