//! The two memory systems the paper compares.
//!
//! Both sit below the same front end (16 KB direct-mapped L1 I/D caches,
//! TLB, perfect write buffering) and above the same Direct Rambus DRAM;
//! they differ in what occupies the 4 MB SRAM level and who manages it:
//!
//! * [`Conventional`] — a hardware L2 cache (tags, inclusion, hardware
//!   replacement);
//! * [`Rampage`] — a software-managed paged SRAM main memory (no tags,
//!   pinned inverted page table, clock replacement, faults handled by
//!   simulated OS software).

mod conventional;
mod rampage;

pub use conventional::Conventional;
pub use rampage::Rampage;

use crate::config::SystemConfig;
use crate::metrics::Metrics;
use crate::obs::TraceSink;
use rampage_dram::Picos;
use rampage_trace::{Asid, TraceRecord};

/// Result of presenting one user reference to a memory system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AccessOutcome {
    /// CPU cycles the reference stalls beyond its base issue cycle
    /// (includes any software-handler execution the reference triggered).
    pub stall_cycles: u64,
    /// Set when the process must block on a DRAM page transfer instead of
    /// stalling (RAMpage with context-switch-on-miss): the absolute time
    /// at which the transfer completes and the process becomes runnable.
    pub blocked_until: Option<Picos>,
}

/// A memory system under the simulator's L1-and-below accounting rules.
///
/// Implementations charge time into the [`Metrics`] buckets as they go
/// (the engine owns base instruction-issue time and idle time) and return
/// per-reference stall cycles.
pub trait MemorySystem {
    /// Present one user reference at absolute time `now`.
    fn access_user(
        &mut self,
        asid: Asid,
        rec: TraceRecord,
        now: Picos,
        m: &mut Metrics,
    ) -> AccessOutcome;

    /// Execute the ~400-reference context-switch code through the
    /// hierarchy; returns the stall cycles it took.
    fn run_switch(&mut self, from: usize, to: usize, now: Picos, m: &mut Metrics) -> u64;

    /// Copy internal cache/TLB statistics into the metrics at end of run.
    fn finalize(&mut self, m: &mut Metrics);

    /// A short description for reports.
    fn label(&self) -> String;

    /// Share the engine's event-trace sink so the system's misses,
    /// faults, and DRAM transfers land in the same ring. The default
    /// implementation ignores the sink (no events from such a system);
    /// both built-in systems override it.
    fn attach_trace(&mut self, sink: TraceSink) {
        let _ = sink;
    }
}

/// Build the memory system a configuration describes.
pub fn build(cfg: &SystemConfig) -> Box<dyn MemorySystem + Send> {
    match cfg.hierarchy {
        crate::config::HierarchyKind::Conventional(_) => Box::new(Conventional::new(cfg)),
        crate::config::HierarchyKind::Rampage(_) => Box::new(Rampage::new(cfg)),
    }
}
