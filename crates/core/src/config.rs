//! System configuration: the paper's §4.3–§4.7 parameters as data.

use crate::error::ConfigError;
use crate::time::IssueRate;
use rampage_cache::{Geometry, ReplacementPolicy};
use rampage_dram::{BankedConfig, DramModel, Picos};
use rampage_vm::os::OsCosts;
use rampage_vm::PageSize;

/// L1 miss penalty to L2 / SRAM main memory, in CPU cycles (§4.3).
pub const L1_MISS_PENALTY: u64 = 12;
/// L1 write-back penalty in the RAMpage hierarchy: 9 cycles, "since there
/// is no L2 tag to update" (§4.3); the conventional hierarchy pays the
/// full [`L1_MISS_PENALTY`].
pub const RAMPAGE_WRITEBACK_PENALTY: u64 = 9;
/// The multiprogramming quantum: "switching to a different trace every
/// 500,000 references" (§4.2).
pub const QUANTUM_REFS: u64 = 500_000;
/// DRAM page size, held constant while the SRAM page size varies (§2.4).
pub const DRAM_PAGE_SIZE: u64 = 4096;
/// The L2 cache / SRAM main memory base capacity: 4 MB (§4.4).
pub const SRAM_BASE_SIZE: u64 = 4 << 20;
/// Bytes of tag the paper's sizing convention grants per L2 block when
/// computing the RAMpage SRAM bonus (4 B × 32 K blocks = the paper's
/// "128 Kbytes larger" at 128-byte blocks, §4.5).
pub const TAG_BYTES_PER_BLOCK: u64 = 4;

/// Which DRAM timing model a system uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DramKind {
    /// Non-pipelined Direct Rambus — the paper's configuration (§4.3).
    Rambus,
    /// Pipelined Direct Rambus — the §6.3 future-work ablation.
    RambusPipelined,
    /// The §3.3 SDRAM example (128-bit bus at 10 ns) — used to verify the
    /// paper's claim that it behaves like non-pipelined Rambus.
    Sdram,
    /// The event-driven bank-aware Direct Rambus backend: per-bank row
    /// buffers, a row/bank/column address mapping, and structural channel
    /// pipelining (ROADMAP item 1; `repro --dram-backend banked`).
    Banked(BankedConfig),
}

impl DramKind {
    /// The full-fidelity banked backend with the paper-era RDRAM
    /// geometry (16 banks × 2 KB rows, open rows, pipelined).
    pub fn banked() -> Self {
        DramKind::Banked(BankedConfig::paper())
    }

    /// The flat analytic timing model behind this kind, when it has one.
    /// The banked backend is event-driven and has no closed-form model,
    /// so it returns `None`.
    pub fn flat_model(self) -> Option<DramModel> {
        match self {
            DramKind::Rambus => Some(DramModel::rambus()),
            DramKind::RambusPipelined => Some(DramModel::rambus_pipelined()),
            DramKind::Sdram => Some(DramModel::sdram()),
            DramKind::Banked(_) => None,
        }
    }

    /// One-line device description for trace metadata and logs.
    pub fn diagnostics(self) -> String {
        match self {
            DramKind::Rambus => DramModel::rambus().diagnostics(),
            DramKind::RambusPipelined => DramModel::rambus_pipelined().diagnostics(),
            DramKind::Sdram => DramModel::sdram().diagnostics(),
            DramKind::Banked(b) => format!(
                "Banked Direct Rambus ({} banks x {} B rows, open rows {}, pipelined {})",
                b.mapping.banks(),
                b.mapping.row_bytes(),
                if b.open_rows { "on" } else { "off" },
                if b.pipelined { "on" } else { "off" },
            ),
        }
    }
}

/// L1 cache parameters (each of the I and D caches).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct L1Config {
    /// Capacity in bytes.
    pub size: u64,
    /// Block size in bytes.
    pub block: u64,
    /// Associativity.
    pub ways: u32,
}

impl L1Config {
    /// The paper's L1: 16 KB, direct-mapped, 32-byte blocks (§4.3).
    pub fn paper_default() -> Self {
        L1Config {
            size: 16 * 1024,
            block: 32,
            ways: 1,
        }
    }

    /// The §6.3 future-work L1: 64 KB, 2-way.
    pub fn aggressive() -> Self {
        L1Config {
            size: 64 * 1024,
            block: 32,
            ways: 2,
        }
    }

    /// As a cache geometry.
    ///
    /// # Panics
    ///
    /// Panics if the parameters are inconsistent. Presets are always
    /// valid, and [`SystemConfig::validate`] rejects inconsistent
    /// parameters before any simulation, so reaching this panic means a
    /// config bypassed validation (an internal invariant).
    pub fn geometry(&self) -> Geometry {
        match Geometry::new(self.size, self.block, self.ways) {
            Ok(g) => g,
            Err(e) => panic!("invalid L1 configuration {self:?}: {e}"),
        }
    }
}

/// L2 cache parameters (conventional hierarchy only).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct L2Config {
    /// Capacity in bytes (the paper uses 4 MB throughout).
    pub size: u64,
    /// Block size in bytes (swept 128 B – 4 KB).
    pub block: u64,
    /// Associativity: 1 (baseline) or 2 ("more realistic", §4.7).
    pub ways: u32,
    /// Replacement policy (random for the 2-way configuration, §4.7).
    pub policy: ReplacementPolicy,
}

impl L2Config {
    /// The baseline direct-mapped L2 (§4.4).
    pub fn direct_mapped(block: u64) -> Self {
        L2Config {
            size: SRAM_BASE_SIZE,
            block,
            ways: 1,
            policy: ReplacementPolicy::Lru,
        }
    }

    /// The 2-way random-replacement L2 (§4.7).
    pub fn two_way(block: u64) -> Self {
        L2Config {
            size: SRAM_BASE_SIZE,
            block,
            ways: 2,
            policy: ReplacementPolicy::Random,
        }
    }

    /// As a cache geometry.
    ///
    /// # Panics
    ///
    /// Panics if the parameters are inconsistent; as with
    /// [`L1Config::geometry`], [`SystemConfig::validate`] screens this
    /// out before simulation.
    pub fn geometry(&self) -> Geometry {
        match Geometry::new(self.size, self.block, self.ways) {
            Ok(g) => g,
            Err(e) => panic!("invalid L2 configuration {self:?}: {e}"),
        }
    }
}

/// RAMpage SRAM-main-memory parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RampageConfig {
    /// SRAM page size (swept 128 B – 4 KB).
    pub page_size: PageSize,
    /// Standby page list capacity (pages); `None` disables the software
    /// victim-cache extension (the paper's base configuration).
    pub standby_pages: Option<usize>,
    /// Sequential next-page prefetch on a fault (§3.2: "Prefetch could
    /// be added to RAMpage"): the fault handler also brings in the next
    /// virtual page, queued behind the demand transfer. Off in the
    /// paper's configuration.
    pub prefetch_next: bool,
}

impl RampageConfig {
    /// The paper's configuration at a given page size.
    ///
    /// # Errors
    ///
    /// [`ConfigError::BadPageSize`] unless `page_size` is a power of two
    /// of at least 8 bytes.
    pub fn try_paper(page_size: u64) -> Result<Self, ConfigError> {
        let page_size =
            PageSize::new(page_size).ok_or(ConfigError::BadPageSize { value: page_size })?;
        Ok(RampageConfig {
            page_size,
            standby_pages: None,
            prefetch_next: false,
        })
    }

    /// The paper's configuration at a given page size.
    ///
    /// # Panics
    ///
    /// Panics if `page_size` is not a valid [`PageSize`]; use
    /// [`RampageConfig::try_paper`] to handle that case.
    pub fn paper(page_size: u64) -> Self {
        match RampageConfig::try_paper(page_size) {
            Ok(cfg) => cfg,
            Err(e) => panic!("{e}"),
        }
    }

    /// Total SRAM capacity: 4 MB plus the tag-equivalent bonus, "128
    /// Kbytes larger (since it does not need tags) ... scaled down for
    /// larger page sizes" (§4.5).
    pub fn sram_bytes(&self) -> u64 {
        let blocks = SRAM_BASE_SIZE / self.page_size.get();
        SRAM_BASE_SIZE + TAG_BYTES_PER_BLOCK * blocks
    }

    /// Number of SRAM frames at this page size (whole pages only).
    pub fn num_frames(&self) -> u32 {
        (self.sram_bytes() / self.page_size.get()) as u32
    }
}

/// TLB parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TlbConfig {
    /// Number of sets (1 = fully associative).
    pub sets: usize,
    /// Ways per set.
    pub ways: usize,
}

impl TlbConfig {
    /// The paper's TLB: 64 entries, fully associative (§4.3).
    pub fn paper_default() -> Self {
        TlbConfig { sets: 1, ways: 64 }
    }

    /// The §6.3 future-work TLB: 1 K entries, 2-way.
    pub fn large_2way() -> Self {
        TlbConfig { sets: 512, ways: 2 }
    }

    /// Total entries.
    pub fn entries(&self) -> usize {
        self.sets * self.ways
    }
}

/// Which memory system sits below L1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HierarchyKind {
    /// Conventional L2 cache over DRAM.
    Conventional(L2Config),
    /// RAMpage SRAM main memory over a DRAM paging device.
    Rampage(RampageConfig),
}

impl HierarchyKind {
    /// The L2 block size or SRAM page size — the x-axis of every figure.
    pub fn unit_bytes(&self) -> u64 {
        match self {
            HierarchyKind::Conventional(l2) => l2.block,
            HierarchyKind::Rampage(r) => r.page_size.get(),
        }
    }
}

/// A complete simulated system.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SystemConfig {
    /// Instruction issue rate.
    pub issue: IssueRate,
    /// L1 instruction and data cache parameters.
    pub l1: L1Config,
    /// TLB parameters.
    pub tlb: TlbConfig,
    /// The level below L1.
    pub hierarchy: HierarchyKind,
    /// Which DRAM device sits behind the memory controller (the paper's
    /// runs use non-pipelined Direct Rambus; the pipelined variant is the
    /// §6.3 ablation and SDRAM the §3.3 comparator).
    pub dram: DramKind,
    /// Number of independent DRAM channels, interleaved by transfer
    /// unit. The paper uses one; §3.3 notes more channels raise
    /// bandwidth without improving latency.
    pub dram_channels: u32,
    /// OS handler instruction budgets.
    pub os_costs: OsCosts,
    /// References per scheduling quantum (the paper's interleave: a
    /// fixed 500 000 references regardless of CPU speed).
    pub quantum: u64,
    /// Optional *time-based* quantum. When set it overrides the
    /// reference quantum — the real-time-clock slice the paper says a
    /// real system would use (§5.5), under which a faster CPU executes
    /// more references per slice.
    pub quantum_time: Option<Picos>,
    /// Insert the ~400-reference context-switch trace at quantum
    /// boundaries (§4.6; Table 4/5 runs enable this).
    pub switch_trace: bool,
    /// RAMpage only: take a context switch on a page fault to DRAM,
    /// overlapping the transfer with another process (§4.6, Table 4).
    pub switch_on_miss: bool,
    /// Optional Jouppi victim cache between L1 and the next level
    /// (entries of L1-block size). `None` — the paper's configuration —
    /// omits it; §3.2 discusses it as a conflict-miss reducer that does
    /// not slow hits.
    pub l1_victim_blocks: Option<usize>,
    /// Optional finite write-buffer depth. `None` is the paper's
    /// "perfect write buffering" assumption (§4.3); a finite buffer
    /// charges a drain stall when a write finds it full, letting the
    /// ablations check that assumption.
    pub write_buffer_depth: Option<usize>,
    /// Classify L2 misses with the 3C taxonomy (conventional hierarchy
    /// only; diagnostic — costs simulation speed, charges no simulated
    /// time). The profile lands in `Counters::l2_miss_profile`.
    pub classify_l2: bool,
}

impl SystemConfig {
    fn common(issue: IssueRate, hierarchy: HierarchyKind) -> Self {
        SystemConfig {
            issue,
            l1: L1Config::paper_default(),
            tlb: TlbConfig::paper_default(),
            hierarchy,
            dram: DramKind::Rambus,
            dram_channels: 1,
            os_costs: OsCosts::default(),
            quantum: QUANTUM_REFS,
            quantum_time: None,
            switch_trace: false,
            switch_on_miss: false,
            l1_victim_blocks: None,
            write_buffer_depth: None,
            classify_l2: false,
        }
    }

    /// The baseline system: direct-mapped L2 of the given block size
    /// (§4.4), no context-switch trace.
    pub fn baseline(issue: IssueRate, l2_block: u64) -> Self {
        SystemConfig::common(
            issue,
            HierarchyKind::Conventional(L2Config::direct_mapped(l2_block)),
        )
    }

    /// The "more realistic" system: 2-way L2, context-switch trace
    /// included (§4.7 / Table 5).
    pub fn two_way(issue: IssueRate, l2_block: u64) -> Self {
        let mut cfg = SystemConfig::common(
            issue,
            HierarchyKind::Conventional(L2Config::two_way(l2_block)),
        );
        cfg.switch_trace = true;
        cfg
    }

    /// The RAMpage system at the given SRAM page size (§4.5).
    pub fn rampage(issue: IssueRate, page_size: u64) -> Self {
        SystemConfig::common(
            issue,
            HierarchyKind::Rampage(RampageConfig::paper(page_size)),
        )
    }

    /// RAMpage with context switches on misses (§4.6 / Table 4); also
    /// enables the quantum switch trace.
    pub fn rampage_switching(issue: IssueRate, page_size: u64) -> Self {
        let mut cfg = SystemConfig::rampage(issue, page_size);
        cfg.switch_trace = true;
        cfg.switch_on_miss = true;
        cfg
    }

    /// Check every parameter against the constraints the simulator
    /// relies on, with actionable messages naming the offending value.
    ///
    /// The [`SweepRunner`](crate::experiments::SweepRunner) calls this
    /// before simulating any cell, so a bad configuration becomes a
    /// recorded failed cell instead of a mid-sweep panic; `repro` entry
    /// points inherit the same gate because every artifact flows through
    /// the runner.
    ///
    /// # Errors
    ///
    /// The first [`ConfigError`] found, checking the L1, the hierarchy
    /// level below it (L2 geometry or RAMpage page size), the TLB, the
    /// DRAM channel count, the scheduling quantum, and the optional
    /// victim-cache / write-buffer capacities.
    pub fn validate(&self) -> Result<(), ConfigError> {
        validate_cache("L1 cache", self.l1.size, self.l1.block, self.l1.ways)?;
        match &self.hierarchy {
            HierarchyKind::Conventional(l2) => {
                validate_cache("L2 cache", l2.size, l2.block, l2.ways)?;
            }
            HierarchyKind::Rampage(r) => {
                // `PageSize` is validated at construction; re-check the
                // derived frame arithmetic and the optional standby list.
                if r.page_size.get() > r.sram_bytes() {
                    return Err(ConfigError::BlockExceedsCache {
                        what: "RAMpage SRAM",
                        block: r.page_size.get(),
                        size: r.sram_bytes(),
                    });
                }
                if r.standby_pages == Some(0) {
                    return Err(ConfigError::ZeroCapacity {
                        what: "standby page list",
                    });
                }
            }
        }
        if self.tlb.entries() == 0 {
            return Err(ConfigError::EmptyTlb);
        }
        if !self.tlb.sets.is_power_of_two() {
            return Err(ConfigError::TlbSetsNotPowerOfTwo {
                sets: self.tlb.sets,
            });
        }
        if self.dram_channels == 0 {
            return Err(ConfigError::ZeroDramChannels);
        }
        if let DramKind::Banked(b) = self.dram {
            b.validate().map_err(ConfigError::Dram)?;
        }
        if self.quantum == 0 {
            return Err(ConfigError::ZeroQuantum);
        }
        if self.quantum_time == Some(Picos::ZERO) {
            return Err(ConfigError::ZeroTimeQuantum);
        }
        if self.l1_victim_blocks == Some(0) {
            return Err(ConfigError::ZeroCapacity {
                what: "L1 victim cache",
            });
        }
        if self.write_buffer_depth == Some(0) {
            return Err(ConfigError::ZeroCapacity {
                what: "write buffer",
            });
        }
        Ok(())
    }

    /// A short description for reports.
    pub fn label(&self) -> String {
        let base = match &self.hierarchy {
            HierarchyKind::Conventional(l2) if l2.ways == 1 => {
                format!("DM L2, {} B blocks", l2.block)
            }
            HierarchyKind::Conventional(l2) => {
                format!("{}-way L2, {} B blocks", l2.ways, l2.block)
            }
            HierarchyKind::Rampage(r) => format!("RAMpage, {} pages", r.page_size),
        };
        let mut s = format!("{base} @ {}", self.issue);
        if self.switch_on_miss {
            s.push_str(" +switch-on-miss");
        }
        s
    }
}

/// Shared cache-parameter validation: size/block/ways sanity with the
/// cache's name in every message.
fn validate_cache(what: &'static str, size: u64, block: u64, ways: u32) -> Result<(), ConfigError> {
    if size == 0 {
        return Err(ConfigError::ZeroSize { what });
    }
    if !size.is_power_of_two() {
        return Err(ConfigError::NotPowerOfTwo { what, value: size });
    }
    if block == 0 {
        return Err(ConfigError::ZeroSize { what });
    }
    if !block.is_power_of_two() {
        return Err(ConfigError::NotPowerOfTwo { what, value: block });
    }
    if ways == 0 || !ways.is_power_of_two() {
        return Err(ConfigError::BadWays { what, ways });
    }
    if block.saturating_mul(ways as u64) > size {
        return Err(ConfigError::BlockExceedsCache { what, block, size });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sram_bonus_matches_paper() {
        // 128-byte pages: 4 MB + 128 KB (the paper's "4.125 Mbytes").
        let r = RampageConfig::paper(128);
        assert_eq!(r.sram_bytes(), (4 << 20) + 128 * 1024);
        assert_eq!(r.num_frames(), ((4 << 20) + 128 * 1024) / 128);
        // 4 KB pages: bonus shrinks to 4 KB.
        let r = RampageConfig::paper(4096);
        assert_eq!(r.sram_bytes(), (4 << 20) + 4096);
        assert_eq!(r.num_frames(), 1025);
    }

    #[test]
    fn paper_presets() {
        let b = SystemConfig::baseline(IssueRate::GHZ1, 128);
        assert!(matches!(b.hierarchy, HierarchyKind::Conventional(l2) if l2.ways == 1));
        assert!(!b.switch_trace);

        let t = SystemConfig::two_way(IssueRate::GHZ1, 128);
        assert!(matches!(t.hierarchy, HierarchyKind::Conventional(l2)
            if l2.ways == 2 && l2.policy == ReplacementPolicy::Random));
        assert!(t.switch_trace);

        let r = SystemConfig::rampage_switching(IssueRate::GHZ1, 1024);
        assert!(r.switch_on_miss && r.switch_trace);
        assert_eq!(r.quantum, 500_000);
    }

    #[test]
    fn tlb_presets() {
        assert_eq!(TlbConfig::paper_default().entries(), 64);
        assert_eq!(TlbConfig::large_2way().entries(), 1024);
    }

    #[test]
    fn l1_presets_are_valid_geometries() {
        assert_eq!(L1Config::paper_default().geometry().sets(), 512);
        assert_eq!(L1Config::aggressive().geometry().ways(), 2);
    }

    #[test]
    fn unit_bytes_reads_the_sweep_axis() {
        assert_eq!(
            SystemConfig::baseline(IssueRate::GHZ1, 256)
                .hierarchy
                .unit_bytes(),
            256
        );
        assert_eq!(
            SystemConfig::rampage(IssueRate::GHZ1, 2048)
                .hierarchy
                .unit_bytes(),
            2048
        );
    }

    #[test]
    fn paper_presets_validate_cleanly() {
        for size in [128u64, 256, 512, 1024, 2048, 4096] {
            SystemConfig::baseline(IssueRate::GHZ1, size)
                .validate()
                .expect("baseline preset valid");
            SystemConfig::two_way(IssueRate::MHZ200, size)
                .validate()
                .expect("two-way preset valid");
            SystemConfig::rampage_switching(IssueRate::GHZ4, size)
                .validate()
                .expect("rampage preset valid");
        }
    }

    #[test]
    fn validate_rejects_broken_configs() {
        use crate::error::ConfigError;

        let mut cfg = SystemConfig::baseline(IssueRate::GHZ1, 128);
        cfg.l1.size = 0;
        assert_eq!(
            cfg.validate(),
            Err(ConfigError::ZeroSize { what: "L1 cache" })
        );

        let mut cfg = SystemConfig::baseline(IssueRate::GHZ1, 128);
        if let HierarchyKind::Conventional(l2) = &mut cfg.hierarchy {
            l2.block = 3000;
        }
        assert_eq!(
            cfg.validate(),
            Err(ConfigError::NotPowerOfTwo {
                what: "L2 cache",
                value: 3000
            })
        );

        let mut cfg = SystemConfig::baseline(IssueRate::GHZ1, 128);
        if let HierarchyKind::Conventional(l2) = &mut cfg.hierarchy {
            l2.block = l2.size * 2;
        }
        assert!(matches!(
            cfg.validate(),
            Err(ConfigError::NotPowerOfTwo { .. }) | Err(ConfigError::BlockExceedsCache { .. })
        ));

        let mut cfg = SystemConfig::baseline(IssueRate::GHZ1, 128);
        cfg.tlb = TlbConfig { sets: 1, ways: 0 };
        assert_eq!(cfg.validate(), Err(ConfigError::EmptyTlb));

        let mut cfg = SystemConfig::baseline(IssueRate::GHZ1, 128);
        cfg.quantum = 0;
        assert_eq!(cfg.validate(), Err(ConfigError::ZeroQuantum));

        let mut cfg = SystemConfig::rampage(IssueRate::GHZ1, 1024);
        cfg.dram_channels = 0;
        assert_eq!(cfg.validate(), Err(ConfigError::ZeroDramChannels));

        let mut cfg = SystemConfig::rampage(IssueRate::GHZ1, 1024);
        if let HierarchyKind::Rampage(r) = &mut cfg.hierarchy {
            r.standby_pages = Some(0);
        }
        assert!(matches!(
            cfg.validate(),
            Err(ConfigError::ZeroCapacity { .. })
        ));
    }

    #[test]
    fn banked_dram_axis_validates() {
        use crate::error::ConfigError;
        let mut cfg = SystemConfig::rampage(IssueRate::GHZ1, 1024);
        cfg.dram = DramKind::banked();
        cfg.validate().expect("paper banked geometry is valid");
        if let DramKind::Banked(b) = &mut cfg.dram {
            b.timing.per_pair = rampage_dram::Picos::ZERO;
        }
        assert!(matches!(cfg.validate(), Err(ConfigError::Dram(_))));

        assert!(DramKind::banked().flat_model().is_none());
        assert!(DramKind::Rambus.flat_model().is_some());
        let d = DramKind::banked().diagnostics();
        assert!(d.contains("16 banks") && d.contains("2048 B rows"), "{d}");
        assert!(DramKind::Rambus.diagnostics().contains("Direct Rambus"));
    }

    #[test]
    fn try_paper_rejects_bad_page_sizes() {
        use crate::error::ConfigError;
        assert!(RampageConfig::try_paper(1024).is_ok());
        assert_eq!(
            RampageConfig::try_paper(100),
            Err(ConfigError::BadPageSize { value: 100 })
        );
        assert_eq!(
            RampageConfig::try_paper(0),
            Err(ConfigError::BadPageSize { value: 0 })
        );
    }

    #[test]
    fn labels_are_descriptive() {
        assert_eq!(
            SystemConfig::baseline(IssueRate::MHZ200, 128).label(),
            "DM L2, 128 B blocks @ 200 MHz"
        );
        assert!(SystemConfig::rampage_switching(IssueRate::GHZ4, 4096)
            .label()
            .contains("switch-on-miss"));
    }
}
