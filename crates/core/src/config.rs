//! System configuration: the paper's §4.3–§4.7 parameters as data.

use crate::time::IssueRate;
use rampage_cache::{Geometry, ReplacementPolicy};
use rampage_dram::DramModel;
use rampage_vm::os::OsCosts;
use rampage_vm::PageSize;

/// L1 miss penalty to L2 / SRAM main memory, in CPU cycles (§4.3).
pub const L1_MISS_PENALTY: u64 = 12;
/// L1 write-back penalty in the RAMpage hierarchy: 9 cycles, "since there
/// is no L2 tag to update" (§4.3); the conventional hierarchy pays the
/// full [`L1_MISS_PENALTY`].
pub const RAMPAGE_WRITEBACK_PENALTY: u64 = 9;
/// The multiprogramming quantum: "switching to a different trace every
/// 500,000 references" (§4.2).
pub const QUANTUM_REFS: u64 = 500_000;
/// DRAM page size, held constant while the SRAM page size varies (§2.4).
pub const DRAM_PAGE_SIZE: u64 = 4096;
/// The L2 cache / SRAM main memory base capacity: 4 MB (§4.4).
pub const SRAM_BASE_SIZE: u64 = 4 << 20;
/// Bytes of tag the paper's sizing convention grants per L2 block when
/// computing the RAMpage SRAM bonus (4 B × 32 K blocks = the paper's
/// "128 Kbytes larger" at 128-byte blocks, §4.5).
pub const TAG_BYTES_PER_BLOCK: u64 = 4;

/// Which DRAM timing model a system uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DramKind {
    /// Non-pipelined Direct Rambus — the paper's configuration (§4.3).
    Rambus,
    /// Pipelined Direct Rambus — the §6.3 future-work ablation.
    RambusPipelined,
    /// The §3.3 SDRAM example (128-bit bus at 10 ns) — used to verify the
    /// paper's claim that it behaves like non-pipelined Rambus.
    Sdram,
}

impl DramKind {
    /// Instantiate the timing model.
    pub fn model(self) -> DramModel {
        match self {
            DramKind::Rambus => DramModel::rambus(),
            DramKind::RambusPipelined => DramModel::rambus_pipelined(),
            DramKind::Sdram => DramModel::sdram(),
        }
    }
}

/// L1 cache parameters (each of the I and D caches).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct L1Config {
    /// Capacity in bytes.
    pub size: u64,
    /// Block size in bytes.
    pub block: u64,
    /// Associativity.
    pub ways: u32,
}

impl L1Config {
    /// The paper's L1: 16 KB, direct-mapped, 32-byte blocks (§4.3).
    pub fn paper_default() -> Self {
        L1Config {
            size: 16 * 1024,
            block: 32,
            ways: 1,
        }
    }

    /// The §6.3 future-work L1: 64 KB, 2-way.
    pub fn aggressive() -> Self {
        L1Config {
            size: 64 * 1024,
            block: 32,
            ways: 2,
        }
    }

    /// As a cache geometry.
    ///
    /// # Panics
    ///
    /// Panics if the parameters are inconsistent (construction-time
    /// validation; presets are always valid).
    pub fn geometry(&self) -> Geometry {
        Geometry::new(self.size, self.block, self.ways).expect("invalid L1 configuration")
    }
}

/// L2 cache parameters (conventional hierarchy only).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct L2Config {
    /// Capacity in bytes (the paper uses 4 MB throughout).
    pub size: u64,
    /// Block size in bytes (swept 128 B – 4 KB).
    pub block: u64,
    /// Associativity: 1 (baseline) or 2 ("more realistic", §4.7).
    pub ways: u32,
    /// Replacement policy (random for the 2-way configuration, §4.7).
    pub policy: ReplacementPolicy,
}

impl L2Config {
    /// The baseline direct-mapped L2 (§4.4).
    pub fn direct_mapped(block: u64) -> Self {
        L2Config {
            size: SRAM_BASE_SIZE,
            block,
            ways: 1,
            policy: ReplacementPolicy::Lru,
        }
    }

    /// The 2-way random-replacement L2 (§4.7).
    pub fn two_way(block: u64) -> Self {
        L2Config {
            size: SRAM_BASE_SIZE,
            block,
            ways: 2,
            policy: ReplacementPolicy::Random,
        }
    }

    /// As a cache geometry.
    ///
    /// # Panics
    ///
    /// Panics if the parameters are inconsistent.
    pub fn geometry(&self) -> Geometry {
        Geometry::new(self.size, self.block, self.ways).expect("invalid L2 configuration")
    }
}

/// RAMpage SRAM-main-memory parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RampageConfig {
    /// SRAM page size (swept 128 B – 4 KB).
    pub page_size: PageSize,
    /// Standby page list capacity (pages); `None` disables the software
    /// victim-cache extension (the paper's base configuration).
    pub standby_pages: Option<usize>,
    /// Sequential next-page prefetch on a fault (§3.2: "Prefetch could
    /// be added to RAMpage"): the fault handler also brings in the next
    /// virtual page, queued behind the demand transfer. Off in the
    /// paper's configuration.
    pub prefetch_next: bool,
}

impl RampageConfig {
    /// The paper's configuration at a given page size.
    ///
    /// # Panics
    ///
    /// Panics if `page_size` is not a valid [`PageSize`].
    pub fn paper(page_size: u64) -> Self {
        RampageConfig {
            page_size: PageSize::new(page_size).expect("invalid RAMpage page size"),
            standby_pages: None,
            prefetch_next: false,
        }
    }

    /// Total SRAM capacity: 4 MB plus the tag-equivalent bonus, "128
    /// Kbytes larger (since it does not need tags) ... scaled down for
    /// larger page sizes" (§4.5).
    pub fn sram_bytes(&self) -> u64 {
        let blocks = SRAM_BASE_SIZE / self.page_size.get();
        SRAM_BASE_SIZE + TAG_BYTES_PER_BLOCK * blocks
    }

    /// Number of SRAM frames at this page size (whole pages only).
    pub fn num_frames(&self) -> u32 {
        (self.sram_bytes() / self.page_size.get()) as u32
    }
}

/// TLB parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TlbConfig {
    /// Number of sets (1 = fully associative).
    pub sets: usize,
    /// Ways per set.
    pub ways: usize,
}

impl TlbConfig {
    /// The paper's TLB: 64 entries, fully associative (§4.3).
    pub fn paper_default() -> Self {
        TlbConfig { sets: 1, ways: 64 }
    }

    /// The §6.3 future-work TLB: 1 K entries, 2-way.
    pub fn large_2way() -> Self {
        TlbConfig { sets: 512, ways: 2 }
    }

    /// Total entries.
    pub fn entries(&self) -> usize {
        self.sets * self.ways
    }
}

/// Which memory system sits below L1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HierarchyKind {
    /// Conventional L2 cache over DRAM.
    Conventional(L2Config),
    /// RAMpage SRAM main memory over a DRAM paging device.
    Rampage(RampageConfig),
}

impl HierarchyKind {
    /// The L2 block size or SRAM page size — the x-axis of every figure.
    pub fn unit_bytes(&self) -> u64 {
        match self {
            HierarchyKind::Conventional(l2) => l2.block,
            HierarchyKind::Rampage(r) => r.page_size.get(),
        }
    }
}

/// A complete simulated system.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SystemConfig {
    /// Instruction issue rate.
    pub issue: IssueRate,
    /// L1 instruction and data cache parameters.
    pub l1: L1Config,
    /// TLB parameters.
    pub tlb: TlbConfig,
    /// The level below L1.
    pub hierarchy: HierarchyKind,
    /// Which DRAM device sits behind the memory controller (the paper's
    /// runs use non-pipelined Direct Rambus; the pipelined variant is the
    /// §6.3 ablation and SDRAM the §3.3 comparator).
    pub dram: DramKind,
    /// Number of independent DRAM channels, interleaved by transfer
    /// unit. The paper uses one; §3.3 notes more channels raise
    /// bandwidth without improving latency.
    pub dram_channels: u32,
    /// OS handler instruction budgets.
    pub os_costs: OsCosts,
    /// References per scheduling quantum (the paper's interleave: a
    /// fixed 500 000 references regardless of CPU speed).
    pub quantum: u64,
    /// Optional *time-based* quantum in simulated picoseconds. When set
    /// it overrides the reference quantum — the real-time-clock slice the
    /// paper says a real system would use (§5.5), under which a faster
    /// CPU executes more references per slice.
    pub quantum_time: Option<u64>,
    /// Insert the ~400-reference context-switch trace at quantum
    /// boundaries (§4.6; Table 4/5 runs enable this).
    pub switch_trace: bool,
    /// RAMpage only: take a context switch on a page fault to DRAM,
    /// overlapping the transfer with another process (§4.6, Table 4).
    pub switch_on_miss: bool,
    /// Optional Jouppi victim cache between L1 and the next level
    /// (entries of L1-block size). `None` — the paper's configuration —
    /// omits it; §3.2 discusses it as a conflict-miss reducer that does
    /// not slow hits.
    pub l1_victim_blocks: Option<usize>,
    /// Optional finite write-buffer depth. `None` is the paper's
    /// "perfect write buffering" assumption (§4.3); a finite buffer
    /// charges a drain stall when a write finds it full, letting the
    /// ablations check that assumption.
    pub write_buffer_depth: Option<usize>,
    /// Classify L2 misses with the 3C taxonomy (conventional hierarchy
    /// only; diagnostic — costs simulation speed, charges no simulated
    /// time). The profile lands in `Counters::l2_miss_profile`.
    pub classify_l2: bool,
}

impl SystemConfig {
    fn common(issue: IssueRate, hierarchy: HierarchyKind) -> Self {
        SystemConfig {
            issue,
            l1: L1Config::paper_default(),
            tlb: TlbConfig::paper_default(),
            hierarchy,
            dram: DramKind::Rambus,
            dram_channels: 1,
            os_costs: OsCosts::default(),
            quantum: QUANTUM_REFS,
            quantum_time: None,
            switch_trace: false,
            switch_on_miss: false,
            l1_victim_blocks: None,
            write_buffer_depth: None,
            classify_l2: false,
        }
    }

    /// The baseline system: direct-mapped L2 of the given block size
    /// (§4.4), no context-switch trace.
    pub fn baseline(issue: IssueRate, l2_block: u64) -> Self {
        SystemConfig::common(
            issue,
            HierarchyKind::Conventional(L2Config::direct_mapped(l2_block)),
        )
    }

    /// The "more realistic" system: 2-way L2, context-switch trace
    /// included (§4.7 / Table 5).
    pub fn two_way(issue: IssueRate, l2_block: u64) -> Self {
        let mut cfg = SystemConfig::common(
            issue,
            HierarchyKind::Conventional(L2Config::two_way(l2_block)),
        );
        cfg.switch_trace = true;
        cfg
    }

    /// The RAMpage system at the given SRAM page size (§4.5).
    pub fn rampage(issue: IssueRate, page_size: u64) -> Self {
        SystemConfig::common(
            issue,
            HierarchyKind::Rampage(RampageConfig::paper(page_size)),
        )
    }

    /// RAMpage with context switches on misses (§4.6 / Table 4); also
    /// enables the quantum switch trace.
    pub fn rampage_switching(issue: IssueRate, page_size: u64) -> Self {
        let mut cfg = SystemConfig::rampage(issue, page_size);
        cfg.switch_trace = true;
        cfg.switch_on_miss = true;
        cfg
    }

    /// A short description for reports.
    pub fn label(&self) -> String {
        let base = match &self.hierarchy {
            HierarchyKind::Conventional(l2) if l2.ways == 1 => {
                format!("DM L2, {} B blocks", l2.block)
            }
            HierarchyKind::Conventional(l2) => {
                format!("{}-way L2, {} B blocks", l2.ways, l2.block)
            }
            HierarchyKind::Rampage(r) => format!("RAMpage, {} pages", r.page_size),
        };
        let mut s = format!("{base} @ {}", self.issue);
        if self.switch_on_miss {
            s.push_str(" +switch-on-miss");
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sram_bonus_matches_paper() {
        // 128-byte pages: 4 MB + 128 KB (the paper's "4.125 Mbytes").
        let r = RampageConfig::paper(128);
        assert_eq!(r.sram_bytes(), (4 << 20) + 128 * 1024);
        assert_eq!(r.num_frames(), ((4 << 20) + 128 * 1024) / 128);
        // 4 KB pages: bonus shrinks to 4 KB.
        let r = RampageConfig::paper(4096);
        assert_eq!(r.sram_bytes(), (4 << 20) + 4096);
        assert_eq!(r.num_frames(), 1025);
    }

    #[test]
    fn paper_presets() {
        let b = SystemConfig::baseline(IssueRate::GHZ1, 128);
        assert!(matches!(b.hierarchy, HierarchyKind::Conventional(l2) if l2.ways == 1));
        assert!(!b.switch_trace);

        let t = SystemConfig::two_way(IssueRate::GHZ1, 128);
        assert!(matches!(t.hierarchy, HierarchyKind::Conventional(l2)
            if l2.ways == 2 && l2.policy == ReplacementPolicy::Random));
        assert!(t.switch_trace);

        let r = SystemConfig::rampage_switching(IssueRate::GHZ1, 1024);
        assert!(r.switch_on_miss && r.switch_trace);
        assert_eq!(r.quantum, 500_000);
    }

    #[test]
    fn tlb_presets() {
        assert_eq!(TlbConfig::paper_default().entries(), 64);
        assert_eq!(TlbConfig::large_2way().entries(), 1024);
    }

    #[test]
    fn l1_presets_are_valid_geometries() {
        assert_eq!(L1Config::paper_default().geometry().sets(), 512);
        assert_eq!(L1Config::aggressive().geometry().ways(), 2);
    }

    #[test]
    fn unit_bytes_reads_the_sweep_axis() {
        assert_eq!(
            SystemConfig::baseline(IssueRate::GHZ1, 256)
                .hierarchy
                .unit_bytes(),
            256
        );
        assert_eq!(
            SystemConfig::rampage(IssueRate::GHZ1, 2048)
                .hierarchy
                .unit_bytes(),
            2048
        );
    }

    #[test]
    fn labels_are_descriptive() {
        assert_eq!(
            SystemConfig::baseline(IssueRate::MHZ200, 128).label(),
            "DM L2, 128 B blocks @ 200 MHz"
        );
        assert!(SystemConfig::rampage_switching(IssueRate::GHZ4, 4096)
            .label()
            .contains("switch-on-miss"));
    }
}
