//! The observability layer: event tracing, latency histograms, exports.
//!
//! Three pillars, all provably non-perturbing (see
//! `tests/observability.rs`):
//!
//! * **Event tracing** — a [`TraceSink`] handle shared by the engine and
//!   its memory system feeds a bounded [`EventRing`] of simulated-time
//!   [`Event`]s. Disabled by default: the hot path pays exactly one
//!   `Option` discriminant check per potential event, and the event value
//!   itself is never even constructed (the emit closure is not called).
//! * **Latency histograms** — [`LatencyHistograms`] inside
//!   [`crate::Metrics`] record log2-bucketed distributions of DRAM
//!   service time, page-fault service, and TLB-walk cost. Always on:
//!   pure counters over already-computed quantities cannot change them.
//! * **Sweep telemetry** — lives in
//!   [`crate::experiments::SweepRunner`] (progress callbacks and the
//!   `metrics.json` document); see that module.
//!
//! Traces export as JSONL ([`to_jsonl`]) and Chrome `trace_event` JSON
//! ([`chrome_trace`]) — load the latter in `chrome://tracing` or
//! <https://ui.perfetto.dev>.

mod event;
mod export;
mod hist;

pub use event::{Event, EventKind, EventRing, ASID_NONE};
pub use export::{chrome_trace, to_jsonl};
pub use hist::{Hist, LatencyHistograms};

use std::sync::{Arc, Mutex};

/// A cloneable handle onto a shared [`EventRing`], or nothing.
///
/// The engine owns one and hands a clone to its memory system, so both
/// emit into the same bounded ring. The disabled handle is a `None`: an
/// [`emit`](TraceSink::emit) call is a single branch and the closure
/// building the [`Event`] never runs, which is what makes tracing
/// zero-cost when off.
#[derive(Debug, Clone, Default)]
pub struct TraceSink(Option<Arc<Mutex<EventRing>>>);

impl TraceSink {
    /// The disabled sink (what every engine starts with).
    pub fn disabled() -> Self {
        TraceSink(None)
    }

    /// An enabled sink over a fresh ring holding at most `cap` events.
    pub fn bounded(cap: usize) -> Self {
        TraceSink(Some(Arc::new(Mutex::new(EventRing::new(cap)))))
    }

    /// Whether events are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Record the event `f` produces — but only when enabled; `f` is not
    /// called otherwise.
    #[inline]
    pub fn emit(&self, f: impl FnOnce() -> Event) {
        if let Some(ring) = &self.0 {
            let mut guard = ring.lock().unwrap_or_else(|p| p.into_inner());
            guard.push(f());
        }
    }

    /// Take everything recorded so far: `(events oldest-first, dropped)`.
    /// The ring is left empty. Returns `(vec![], 0)` when disabled.
    pub fn drain(&self) -> (Vec<Event>, u64) {
        match &self.0 {
            None => (Vec::new(), 0),
            Some(ring) => {
                let mut guard = ring.lock().unwrap_or_else(|p| p.into_inner());
                (guard.drain(), guard.dropped())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rampage_dram::Picos;

    fn ev(at: u64) -> Event {
        Event {
            at: Picos(at),
            dur: Picos::ZERO,
            kind: EventKind::TlbMiss,
            asid: 0,
            arg: 0,
        }
    }

    #[test]
    fn disabled_sink_never_calls_the_closure() {
        let sink = TraceSink::disabled();
        assert!(!sink.is_enabled());
        let mut called = false;
        sink.emit(|| {
            called = true;
            ev(0)
        });
        assert!(!called, "emit must not build events when disabled");
        assert_eq!(sink.drain(), (Vec::new(), 0));
    }

    #[test]
    fn clones_share_one_ring() {
        let a = TraceSink::bounded(8);
        let b = a.clone();
        a.emit(|| ev(1));
        b.emit(|| ev(2));
        let (events, dropped) = a.drain();
        assert_eq!(events.len(), 2);
        assert_eq!(dropped, 0);
        assert_eq!(events[0].at, Picos(1));
    }

    #[test]
    fn bounded_sink_reports_drops() {
        let sink = TraceSink::bounded(2);
        for i in 0..5 {
            sink.emit(|| ev(i));
        }
        let (events, dropped) = sink.drain();
        assert_eq!(events.len(), 2);
        assert_eq!(dropped, 3);
    }
}
