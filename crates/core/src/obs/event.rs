//! Simulated-time events and the bounded ring that records them.

use rampage_dram::Picos;
use rampage_json::{obj, Json, ToJson};
use std::collections::VecDeque;

/// Sentinel ASID for events not attributable to a user process (kernel
/// handler references, DRAM channel activity, idle time).
pub const ASID_NONE: u16 = u16::MAX;

/// What kind of simulated activity an [`Event`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum EventKind {
    /// An L1 instruction-cache miss (`arg` = physical address).
    L1iMiss,
    /// An L1 data-cache miss (`arg` = physical address).
    L1dMiss,
    /// A conventional L2 miss (`arg` = physical address).
    L2Miss,
    /// One DRAM channel transfer, start to completion (`arg` = bytes).
    DramTransfer,
    /// A TLB miss plus its table-walk refill (`arg` = IPT probes walked).
    TlbMiss,
    /// A demand page fault with a DRAM page transfer (`arg` = VPN).
    PageFault,
    /// A fault served from the standby list, no DRAM traffic
    /// (`arg` = VPN).
    SoftFault,
    /// A scheduled (quantum / end-of-trace) context switch
    /// (`arg` = incoming process index).
    ContextSwitch,
    /// A context switch taken on a miss to DRAM (`arg` = incoming
    /// process index).
    SwitchOnMiss,
    /// One clock-hand sweep selecting a replacement victim
    /// (`arg` = frames scanned).
    ClockSweep,
    /// Cycles with every process blocked on DRAM (`arg` = 0).
    Idle,
}

impl EventKind {
    /// Stable snake_case name used in the JSONL and Chrome exports.
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::L1iMiss => "l1i_miss",
            EventKind::L1dMiss => "l1d_miss",
            EventKind::L2Miss => "l2_miss",
            EventKind::DramTransfer => "dram_transfer",
            EventKind::TlbMiss => "tlb_miss",
            EventKind::PageFault => "page_fault",
            EventKind::SoftFault => "soft_fault",
            EventKind::ContextSwitch => "context_switch",
            EventKind::SwitchOnMiss => "switch_on_miss",
            EventKind::ClockSweep => "clock_sweep",
            EventKind::Idle => "idle",
        }
    }
}

/// One recorded simulated-time event.
///
/// Timestamps are simulated picoseconds (never wall clock), so a trace is
/// a pure function of the run and byte-identical across reruns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Simulated time the activity began.
    pub at: Picos,
    /// Simulated duration (zero for instantaneous markers).
    pub dur: Picos,
    /// What happened.
    pub kind: EventKind,
    /// Owning user ASID, or [`ASID_NONE`].
    pub asid: u16,
    /// Kind-specific payload (see [`EventKind`] variants).
    pub arg: u64,
}

impl ToJson for Event {
    fn to_json(&self) -> Json {
        obj! {
            "at_ps" => self.at.0,
            "dur_ps" => self.dur.0,
            "kind" => self.kind.name(),
            "asid" => if self.asid == ASID_NONE { Json::Null } else { (self.asid as u64).to_json() },
            "arg" => self.arg,
        }
    }
}

/// A bounded ring of [`Event`]s: when full, the oldest event is dropped
/// (and counted), so a trace of a long run keeps its tail — the part a
/// timeline viewer usually wants — at a fixed memory ceiling.
#[derive(Debug)]
pub struct EventRing {
    buf: VecDeque<Event>,
    cap: usize,
    dropped: u64,
}

impl EventRing {
    /// A ring holding at most `cap` events (`cap` is clamped to ≥ 1).
    pub fn new(cap: usize) -> Self {
        let cap = cap.max(1);
        EventRing {
            buf: VecDeque::with_capacity(cap),
            cap,
            dropped: 0,
        }
    }

    /// Record an event, evicting the oldest when the ring is full.
    pub fn push(&mut self, e: Event) {
        if self.buf.len() == self.cap {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(e);
    }

    /// Events currently held, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &Event> {
        self.buf.iter()
    }

    /// Number of events currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the ring holds no events.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Events evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Drain the ring into a vector (oldest first), leaving it empty but
    /// keeping the drop counter.
    pub fn drain(&mut self) -> Vec<Event> {
        self.buf.drain(..).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(at: u64, kind: EventKind) -> Event {
        Event {
            at: Picos(at),
            dur: Picos::ZERO,
            kind,
            asid: 1,
            arg: at,
        }
    }

    #[test]
    fn ring_keeps_newest_when_full() {
        let mut r = EventRing::new(3);
        for i in 0..5 {
            r.push(ev(i, EventKind::TlbMiss));
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.dropped(), 2);
        let kept: Vec<u64> = r.events().map(|e| e.at.0).collect();
        assert_eq!(kept, [2, 3, 4], "oldest evicted first");
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let mut r = EventRing::new(0);
        r.push(ev(0, EventKind::Idle));
        r.push(ev(1, EventKind::Idle));
        assert_eq!(r.len(), 1);
        assert_eq!(r.dropped(), 1);
    }

    #[test]
    fn event_json_shape() {
        let e = ev(7, EventKind::PageFault);
        let j = e.to_json();
        assert_eq!(j.get("at_ps").and_then(Json::as_u64), Some(7));
        assert_eq!(j.get("kind").and_then(Json::as_str), Some("page_fault"));
        assert_eq!(j.get("asid").and_then(Json::as_u64), Some(1));
        let kernel = Event {
            asid: ASID_NONE,
            ..e
        };
        assert!(matches!(kernel.to_json().get("asid"), Some(Json::Null)));
    }

    #[test]
    fn drain_empties_but_keeps_drop_count() {
        let mut r = EventRing::new(2);
        for i in 0..4 {
            r.push(ev(i, EventKind::ClockSweep));
        }
        let out = r.drain();
        assert_eq!(out.len(), 2);
        assert!(r.is_empty());
        assert_eq!(r.dropped(), 2);
    }
}
