//! Trace exports: JSONL and Chrome `trace_event` JSON.

use crate::obs::event::{Event, ASID_NONE};
use rampage_json::{obj, Json, ToJson};

/// Render events as JSONL: one compact JSON object per line, oldest
/// first, with the schema documented in EXPERIMENTS.md § Observability
/// (`at_ps`, `dur_ps`, `kind`, `asid`, `arg`).
pub fn to_jsonl(events: &[Event]) -> String {
    let mut s = String::new();
    for e in events {
        s.push_str(&e.to_json().compact());
        s.push('\n');
    }
    s
}

/// Render events as a Chrome `trace_event` document (the JSON Object
/// Format): complete (`"ph": "X"`) events with microsecond timestamps,
/// one track (`tid`) per ASID, plus the metadata pairs the caller
/// supplies (run label, DRAM model, drop count, …). Open the written
/// file in `chrome://tracing` or <https://ui.perfetto.dev>.
pub fn chrome_trace(events: &[Event], metadata: Vec<(String, Json)>) -> Json {
    let trace_events: Vec<Json> = events
        .iter()
        .map(|e| {
            obj! {
                "name" => e.kind.name(),
                "cat" => "sim",
                "ph" => "X",
                // trace_event timestamps are microseconds; picos divide
                // exactly into an f64 for any plausible run length.
                "ts" => e.at.0 as f64 / 1e6,
                "dur" => e.dur.0 as f64 / 1e6,
                "pid" => 0u64,
                "tid" => if e.asid == ASID_NONE { u16::MAX as u64 } else { e.asid as u64 },
                "args" => obj! { "arg" => e.arg },
            }
        })
        .collect();
    obj! {
        "traceEvents" => trace_events,
        "displayTimeUnit" => "ns",
        "metadata" => Json::Obj(metadata),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obs::event::EventKind;
    use rampage_dram::Picos;

    fn events() -> Vec<Event> {
        vec![
            Event {
                at: Picos(1_000_000),
                dur: Picos(2_000_000),
                kind: EventKind::DramTransfer,
                asid: ASID_NONE,
                arg: 4096,
            },
            Event {
                at: Picos(5_000_000),
                dur: Picos::ZERO,
                kind: EventKind::ContextSwitch,
                asid: 2,
                arg: 1,
            },
        ]
    }

    #[test]
    fn jsonl_lines_parse_individually() {
        let text = to_jsonl(&events());
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            let j = Json::parse(line).expect("each line is a JSON object");
            assert!(j.get("kind").is_some());
        }
        assert!(to_jsonl(&[]).is_empty());
    }

    #[test]
    fn chrome_document_shape() {
        let doc = chrome_trace(&events(), vec![("label".into(), "test".to_json())]);
        let evs = doc.get("traceEvents").and_then(Json::as_array).unwrap();
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].get("ph").and_then(Json::as_str), Some("X"));
        assert_eq!(evs[0].get("ts").and_then(Json::as_f64), Some(1.0));
        assert_eq!(evs[0].get("dur").and_then(Json::as_f64), Some(2.0));
        assert_eq!(evs[1].get("tid").and_then(Json::as_u64), Some(2));
        assert_eq!(
            doc.get("metadata")
                .unwrap()
                .get("label")
                .and_then(Json::as_str),
            Some("test")
        );
        // The whole document survives a text round trip.
        assert!(Json::parse(&doc.pretty()).is_ok());
    }
}
