//! Log2-bucketed latency histograms.
//!
//! Histograms are plain counters over already-computed cycle counts, so
//! they are always on: recording can never change a simulated quantity,
//! only observe it (the observability test suite proves the stronger
//! claim for the whole layer).

use rampage_json::{obj, Json, ToJson};
use std::fmt::Write as _;

/// Bucket count: one per possible bit length of a `u64` sample (0..=64).
const BUCKETS: usize = 65;

/// A log2-bucketed histogram of `u64` samples (simulated cycles).
///
/// Bucket `b` holds samples of bit length `b`: bucket 0 holds only zero,
/// bucket `b ≥ 1` holds the range `[2^(b-1), 2^b - 1]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hist {
    buckets: [u64; BUCKETS],
    count: u64,
    total: u64,
    max: u64,
}

impl Default for Hist {
    fn default() -> Self {
        Hist {
            buckets: [0; BUCKETS],
            count: 0,
            total: 0,
            max: 0,
        }
    }
}

/// Bucket index of a sample: its bit length.
fn bucket_of(v: u64) -> usize {
    (u64::BITS - v.leading_zeros()) as usize
}

/// Inclusive upper bound of bucket `b`.
fn upper_bound(b: usize) -> u64 {
    match b {
        0 => 0,
        64.. => u64::MAX,
        _ => (1u64 << b) - 1,
    }
}

impl Hist {
    /// An empty histogram.
    pub fn new() -> Self {
        Hist::default()
    }

    /// Record one sample.
    pub fn record(&mut self, v: u64) {
        self.buckets[bucket_of(v)] += 1;
        self.count += 1;
        self.total = self.total.saturating_add(v);
        self.max = self.max.max(v);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Largest sample seen (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean sample (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        self.total as f64 / self.count as f64
    }

    /// Sum of the per-bucket counts — equals [`count`](Self::count) by
    /// construction (the property suite asserts this).
    pub fn bucket_sum(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Approximate quantile `q` in `[0, 1]`: the inclusive upper bound of
    /// the first bucket at which the cumulative count reaches
    /// `ceil(q * count)`. Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut acc = 0u64;
        for (b, &c) in self.buckets.iter().enumerate() {
            acc += c;
            if acc >= target {
                return upper_bound(b).min(self.max);
            }
        }
        self.max
    }

    /// Non-empty buckets as `(lower, upper, count)` ranges, in order.
    pub fn ranges(&self) -> Vec<(u64, u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(b, &c)| {
                let lo = if b == 0 { 0 } else { upper_bound(b - 1) + 1 };
                (lo, upper_bound(b), c)
            })
            .collect()
    }

    /// Multi-line rendering: a summary line, then one bar per non-empty
    /// bucket (scaled to the fullest bucket).
    pub fn render(&self, label: &str) -> String {
        let mut s = format!(
            "{label}: {} sample(s), mean {:.1}, p50 ≤{}, p99 ≤{}, max {}\n",
            self.count,
            self.mean(),
            self.quantile(0.50),
            self.quantile(0.99),
            self.max,
        );
        if self.count == 0 {
            return s;
        }
        let ranges = self.ranges();
        let peak = ranges.iter().map(|&(_, _, c)| c).max().unwrap_or(1);
        let width = ranges
            .iter()
            .map(|&(lo, hi, _)| format!("{lo}..{hi}").len())
            .max()
            .unwrap_or(0);
        for (lo, hi, c) in ranges {
            let bar = "#".repeat(((c * 40).div_ceil(peak)) as usize);
            let range = format!("{lo}..{hi}");
            let _ = writeln!(s, "  {range:>width$}  {c:>10}  {bar}");
        }
        s
    }
}

impl ToJson for Hist {
    fn to_json(&self) -> Json {
        obj! {
            "count" => self.count,
            "total" => self.total,
            "max" => self.max,
            "buckets" => self
                .ranges()
                .into_iter()
                .map(|(lo, hi, c)| obj! { "lo" => lo, "hi" => hi, "count" => c })
                .collect::<Vec<Json>>(),
        }
    }
}

/// The three latency distributions the per-run report prints, folded
/// into [`crate::Metrics`]. All samples are simulated CPU cycles.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LatencyHistograms {
    /// DRAM channel service time per transfer (request to completion,
    /// including queueing behind a busy channel).
    pub dram: Hist,
    /// Page-fault service time (soft faults included), from handler entry
    /// to page availability.
    pub fault: Hist,
    /// TLB-miss cost: the refill handler's walk of the page table.
    pub tlb: Hist,
}

impl ToJson for LatencyHistograms {
    fn to_json(&self) -> Json {
        obj! {
            "dram_service_cycles" => self.dram,
            "fault_service_cycles" => self.fault,
            "tlb_walk_cycles" => self.tlb,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_bit_lengths() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
        assert_eq!(upper_bound(0), 0);
        assert_eq!(upper_bound(2), 3);
        assert_eq!(upper_bound(64), u64::MAX);
    }

    #[test]
    fn record_tracks_count_total_max() {
        let mut h = Hist::new();
        for v in [0u64, 1, 5, 5, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.total(), 1011);
        assert_eq!(h.max(), 1000);
        assert_eq!(h.bucket_sum(), h.count());
        assert!((h.mean() - 202.2).abs() < 1e-9);
    }

    #[test]
    fn quantiles_are_bucket_upper_bounds() {
        let mut h = Hist::new();
        for _ in 0..99 {
            h.record(10); // bucket 4: 8..15
        }
        h.record(1_000_000);
        assert_eq!(h.quantile(0.5), 15);
        assert_eq!(h.quantile(0.99), 15);
        assert_eq!(h.quantile(1.0), 1_000_000, "capped at the observed max");
        assert_eq!(Hist::new().quantile(0.5), 0);
    }

    #[test]
    fn ranges_and_render() {
        let mut h = Hist::new();
        h.record(0);
        h.record(9);
        h.record(12);
        let r = h.ranges();
        assert_eq!(r, vec![(0, 0, 1), (8, 15, 2)]);
        let text = h.render("dram");
        assert!(text.starts_with("dram: 3 sample(s)"));
        assert!(text.contains("8..15"));
        assert!(Hist::new().render("empty").contains("0 sample(s)"));
    }

    #[test]
    fn json_shape() {
        let mut h = Hist::new();
        h.record(3);
        let j = h.to_json();
        assert_eq!(j.get("count").and_then(Json::as_u64), Some(1));
        let buckets = j.get("buckets").and_then(Json::as_array).unwrap();
        assert_eq!(buckets.len(), 1);
        assert_eq!(buckets[0].get("hi").and_then(Json::as_u64), Some(3));
    }
}
