//! Plain-text table rendering for the experiment reports.

use std::fmt::Write as _;

/// Builds aligned ASCII tables like the ones in the paper.
///
/// ```
/// use rampage_core::TableBuilder;
/// let mut t = TableBuilder::new(vec!["issue".into(), "128".into(), "256".into()]);
/// t.row(vec!["200 MHz".into(), "6.38".into(), "6.39".into()]);
/// let s = t.render();
/// assert!(s.contains("200 MHz"));
/// ```
#[derive(Debug, Clone)]
pub struct TableBuilder {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TableBuilder {
    /// Start a table with the given column headers.
    pub fn new(header: Vec<String>) -> Self {
        TableBuilder {
            header,
            rows: Vec::new(),
        }
    }

    /// Append a row (shorter rows are padded with blanks).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        self.rows.push(cells);
        self
    }

    /// Number of data rows so far.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if no data rows have been added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with aligned columns: first column left-aligned, the rest
    /// right-aligned (numeric convention).
    pub fn render(&self) -> String {
        let cols = self
            .rows
            .iter()
            .map(|r| r.len())
            .chain([self.header.len()])
            .max()
            .unwrap_or(0);
        let mut width = vec![0usize; cols];
        let all = std::iter::once(&self.header).chain(self.rows.iter());
        for row in all {
            for (i, cell) in row.iter().enumerate() {
                width[i] = width[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let emit = |out: &mut String, row: &[String]| {
            for i in 0..cols {
                let cell = row.get(i).map(String::as_str).unwrap_or("");
                if i == 0 {
                    let _ = write!(out, "{cell:<w$}", w = width[0]);
                } else {
                    let _ = write!(out, "  {cell:>w$}", w = width[i]);
                }
            }
            out.push('\n');
        };
        emit(&mut out, &self.header);
        let total: usize = width.iter().sum::<usize>() + 2 * (cols.saturating_sub(1));
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            emit(&mut out, row);
        }
        out
    }
}

/// Format seconds like the paper's tables (two decimals).
pub fn fmt_secs(s: f64) -> String {
    format!("{s:.2}")
}

/// Format a fraction as a percentage with one decimal.
pub fn fmt_pct(f: f64) -> String {
    format!("{:.1}%", 100.0 * f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TableBuilder::new(vec!["a".into(), "bb".into()]);
        t.row(vec!["x".into(), "1".into()]);
        t.row(vec!["longer".into(), "22".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4, "header, rule, two rows");
        assert!(lines[0].starts_with("a"));
        assert!(lines[3].starts_with("longer"));
        // Right-aligned numeric column.
        assert!(lines[2].ends_with(" 1"));
        assert!(lines[3].ends_with("22"));
    }

    #[test]
    fn pads_short_rows() {
        let mut t = TableBuilder::new(vec!["h1".into(), "h2".into(), "h3".into()]);
        t.row(vec!["only".into()]);
        let s = t.render();
        assert!(s.contains("only"));
    }

    #[test]
    fn empty_and_len() {
        let mut t = TableBuilder::new(vec!["a".into()]);
        assert!(t.is_empty());
        t.row(vec!["r".into()]);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn formatters() {
        assert_eq!(fmt_secs(6.3849), "6.38");
        assert_eq!(fmt_pct(0.256), "25.6%");
    }
}
