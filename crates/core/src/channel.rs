//! The (single) DRAM channel.

use crate::config::DramKind;
use rampage_dram::{BankedChannel, DramModel, MemoryDevice, Picos};

/// Serializes transfers on one Direct Rambus channel and tracks when it
/// frees up.
///
/// The paper's configuration is a single non-pipelined channel, so a
/// transfer requested while the channel is busy waits for it (this only
/// arises under context-switch-on-miss, where page transfers overlap
/// execution of other processes). With the pipelined §6.3 ablation, a
/// request that queues behind an in-flight transfer skips the 50 ns
/// initial latency.
#[derive(Debug, Clone)]
pub struct DramChannel {
    device: DramModel,
    busy_until: Picos,
    transfers: u64,
    bytes: u64,
    busy_time: Picos,
}

/// When a requested transfer starts and completes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transfer {
    /// When the channel begins the transfer.
    pub start: Picos,
    /// When the last byte arrives.
    pub done: Picos,
}

impl DramChannel {
    /// A channel over the given device.
    pub fn new(device: DramModel) -> Self {
        DramChannel {
            device,
            busy_until: Picos::ZERO,
            transfers: 0,
            bytes: 0,
            busy_time: Picos::ZERO,
        }
    }

    /// The device behind the channel.
    pub fn device(&self) -> DramModel {
        self.device
    }

    /// Schedule a transfer of `bytes` requested at absolute time `now`.
    pub fn request(&mut self, now: Picos, bytes: u64) -> Transfer {
        let queued = self.busy_until > now;
        let start = if queued { self.busy_until } else { now };
        let duration = if queued {
            self.device.queued_transfer_time(bytes)
        } else {
            self.device.transfer_time(bytes)
        };
        let done = start + duration;
        self.busy_until = done;
        self.transfers += 1;
        self.bytes += bytes;
        self.busy_time += duration;
        Transfer { start, done }
    }

    /// When the channel next becomes free.
    pub fn busy_until(&self) -> Picos {
        self.busy_until
    }

    /// Total transfers scheduled.
    pub fn transfers(&self) -> u64 {
        self.transfers
    }

    /// Total bytes moved.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Total time the channel spent transferring.
    pub fn busy_time(&self) -> Picos {
        self.busy_time
    }
}

/// One channel at either fidelity: the flat analytic model or the
/// event-driven banked backend.
#[derive(Debug, Clone)]
enum Channel {
    Flat(DramChannel),
    Banked(Box<BankedChannel>),
}

impl Channel {
    fn request(&mut self, now: Picos, bytes: u64, key: u64) -> Transfer {
        match self {
            Channel::Flat(ch) => ch.request(now, bytes),
            Channel::Banked(ch) => {
                // The simulator addresses DRAM by transfer unit (SRAM
                // frame / L2 block number), not by byte. Synthesize a
                // stable pseudo-address so a unit always lands on the
                // same rows: repeated transfers of the same unit are
                // row-buffer locality, neighboring units are neighbors
                // in DRAM.
                let addr = key.wrapping_mul(bytes.max(1));
                let t = ch.request(now, addr, bytes);
                Transfer {
                    start: t.start,
                    done: t.done,
                }
            }
        }
    }

    fn transfers(&self) -> u64 {
        match self {
            Channel::Flat(ch) => ch.transfers(),
            Channel::Banked(ch) => ch.transfers(),
        }
    }

    fn bytes(&self) -> u64 {
        match self {
            Channel::Flat(ch) => ch.bytes(),
            Channel::Banked(ch) => ch.bytes(),
        }
    }
}

/// A set of independent Rambus channels, interleaved by transfer unit.
///
/// §3.3: "It is also possible to have multiple Rambus channels to
/// increase bandwidth, though latency is not improved." Transfers are
/// routed by their block/page number, so concurrent page transfers
/// (context-switch-on-miss) can proceed in parallel while any single
/// transfer still pays full latency.
#[derive(Debug, Clone)]
pub struct ChannelSet {
    channels: Vec<Channel>,
}

impl ChannelSet {
    /// `n` channels over the given DRAM kind — the flat analytic models
    /// or the event-driven banked backend, per the config's `dram` axis.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or a banked configuration is invalid;
    /// `SystemConfig::validate` screens both out before simulation.
    pub fn new(kind: DramKind, n: u32) -> Self {
        assert!(n > 0, "need at least one channel");
        let make = |_: u32| match kind {
            DramKind::Rambus => Channel::Flat(DramChannel::new(DramModel::rambus())),
            DramKind::RambusPipelined => {
                Channel::Flat(DramChannel::new(DramModel::rambus_pipelined()))
            }
            DramKind::Sdram => Channel::Flat(DramChannel::new(DramModel::sdram())),
            DramKind::Banked(cfg) => Channel::Banked(Box::new(BankedChannel::new(cfg))),
        };
        ChannelSet {
            channels: (0..n).map(make).collect(),
        }
    }

    /// Schedule a transfer of `bytes` for the unit identified by `key`
    /// (its block or page number) at absolute time `now`.
    pub fn request(&mut self, now: Picos, bytes: u64, key: u64) -> Transfer {
        let n = self.channels.len() as u64;
        self.channels[(key % n) as usize].request(now, bytes, key)
    }

    /// Number of channels.
    pub fn len(&self) -> usize {
        self.channels.len()
    }

    /// Always false (constructed non-empty).
    pub fn is_empty(&self) -> bool {
        self.channels.is_empty()
    }

    /// Total transfers across all channels.
    pub fn transfers(&self) -> u64 {
        self.channels.iter().map(|c| c.transfers()).sum()
    }

    /// Total bytes across all channels.
    pub fn bytes(&self) -> u64 {
        self.channels.iter().map(|c| c.bytes()).sum()
    }

    /// Aggregate row-buffer outcome counters (zeros under flat kinds,
    /// which have no row buffers).
    pub fn row_stats(&self) -> rampage_dram::RowStats {
        let mut total = rampage_dram::RowStats::default();
        for ch in &self.channels {
            if let Channel::Banked(b) = ch {
                let s = b.row_stats();
                total.hits += s.hits;
                total.misses += s.misses;
                total.conflicts += s.conflicts;
            }
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn channel_set_parallelizes_distinct_keys() {
        let mut set = ChannelSet::new(DramKind::Rambus, 2);
        let t1 = set.request(Picos::ZERO, 4096, 0);
        let t2 = set.request(Picos::ZERO, 4096, 1);
        assert_eq!(t1.start, t2.start, "different channels run in parallel");
        // Same-channel keys still serialize.
        let t3 = set.request(Picos::ZERO, 4096, 2);
        assert_eq!(t3.start, t1.done);
        assert_eq!(set.transfers(), 3);
        assert_eq!(set.bytes(), 3 * 4096);
    }

    #[test]
    fn single_channel_set_serializes_everything() {
        let mut set = ChannelSet::new(DramKind::Rambus, 1);
        let t1 = set.request(Picos::ZERO, 128, 0);
        let t2 = set.request(Picos::ZERO, 128, 1);
        assert_eq!(t2.start, t1.done);
        assert_eq!(set.len(), 1);
        assert!(!set.is_empty());
    }

    #[test]
    fn degenerate_banked_set_matches_flat_bit_for_bit() {
        use rampage_dram::BankedConfig;
        let mut flat = ChannelSet::new(DramKind::Rambus, 2);
        let mut banked = ChannelSet::new(DramKind::Banked(BankedConfig::flat_equivalent()), 2);
        for (i, (key, bytes)) in [(0u64, 4096u64), (1, 128), (0, 4096), (7, 0), (3, 2048)]
            .iter()
            .enumerate()
        {
            let now = Picos::from_nanos(i as u64 * 37);
            assert_eq!(
                flat.request(now, *bytes, *key),
                banked.request(now, *bytes, *key),
                "key {key}, {bytes} B"
            );
        }
        assert_eq!(flat.transfers(), banked.transfers());
        assert_eq!(flat.bytes(), banked.bytes());
        assert_eq!(flat.row_stats(), rampage_dram::RowStats::default());
    }

    #[test]
    fn banked_set_reports_row_stats() {
        let mut set = ChannelSet::new(DramKind::banked(), 1);
        set.request(Picos::ZERO, 128, 5);
        set.request(Picos::from_micros(1), 128, 5);
        let rows = set.row_stats();
        assert!(rows.hits >= 1, "same unit re-hits its row: {rows:?}");
        assert!(rows.misses >= 1);
    }

    #[test]
    fn idle_channel_starts_immediately() {
        let mut ch = DramChannel::new(DramModel::rambus());
        let t = ch.request(Picos::from_nanos(100), 128);
        assert_eq!(t.start, Picos::from_nanos(100));
        assert_eq!(t.done, Picos::from_nanos(230)); // +130 ns
    }

    #[test]
    fn busy_channel_serializes() {
        let mut ch = DramChannel::new(DramModel::rambus());
        let t1 = ch.request(Picos::ZERO, 4096); // done at 2610 ns
        let t2 = ch.request(Picos::from_nanos(100), 4096);
        assert_eq!(t2.start, t1.done, "second waits for first");
        assert_eq!(t2.done, t1.done + Picos::from_nanos(2610));
    }

    #[test]
    fn pipelined_queued_transfer_skips_latency() {
        let mut ch = DramChannel::new(DramModel::rambus_pipelined());
        let t1 = ch.request(Picos::ZERO, 128); // done at 130 ns
        let t2 = ch.request(Picos::from_nanos(10), 128);
        assert_eq!(t2.start, t1.done);
        let d2 = t2.done - t2.start;
        // 80 ns of data / 0.95 ≈ 84.2 ns, far below the 130 ns isolated.
        assert!(d2 < Picos::from_nanos(100), "queued transfer cheaper: {d2}");
    }

    #[test]
    fn counters_accumulate() {
        let mut ch = DramChannel::new(DramModel::rambus());
        ch.request(Picos::ZERO, 128);
        ch.request(Picos::ZERO, 128);
        assert_eq!(ch.transfers(), 2);
        assert_eq!(ch.bytes(), 256);
        assert_eq!(ch.busy_time(), Picos::from_nanos(260));
    }

    #[test]
    fn channel_frees_after_done() {
        let mut ch = DramChannel::new(DramModel::rambus());
        let t = ch.request(Picos::ZERO, 128);
        assert_eq!(ch.busy_until(), t.done);
        let t2 = ch.request(t.done + Picos::from_nanos(1000), 128);
        assert_eq!(
            t2.start,
            t.done + Picos::from_nanos(1000),
            "idle gap respected"
        );
    }
}
