//! Simulated-time accounting and event counters.

use crate::obs::LatencyHistograms;
use crate::time::IssueRate;
use rampage_cache::{CacheStats, MissProfile};
use rampage_vm::TlbStats;
use std::fmt;

/// Simulated cycles attributed to each level of the hierarchy — the
/// quantity behind the paper's Figures 2 and 3.
///
/// Attribution follows the figures' captions: "L1i time includes hits
/// (instruction fetches) and time to maintain inclusion"; "L1d traffic is
/// a very low fraction because hits are assumed to be fully pipelined; the
/// 'L1d' time accounted for is purely that taken to maintain inclusion."
/// Software-handler references are charged to whichever level serves them,
/// exactly as they would be on real hardware.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TimeBreakdown {
    /// Instruction-fetch issue cycles plus L1i inclusion/invalidation
    /// probes.
    pub l1i_cycles: u64,
    /// L1d inclusion/invalidation probe cycles (hits are free).
    pub l1d_cycles: u64,
    /// Cycles serviced by the L2 cache or the RAMpage SRAM main memory
    /// (12-cycle miss services, write-backs from L1).
    pub l2_sram_cycles: u64,
    /// Cycles stalled on DRAM transfers (block fetches, page transfers,
    /// write-backs).
    pub dram_cycles: u64,
    /// Cycles with no runnable process (switch-on-miss only: everyone
    /// blocked on DRAM).
    pub idle_cycles: u64,
}

impl TimeBreakdown {
    /// Total simulated cycles.
    pub fn total(&self) -> u64 {
        self.l1i_cycles
            + self.l1d_cycles
            + self.l2_sram_cycles
            + self.dram_cycles
            + self.idle_cycles
    }

    /// Per-level fractions of total time (all zero for an empty run).
    pub fn fractions(&self) -> LevelFractions {
        let t = self.total();
        if t == 0 {
            return LevelFractions::default();
        }
        let t = t as f64;
        LevelFractions {
            l1i: self.l1i_cycles as f64 / t,
            l1d: self.l1d_cycles as f64 / t,
            l2_sram: self.l2_sram_cycles as f64 / t,
            dram: self.dram_cycles as f64 / t,
            idle: self.idle_cycles as f64 / t,
        }
    }
}

/// [`TimeBreakdown`] as fractions — one bar of Figure 2 / Figure 3.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LevelFractions {
    /// L1 instruction cache (fetch issue + inclusion).
    pub l1i: f64,
    /// L1 data cache (inclusion only).
    pub l1d: f64,
    /// L2 cache or SRAM main memory.
    pub l2_sram: f64,
    /// DRAM.
    pub dram: f64,
    /// Idle (switch-on-miss with no ready process).
    pub idle: f64,
}

/// Event counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counters {
    /// References consumed from the benchmark traces.
    pub user_refs: u64,
    /// Of which instruction fetches.
    pub user_ifetches: u64,
    /// L1 instruction cache statistics.
    pub l1i: CacheStats,
    /// L1 data cache statistics.
    pub l1d: CacheStats,
    /// L2 statistics (conventional hierarchy; zero for RAMpage).
    pub l2: CacheStats,
    /// TLB statistics.
    pub tlb: TlbStats,
    /// Page faults from the SRAM main memory to DRAM (RAMpage), i.e.
    /// DRAM page transfers in.
    pub page_faults: u64,
    /// Faults served from the standby list without a DRAM transfer.
    pub soft_faults: u64,
    /// DRAM block fetches (conventional L2 misses).
    pub dram_block_fetches: u64,
    /// DRAM write-backs (dirty L2 blocks / dirty SRAM pages).
    pub dram_writebacks: u64,
    /// References executed by the TLB-refill handler.
    pub tlb_handler_refs: u64,
    /// References executed by the page-fault handler.
    pub fault_handler_refs: u64,
    /// References executed by context-switch code.
    pub switch_refs: u64,
    /// Scheduled (quantum / trace-end) context switches taken.
    pub context_switches: u64,
    /// Context switches taken on a miss to DRAM (RAMpage, Table 4).
    pub switches_on_miss: u64,
    /// L1 probes performed to maintain inclusion / page invalidation.
    pub inclusion_probes: u64,
    /// Misses served by the optional victim cache (swap-backs).
    pub victim_hits: u64,
    /// Writes that found the optional finite write buffer full.
    pub write_buffer_stalls: u64,
    /// 3C classification of L2 misses (all-zero unless
    /// `SystemConfig::classify_l2` is set).
    pub l2_miss_profile: MissProfile,
    /// RAMpage next-page prefetches issued.
    pub prefetches: u64,
    /// Prefetched pages that were referenced before being replaced.
    pub prefetches_useful: u64,
}

impl Counters {
    /// Figure 4's measure: "the ratio of additional TLB miss and page
    /// fault handling references to the total number of references in the
    /// benchmark trace files."
    pub fn handler_overhead_ratio(&self) -> f64 {
        if self.user_refs == 0 {
            return 0.0;
        }
        (self.tlb_handler_refs + self.fault_handler_refs) as f64 / self.user_refs as f64
    }
}

/// Everything a run accumulates.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Metrics {
    /// Per-level simulated time.
    pub time: TimeBreakdown,
    /// Event counters.
    pub counts: Counters,
    /// Latency distributions (DRAM service, fault service, TLB walks).
    /// Pure observers: recording never feeds back into `time` or
    /// `counts`, so they cannot perturb the reproduced numbers.
    pub hist: LatencyHistograms,
}

impl Metrics {
    /// Total simulated cycles.
    pub fn total_cycles(&self) -> u64 {
        self.time.total()
    }

    /// Simulated wall-clock seconds at the given issue rate — the
    /// quantity in the paper's Tables 3–5.
    pub fn simulated_seconds(&self, issue: IssueRate) -> f64 {
        issue.cycles_to_secs(self.total_cycles())
    }

    /// Cycles per user reference (a scale-independent efficiency view).
    pub fn cycles_per_ref(&self) -> f64 {
        if self.counts.user_refs == 0 {
            return 0.0;
        }
        self.total_cycles() as f64 / self.counts.user_refs as f64
    }
}

impl fmt::Display for Metrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let fr = self.time.fractions();
        write!(
            f,
            "{} cycles over {} refs ({:.3} cpr) | L1i {:.1}% L1d {:.1}% L2/SRAM {:.1}% DRAM {:.1}% idle {:.1}% | {} faults, TLB miss ratio {:.4}",
            self.total_cycles(),
            self.counts.user_refs,
            self.cycles_per_ref(),
            100.0 * fr.l1i,
            100.0 * fr.l1d,
            100.0 * fr.l2_sram,
            100.0 * fr.dram,
            100.0 * fr.idle,
            self.counts.page_faults,
            self.counts.tlb.miss_ratio(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_fractions() {
        let t = TimeBreakdown {
            l1i_cycles: 50,
            l1d_cycles: 10,
            l2_sram_cycles: 20,
            dram_cycles: 15,
            idle_cycles: 5,
        };
        assert_eq!(t.total(), 100);
        let f = t.fractions();
        assert!((f.l1i - 0.5).abs() < 1e-12);
        assert!((f.dram - 0.15).abs() < 1e-12);
        assert!((f.l1i + f.l1d + f.l2_sram + f.dram + f.idle - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_breakdown_has_zero_fractions() {
        assert_eq!(
            TimeBreakdown::default().fractions(),
            LevelFractions::default()
        );
    }

    #[test]
    fn handler_overhead_ratio() {
        let c = Counters {
            user_refs: 1000,
            tlb_handler_refs: 300,
            fault_handler_refs: 200,
            ..Default::default()
        };
        assert!((c.handler_overhead_ratio() - 0.5).abs() < 1e-12);
        assert_eq!(Counters::default().handler_overhead_ratio(), 0.0);
    }

    #[test]
    fn simulated_seconds_uses_issue_rate() {
        let m = Metrics {
            time: TimeBreakdown {
                l1i_cycles: 2_000_000,
                ..Default::default()
            },
            ..Default::default()
        };
        // 2 M cycles: 10 ms at 200 MHz, 0.5 ms at 4 GHz.
        assert!((m.simulated_seconds(IssueRate::MHZ200) - 0.01).abs() < 1e-9);
        assert!((m.simulated_seconds(IssueRate::GHZ4) - 0.0005).abs() < 1e-9);
    }

    #[test]
    fn cycles_per_ref() {
        let m = Metrics {
            time: TimeBreakdown {
                l1i_cycles: 150,
                ..Default::default()
            },
            counts: Counters {
                user_refs: 100,
                ..Default::default()
            },
            ..Default::default()
        };
        assert!((m.cycles_per_ref() - 1.5).abs() < 1e-12);
    }
}
