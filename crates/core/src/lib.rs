//! The RAMpage memory-hierarchy simulator.
//!
//! This crate assembles the substrates (`rampage-trace`, `rampage-cache`,
//! `rampage-dram`, `rampage-vm`) into the two systems the paper compares:
//!
//! * [`system::Conventional`] — 16 KB L1 I/D caches, a 4 MB L2 cache
//!   (direct-mapped baseline or 2-way "more realistic"), a TLB translating
//!   to DRAM-physical addresses, inclusion between L1 and L2, Direct
//!   Rambus DRAM;
//! * [`system::Rampage`] — the same L1s over an SRAM *main memory* managed
//!   as a paged store (no tags, full associativity by paging): pinned
//!   inverted page table, TLB translating to SRAM-physical addresses,
//!   clock replacement, DRAM as a paging device, optional context switch
//!   on miss.
//!
//! The [`Engine`] drives interleaved multiprogrammed traces through a
//! system with the paper's 500 000-reference quantum, accounting simulated
//! time per hierarchy level into [`Metrics`]. [`experiments`] packages
//! every table and figure of the paper as a parameter sweep over these
//! pieces.
//!
//! # Example
//!
//! ```
//! use rampage_core::prelude::*;
//!
//! let baseline = SystemConfig::baseline(IssueRate::GHZ1, 512);
//! let rampage = SystemConfig::rampage(IssueRate::GHZ1, 512);
//! let run = |cfg: &SystemConfig| Engine::for_suite(cfg, 3, 150_000, 7).run();
//! let (b, r) = (run(&baseline), run(&rampage));
//! assert!(b.metrics.total_cycles() > 0 && r.metrics.total_cycles() > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod channel;
mod config;
mod engine;
mod metrics;
mod report;
mod time;

pub mod error;
pub mod experiments;
pub mod obs;
pub mod system;

pub use channel::{ChannelSet, DramChannel};
pub use config::{
    DramKind, HierarchyKind, L1Config, L2Config, RampageConfig, SystemConfig, TlbConfig,
    DRAM_PAGE_SIZE, L1_MISS_PENALTY, QUANTUM_REFS, RAMPAGE_WRITEBACK_PENALTY, SRAM_BASE_SIZE,
};
pub use engine::{Engine, ProcessSummary, RunOutcome};
pub use error::{CacheIoError, ConfigError, InvariantError, RampageError};
pub use metrics::{Counters, LevelFractions, Metrics, TimeBreakdown};
pub use obs::{Event, EventKind, EventRing, Hist, LatencyHistograms, TraceSink};
pub use report::{fmt_pct, fmt_secs, TableBuilder};
pub use time::IssueRate;

/// Glob import for examples and experiments.
pub mod prelude {
    pub use crate::config::{
        HierarchyKind, L1Config, L2Config, RampageConfig, SystemConfig, TlbConfig,
    };
    pub use crate::engine::{Engine, RunOutcome};
    pub use crate::metrics::{Metrics, TimeBreakdown};
    pub use crate::system::MemorySystem;
    pub use crate::time::IssueRate;
}
