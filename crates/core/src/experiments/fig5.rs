//! Figure 5: RAMpage (switching on misses) vs the 2-way L2, relative to
//! the best time at each CPU speed.

use crate::experiments::table4::Table4;
use crate::experiments::table5::Table5;
use crate::report::TableBuilder;
use rampage_json::{obj, Json, ToJson};

/// The figure's data: for each issue rate and size, how much slower each
/// system is than the best time achieved at that rate. The paper plots
/// "n, where n means 1.n times slower than the best time for each CPU
/// speed" — i.e. `time / best - 1`.
#[derive(Debug, Clone)]
pub struct Figure5 {
    /// Sizes swept.
    pub sizes: Vec<u64>,
    /// Issue rates (MHz).
    pub rates_mhz: Vec<u32>,
    /// `rampage[rate][size]` — slowdown of RAMpage-with-switches.
    pub rampage: Vec<Vec<f64>>,
    /// `two_way[rate][size]` — slowdown of the 2-way L2.
    pub two_way: Vec<Vec<f64>>,
}

/// Derive the figure from the Table 4 and Table 5 sweeps (which must
/// share sizes and rates).
///
/// # Panics
///
/// Panics if the two tables' shapes differ.
pub fn derive(t4: &Table4, t5: &Table5) -> Figure5 {
    assert_eq!(t4.sizes, t5.sizes, "mismatched size sweeps");
    assert_eq!(t4.rates_mhz, t5.rates_mhz, "mismatched rate sweeps");
    let mut rampage = Vec::new();
    let mut two_way = Vec::new();
    for ri in 0..t4.rates_mhz.len() {
        let best = t4.cells[ri]
            .iter()
            .map(|c| c.seconds)
            .chain(t5.cells[ri].iter().map(|c| c.seconds))
            .fold(f64::MAX, f64::min);
        rampage.push(
            t4.cells[ri]
                .iter()
                .map(|c| c.seconds / best - 1.0)
                .collect(),
        );
        two_way.push(
            t5.cells[ri]
                .iter()
                .map(|c| c.seconds / best - 1.0)
                .collect(),
        );
    }
    Figure5 {
        sizes: t4.sizes.clone(),
        rates_mhz: t4.rates_mhz.clone(),
        rampage,
        two_way,
    }
}

impl ToJson for Figure5 {
    fn to_json(&self) -> Json {
        obj! {
            "sizes" => self.sizes,
            "rates_mhz" => self.rates_mhz,
            "rampage" => self.rampage,
            "two_way" => self.two_way,
        }
    }
}

impl Figure5 {
    /// Render both systems' slowdown series.
    pub fn render(&self) -> String {
        let mut header = vec!["issue rate".into(), "system".into()];
        header.extend(self.sizes.iter().map(|s| s.to_string()));
        let mut t = TableBuilder::new(header);
        for (i, &mhz) in self.rates_mhz.iter().enumerate() {
            let mut row = vec![fmt_rate(mhz), "RAMpage+switch".into()];
            row.extend(self.rampage[i].iter().map(|v| format!("{v:.3}")));
            t.row(row);
            let mut row = vec![String::new(), "2-way L2".into()];
            row.extend(self.two_way[i].iter().map(|v| format!("{v:.3}")));
            t.row(row);
        }
        format!(
            "Figure 5: slowdown vs best time per CPU speed (0 = best; n = 1.n x slower)\n{}",
            t.render()
        )
    }
}

fn fmt_rate(mhz: u32) -> String {
    if mhz >= 1000 && mhz.is_multiple_of(1000) {
        format!("{} GHz", mhz / 1000)
    } else {
        format!("{mhz} MHz")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::common::Workload;
    use crate::experiments::{table3, table4, table5};
    use crate::time::IssueRate;

    #[test]
    fn derive_produces_nonnegative_slowdowns_with_a_zero() {
        let w = Workload::quick();
        let runner = crate::experiments::runner::SweepRunner::serial();
        let rates = [IssueRate::GHZ1];
        let sizes = [512, 4096];
        let t3 = table3::run(&runner, &w, &rates, &sizes);
        let t4 = table4::run(&runner, &w, &t3);
        let t5 = table5::run(&runner, &w, &rates, &sizes);
        let f5 = derive(&t4, &t5);
        let all: Vec<f64> = f5.rampage[0]
            .iter()
            .chain(f5.two_way[0].iter())
            .copied()
            .collect();
        assert!(all.iter().all(|&v| v >= -1e-12), "slowdowns nonnegative");
        assert!(
            all.iter().any(|&v| v.abs() < 1e-12),
            "the best configuration has slowdown 0"
        );
        assert!(f5.render().contains("Figure 5"));
    }
}
