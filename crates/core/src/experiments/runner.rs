//! The parallel memoized sweep runner — the engine room of every table
//! and figure.
//!
//! Each paper artifact is a sweep of independent
//! [`run_config`]`(cfg, workload)` cells, and artifacts overlap: the
//! Table 5 sweep is exactly the fixed-reference half of the time-slice
//! study, the ablation study's base row is a Table 4 cell, and Figures
//! 2–4 are views over Table 3. The [`SweepRunner`] exploits both facts:
//!
//! * **Parallelism** — a batch of [`Job`]s is executed by a pool of
//!   worker threads (bounded by available cores, overridable via
//!   [`SweepRunner::new`]) pulling from a shared queue, so a sweep's
//!   wall-clock approaches `total / cores`. Results are returned in
//!   submission order regardless of completion order, and every cell is
//!   a deterministic function of its job, so parallel and serial runs
//!   are bit-identical (a golden test enforces this).
//! * **Memoization** — the [`CellCache`] fingerprints each job and
//!   returns finished [`Cell`]s, so overlapping sweeps across artifacts
//!   are simulated exactly once per `repro` invocation. The cache can be
//!   persisted as JSON (`--out DIR` keeps `cells.json`), letting reruns
//!   at the same scale skip finished cells entirely.

use crate::config::SystemConfig;
use crate::experiments::common::{run_config, Cell, Workload};
use rampage_json::{obj, Json, ToJson};
use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::path::Path;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

/// One unit of sweep work: simulate `cfg` over `workload`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Job {
    /// The system to simulate.
    pub cfg: SystemConfig,
    /// The workload to drive it with.
    pub workload: Workload,
}

impl Job {
    /// Package a configuration and workload as a job.
    pub fn new(cfg: SystemConfig, workload: Workload) -> Self {
        Job { cfg, workload }
    }

    /// A stable fingerprint of the job: FNV-1a over the `Debug`
    /// rendering of the configuration and workload. Both types derive
    /// `Debug` over every field, so the rendering is a complete encoding
    /// of everything the simulation depends on; two jobs with equal
    /// fingerprints produce identical cells.
    pub fn fingerprint(&self) -> u64 {
        fnv1a(format!("{:?}|{:?}", self.cfg, self.workload).as_bytes())
    }
}

/// 64-bit FNV-1a.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Version stamp for the persisted cache format; bump when [`Cell`] or
/// the fingerprint scheme changes shape.
pub const CACHE_FORMAT_VERSION: u64 = 1;

/// A memo table of finished cells, keyed by [`Job::fingerprint`].
///
/// Thread-safe: workers insert concurrently while batch assembly reads.
/// `hits` counts every lookup served without simulation (including
/// duplicates deduplicated within one batch); `computed` counts cells
/// actually simulated.
#[derive(Debug, Default)]
pub struct CellCache {
    map: Mutex<HashMap<u64, Cell>>,
    hits: AtomicU64,
    computed: AtomicU64,
}

impl CellCache {
    /// An empty cache.
    pub fn new() -> Self {
        CellCache::default()
    }

    /// Look up a fingerprint, counting a hit when found.
    pub fn get(&self, fp: u64) -> Option<Cell> {
        let found = self.map.lock().expect("cache lock").get(&fp).copied();
        if found.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        found
    }

    /// Record a freshly computed cell.
    pub fn insert(&self, fp: u64, cell: Cell) {
        self.computed.fetch_add(1, Ordering::Relaxed);
        self.map.lock().expect("cache lock").insert(fp, cell);
    }

    /// Seed a cell without counting it as computed (persistence load).
    fn seed(&self, fp: u64, cell: Cell) {
        self.map.lock().expect("cache lock").insert(fp, cell);
    }

    /// Lookups served from memory instead of simulation.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cells actually simulated through this cache.
    pub fn computed(&self) -> u64 {
        self.computed.load(Ordering::Relaxed)
    }

    /// Distinct cells held.
    pub fn len(&self) -> usize {
        self.map.lock().expect("cache lock").len()
    }

    /// Whether the cache holds nothing.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Serialize every entry (sorted by fingerprint — deterministic).
    pub fn to_json(&self) -> Json {
        let map = self.map.lock().expect("cache lock");
        let mut entries: Vec<(u64, Cell)> = map.iter().map(|(&fp, &c)| (fp, c)).collect();
        drop(map);
        entries.sort_by_key(|&(fp, _)| fp);
        obj! {
            "version" => CACHE_FORMAT_VERSION,
            "cells" => entries
                .iter()
                .map(|(fp, cell)| obj! { "fp" => *fp, "cell" => cell.to_json() })
                .collect::<Vec<Json>>(),
        }
    }

    /// Load entries from a serialized cache; returns how many were
    /// loaded. A version mismatch loads nothing (stale fingerprints must
    /// not serve wrong cells).
    pub fn load_json(&self, doc: &Json) -> usize {
        if doc.get("version").and_then(Json::as_u64) != Some(CACHE_FORMAT_VERSION) {
            return 0;
        }
        let Some(cells) = doc.get("cells").and_then(Json::as_array) else {
            return 0;
        };
        let mut loaded = 0;
        for entry in cells {
            let (Some(fp), Some(cell)) = (
                entry.get("fp").and_then(Json::as_u64),
                entry.get("cell").and_then(Cell::from_json),
            ) else {
                continue;
            };
            self.seed(fp, cell);
            loaded += 1;
        }
        loaded
    }

    /// Persist to `path` as JSON.
    pub fn save_file(&self, path: &Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_json().pretty() + "\n")
    }

    /// Load from `path` if it exists and parses; returns how many cells
    /// were loaded (0 for a missing or unreadable file — a cold start,
    /// never an error).
    pub fn load_file(&self, path: &Path) -> usize {
        let Ok(text) = std::fs::read_to_string(path) else {
            return 0;
        };
        match Json::parse(&text) {
            Ok(doc) => self.load_json(&doc),
            Err(_) => 0,
        }
    }
}

/// The parallel memoized sweep runner every experiment module submits
/// its simulations through.
#[derive(Debug, Default)]
pub struct SweepRunner {
    jobs: usize,
    cache: CellCache,
}

impl SweepRunner {
    /// A runner with `jobs` worker threads; `0` means one per available
    /// core.
    pub fn new(jobs: usize) -> Self {
        let jobs = if jobs == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            jobs
        };
        SweepRunner {
            jobs,
            cache: CellCache::new(),
        }
    }

    /// A single-threaded runner (still memoized) — the reference the
    /// golden-equality test compares the pool against.
    pub fn serial() -> Self {
        SweepRunner::new(1)
    }

    /// Worker-thread count.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// The memo table (for stats and persistence).
    pub fn cache(&self) -> &CellCache {
        &self.cache
    }

    /// Run one configuration through the cache.
    pub fn run_one(&self, cfg: &SystemConfig, workload: &Workload) -> Cell {
        let job = Job::new(*cfg, *workload);
        let fp = job.fingerprint();
        if let Some(cell) = self.cache.get(fp) {
            return cell;
        }
        let cell = run_config(cfg, workload);
        self.cache.insert(fp, cell);
        cell
    }

    /// Run a batch of jobs, in parallel, returning cells in submission
    /// order. Duplicate jobs (within the batch or against the cache) are
    /// simulated once and fanned out to every submitter.
    pub fn run_batch(&self, jobs: &[Job]) -> Vec<Cell> {
        let mut slots: Vec<Option<Cell>> = vec![None; jobs.len()];
        // First occurrence of each uncached fingerprint, in order.
        let mut pending: Vec<(u64, Job)> = Vec::new();
        // fingerprint -> slots awaiting it.
        let mut waiters: HashMap<u64, Vec<usize>> = HashMap::new();
        for (i, job) in jobs.iter().enumerate() {
            let fp = job.fingerprint();
            if let Some(cell) = self.cache.get(fp) {
                slots[i] = Some(cell);
                continue;
            }
            match waiters.entry(fp) {
                Entry::Occupied(mut e) => {
                    // Deduplicated within the batch: count as a hit.
                    self.cache.hits.fetch_add(1, Ordering::Relaxed);
                    e.get_mut().push(i);
                }
                Entry::Vacant(e) => {
                    e.insert(vec![i]);
                    pending.push((fp, *job));
                }
            }
        }

        let computed = self.execute(&pending);

        for (k, cell) in computed {
            let fp = pending[k].0;
            self.cache.insert(fp, cell);
            for &slot in &waiters[&fp] {
                slots[slot] = Some(cell);
            }
        }
        slots
            .into_iter()
            .map(|c| c.expect("every slot is either cached or computed"))
            .collect()
    }

    /// Simulate `pending` on the worker pool; returns `(index, cell)`
    /// pairs in arbitrary order.
    fn execute(&self, pending: &[(u64, Job)]) -> Vec<(usize, Cell)> {
        if pending.is_empty() {
            return Vec::new();
        }
        let workers = self.jobs.min(pending.len());
        if workers <= 1 {
            return pending
                .iter()
                .enumerate()
                .map(|(k, (_, job))| (k, run_config(&job.cfg, &job.workload)))
                .collect();
        }
        let next = AtomicUsize::new(0);
        let done: Mutex<Vec<(usize, Cell)>> = Mutex::new(Vec::with_capacity(pending.len()));
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let k = next.fetch_add(1, Ordering::Relaxed);
                    if k >= pending.len() {
                        break;
                    }
                    let (_, job) = &pending[k];
                    let cell = run_config(&job.cfg, &job.workload);
                    done.lock().expect("result lock").push((k, cell));
                });
            }
        });
        done.into_inner().expect("result lock")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::IssueRate;

    fn quick_jobs() -> Vec<Job> {
        let w = Workload::quick();
        [128u64, 1024, 4096]
            .iter()
            .flat_map(|&s| {
                [
                    Job::new(SystemConfig::baseline(IssueRate::GHZ1, s), w),
                    Job::new(SystemConfig::rampage(IssueRate::GHZ1, s), w),
                ]
            })
            .collect()
    }

    #[test]
    fn fingerprints_separate_configs_and_workloads() {
        let w = Workload::quick();
        let a = Job::new(SystemConfig::baseline(IssueRate::GHZ1, 128), w);
        let b = Job::new(SystemConfig::baseline(IssueRate::GHZ1, 256), w);
        let c = Job::new(SystemConfig::rampage(IssueRate::GHZ1, 128), w);
        let mut w2 = w;
        w2.scale += 1;
        let d = Job::new(SystemConfig::baseline(IssueRate::GHZ1, 128), w2);
        let fps = [a, b, c, d].map(|j| j.fingerprint());
        for i in 0..fps.len() {
            for j in i + 1..fps.len() {
                assert_ne!(fps[i], fps[j], "jobs {i} and {j} collide");
            }
        }
        assert_eq!(a.fingerprint(), Job::new(a.cfg, a.workload).fingerprint());
    }

    #[test]
    fn parallel_batch_matches_serial_batch_exactly() {
        let jobs = quick_jobs();
        let serial = SweepRunner::serial().run_batch(&jobs);
        let parallel = SweepRunner::new(4).run_batch(&jobs);
        assert_eq!(serial, parallel, "pools must not change results");
        assert_eq!(serial.len(), jobs.len());
        // Submission order survives the pool.
        for (job, cell) in jobs.iter().zip(&serial) {
            assert_eq!(job.cfg.hierarchy.unit_bytes(), cell.unit_bytes);
        }
    }

    #[test]
    fn cache_deduplicates_within_and_across_batches() {
        let runner = SweepRunner::new(2);
        let jobs = quick_jobs();
        // Submit every job twice in one batch.
        let doubled: Vec<Job> = jobs.iter().chain(jobs.iter()).copied().collect();
        let cells = runner.run_batch(&doubled);
        assert_eq!(&cells[..jobs.len()], &cells[jobs.len()..]);
        assert_eq!(runner.cache().computed(), jobs.len() as u64);
        assert_eq!(runner.cache().hits(), jobs.len() as u64);
        // A second batch is served entirely from the cache.
        let again = runner.run_batch(&jobs);
        assert_eq!(again, &cells[..jobs.len()]);
        assert_eq!(runner.cache().computed(), jobs.len() as u64);
        assert_eq!(runner.cache().hits(), 2 * jobs.len() as u64);
    }

    #[test]
    fn cache_persistence_roundtrips() {
        let runner = SweepRunner::serial();
        let jobs = quick_jobs();
        let cells = runner.run_batch(&jobs);
        let doc = runner.cache().to_json();

        let fresh = CellCache::new();
        assert_eq!(fresh.load_json(&doc), jobs.len());
        for (job, cell) in jobs.iter().zip(&cells) {
            assert_eq!(fresh.get(job.fingerprint()), Some(*cell));
        }

        // The JSON text itself roundtrips.
        let reparsed = Json::parse(&doc.pretty()).expect("valid JSON");
        let fresh2 = CellCache::new();
        assert_eq!(fresh2.load_json(&reparsed), jobs.len());
        assert_eq!(fresh2.get(jobs[0].fingerprint()), Some(cells[0]));

        // A wrong version loads nothing.
        let bad = obj! { "version" => 999u64, "cells" => Vec::<Json>::new() };
        assert_eq!(CellCache::new().load_json(&bad), 0);
    }

    #[test]
    fn run_one_memoizes() {
        let runner = SweepRunner::serial();
        let w = Workload::quick();
        let cfg = SystemConfig::two_way(IssueRate::MHZ200, 512);
        let a = runner.run_one(&cfg, &w);
        let b = runner.run_one(&cfg, &w);
        assert_eq!(a, b);
        assert_eq!(runner.cache().computed(), 1);
        assert_eq!(runner.cache().hits(), 1);
    }
}
