//! Table 3: baseline direct-mapped L2 vs RAMpage, across block/page
//! sizes and issue rates.

use crate::config::SystemConfig;
use crate::experiments::common::{Cell, Workload, PAPER_SIZES};
use crate::experiments::runner::{Job, SweepRunner};
use crate::report::TableBuilder;
use crate::time::IssueRate;
use rampage_json::{obj, Json, ToJson};

/// The full Table 3 sweep: for each issue rate, a row of baseline cells
/// and a row of RAMpage cells across the size sweep.
#[derive(Debug, Clone)]
pub struct Table3 {
    /// Block/page sizes swept (columns).
    pub sizes: Vec<u64>,
    /// Issue rates swept (row pairs).
    pub rates_mhz: Vec<u32>,
    /// `baseline[rate][size]`.
    pub baseline: Vec<Vec<Cell>>,
    /// `rampage[rate][size]`.
    pub rampage: Vec<Vec<Cell>>,
}

/// Run the Table 3 sweep. Every `(rate, size, system)` cell goes to the
/// runner as one batch, so the whole table parallelizes and dedups
/// against the cell cache.
pub fn run(
    runner: &SweepRunner,
    workload: &Workload,
    rates: &[IssueRate],
    sizes: &[u64],
) -> Table3 {
    let mut jobs = Vec::with_capacity(rates.len() * sizes.len() * 2);
    for &rate in rates {
        for &s in sizes {
            jobs.push(Job::new(SystemConfig::baseline(rate, s), *workload));
        }
        for &s in sizes {
            jobs.push(Job::new(SystemConfig::rampage(rate, s), *workload));
        }
    }
    let mut cells = runner.run_labeled("table3", &jobs).into_iter();
    let mut baseline = Vec::new();
    let mut rampage = Vec::new();
    for _ in rates {
        baseline.push(cells.by_ref().take(sizes.len()).collect());
        rampage.push(cells.by_ref().take(sizes.len()).collect());
    }
    Table3 {
        sizes: sizes.to_vec(),
        rates_mhz: rates.iter().map(|r| r.mhz()).collect(),
        baseline,
        rampage,
    }
}

/// Run with the paper's sweep (all six sizes, 200 MHz – 4 GHz).
pub fn run_paper(runner: &SweepRunner, workload: &Workload) -> Table3 {
    run(runner, workload, &IssueRate::PAPER_SWEEP, &PAPER_SIZES)
}

impl ToJson for Table3 {
    fn to_json(&self) -> Json {
        obj! {
            "sizes" => self.sizes,
            "rates_mhz" => self.rates_mhz,
            "baseline" => self.baseline,
            "rampage" => self.rampage,
        }
    }
}

impl Table3 {
    /// Best (minimum) simulated time for a rate row, with its size.
    fn best(cells: &[Cell]) -> (u64, f64) {
        match cells
            .iter()
            .map(|c| (c.unit_bytes, c.seconds))
            .min_by(|a, b| a.1.total_cmp(&b.1))
        {
            Some(best) => best,
            // Sweep invariant: every rate row is built with one cell per
            // size, and the size axis is never empty.
            None => unreachable!("Table3 rows are built non-empty"),
        }
    }

    /// Best baseline time at a rate index.
    pub fn best_baseline(&self, rate_idx: usize) -> (u64, f64) {
        Self::best(&self.baseline[rate_idx])
    }

    /// Best RAMpage time at a rate index.
    pub fn best_rampage(&self, rate_idx: usize) -> (u64, f64) {
        Self::best(&self.rampage[rate_idx])
    }

    /// RAMpage's best-case advantage over the baseline at a rate index:
    /// `baseline_best / rampage_best - 1` (the paper quotes 6 % at
    /// 200 MHz and 26 % at 4 GHz).
    pub fn rampage_advantage(&self, rate_idx: usize) -> f64 {
        let (_, b) = self.best_baseline(rate_idx);
        let (_, r) = self.best_rampage(rate_idx);
        b / r - 1.0
    }

    /// Render in the paper's shape: one row pair (cache over RAMpage) per
    /// issue rate.
    pub fn render(&self) -> String {
        let mut header = vec!["issue rate".into(), "system".into()];
        header.extend(self.sizes.iter().map(|s| s.to_string()));
        let mut t = TableBuilder::new(header);
        for (i, &mhz) in self.rates_mhz.iter().enumerate() {
            let rate = fmt_rate(mhz);
            let mut row = vec![rate.clone(), "DM cache".into()];
            row.extend(self.baseline[i].iter().map(|c| format!("{:.3}", c.seconds)));
            t.row(row);
            let mut row = vec![String::new(), "RAMpage".into()];
            row.extend(self.rampage[i].iter().map(|c| format!("{:.3}", c.seconds)));
            t.row(row);
        }
        let mut out = format!(
            "Table 3: elapsed simulated time (s), baseline DM L2 (top) vs RAMpage (bottom)\n{}",
            t.render()
        );
        for (i, &mhz) in self.rates_mhz.iter().enumerate() {
            let (bs, bt) = self.best_baseline(i);
            let (rs, rt) = self.best_rampage(i);
            out.push_str(&format!(
                "{}: best DM {bt:.3}s @ {bs} B; best RAMpage {rt:.3}s @ {rs} B; RAMpage advantage {:.1}%\n",
                fmt_rate(mhz),
                100.0 * self.rampage_advantage(i)
            ));
        }
        out
    }
}

fn fmt_rate(mhz: u32) -> String {
    if mhz >= 1000 && mhz.is_multiple_of(1000) {
        format!("{} GHz", mhz / 1000)
    } else {
        format!("{mhz} MHz")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_sweep_has_expected_shape() {
        let w = Workload::quick();
        let runner = SweepRunner::serial();
        let t = run(
            &runner,
            &w,
            &[IssueRate::MHZ200, IssueRate::GHZ4],
            &[256, 4096],
        );
        assert_eq!(t.baseline.len(), 2);
        assert_eq!(t.rampage[0].len(), 2);
        let s = t.render();
        assert!(s.contains("DM cache"));
        assert!(s.contains("RAMpage"));
        assert!(s.contains("advantage"));
        // Every cell simulated something.
        for row in t.baseline.iter().chain(t.rampage.iter()) {
            for c in row {
                assert!(c.seconds > 0.0);
            }
        }
    }

    #[test]
    fn best_picks_minimum() {
        let w = Workload::quick();
        let runner = SweepRunner::serial();
        let t = run(&runner, &w, &[IssueRate::GHZ1], &[128, 1024]);
        let (size, secs) = t.best_rampage(0);
        assert!(t.rampage[0].iter().all(|c| c.seconds >= secs));
        assert!(size == 128 || size == 1024);
    }
}
