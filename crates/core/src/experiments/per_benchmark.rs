//! §6.3's per-application page-size study.
//!
//! "Other work in progress includes more detailed evaluation of
//! differences in individual application behaviour, to explore the value
//! of a variable SRAM page size; initial results show that variation can
//! make a difference in individual programs but that a single page size
//! may be optimal for most programs under given assumptions about the
//! memory system."
//!
//! This experiment runs each Table 2 program *alone* through RAMpage at
//! every page size and reports the per-program optimum, quantifying how
//! much a dynamically variable page size (RAMpage's unique capability,
//! §6.2) could buy over the best single fixed size.

use crate::config::SystemConfig;
use crate::experiments::common::Workload;
use crate::experiments::runner::{Job, SweepRunner};
use crate::report::TableBuilder;
use crate::time::IssueRate;
use rampage_json::{obj, Json, ToJson};
use rampage_trace::profiles;

/// One program's sweep.
#[derive(Debug, Clone)]
pub struct ProgramSweep {
    /// Program name (Table 2).
    pub name: String,
    /// Simulated seconds per page size (aligned with the study's sizes).
    pub seconds: Vec<f64>,
    /// The best page size for this program.
    pub best_size: u64,
}

/// The whole study.
#[derive(Debug, Clone)]
pub struct PerBenchmark {
    /// Page sizes swept.
    pub sizes: Vec<u64>,
    /// Issue rate (MHz).
    pub issue_mhz: u32,
    /// One sweep per program.
    pub programs: Vec<ProgramSweep>,
    /// Total time if every program ran at its own optimum.
    pub variable_total: f64,
    /// Total time at the best single fixed page size.
    pub fixed_total: f64,
    /// The best single fixed size.
    pub fixed_best_size: u64,
}

/// Run the study: each program alone, `refs_per_bench` references, at
/// each page size. The 18 × sizes solo runs go through the runner as one
/// batch, so they spread over the worker pool.
pub fn run(
    runner: &SweepRunner,
    issue: IssueRate,
    sizes: &[u64],
    refs_per_bench: u64,
    seed: u64,
) -> PerBenchmark {
    let mut jobs = Vec::with_capacity(profiles::TABLE2.len() * sizes.len());
    for (pi, p) in profiles::TABLE2.iter().enumerate() {
        // Scale each program so it contributes ~refs_per_bench references.
        let scale = (((p.refs_millions * 1e6) as u64) / refs_per_bench).max(1);
        for &size in sizes {
            jobs.push(Job::new(
                SystemConfig::rampage(issue, size),
                Workload::solo(pi, scale, seed),
            ));
        }
    }
    let mut cells = runner.run_labeled("per_benchmark", &jobs).into_iter();
    let programs: Vec<ProgramSweep> = profiles::TABLE2
        .iter()
        .map(|p| {
            let seconds: Vec<f64> = cells
                .by_ref()
                .take(sizes.len())
                .map(|c| c.seconds)
                .collect();
            let best_idx = seconds
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.total_cmp(b.1))
                // Sweep invariant: `seconds` holds one entry per size and
                // the size axis is never empty; 0 is an inert fallback.
                .map_or(0, |(i, _)| i);
            ProgramSweep {
                name: p.name.to_string(),
                best_size: sizes[best_idx],
                seconds,
            }
        })
        .collect();
    let mut totals = vec![0.0f64; sizes.len()];
    for p in &programs {
        for (i, &s) in p.seconds.iter().enumerate() {
            totals[i] += s;
        }
    }
    let variable_total: f64 = programs
        .iter()
        .map(|p| p.seconds.iter().copied().fold(f64::MAX, f64::min))
        .sum();
    let Some((fixed_idx, fixed_total)) = totals
        .iter()
        .copied()
        .enumerate()
        .min_by(|a, b| a.1.total_cmp(&b.1))
    else {
        // Sweep invariant: `totals` has one slot per size and the size
        // axis is never empty.
        unreachable!("per-benchmark sweeps carry at least one size");
    };
    PerBenchmark {
        sizes: sizes.to_vec(),
        issue_mhz: issue.mhz(),
        programs,
        variable_total,
        fixed_total,
        fixed_best_size: sizes[fixed_idx],
    }
}

impl ToJson for ProgramSweep {
    fn to_json(&self) -> Json {
        obj! {
            "name" => self.name,
            "seconds" => self.seconds,
            "best_size" => self.best_size,
        }
    }
}

impl ToJson for PerBenchmark {
    fn to_json(&self) -> Json {
        obj! {
            "sizes" => self.sizes,
            "issue_mhz" => self.issue_mhz,
            "programs" => self.programs,
            "variable_total" => self.variable_total,
            "fixed_total" => self.fixed_total,
            "fixed_best_size" => self.fixed_best_size,
        }
    }
}

impl PerBenchmark {
    /// How much a per-program (variable) page size improves on the best
    /// fixed size, as a fraction (0.03 = 3 % faster).
    pub fn variable_page_gain(&self) -> f64 {
        self.fixed_total / self.variable_total - 1.0
    }

    /// Render the study.
    pub fn render(&self) -> String {
        let mut header = vec!["program".into()];
        header.extend(self.sizes.iter().map(|s| s.to_string()));
        header.push("best".into());
        let mut t = TableBuilder::new(header);
        for p in &self.programs {
            let mut row = vec![p.name.clone()];
            let best = p.seconds.iter().copied().fold(f64::MAX, f64::min);
            for &s in &p.seconds {
                let mark = if (s - best).abs() < 1e-12 { "*" } else { "" };
                row.push(format!("{:.3}{}", s * 1e3, mark));
            }
            row.push(p.best_size.to_string());
            t.row(row);
        }
        format!(
            "Per-benchmark page-size study (§6.3), RAMpage alone per program, {} MHz (ms, * = best)\n{}\
             best fixed size {} B: {:.3} ms total; per-program optima: {:.3} ms (variable page size buys {:.1}%)\n",
            self.issue_mhz,
            t.render(),
            self.fixed_best_size,
            1e3 * self.fixed_total,
            1e3 * self.variable_total,
            100.0 * self.variable_page_gain(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn study_finds_optima_and_gain_is_nonnegative() {
        let s = run(
            &SweepRunner::new(0),
            IssueRate::GHZ1,
            &[256, 2048],
            5_000,
            3,
        );
        assert_eq!(s.programs.len(), 18);
        for p in &s.programs {
            assert_eq!(p.seconds.len(), 2);
            assert!(p.best_size == 256 || p.best_size == 2048);
        }
        // The variable-size total can never lose to the fixed-size total.
        assert!(
            s.variable_page_gain() >= -1e-12,
            "gain {}",
            s.variable_page_gain()
        );
        assert!(s.render().contains("variable page size"));
    }
}
