//! Table 1: bandwidth efficiency of Direct Rambus vs disk.

use crate::report::TableBuilder;
use rampage_dram::{efficiency_table, EfficiencyRow};
use rampage_json::{obj, Json, ToJson};

/// The computed table.
#[derive(Debug, Clone)]
pub struct Table1 {
    /// One row per transfer size.
    pub rows: Vec<Row>,
}

/// One row: efficiency per device at one transfer size.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Row {
    /// Transfer size in bytes.
    pub bytes: u64,
    /// Direct Rambus (non-pipelined) efficiency in `[0,1]`.
    pub rambus: f64,
    /// Direct Rambus (pipelined, steady state) efficiency.
    pub rambus_pipelined: f64,
    /// Disk (10 ms, 40 MB/s) efficiency.
    pub disk: f64,
}

impl From<EfficiencyRow> for Row {
    fn from(r: EfficiencyRow) -> Self {
        Row {
            bytes: r.bytes,
            rambus: r.rambus,
            rambus_pipelined: r.rambus_pipelined,
            disk: r.disk,
        }
    }
}

/// Compute Table 1 (purely analytic — no simulation needed).
pub fn run() -> Table1 {
    Table1 {
        rows: efficiency_table().into_iter().map(Row::from).collect(),
    }
}

impl ToJson for Row {
    fn to_json(&self) -> Json {
        obj! {
            "bytes" => self.bytes,
            "rambus" => self.rambus,
            "rambus_pipelined" => self.rambus_pipelined,
            "disk" => self.disk,
        }
    }
}

impl ToJson for Table1 {
    fn to_json(&self) -> Json {
        obj! { "rows" => self.rows }
    }
}

impl Table1 {
    /// Render in the paper's shape: % of available bandwidth used per
    /// transfer size.
    pub fn render(&self) -> String {
        let mut t = TableBuilder::new(vec![
            "bytes".into(),
            "Rambus".into(),
            "Rambus piped".into(),
            "disk".into(),
        ]);
        for r in &self.rows {
            t.row(vec![
                r.bytes.to_string(),
                format!("{:.1}%", 100.0 * r.rambus),
                format!("{:.1}%", 100.0 * r.rambus_pipelined),
                format!("{:.4}%", 100.0 * r.disk),
            ]);
        }
        format!(
            "Table 1: efficiency (% bandwidth utilized), Direct Rambus vs disk\n{}",
            t.render()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_has_rows_and_renders() {
        let t = run();
        assert!(!t.rows.is_empty());
        let s = t.render();
        assert!(s.contains("Rambus"));
        assert!(s.contains("disk"));
    }

    #[test]
    fn shape_matches_paper_claims() {
        let t = run();
        // 4 KB: Rambus ~98%, disk ~0.01 s of 10 ms latency → ~1%.
        let r4k = t.rows.iter().find(|r| r.bytes == 4096).unwrap();
        assert!(r4k.rambus > 0.95);
        assert!(r4k.disk < 0.05);
    }
}
