//! Deterministic fault injection for the sweep runner (behind the
//! `fault` feature — test builds only).
//!
//! The robustness suite uses these hooks to prove the runner's isolation
//! guarantees without depending on real bugs: a cell can be made to
//! panic a fixed number of times (exercising catch-and-retry and the
//! [`FailedCell`](crate::experiments::FailedCell) path), and a cache
//! save can be torn mid-write (exercising quarantine-and-rebuild on the
//! next load).
//!
//! Injection state is process-global. Tests must hold an
//! [`InjectionScope`] while armed: the scope serializes tests against
//! each other and guarantees a disarmed state on entry and on drop (even
//! across a failed assertion), so `cargo test` parallelism can never
//! cross-contaminate armed state between tests.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};

/// Exit code of an injected process death (`die-after-claim`,
/// `die-mid-append`): 128 + SIGKILL, the same code a real `kill -9`
/// produces, so drills and real kills look identical to wrappers.
pub const INJECTED_CRASH_EXIT: i32 = 137;

/// Exclusive, self-cleaning access to the process-global injection
/// state (this module's cell panics and torn saves, plus the trace
/// crate's corrupt-record hook, which the `fault` feature enables
/// together).
///
/// Acquiring blocks until no other scope is alive, then disarms
/// everything; dropping disarms again. Arm faults only while holding a
/// scope.
#[derive(Debug)]
pub struct InjectionScope {
    _lock: MutexGuard<'static, ()>,
}

static SCOPE_LOCK: Mutex<()> = Mutex::new(());

impl InjectionScope {
    /// Block until exclusive, then start from a disarmed state.
    pub fn acquire() -> Self {
        // A poisoned lock just means another test failed while holding
        // the scope; its Drop already disarmed, and we re-disarm anyway.
        let lock = SCOPE_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        reset();
        rampage_trace::fault::disarm();
        InjectionScope { _lock: lock }
    }
}

impl Drop for InjectionScope {
    fn drop(&mut self) {
        reset();
        rampage_trace::fault::disarm();
    }
}

fn cell_panics() -> MutexGuard<'static, HashMap<u64, u32>> {
    static MAP: OnceLock<Mutex<HashMap<u64, u32>>> = OnceLock::new();
    MAP.get_or_init(|| Mutex::new(HashMap::new()))
        .lock()
        .unwrap_or_else(|p| p.into_inner())
}

/// How many upcoming cache saves should be torn (written truncated, as
/// if the process died mid-write).
static TORN_SAVES: AtomicU32 = AtomicU32::new(0);

/// Arm the next `times` executions of the cell with this fingerprint to
/// panic at the start of simulation. With `times = 1` the retry
/// succeeds; with `times >= 2` the cell is recorded as failed.
pub fn arm_cell_panic(fp: u64, times: u32) {
    cell_panics().insert(fp, times);
}

/// Called by the runner inside its per-cell isolation boundary.
pub(crate) fn cell_panic_point(fp: u64) {
    let fire = {
        let mut map = cell_panics();
        match map.get_mut(&fp) {
            Some(n) if *n > 0 => {
                *n -= 1;
                true
            }
            _ => false,
        }
    };
    if fire {
        // lint: allow(panic-doc) — the injected fault IS the deliberate panic; the runner's catch_unwind boundary records it
        panic!("injected fault: cell {fp:#018x}");
    }
}

/// Arm the next `times` calls to `CellCache::save_file` to write a
/// truncated file directly to the destination path — the on-disk state a
/// crash between write and rename would leave with a non-atomic writer.
pub fn arm_torn_save(times: u32) {
    TORN_SAVES.store(times, Ordering::SeqCst);
}

/// Consume one armed torn save, if any.
pub(crate) fn take_torn_save() -> bool {
    TORN_SAVES
        .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| n.checked_sub(1))
        .is_ok()
}

/// Countdown crash points for the journaled runner: each counter is
/// armed with N and fires on the Nth hit of its injection point.
static DIE_AFTER_CLAIM: AtomicU32 = AtomicU32::new(0);
static DIE_MID_APPEND: AtomicU32 = AtomicU32::new(0);
static HANG_CELLS: AtomicU32 = AtomicU32::new(0);

/// Decrement a countdown; true exactly when it just reached zero.
fn countdown_hit(counter: &AtomicU32) -> bool {
    counter
        .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| n.checked_sub(1))
        .is_ok_and(|prev| prev == 1)
}

/// Arm the process to die (exit [`INJECTED_CRASH_EXIT`]) immediately
/// after the `nth` batch of journal claim records is appended — the
/// worst crash point for lease reclaim: claims are durable, results
/// never arrive.
pub fn arm_die_after_claim(nth: u32) {
    DIE_AFTER_CLAIM.store(nth, Ordering::SeqCst);
}

/// Called by the journaled orchestrator right after appending claims.
pub(crate) fn die_after_claim_point() {
    if countdown_hit(&DIE_AFTER_CLAIM) {
        std::process::exit(INJECTED_CRASH_EXIT);
    }
}

/// Arm the `nth` upcoming journal append to write half a record and
/// die — the torn tail [`Journal::open`](crate::experiments::Journal::open)
/// must truncate on resume.
pub fn arm_die_mid_append(nth: u32) {
    DIE_MID_APPEND.store(nth, Ordering::SeqCst);
}

/// Consume the mid-append crash, if this append is the armed one.
pub(crate) fn take_die_mid_journal_append() -> bool {
    countdown_hit(&DIE_MID_APPEND)
}

/// Arm the next `times` computed cells to hang cooperatively: the cell
/// spins until the watchdog's cancel token fires (then unwinds as a
/// stall panic) or a built-in deadline lapses (so an unwatched run
/// cannot wedge forever).
pub fn arm_hang_cell(times: u32) {
    HANG_CELLS.store(times, Ordering::SeqCst);
}

/// Called by the runner inside its per-cell isolation boundary, with
/// the watchdog's cancel token for this attempt.
pub(crate) fn hang_cell_point(fp: u64, cancel: &AtomicBool) {
    if !countdown_hit(&HANG_CELLS) {
        return;
    }
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    while std::time::Instant::now() < deadline {
        if cancel.load(Ordering::SeqCst) {
            // lint: allow(panic-doc) — the injected hang IS the deliberate stall; the runner classifies this unwind by its prefix
            panic!(
                "{}: injected hang cell {fp:#018x}",
                crate::experiments::STALL_PANIC_PREFIX
            );
        }
        std::thread::sleep(std::time::Duration::from_millis(2));
    }
}

/// Disarm every injection point.
pub fn reset() {
    cell_panics().clear();
    TORN_SAVES.store(0, Ordering::SeqCst);
    DIE_AFTER_CLAIM.store(0, Ordering::SeqCst);
    DIE_MID_APPEND.store(0, Ordering::SeqCst);
    HANG_CELLS.store(0, Ordering::SeqCst);
}

/// Arm one injection from a CLI spec — how a crash-drill child process
/// (`repro … --fault SPEC`) arms itself. Specs: `die-after-claim[=N]`,
/// `die-mid-append[=N]`, `hang-cell[=N]`, `cell-panic=<fp>x<times>`.
///
/// # Errors
///
/// A human-readable message when the spec does not parse.
pub fn arm_from_spec(spec: &str) -> Result<(), String> {
    let (name, arg) = match spec.split_once('=') {
        Some((n, a)) => (n, Some(a)),
        None => (spec, None),
    };
    let nth = |default: u32| -> Result<u32, String> {
        match arg {
            None => Ok(default),
            Some(a) => a.parse().map_err(|_| format!("bad count in {spec:?}")),
        }
    };
    match name {
        "die-after-claim" => arm_die_after_claim(nth(1)?),
        "die-mid-append" => arm_die_mid_append(nth(1)?),
        "hang-cell" => arm_hang_cell(nth(1)?),
        "cell-panic" => {
            let a = arg.ok_or_else(|| format!("{spec:?} needs <fp>x<times>"))?;
            let (fp, times) = a
                .split_once('x')
                .ok_or_else(|| format!("{spec:?} needs <fp>x<times>"))?;
            let fp = parse_u64_maybe_hex(fp).ok_or_else(|| format!("bad fp in {spec:?}"))?;
            let times = times
                .parse()
                .map_err(|_| format!("bad times in {spec:?}"))?;
            arm_cell_panic(fp, times);
        }
        _ => return Err(format!("unknown fault spec {spec:?}")),
    }
    Ok(())
}

/// Parse a u64 that may carry a `0x` prefix (fingerprints are usually
/// quoted in hex).
fn parse_u64_maybe_hex(s: &str) -> Option<u64> {
    match s.strip_prefix("0x") {
        Some(h) => u64::from_str_radix(h, 16).ok(),
        None => s.parse().ok(),
    }
}
