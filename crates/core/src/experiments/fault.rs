//! Deterministic fault injection for the sweep runner (behind the
//! `fault` feature — test builds only).
//!
//! The robustness suite uses these hooks to prove the runner's isolation
//! guarantees without depending on real bugs: a cell can be made to
//! panic a fixed number of times (exercising catch-and-retry and the
//! [`FailedCell`](crate::experiments::FailedCell) path), and a cache
//! save can be torn mid-write (exercising quarantine-and-rebuild on the
//! next load).
//!
//! Injection state is process-global. Tests must hold an
//! [`InjectionScope`] while armed: the scope serializes tests against
//! each other and guarantees a disarmed state on entry and on drop (even
//! across a failed assertion), so `cargo test` parallelism can never
//! cross-contaminate armed state between tests.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};

/// Exclusive, self-cleaning access to the process-global injection
/// state (this module's cell panics and torn saves, plus the trace
/// crate's corrupt-record hook, which the `fault` feature enables
/// together).
///
/// Acquiring blocks until no other scope is alive, then disarms
/// everything; dropping disarms again. Arm faults only while holding a
/// scope.
#[derive(Debug)]
pub struct InjectionScope {
    _lock: MutexGuard<'static, ()>,
}

static SCOPE_LOCK: Mutex<()> = Mutex::new(());

impl InjectionScope {
    /// Block until exclusive, then start from a disarmed state.
    pub fn acquire() -> Self {
        // A poisoned lock just means another test failed while holding
        // the scope; its Drop already disarmed, and we re-disarm anyway.
        let lock = SCOPE_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        reset();
        rampage_trace::fault::disarm();
        InjectionScope { _lock: lock }
    }
}

impl Drop for InjectionScope {
    fn drop(&mut self) {
        reset();
        rampage_trace::fault::disarm();
    }
}

fn cell_panics() -> MutexGuard<'static, HashMap<u64, u32>> {
    static MAP: OnceLock<Mutex<HashMap<u64, u32>>> = OnceLock::new();
    MAP.get_or_init(|| Mutex::new(HashMap::new()))
        .lock()
        .unwrap_or_else(|p| p.into_inner())
}

/// How many upcoming cache saves should be torn (written truncated, as
/// if the process died mid-write).
static TORN_SAVES: AtomicU32 = AtomicU32::new(0);

/// Arm the next `times` executions of the cell with this fingerprint to
/// panic at the start of simulation. With `times = 1` the retry
/// succeeds; with `times >= 2` the cell is recorded as failed.
pub fn arm_cell_panic(fp: u64, times: u32) {
    cell_panics().insert(fp, times);
}

/// Called by the runner inside its per-cell isolation boundary.
pub(crate) fn cell_panic_point(fp: u64) {
    let fire = {
        let mut map = cell_panics();
        match map.get_mut(&fp) {
            Some(n) if *n > 0 => {
                *n -= 1;
                true
            }
            _ => false,
        }
    };
    if fire {
        // lint: allow(panic-doc) — the injected fault IS the deliberate panic; the runner's catch_unwind boundary records it
        panic!("injected fault: cell {fp:#018x}");
    }
}

/// Arm the next `times` calls to `CellCache::save_file` to write a
/// truncated file directly to the destination path — the on-disk state a
/// crash between write and rename would leave with a non-atomic writer.
pub fn arm_torn_save(times: u32) {
    TORN_SAVES.store(times, Ordering::SeqCst);
}

/// Consume one armed torn save, if any.
pub(crate) fn take_torn_save() -> bool {
    TORN_SAVES
        .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| n.checked_sub(1))
        .is_ok()
}

/// Disarm every injection point.
pub fn reset() {
    cell_panics().clear();
    TORN_SAVES.store(0, Ordering::SeqCst);
}
