//! §6.3 future-work ablations.
//!
//! The paper's conclusion sketches measurements it had only started:
//! a 1 K-entry 2-way TLB, more aggressive (64 KB 2-way) L1 caches,
//! pipelined Direct Rambus, and the standby page list. Each ablation here
//! modifies one knob of the base configuration and reruns the workload,
//! so the marginal effect of each design choice is isolated.

use crate::config::{DramKind, HierarchyKind, L1Config, SystemConfig, TlbConfig};
use crate::experiments::common::{Cell, Workload};
use crate::experiments::runner::{Job, SweepRunner};
use crate::report::TableBuilder;
use crate::time::IssueRate;
use rampage_json::{obj, Json, ToJson};

/// Which knob an ablation turns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Knob {
    /// The unmodified configuration.
    Base,
    /// 1 K-entry 2-way TLB instead of the 64-entry fully-associative one.
    LargeTlb,
    /// 64 KB 2-way L1 caches instead of 16 KB direct-mapped.
    AggressiveL1,
    /// Pipelined Direct Rambus (queued transfers skip the 50 ns latency).
    PipelinedRambus,
    /// Standby page list of 256 pages (RAMpage only; a no-op knob for
    /// the conventional hierarchy).
    StandbyList,
    /// SDRAM behind a 128-bit bus instead of Direct Rambus (§3.3 claims
    /// the two are near-equivalent without pipelining).
    SdramDevice,
    /// A 16-entry Jouppi victim cache between L1 and L2 (§3.2's hardware
    /// alternative to the standby list; conventional hierarchy only).
    VictimCache16,
    /// An 8-entry finite write buffer instead of the paper's perfect one
    /// (§4.3 assumption check).
    FiniteWriteBuffer8,
    /// Two Rambus channels interleaved by transfer unit (§3.3: more
    /// bandwidth, same latency — only overlapped transfers benefit).
    DualChannel,
    /// Sequential next-page prefetch on RAMpage faults (§3.2: "Prefetch
    /// could be added to RAMpage"; no-op for the conventional system).
    PrefetchNext,
}

impl Knob {
    /// All knobs in report order.
    pub const ALL: [Knob; 10] = [
        Knob::Base,
        Knob::LargeTlb,
        Knob::AggressiveL1,
        Knob::PipelinedRambus,
        Knob::StandbyList,
        Knob::SdramDevice,
        Knob::VictimCache16,
        Knob::FiniteWriteBuffer8,
        Knob::DualChannel,
        Knob::PrefetchNext,
    ];

    /// Apply the knob to a configuration.
    pub fn apply(self, mut cfg: SystemConfig) -> SystemConfig {
        match self {
            Knob::Base => {}
            Knob::LargeTlb => cfg.tlb = TlbConfig::large_2way(),
            Knob::AggressiveL1 => cfg.l1 = L1Config::aggressive(),
            Knob::PipelinedRambus => cfg.dram = DramKind::RambusPipelined,
            Knob::SdramDevice => cfg.dram = DramKind::Sdram,
            Knob::VictimCache16 => {
                if matches!(cfg.hierarchy, HierarchyKind::Conventional(_)) {
                    cfg.l1_victim_blocks = Some(16);
                }
            }
            Knob::FiniteWriteBuffer8 => cfg.write_buffer_depth = Some(8),
            Knob::DualChannel => cfg.dram_channels = 2,
            Knob::PrefetchNext => {
                if let HierarchyKind::Rampage(ref mut r) = cfg.hierarchy {
                    r.prefetch_next = true;
                }
            }
            Knob::StandbyList => {
                if let HierarchyKind::Rampage(ref mut r) = cfg.hierarchy {
                    r.standby_pages = Some(256);
                }
            }
        }
        cfg
    }

    /// Report label.
    pub fn label(self) -> &'static str {
        match self {
            Knob::Base => "base",
            Knob::LargeTlb => "1K-entry 2-way TLB",
            Knob::AggressiveL1 => "64KB 2-way L1",
            Knob::PipelinedRambus => "pipelined Rambus",
            Knob::StandbyList => "standby list (256)",
            Knob::SdramDevice => "SDRAM device",
            Knob::VictimCache16 => "16-entry victim cache",
            Knob::FiniteWriteBuffer8 => "8-entry write buffer",
            Knob::DualChannel => "2 Rambus channels",
            Knob::PrefetchNext => "next-page prefetch",
        }
    }
}

/// One ablation's outcome on both systems.
#[derive(Debug, Clone)]
pub struct AblationRow {
    /// Which knob.
    pub knob: Knob,
    /// RAMpage result.
    pub rampage: Cell,
    /// 2-way L2 result.
    pub two_way: Cell,
}

/// The ablation study.
#[derive(Debug, Clone)]
pub struct Ablations {
    /// Issue rate used (MHz).
    pub issue_mhz: u32,
    /// Page/block size used.
    pub unit_bytes: u64,
    /// One row per knob.
    pub rows: Vec<AblationRow>,
}

/// Run every knob at one issue rate and size. The `Base` knob's pair
/// matches Table 4's and Table 5's cells at this rate/size, so a shared
/// cell cache turns them into hits.
pub fn run(
    runner: &SweepRunner,
    workload: &Workload,
    issue: IssueRate,
    unit_bytes: u64,
) -> Ablations {
    let jobs: Vec<Job> = Knob::ALL
        .iter()
        .flat_map(|&knob| {
            [
                Job::new(
                    knob.apply(SystemConfig::rampage_switching(issue, unit_bytes)),
                    *workload,
                ),
                Job::new(
                    knob.apply(SystemConfig::two_way(issue, unit_bytes)),
                    *workload,
                ),
            ]
        })
        .collect();
    let cells = runner.run_labeled("ablations", &jobs);
    let rows = Knob::ALL
        .iter()
        .zip(cells.chunks_exact(2))
        .map(|(&knob, pair)| AblationRow {
            knob,
            rampage: pair[0],
            two_way: pair[1],
        })
        .collect();
    Ablations {
        issue_mhz: issue.mhz(),
        unit_bytes,
        rows,
    }
}

impl ToJson for AblationRow {
    fn to_json(&self) -> Json {
        obj! {
            "knob" => self.knob.label(),
            "rampage" => self.rampage,
            "two_way" => self.two_way,
        }
    }
}

impl ToJson for Ablations {
    fn to_json(&self) -> Json {
        obj! {
            "issue_mhz" => self.issue_mhz,
            "unit_bytes" => self.unit_bytes,
            "rows" => self.rows,
        }
    }
}

impl Ablations {
    /// Render as a knob × system table of run times and deltas vs base.
    pub fn render(&self) -> String {
        let mut t = TableBuilder::new(vec![
            "knob".into(),
            "RAMpage (s)".into(),
            "vs base".into(),
            "2-way L2 (s)".into(),
            "vs base".into(),
        ]);
        let base = &self.rows[0];
        for row in &self.rows {
            t.row(vec![
                row.knob.label().to_string(),
                format!("{:.3}", row.rampage.seconds),
                format!(
                    "{:+.1}%",
                    100.0 * (row.rampage.seconds / base.rampage.seconds - 1.0)
                ),
                format!("{:.3}", row.two_way.seconds),
                format!(
                    "{:+.1}%",
                    100.0 * (row.two_way.seconds / base.two_way.seconds - 1.0)
                ),
            ]);
        }
        format!(
            "Ablations (§6.3 future work), {} MHz, {} B pages/blocks\n{}",
            self.issue_mhz,
            self.unit_bytes,
            t.render()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn knobs_modify_configs() {
        let base = SystemConfig::rampage(IssueRate::GHZ1, 512);
        assert_eq!(Knob::Base.apply(base), base);
        assert_eq!(Knob::LargeTlb.apply(base).tlb.entries(), 1024);
        assert_eq!(Knob::AggressiveL1.apply(base).l1.ways, 2);
        assert_eq!(
            Knob::PipelinedRambus.apply(base).dram,
            DramKind::RambusPipelined
        );
        assert_eq!(Knob::SdramDevice.apply(base).dram, DramKind::Sdram);
        match Knob::StandbyList.apply(base).hierarchy {
            HierarchyKind::Rampage(r) => assert_eq!(r.standby_pages, Some(256)),
            _ => panic!("still RAMpage"),
        }
        // Standby knob is a no-op on conventional configs.
        let conv = SystemConfig::two_way(IssueRate::GHZ1, 512);
        assert_eq!(Knob::StandbyList.apply(conv), conv);
    }

    #[test]
    fn study_runs_all_knobs() {
        let a = run(
            &SweepRunner::serial(),
            &Workload::quick(),
            IssueRate::GHZ1,
            1024,
        );
        assert_eq!(a.rows.len(), Knob::ALL.len());
        for row in &a.rows {
            assert!(row.rampage.seconds > 0.0);
            assert!(row.two_way.seconds > 0.0);
        }
        assert!(a.render().contains("pipelined Rambus"));
    }
}
