//! Table 2: the benchmark suite.

use crate::report::TableBuilder;
use rampage_trace::profiles::{self, Profile};

/// Render the suite exactly as the paper's Table 2 lists it (program,
/// description, millions of instruction fetches, millions of references),
/// plus our synthetic workload class.
pub fn render() -> String {
    let mut t = TableBuilder::new(vec![
        "program".into(),
        "description".into(),
        "Minstr".into(),
        "Mrefs".into(),
        "synthetic class".into(),
    ]);
    for p in &profiles::TABLE2 {
        t.row(vec![
            p.name.to_string(),
            p.description.to_string(),
            format!("{:.1}", p.instr_millions),
            format!("{:.1}", p.refs_millions),
            class_name(p),
        ]);
    }
    t.row(vec![
        "TOTAL".into(),
        String::new(),
        format!(
            "{:.1}",
            profiles::TABLE2
                .iter()
                .map(|p| p.instr_millions)
                .sum::<f64>()
        ),
        format!("{:.1}", profiles::table2_total_refs_millions()),
        String::new(),
    ]);
    format!(
        "Table 2: address traces (synthetic reproduction of the Tracebase suite)\n{}",
        t.render()
    )
}

fn class_name(p: &Profile) -> String {
    use rampage_trace::profiles::WorkloadClass::*;
    match p.class {
        FpStream { .. } => "fp-stream".into(),
        FpLoop { .. } => "fp-loop".into(),
        IntBranchy { .. } => "int-branchy".into(),
        Stream { .. } => "stream".into(),
        PointerHeavy { .. } => "pointer-heavy".into(),
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn renders_all_programs_and_total() {
        let s = super::render();
        assert!(s.contains("alvinn"));
        assert!(s.contains("yacc"));
        assert!(s.contains("TOTAL"));
        assert!(s.contains("1093.1"), "1.1 G references total");
    }
}
