//! The config model check: every experiment preset's sweep grid,
//! enumerated without running anything, so `repro lint --configs` can
//! prove at lint time that no grid cell would die in
//! [`SystemConfig::validate`] mid-sweep.
//!
//! Each grid here mirrors — cell for cell — the configs its experiment
//! module builds (`table3::run_paper`, `timeslice::run` with the default
//! slice, the `diag` artifact loop, …). When an experiment grows a new
//! axis, extend its grid here; the meta-test in
//! `tests/config_model_check.rs` cross-checks the shapes.

use crate::config::SystemConfig;
use crate::error::ConfigError;
use crate::experiments::ablations::Knob;
use crate::experiments::common::PAPER_SIZES;
use crate::experiments::timeslice::DEFAULT_SLICE_PS;
use crate::time::IssueRate;

/// One experiment preset's full sweep grid.
#[derive(Debug)]
pub struct PresetGrid {
    /// The artifact name as `repro` spells it (`table3`, `ablations`, …).
    pub name: &'static str,
    /// Every cell: a human label (`rampage@1000MHz/1024B`) plus the
    /// exact config the experiment would run.
    pub cells: Vec<(String, SystemConfig)>,
}

/// A cell that failed validation.
#[derive(Debug)]
pub struct GridError {
    /// Which preset grid.
    pub grid: &'static str,
    /// Which cell within it.
    pub cell: String,
    /// Why the config is invalid.
    pub error: ConfigError,
}

impl std::fmt::Display for GridError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}::{}: {}", self.grid, self.cell, self.error)
    }
}

fn label(kind: &str, rate: IssueRate, size: u64) -> String {
    format!("{kind}@{}MHz/{size}B", rate.mhz())
}

/// Every preset grid the `repro` artifacts sweep.
pub fn preset_grids() -> Vec<PresetGrid> {
    let mut grids = Vec::new();

    // table3: baseline + rampage over the full paper cross product.
    let mut cells = Vec::new();
    for &rate in &IssueRate::PAPER_SWEEP {
        for &size in &PAPER_SIZES {
            cells.push((
                label("baseline", rate, size),
                SystemConfig::baseline(rate, size),
            ));
            cells.push((
                label("rampage", rate, size),
                SystemConfig::rampage(rate, size),
            ));
        }
    }
    grids.push(PresetGrid {
        name: "table3",
        cells,
    });

    // table4: rampage with switch-on-miss, same axes as table3.
    let mut cells = Vec::new();
    for &rate in &IssueRate::PAPER_SWEEP {
        for &size in &PAPER_SIZES {
            cells.push((
                label("rampage_switching", rate, size),
                SystemConfig::rampage_switching(rate, size),
            ));
        }
    }
    grids.push(PresetGrid {
        name: "table4",
        cells,
    });

    // table5: the 2-way conventional sweep, same axes.
    let mut cells = Vec::new();
    for &rate in &IssueRate::PAPER_SWEEP {
        for &size in &PAPER_SIZES {
            cells.push((
                label("two_way", rate, size),
                SystemConfig::two_way(rate, size),
            ));
        }
    }
    grids.push(PresetGrid {
        name: "table5",
        cells,
    });

    // timeslice: both scheduling regimes at the rates repro sweeps.
    let mut cells = Vec::new();
    for time_based in [false, true] {
        for &rate in &[IssueRate::MHZ200, IssueRate::GHZ1, IssueRate::GHZ4] {
            for &size in &PAPER_SIZES {
                let mut cfg = SystemConfig::two_way(rate, size);
                let regime = if time_based {
                    cfg.quantum_time = Some(rampage_dram::Picos(DEFAULT_SLICE_PS));
                    "two_way+time"
                } else {
                    "two_way+refs"
                };
                cells.push((label(regime, rate, size), cfg));
            }
        }
    }
    grids.push(PresetGrid {
        name: "timeslice",
        cells,
    });

    // ablations: every knob applied to both systems at the repro point.
    let mut cells = Vec::new();
    for &knob in &Knob::ALL {
        let (rate, size) = (IssueRate::GHZ1, 1024);
        cells.push((
            format!("{knob:?}+rampage_switching"),
            knob.apply(SystemConfig::rampage_switching(rate, size)),
        ));
        cells.push((
            format!("{knob:?}+two_way"),
            knob.apply(SystemConfig::two_way(rate, size)),
        ));
    }
    grids.push(PresetGrid {
        name: "ablations",
        cells,
    });

    // perbench: solo RAMpage runs per page size (workloads differ per
    // program, configs per size).
    let mut cells = Vec::new();
    for &size in &PAPER_SIZES {
        cells.push((
            label("rampage", IssueRate::GHZ1, size),
            SystemConfig::rampage(IssueRate::GHZ1, size),
        ));
    }
    grids.push(PresetGrid {
        name: "perbench",
        cells,
    });

    // anatomy: direct-mapped and 2-way conventional at 1 GHz.
    let mut cells = Vec::new();
    for &size in &PAPER_SIZES {
        cells.push((
            label("baseline", IssueRate::GHZ1, size),
            SystemConfig::baseline(IssueRate::GHZ1, size),
        ));
        cells.push((
            label("two_way", IssueRate::GHZ1, size),
            SystemConfig::two_way(IssueRate::GHZ1, size),
        ));
    }
    grids.push(PresetGrid {
        name: "anatomy",
        cells,
    });

    // dramdiff: flat-vs-banked error quantification — the exact configs
    // come from the experiment module so the grid cannot drift.
    grids.push(PresetGrid {
        name: "dramdiff",
        cells: crate::experiments::dram_backend::grid_configs(
            IssueRate::GHZ1,
            &crate::experiments::dram_backend::DIVERGENCE_SIZES,
        ),
    });

    // diag: the three-system detail table at 1 GHz.
    let mut cells = Vec::new();
    for &size in &PAPER_SIZES {
        cells.push((
            label("baseline", IssueRate::GHZ1, size),
            SystemConfig::baseline(IssueRate::GHZ1, size),
        ));
        cells.push((
            label("rampage", IssueRate::GHZ1, size),
            SystemConfig::rampage(IssueRate::GHZ1, size),
        ));
        cells.push((
            label("two_way", IssueRate::GHZ1, size),
            SystemConfig::two_way(IssueRate::GHZ1, size),
        ));
    }
    grids.push(PresetGrid {
        name: "diag",
        cells,
    });

    grids
}

/// Validate every cell of every preset grid; empty means every sweep
/// `repro` can run is statically known to pass the config gate.
pub fn validate_presets() -> Vec<GridError> {
    let mut errors = Vec::new();
    for grid in preset_grids() {
        for (cell, cfg) in grid.cells {
            if let Err(error) = cfg.validate() {
                errors.push(GridError {
                    grid: grid.name,
                    cell,
                    error,
                });
            }
        }
    }
    errors
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_preset_grid_cell_validates() {
        let errors = validate_presets();
        assert!(errors.is_empty(), "invalid preset cells: {errors:?}");
    }

    #[test]
    fn grid_shapes_match_their_experiments() {
        let grids = preset_grids();
        let shape = |name: &str| {
            grids
                .iter()
                .find(|g| g.name == name)
                .map(|g| g.cells.len())
                .unwrap_or(0)
        };
        let rates = IssueRate::PAPER_SWEEP.len();
        let sizes = PAPER_SIZES.len();
        assert_eq!(shape("table3"), rates * sizes * 2);
        assert_eq!(shape("table4"), rates * sizes);
        assert_eq!(shape("table5"), rates * sizes);
        assert_eq!(shape("timeslice"), 3 * sizes * 2);
        assert_eq!(shape("ablations"), Knob::ALL.len() * 2);
        assert_eq!(shape("perbench"), sizes);
        assert_eq!(shape("anatomy"), sizes * 2);
        assert_eq!(shape("diag"), sizes * 3);
        // dramdiff: sizes × {rampage, baseline} × {flat, banked}.
        assert_eq!(
            shape("dramdiff"),
            crate::experiments::dram_backend::DIVERGENCE_SIZES.len() * 2 * 2
        );
    }

    #[test]
    fn a_broken_cell_is_reported_with_grid_and_label() {
        // Sanity-check the reporting shape on a deliberately bad config.
        let mut cfg = SystemConfig::baseline(IssueRate::GHZ1, 512);
        cfg.quantum = 0;
        let err = cfg.validate().expect_err("zero quantum is invalid");
        let ge = GridError {
            grid: "synthetic",
            cell: "baseline@1000MHz/512B".to_string(),
            error: err,
        };
        let text = ge.to_string();
        assert!(
            text.contains("synthetic::baseline@1000MHz/512B: "),
            "{text}"
        );
    }
}
