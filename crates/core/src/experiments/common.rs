//! Shared experiment machinery: workloads, cells, sweeps.

use crate::config::SystemConfig;
use crate::engine::Engine;
use crate::experiments::runner::{Job, SweepRunner};
use crate::metrics::LevelFractions;
use crate::time::IssueRate;
use rampage_json::{obj, Json, ToJson};
use rampage_trace::corpus::{CorpusReader, Manifest};
use rampage_trace::{profiles, TraceSource};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// The block/page size sweep of every table: 128 B – 4 KB.
pub const PAPER_SIZES: [u64; 6] = [128, 256, 512, 1024, 2048, 4096];

/// Corpus directory workloads replay from instead of synthesizing, when
/// set. Process-global rather than a [`Workload`] field on purpose: job
/// fingerprints (and therefore the cell cache and every persisted
/// artifact) must be identical whether a workload was synthesized or
/// replayed from a recorded corpus — the corpus is a *transport*, not a
/// different experiment.
static TRACE_DIR: Mutex<Option<PathBuf>> = Mutex::new(None);

/// Sources opened from the corpus since the last [`reset`] /
/// process start.
static CORPUS_OPENED: AtomicU64 = AtomicU64::new(0);

/// Sources that fell back to synthesis (no matching shard, mismatched
/// identity, or an unreadable file).
static CORPUS_FALLBACK: AtomicU64 = AtomicU64::new(0);

/// Counters describing how workload sources were built since the last
/// [`reset`](CorpusSourceStats::reset).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CorpusSourceStats {
    /// Sources replayed from recorded corpus shards.
    pub opened: u64,
    /// Sources that fell back to in-memory synthesis.
    pub fallback: u64,
}

impl CorpusSourceStats {
    /// Zero both counters (tests use this to isolate assertions).
    pub fn reset() {
        CORPUS_OPENED.store(0, Ordering::SeqCst);
        CORPUS_FALLBACK.store(0, Ordering::SeqCst);
    }
}

/// Route subsequent [`Workload::sources`] calls through the corpus in
/// `dir` (`None` restores pure synthesis). Shards are matched by
/// benchmark name *and* the workload's seed and scale; anything
/// unmatched silently falls back to synthesis (counted in
/// [`corpus_source_stats`]), so a partial corpus still works.
pub fn set_trace_dir(dir: Option<PathBuf>) {
    let mut guard = TRACE_DIR.lock().unwrap_or_else(|p| p.into_inner());
    *guard = dir;
}

/// The corpus directory replay currently routes through, if any.
pub fn trace_dir() -> Option<PathBuf> {
    TRACE_DIR.lock().unwrap_or_else(|p| p.into_inner()).clone()
}

/// How sources have been built so far (corpus replay vs synthesis).
pub fn corpus_source_stats() -> CorpusSourceStats {
    CorpusSourceStats {
        opened: CORPUS_OPENED.load(Ordering::SeqCst),
        fallback: CORPUS_FALLBACK.load(Ordering::SeqCst),
    }
}

/// The multiprogrammed workload driving a sweep: the first `nbench`
/// programs of Table 2, each at `1/scale` of its paper reference count —
/// or, with [`solo`](Workload::solo), one program running alone (the
/// per-benchmark study's shape).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Workload {
    /// How many of the 18 Table 2 programs to run (ignored when `solo`
    /// is set).
    pub nbench: usize,
    /// Trace-volume divisor (1 = the paper's full 1.1 G references).
    pub scale: u64,
    /// Generator seed.
    pub seed: u64,
    /// Run a single Table 2 program alone, by index, instead of the
    /// interleaved suite.
    pub solo: Option<usize>,
}

impl Workload {
    /// The full suite at `1/scale` volume.
    pub fn paper(scale: u64) -> Self {
        Workload {
            nbench: profiles::TABLE2.len(),
            scale,
            seed: 0x7a9e,
            solo: None,
        }
    }

    /// A small, fast workload for tests and smoke benches.
    pub fn quick() -> Self {
        Workload {
            nbench: 4,
            scale: 20_000,
            seed: 0x7a9e,
            solo: None,
        }
    }

    /// One Table 2 program (by index) running alone at `1/scale` volume.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range for Table 2.
    pub fn solo(index: usize, scale: u64, seed: u64) -> Self {
        assert!(index < profiles::TABLE2.len(), "no Table 2 program {index}");
        Workload {
            nbench: 1,
            scale,
            seed,
            solo: Some(index),
        }
    }

    /// The profiles this workload draws from.
    fn profiles(&self) -> &'static [profiles::Profile] {
        match self.solo {
            Some(i) => &profiles::TABLE2[i..i + 1],
            None => &profiles::TABLE2[..self.nbench],
        }
    }

    /// Build the trace sources.
    ///
    /// With a corpus directory set ([`set_trace_dir`]), each profile
    /// whose recorded shard matches this workload's seed, scale, and
    /// reference count is replayed from disk; everything else is
    /// synthesized as before. Either way the record stream is
    /// bit-identical, so downstream results do not depend on the route.
    pub fn sources(&self) -> Vec<Box<dyn TraceSource + Send>> {
        let corpus =
            trace_dir().and_then(|dir| Manifest::load(&dir).ok().map(|manifest| (dir, manifest)));
        self.profiles()
            .iter()
            .map(|p| match &corpus {
                Some((dir, manifest)) => self.corpus_or_synth(p, dir, manifest),
                None => self.synth(p),
            })
            .collect()
    }

    fn synth(&self, p: &'static profiles::Profile) -> Box<dyn TraceSource + Send> {
        Box::new(p.source(self.scale, self.seed))
    }

    /// Replay `p` from the corpus when a shard with the right identity
    /// (name, seed, scale) and record count exists and opens; otherwise
    /// synthesize. Each path bumps its [`corpus_source_stats`] counter.
    fn corpus_or_synth(
        &self,
        p: &'static profiles::Profile,
        dir: &std::path::Path,
        manifest: &Manifest,
    ) -> Box<dyn TraceSource + Send> {
        let replay = manifest
            .find_recorded(p.name, self.seed, self.scale)
            .filter(|meta| meta.records == p.scaled_refs(self.scale))
            .and_then(|meta| CorpusReader::open(dir.join(&meta.file)).ok());
        match replay {
            Some(reader) => {
                CORPUS_OPENED.fetch_add(1, Ordering::SeqCst);
                Box::new(reader.with_name(p.name))
            }
            None => {
                CORPUS_FALLBACK.fetch_add(1, Ordering::SeqCst);
                self.synth(p)
            }
        }
    }

    /// Total references this workload will produce.
    pub fn total_refs(&self) -> u64 {
        self.profiles()
            .iter()
            .map(|p| p.scaled_refs(self.scale))
            .sum()
    }
}

/// One simulated configuration's results — the unit every table and
/// figure is assembled from.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Cell {
    /// L2 block size or SRAM page size in bytes.
    pub unit_bytes: u64,
    /// Issue rate in MHz.
    pub issue_mhz: u32,
    /// Simulated run time in seconds (the paper's headline number).
    pub seconds: f64,
    /// Cycles per user reference (scale-independent).
    pub cycles_per_ref: f64,
    /// Per-level time fractions (Figures 2/3).
    pub fractions: LevelFractions,
    /// Handler-reference overhead ratio (Figure 4).
    pub overhead: f64,
    /// Page faults (RAMpage) or DRAM block fetches (conventional).
    pub dram_events: u64,
    /// TLB miss ratio.
    pub tlb_miss_ratio: f64,
    /// L1 instruction-cache miss ratio.
    pub l1i_miss_ratio: f64,
    /// L1 data-cache miss ratio.
    pub l1d_miss_ratio: f64,
    /// L2 local miss ratio (conventional; 0 for RAMpage).
    pub l2_miss_ratio: f64,
}

impl ToJson for LevelFractions {
    fn to_json(&self) -> Json {
        obj! {
            "l1i" => self.l1i,
            "l1d" => self.l1d,
            "l2_sram" => self.l2_sram,
            "dram" => self.dram,
            "idle" => self.idle,
        }
    }
}

impl ToJson for Cell {
    fn to_json(&self) -> Json {
        obj! {
            "unit_bytes" => self.unit_bytes,
            "issue_mhz" => self.issue_mhz,
            "seconds" => self.seconds,
            "cycles_per_ref" => self.cycles_per_ref,
            "fractions" => self.fractions,
            "overhead" => self.overhead,
            "dram_events" => self.dram_events,
            "tlb_miss_ratio" => self.tlb_miss_ratio,
            "l1i_miss_ratio" => self.l1i_miss_ratio,
            "l1d_miss_ratio" => self.l1d_miss_ratio,
            "l2_miss_ratio" => self.l2_miss_ratio,
        }
    }
}

impl ToJson for Workload {
    fn to_json(&self) -> Json {
        obj! {
            "nbench" => self.nbench,
            "scale" => self.scale,
            "seed" => self.seed,
            "solo" => self.solo,
        }
    }
}

impl Cell {
    /// The inert all-zero cell a sweep records in place of a failed job,
    /// so tables keep their shape while the failure itself is reported
    /// through [`SweepRunner::failures`]. Never cached or persisted.
    pub fn failed_placeholder(cfg: &SystemConfig) -> Cell {
        Cell {
            unit_bytes: cfg.hierarchy.unit_bytes(),
            issue_mhz: cfg.issue.mhz(),
            seconds: 0.0,
            cycles_per_ref: 0.0,
            fractions: LevelFractions {
                l1i: 0.0,
                l1d: 0.0,
                l2_sram: 0.0,
                dram: 0.0,
                idle: 0.0,
            },
            overhead: 0.0,
            dram_events: 0,
            tlb_miss_ratio: 0.0,
            l1i_miss_ratio: 0.0,
            l1d_miss_ratio: 0.0,
            l2_miss_ratio: 0.0,
        }
    }

    /// Summarize a finished run as a cell (what [`run_config`] returns).
    pub fn from_run(cfg: &SystemConfig, out: &crate::engine::RunOutcome) -> Cell {
        let m = &out.metrics;
        Cell {
            unit_bytes: cfg.hierarchy.unit_bytes(),
            issue_mhz: cfg.issue.mhz(),
            seconds: out.seconds,
            cycles_per_ref: m.cycles_per_ref(),
            fractions: m.time.fractions(),
            overhead: m.counts.handler_overhead_ratio(),
            dram_events: m.counts.page_faults + m.counts.dram_block_fetches,
            tlb_miss_ratio: m.counts.tlb.miss_ratio(),
            l1i_miss_ratio: m.counts.l1i.miss_ratio(),
            l1d_miss_ratio: m.counts.l1d.miss_ratio(),
            l2_miss_ratio: m.counts.l2.miss_ratio(),
        }
    }

    /// Rebuild a cell from its [`ToJson`] form (the persisted-cache
    /// format); `None` on any missing or mistyped field.
    pub fn from_json(doc: &Json) -> Option<Cell> {
        let f = doc.get("fractions")?;
        let fractions = LevelFractions {
            l1i: f.get("l1i")?.as_f64()?,
            l1d: f.get("l1d")?.as_f64()?,
            l2_sram: f.get("l2_sram")?.as_f64()?,
            dram: f.get("dram")?.as_f64()?,
            idle: f.get("idle")?.as_f64()?,
        };
        Some(Cell {
            unit_bytes: doc.get("unit_bytes")?.as_u64()?,
            issue_mhz: doc.get("issue_mhz")?.as_u64()? as u32,
            seconds: doc.get("seconds")?.as_f64()?,
            cycles_per_ref: doc.get("cycles_per_ref")?.as_f64()?,
            fractions,
            overhead: doc.get("overhead")?.as_f64()?,
            dram_events: doc.get("dram_events")?.as_u64()?,
            tlb_miss_ratio: doc.get("tlb_miss_ratio")?.as_f64()?,
            l1i_miss_ratio: doc.get("l1i_miss_ratio")?.as_f64()?,
            l1d_miss_ratio: doc.get("l1d_miss_ratio")?.as_f64()?,
            l2_miss_ratio: doc.get("l2_miss_ratio")?.as_f64()?,
        })
    }
}

/// Run one configuration over a workload and summarize it as a [`Cell`].
///
/// This is the raw, uncached simulation; sweeps should go through a
/// [`SweepRunner`] instead.
pub fn run_config(cfg: &SystemConfig, workload: &Workload) -> Cell {
    let mut engine = Engine::new(cfg, workload.sources());
    let out = engine.run();
    Cell::from_run(cfg, &out)
}

/// Like [`run_config`], but with event tracing enabled into a ring of at
/// most `trace_cap` events. Returns the cell together with the full
/// [`RunOutcome`] (events, per-process summaries, histograms); the cell
/// is bit-identical to the untraced one — the observability suite proves
/// it.
pub fn run_config_traced(
    cfg: &SystemConfig,
    workload: &Workload,
    trace_cap: usize,
) -> (Cell, crate::engine::RunOutcome) {
    let mut engine = Engine::new(cfg, workload.sources());
    engine.enable_trace(trace_cap);
    let out = engine.run();
    (Cell::from_run(cfg, &out), out)
}

/// Run `make_cfg(issue, size)` over a size sweep at one issue rate,
/// through the runner's pool and cache. `label` names the calling
/// artifact in journaled claim records.
pub fn sweep_sizes(
    runner: &SweepRunner,
    label: &str,
    make_cfg: impl Fn(IssueRate, u64) -> SystemConfig,
    issue: IssueRate,
    sizes: &[u64],
    workload: &Workload,
) -> Vec<Cell> {
    let jobs: Vec<Job> = sizes
        .iter()
        .map(|&size| Job::new(make_cfg(issue, size), *workload))
        .collect();
    runner.run_labeled(label, jobs.as_slice())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_presets() {
        let w = Workload::paper(1000);
        assert_eq!(w.nbench, 18);
        assert_eq!(w.sources().len(), 18);
        // 1.1 G / 1000 ≈ 1.09 M refs.
        assert!((1_000_000..1_200_000).contains(&w.total_refs()));
        assert!(Workload::quick().total_refs() < 20_000);
    }

    #[test]
    fn solo_workload_runs_one_program() {
        let w = Workload::solo(3, 10_000, 7);
        assert_eq!(w.sources().len(), 1);
        assert!(w.total_refs() > 0);
        assert!(w.total_refs() < Workload::paper(10_000).total_refs());
    }

    #[test]
    fn run_config_produces_consistent_cell() {
        let cfg = SystemConfig::rampage(IssueRate::GHZ1, 1024);
        let cell = run_config(&cfg, &Workload::quick());
        assert_eq!(cell.unit_bytes, 1024);
        assert_eq!(cell.issue_mhz, 1000);
        assert!(cell.seconds > 0.0);
        assert!(cell.cycles_per_ref >= 1.0 * 0.5, "ifetches alone give ~0.8");
        assert!(cell.overhead > 0.0, "some handler activity");
        let f = cell.fractions;
        let sum = f.l1i + f.l1d + f.l2_sram + f.dram + f.idle;
        assert!((sum - 1.0).abs() < 1e-9, "fractions sum to 1, got {sum}");
    }

    #[test]
    fn sweep_covers_sizes_in_order() {
        let cells = sweep_sizes(
            &SweepRunner::serial(),
            "test",
            SystemConfig::baseline,
            IssueRate::MHZ200,
            &[128, 4096],
            &Workload::quick(),
        );
        assert_eq!(cells.len(), 2);
        assert_eq!(cells[0].unit_bytes, 128);
        assert_eq!(cells[1].unit_bytes, 4096);
    }

    #[test]
    fn cell_json_roundtrips_bit_exactly() {
        let cell = run_config(
            &SystemConfig::two_way(IssueRate::GHZ4, 256),
            &Workload::quick(),
        );
        let back = Cell::from_json(&cell.to_json()).expect("roundtrip");
        assert_eq!(back, cell);
        // Through text as well (the persisted form).
        let text = cell.to_json().pretty();
        let back = Cell::from_json(&Json::parse(&text).expect("parses")).expect("roundtrip");
        assert_eq!(back, cell);
    }
}
