//! Shared experiment machinery: workloads, cells, sweeps.

use crate::config::SystemConfig;
use crate::engine::Engine;
use crate::metrics::LevelFractions;
use crate::time::IssueRate;
use rampage_trace::{profiles, TraceSource};
use serde::{Deserialize, Serialize};

/// The block/page size sweep of every table: 128 B – 4 KB.
pub const PAPER_SIZES: [u64; 6] = [128, 256, 512, 1024, 2048, 4096];

/// The multiprogrammed workload driving a sweep: the first `nbench`
/// programs of Table 2, each at `1/scale` of its paper reference count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Workload {
    /// How many of the 18 Table 2 programs to run.
    pub nbench: usize,
    /// Trace-volume divisor (1 = the paper's full 1.1 G references).
    pub scale: u64,
    /// Generator seed.
    pub seed: u64,
}

impl Workload {
    /// The full suite at `1/scale` volume.
    pub fn paper(scale: u64) -> Self {
        Workload {
            nbench: profiles::TABLE2.len(),
            scale,
            seed: 0x7a9e,
        }
    }

    /// A small, fast workload for tests and smoke benches.
    pub fn quick() -> Self {
        Workload {
            nbench: 4,
            scale: 20_000,
            seed: 0x7a9e,
        }
    }

    /// Build the trace sources.
    pub fn sources(&self) -> Vec<Box<dyn TraceSource + Send>> {
        profiles::TABLE2
            .iter()
            .take(self.nbench)
            .map(|p| Box::new(p.source(self.scale, self.seed)) as Box<dyn TraceSource + Send>)
            .collect()
    }

    /// Total references this workload will produce.
    pub fn total_refs(&self) -> u64 {
        profiles::TABLE2
            .iter()
            .take(self.nbench)
            .map(|p| p.scaled_refs(self.scale))
            .sum()
    }
}

/// One simulated configuration's results — the unit every table and
/// figure is assembled from.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Cell {
    /// L2 block size or SRAM page size in bytes.
    pub unit_bytes: u64,
    /// Issue rate in MHz.
    pub issue_mhz: u32,
    /// Simulated run time in seconds (the paper's headline number).
    pub seconds: f64,
    /// Cycles per user reference (scale-independent).
    pub cycles_per_ref: f64,
    /// Per-level time fractions (Figures 2/3).
    pub fractions: LevelFractions,
    /// Handler-reference overhead ratio (Figure 4).
    pub overhead: f64,
    /// Page faults (RAMpage) or DRAM block fetches (conventional).
    pub dram_events: u64,
    /// TLB miss ratio.
    pub tlb_miss_ratio: f64,
    /// L1 instruction-cache miss ratio.
    pub l1i_miss_ratio: f64,
    /// L1 data-cache miss ratio.
    pub l1d_miss_ratio: f64,
    /// L2 local miss ratio (conventional; 0 for RAMpage).
    pub l2_miss_ratio: f64,
}

/// Run one configuration over a workload and summarize it as a [`Cell`].
pub fn run_config(cfg: &SystemConfig, workload: &Workload) -> Cell {
    let mut engine = Engine::new(cfg, workload.sources());
    let out = engine.run();
    let m = out.metrics;
    Cell {
        unit_bytes: cfg.hierarchy.unit_bytes(),
        issue_mhz: cfg.issue.mhz(),
        seconds: out.seconds,
        cycles_per_ref: m.cycles_per_ref(),
        fractions: m.time.fractions(),
        overhead: m.counts.handler_overhead_ratio(),
        dram_events: m.counts.page_faults + m.counts.dram_block_fetches,
        tlb_miss_ratio: m.counts.tlb.miss_ratio(),
        l1i_miss_ratio: m.counts.l1i.miss_ratio(),
        l1d_miss_ratio: m.counts.l1d.miss_ratio(),
        l2_miss_ratio: m.counts.l2.miss_ratio(),
    }
}

/// Run `make_cfg(issue, size)` over a size sweep at one issue rate.
pub fn sweep_sizes(
    make_cfg: impl Fn(IssueRate, u64) -> SystemConfig,
    issue: IssueRate,
    sizes: &[u64],
    workload: &Workload,
) -> Vec<Cell> {
    sizes
        .iter()
        .map(|&size| run_config(&make_cfg(issue, size), workload))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_presets() {
        let w = Workload::paper(1000);
        assert_eq!(w.nbench, 18);
        assert_eq!(w.sources().len(), 18);
        // 1.1 G / 1000 ≈ 1.09 M refs.
        assert!((1_000_000..1_200_000).contains(&w.total_refs()));
        assert!(Workload::quick().total_refs() < 20_000);
    }

    #[test]
    fn run_config_produces_consistent_cell() {
        let cfg = SystemConfig::rampage(IssueRate::GHZ1, 1024);
        let cell = run_config(&cfg, &Workload::quick());
        assert_eq!(cell.unit_bytes, 1024);
        assert_eq!(cell.issue_mhz, 1000);
        assert!(cell.seconds > 0.0);
        assert!(cell.cycles_per_ref >= 1.0 * 0.5, "ifetches alone give ~0.8");
        assert!(cell.overhead > 0.0, "some handler activity");
        let f = cell.fractions;
        let sum = f.l1i + f.l1d + f.l2_sram + f.dram + f.idle;
        assert!((sum - 1.0).abs() < 1e-9, "fractions sum to 1, got {sum}");
    }

    #[test]
    fn sweep_covers_sizes_in_order() {
        let cells = sweep_sizes(
            SystemConfig::baseline,
            IssueRate::MHZ200,
            &[128, 4096],
            &Workload::quick(),
        );
        assert_eq!(cells.len(), 2);
        assert_eq!(cells[0].unit_bytes, 128);
        assert_eq!(cells[1].unit_bytes, 4096);
    }
}
