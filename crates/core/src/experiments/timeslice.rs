//! The time-slice conjecture (paper §5.5 / §6.2), tested.
//!
//! The paper worried that one of its own findings — larger blocks
//! becoming favourable as the CPU speeds up — "is possible ... an
//! artifact of the context switch interval used in simulations; in a
//! real system it would be based on a real-time clock and would
//! therefore correspond to a higher number of references as the CPU was
//! sped up. A short time slice favours larger blocks because larger
//! blocks support spatial locality at the expense of temporal locality."
//!
//! This experiment runs the 2-way L2 sweep under both quantum regimes —
//! the paper's fixed 500 k references, and a fixed slice of simulated
//! *time* — and compares where the optimal block size lands at each CPU
//! speed. If the optimum moves with the regime, the paper's caution was
//! warranted.

use crate::config::SystemConfig;
use crate::experiments::common::{Cell, Workload};
use crate::experiments::runner::{Job, SweepRunner};
use crate::report::TableBuilder;
use crate::time::IssueRate;
use rampage_json::{obj, Json, ToJson};

/// Default real-time slice: 2.5 ms of simulated time — the duration a
/// 500 k-reference quantum roughly occupies at 200 MHz on this workload,
/// so the two regimes coincide at the slow end and diverge as the CPU
/// speeds up.
pub const DEFAULT_SLICE_PS: u64 = 2_500_000_000;

/// The study.
#[derive(Debug, Clone)]
pub struct Timeslice {
    /// Block sizes swept.
    pub sizes: Vec<u64>,
    /// Issue rates (MHz).
    pub rates_mhz: Vec<u32>,
    /// Slice length in picoseconds for the time-based regime.
    pub slice_ps: u64,
    /// `fixed_refs[rate][size]` — the paper's regime.
    pub fixed_refs: Vec<Vec<Cell>>,
    /// `fixed_time[rate][size]` — the real-time-clock regime.
    pub fixed_time: Vec<Vec<Cell>>,
}

/// Run both regimes over the 2-way L2 sweep.
pub fn run(
    runner: &SweepRunner,
    workload: &Workload,
    rates: &[IssueRate],
    sizes: &[u64],
    slice_ps: u64,
) -> Timeslice {
    // Both regimes go into one batch; the fixed-refs half is the same
    // sweep Table 5 runs, so a shared cell cache computes it only once.
    let mut jobs = Vec::with_capacity(rates.len() * sizes.len() * 2);
    for time_based in [false, true] {
        for &rate in rates {
            for &s in sizes {
                let mut cfg = SystemConfig::two_way(rate, s);
                if time_based {
                    cfg.quantum_time = Some(rampage_dram::Picos(slice_ps));
                }
                jobs.push(Job::new(cfg, *workload));
            }
        }
    }
    let mut cells = runner.run_labeled("timeslice", &jobs).into_iter();
    let mut unflatten = || -> Vec<Vec<Cell>> {
        rates
            .iter()
            .map(|_| cells.by_ref().take(sizes.len()).collect())
            .collect()
    };
    let fixed_refs = unflatten();
    let fixed_time = unflatten();
    Timeslice {
        sizes: sizes.to_vec(),
        rates_mhz: rates.iter().map(|r| r.mhz()).collect(),
        slice_ps,
        fixed_refs,
        fixed_time,
    }
}

impl ToJson for Timeslice {
    fn to_json(&self) -> Json {
        let optima: Vec<Json> = self
            .optima()
            .iter()
            .map(|&(r, t)| obj! { "fixed_refs" => r, "fixed_time" => t })
            .collect();
        obj! {
            "sizes" => self.sizes,
            "rates_mhz" => self.rates_mhz,
            "slice_ps" => self.slice_ps,
            "fixed_refs" => self.fixed_refs,
            "fixed_time" => self.fixed_time,
            "optima" => optima,
        }
    }
}

fn best_size(cells: &[Cell]) -> u64 {
    cells
        .iter()
        .min_by(|a, b| a.seconds.total_cmp(&b.seconds))
        // Sweep invariant: rows carry one cell per block size, and the
        // size axis is never empty; 0 is an inert fallback for the
        // impossible empty row.
        .map_or(0, |c| c.unit_bytes)
}

impl Timeslice {
    /// The optimal block size per rate under each regime:
    /// `(fixed_refs_best, fixed_time_best)` per rate index.
    pub fn optima(&self) -> Vec<(u64, u64)> {
        self.fixed_refs
            .iter()
            .zip(&self.fixed_time)
            .map(|(r, t)| (best_size(r), best_size(t)))
            .collect()
    }

    /// Render both sweeps and the optima comparison.
    pub fn render(&self) -> String {
        let mut header = vec!["issue rate".into(), "quantum".into()];
        header.extend(self.sizes.iter().map(|s| s.to_string()));
        header.push("best".into());
        let mut t = TableBuilder::new(header);
        for (i, &mhz) in self.rates_mhz.iter().enumerate() {
            for (label, cells) in [
                ("500k refs", &self.fixed_refs[i]),
                ("fixed time", &self.fixed_time[i]),
            ] {
                let mut row = vec![
                    if label == "500k refs" {
                        fmt_rate(mhz)
                    } else {
                        String::new()
                    },
                    label.into(),
                ];
                row.extend(cells.iter().map(|c| format!("{:.3}", c.seconds)));
                row.push(best_size(cells).to_string());
                t.row(row);
            }
        }
        format!(
            "Time-slice study (§5.5): 2-way L2 under reference-based vs {:.1} ms time-based quanta\n{}",
            self.slice_ps as f64 / 1e9,
            t.render()
        )
    }
}

fn fmt_rate(mhz: u32) -> String {
    if mhz >= 1000 && mhz.is_multiple_of(1000) {
        format!("{} GHz", mhz / 1000)
    } else {
        format!("{mhz} MHz")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regimes_differ_only_in_scheduling() {
        let w = Workload::quick();
        let ts = run(
            &SweepRunner::serial(),
            &w,
            &[IssueRate::MHZ200, IssueRate::GHZ4],
            &[256, 2048],
            // A slice short enough to actually expire on this tiny
            // workload (~10 µs).
            10_000_000,
        );
        assert_eq!(ts.fixed_refs.len(), 2);
        assert_eq!(ts.optima().len(), 2);
        for (row_r, row_t) in ts.fixed_refs.iter().zip(&ts.fixed_time) {
            for (a, b) in row_r.iter().zip(row_t) {
                assert_eq!(a.unit_bytes, b.unit_bytes);
                assert!(a.seconds > 0.0 && b.seconds > 0.0);
            }
        }
        assert!(ts.render().contains("Time-slice study"));
    }

    #[test]
    fn time_based_quantum_rotates_on_simulated_time() {
        use crate::engine::Engine;
        // A 1 µs slice at 1 GHz ≈ 1000 cycles: with ~0.8 ifetch fraction
        // the engine must rotate far more often than the 500 k-ref
        // default would.
        let mut cfg = SystemConfig::two_way(IssueRate::GHZ1, 512);
        cfg.quantum_time = Some(rampage_dram::Picos(1_000_000));
        let out = Engine::for_suite(&cfg, 3, 20_000, 5).run();
        assert!(
            out.metrics.counts.context_switches > 20,
            "1 µs slices must rotate often: {}",
            out.metrics.counts.context_switches
        );
    }
}
