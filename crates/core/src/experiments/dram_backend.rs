//! Flat-vs-banked DRAM error quantification (ROADMAP item 1).
//!
//! The paper's flat Direct Rambus model charges a fixed 50 ns before
//! every burst; the banked backend (`rampage_dram::BankedChannel`)
//! resolves that into per-bank row-buffer hits, misses, and conflicts
//! plus structural channel pipelining. This study runs each Table 2
//! program *alone* through both the RAMpage and the conventional
//! (direct-mapped L2) system at each backend and reports the flat
//! model's per-benchmark relative error in total simulated time —
//! quantifying exactly how much fidelity the paper's simplification
//! gives up, program by program.
//!
//! Divergence is signed: `(flat − banked) / banked`, so a positive
//! value means the flat model *overestimates* run time (the banked
//! backend's row hits and pipelining make DRAM cheaper than 50 ns per
//! access), negative means it underestimates (row conflicts and bus
//! contention the flat model cannot see).

use crate::config::{DramKind, SystemConfig};
use crate::experiments::common::Workload;
use crate::experiments::runner::{Job, SweepRunner};
use crate::report::TableBuilder;
use crate::time::IssueRate;
use rampage_json::{obj, Json, ToJson};
use rampage_trace::profiles;

/// The transfer-unit sizes the study sweeps: the paper's smallest and
/// largest (128 B stresses per-access overhead, 4 KB stresses the
/// burst pipeline and row splitting).
pub const DIVERGENCE_SIZES: [u64; 2] = [128, 4096];

/// The two systems compared at each backend, in grid order.
const SYSTEMS: [&str; 2] = ["rampage", "baseline"];

/// The exact configs this study simulates (workloads vary per program
/// on top of these) — shared with `grids::preset_grids` so the
/// `dramdiff` preset grid can never drift from the experiment.
pub fn grid_configs(issue: IssueRate, sizes: &[u64]) -> Vec<(String, SystemConfig)> {
    let mut cells = Vec::new();
    for &size in sizes {
        for system in SYSTEMS {
            for (backend, kind) in [("flat", DramKind::Rambus), ("banked", DramKind::banked())] {
                let mut cfg = match system {
                    "rampage" => SystemConfig::rampage(issue, size),
                    _ => SystemConfig::baseline(issue, size),
                };
                cfg.dram = kind;
                cells.push((
                    format!("{system}+{backend}@{}MHz/{size}B", issue.mhz()),
                    cfg,
                ));
            }
        }
    }
    cells
}

/// One program's flat and banked timings across the size sweep.
#[derive(Debug, Clone)]
pub struct BenchDivergence {
    /// Program name (Table 2).
    pub name: String,
    /// RAMpage seconds per size under the flat backend.
    pub rampage_flat: Vec<f64>,
    /// RAMpage seconds per size under the banked backend.
    pub rampage_banked: Vec<f64>,
    /// Conventional (DM L2) seconds per size under the flat backend.
    pub baseline_flat: Vec<f64>,
    /// Conventional seconds per size under the banked backend.
    pub baseline_banked: Vec<f64>,
}

/// Signed relative error of `flat` against the banked reference.
fn rel_err(flat: f64, banked: f64) -> f64 {
    if banked == 0.0 {
        0.0
    } else {
        flat / banked - 1.0
    }
}

impl BenchDivergence {
    /// `(flat − banked) / banked` per size for the RAMpage system.
    pub fn rampage_divergence(&self) -> Vec<f64> {
        self.rampage_flat
            .iter()
            .zip(&self.rampage_banked)
            .map(|(&f, &b)| rel_err(f, b))
            .collect()
    }

    /// `(flat − banked) / banked` per size for the conventional system.
    pub fn baseline_divergence(&self) -> Vec<f64> {
        self.baseline_flat
            .iter()
            .zip(&self.baseline_banked)
            .map(|(&f, &b)| rel_err(f, b))
            .collect()
    }
}

/// The whole flat-vs-banked study.
#[derive(Debug, Clone)]
pub struct DramBackendStudy {
    /// Transfer-unit sizes swept.
    pub sizes: Vec<u64>,
    /// Issue rate (MHz).
    pub issue_mhz: u32,
    /// One row per Table 2 program.
    pub benchmarks: Vec<BenchDivergence>,
    /// Largest |divergence| over every (program, system, size) cell.
    pub max_abs_divergence: f64,
    /// Mean |divergence| over the same cells.
    pub mean_abs_divergence: f64,
}

/// Run the study: each Table 2 program alone, `refs_per_bench`
/// references, through every (size × system × backend) config. All
/// solo runs go through the runner as one batch, spreading over the
/// worker pool.
pub fn run(
    runner: &SweepRunner,
    issue: IssueRate,
    sizes: &[u64],
    refs_per_bench: u64,
    seed: u64,
) -> DramBackendStudy {
    let configs = grid_configs(issue, sizes);
    let mut jobs = Vec::with_capacity(profiles::TABLE2.len() * configs.len());
    for (pi, p) in profiles::TABLE2.iter().enumerate() {
        let scale = (((p.refs_millions * 1e6) as u64) / refs_per_bench).max(1);
        for (_, cfg) in &configs {
            jobs.push(Job::new(*cfg, Workload::solo(pi, scale, seed)));
        }
    }
    let mut cells = runner.run_labeled("dram_backend", &jobs).into_iter();
    let benchmarks: Vec<BenchDivergence> = profiles::TABLE2
        .iter()
        .map(|p| {
            let mut row = BenchDivergence {
                name: p.name.to_string(),
                rampage_flat: Vec::new(),
                rampage_banked: Vec::new(),
                baseline_flat: Vec::new(),
                baseline_banked: Vec::new(),
            };
            // Consumption mirrors grid_configs order:
            // size → system → backend.
            for _ in sizes {
                for system in SYSTEMS {
                    for backend in ["flat", "banked"] {
                        let secs = cells.next().map_or(0.0, |c| c.seconds);
                        match (system, backend) {
                            ("rampage", "flat") => row.rampage_flat.push(secs),
                            ("rampage", _) => row.rampage_banked.push(secs),
                            (_, "flat") => row.baseline_flat.push(secs),
                            (_, _) => row.baseline_banked.push(secs),
                        }
                    }
                }
            }
            row
        })
        .collect();
    let all: Vec<f64> = benchmarks
        .iter()
        .flat_map(|b| {
            let mut d = b.rampage_divergence();
            d.extend(b.baseline_divergence());
            d
        })
        .collect();
    let max_abs_divergence = all.iter().map(|d| d.abs()).fold(0.0, f64::max);
    let mean_abs_divergence = if all.is_empty() {
        0.0
    } else {
        all.iter().map(|d| d.abs()).sum::<f64>() / all.len() as f64
    };
    DramBackendStudy {
        sizes: sizes.to_vec(),
        issue_mhz: issue.mhz(),
        benchmarks,
        max_abs_divergence,
        mean_abs_divergence,
    }
}

impl ToJson for BenchDivergence {
    fn to_json(&self) -> Json {
        obj! {
            "name" => self.name,
            "rampage_flat" => self.rampage_flat,
            "rampage_banked" => self.rampage_banked,
            "rampage_divergence" => self.rampage_divergence(),
            "baseline_flat" => self.baseline_flat,
            "baseline_banked" => self.baseline_banked,
            "baseline_divergence" => self.baseline_divergence(),
        }
    }
}

impl ToJson for DramBackendStudy {
    fn to_json(&self) -> Json {
        obj! {
            "sizes" => self.sizes,
            "issue_mhz" => self.issue_mhz,
            "benchmarks" => self.benchmarks,
            "max_abs_divergence" => self.max_abs_divergence,
            "mean_abs_divergence" => self.mean_abs_divergence,
        }
    }
}

impl DramBackendStudy {
    /// The compact divergence summary `repro` folds into `metrics.json`
    /// (per-benchmark divergence plus the aggregates).
    pub fn metrics_json(&self) -> Json {
        obj! {
            "sizes" => self.sizes,
            "max_abs_divergence" => self.max_abs_divergence,
            "mean_abs_divergence" => self.mean_abs_divergence,
            "benchmarks" => self
                .benchmarks
                .iter()
                .map(|b| obj! {
                    "name" => b.name,
                    "rampage_divergence" => b.rampage_divergence(),
                    "baseline_divergence" => b.baseline_divergence(),
                })
                .collect::<Vec<Json>>(),
        }
    }

    /// Render the study.
    pub fn render(&self) -> String {
        let mut header = vec!["program".to_string()];
        for &size in &self.sizes {
            header.push(format!("rampage {size}B"));
            header.push(format!("DM L2 {size}B"));
        }
        let mut t = TableBuilder::new(header);
        for b in &self.benchmarks {
            let mut row = vec![b.name.clone()];
            let rp = b.rampage_divergence();
            let dm = b.baseline_divergence();
            for i in 0..self.sizes.len() {
                row.push(format!(
                    "{:+.2}%",
                    100.0 * rp.get(i).copied().unwrap_or(0.0)
                ));
                row.push(format!(
                    "{:+.2}%",
                    100.0 * dm.get(i).copied().unwrap_or(0.0)
                ));
            }
            t.row(row);
        }
        format!(
            "Flat-vs-banked DRAM error quantification, solo per program, {} MHz\n\
             (signed relative error of the flat 50 ns model against the banked backend; \
             + = flat overestimates run time)\n{}\
             max |divergence| {:.2}%, mean |divergence| {:.2}%\n",
            self.issue_mhz,
            t.render(),
            100.0 * self.max_abs_divergence,
            100.0 * self.mean_abs_divergence,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_order_matches_consumption_order() {
        let cells = grid_configs(IssueRate::GHZ1, &DIVERGENCE_SIZES);
        assert_eq!(cells.len(), DIVERGENCE_SIZES.len() * 4);
        assert!(cells[0].0.starts_with("rampage+flat"));
        assert!(cells[1].0.starts_with("rampage+banked"));
        assert!(cells[2].0.starts_with("baseline+flat"));
        assert!(cells[3].0.starts_with("baseline+banked"));
        assert_eq!(cells[1].1.dram, DramKind::banked());
        assert_eq!(cells[2].1.dram, DramKind::Rambus);
    }

    #[test]
    fn study_reports_per_benchmark_divergence() {
        let s = run(&SweepRunner::new(0), IssueRate::GHZ1, &[1024], 5_000, 3);
        assert_eq!(s.benchmarks.len(), 18);
        for b in &s.benchmarks {
            assert_eq!(b.rampage_flat.len(), 1);
            assert_eq!(b.rampage_banked.len(), 1);
            assert!(b.rampage_flat[0] > 0.0 && b.rampage_banked[0] > 0.0);
            assert!(b.baseline_flat[0] > 0.0 && b.baseline_banked[0] > 0.0);
        }
        // The backends genuinely differ: at least one benchmark must
        // diverge, and the aggregates must reflect it.
        assert!(s.max_abs_divergence > 0.0, "backends are distinguishable");
        assert!(s.mean_abs_divergence <= s.max_abs_divergence);
        let text = s.render();
        assert!(text.contains("divergence"), "{text}");
        let json = s.metrics_json().pretty();
        assert!(json.contains("rampage_divergence"), "{json}");
    }
}
