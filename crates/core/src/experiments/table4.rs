//! Table 4: RAMpage with context switches on misses.

use crate::config::SystemConfig;
use crate::experiments::common::{Cell, Workload};
use crate::experiments::runner::{Job, SweepRunner};
use crate::experiments::table3::Table3;
use crate::report::TableBuilder;
use crate::time::IssueRate;
use rampage_json::{obj, Json, ToJson};

/// The Table 4 sweep: RAMpage with `switch_on_miss` (and the quantum
/// switch trace), plus the speedup over plain RAMpage from Table 3.
#[derive(Debug, Clone)]
pub struct Table4 {
    /// Page sizes swept.
    pub sizes: Vec<u64>,
    /// Issue rates swept (MHz).
    pub rates_mhz: Vec<u32>,
    /// `cells[rate][size]` — RAMpage with switch-on-miss.
    pub cells: Vec<Vec<Cell>>,
    /// `speedup[rate][size]` — paper's "vs. no switch" numbers:
    /// `t_noswitch / t_switch` (>1 means switching on misses won).
    pub speedup: Vec<Vec<f64>>,
}

/// Run the sweep. `baseline` must be a Table 3 computed over the same
/// workload, rates and sizes (its RAMpage half provides the "no switch"
/// reference times).
///
/// # Panics
///
/// Panics if the shapes of `baseline` and the requested sweep differ.
pub fn run(runner: &SweepRunner, workload: &Workload, baseline: &Table3) -> Table4 {
    let sizes = baseline.sizes.clone();
    let rates_mhz = baseline.rates_mhz.clone();
    let jobs: Vec<Job> = rates_mhz
        .iter()
        .flat_map(|&mhz| {
            let rate = IssueRate::from_mhz(mhz);
            sizes
                .iter()
                .map(move |&s| Job::new(SystemConfig::rampage_switching(rate, s), *workload))
        })
        .collect();
    let mut flat = runner.run_labeled("table4", &jobs).into_iter();
    let mut cells = Vec::new();
    let mut speedup = Vec::new();
    for ri in 0..rates_mhz.len() {
        let row: Vec<Cell> = flat.by_ref().take(sizes.len()).collect();
        let sp: Vec<f64> = row
            .iter()
            .zip(&baseline.rampage[ri])
            .map(|(with, without)| without.seconds / with.seconds)
            .collect();
        cells.push(row);
        speedup.push(sp);
    }
    Table4 {
        sizes,
        rates_mhz,
        cells,
        speedup,
    }
}

impl ToJson for Table4 {
    fn to_json(&self) -> Json {
        obj! {
            "sizes" => self.sizes,
            "rates_mhz" => self.rates_mhz,
            "cells" => self.cells,
            "speedup" => self.speedup,
        }
    }
}

impl Table4 {
    /// Best time and its page size at a rate index.
    pub fn best(&self, rate_idx: usize) -> (u64, f64) {
        match self.cells[rate_idx]
            .iter()
            .map(|c| (c.unit_bytes, c.seconds))
            .min_by(|a, b| a.1.total_cmp(&b.1))
        {
            Some(best) => best,
            // Sweep invariant: every rate row is built with one cell per
            // size, and the size axis is never empty.
            None => unreachable!("Table4 rows are built non-empty"),
        }
    }

    /// Best speedup over no-switch RAMpage at a rate index (paper: up to
    /// 16 % at 4 GHz).
    pub fn best_speedup(&self, rate_idx: usize) -> f64 {
        self.speedup[rate_idx]
            .iter()
            .copied()
            .fold(f64::MIN, f64::max)
    }

    /// Render run times with speedups underneath, as in the paper.
    pub fn render(&self) -> String {
        let mut header = vec!["issue rate".into(), String::new()];
        header.extend(self.sizes.iter().map(|s| s.to_string()));
        let mut t = TableBuilder::new(header);
        for (i, &mhz) in self.rates_mhz.iter().enumerate() {
            let mut row = vec![fmt_rate(mhz), "time (s)".into()];
            row.extend(self.cells[i].iter().map(|c| format!("{:.3}", c.seconds)));
            t.row(row);
            let mut row = vec![String::new(), "vs. no switch".into()];
            row.extend(self.speedup[i].iter().map(|s| format!("{s:.3}x")));
            t.row(row);
        }
        format!(
            "Table 4: RAMpage with context switches on misses\n{}",
            t.render()
        )
    }
}

fn fmt_rate(mhz: u32) -> String {
    if mhz >= 1000 && mhz.is_multiple_of(1000) {
        format!("{} GHz", mhz / 1000)
    } else {
        format!("{mhz} MHz")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::table3;

    #[test]
    fn sweep_and_speedup_shapes() {
        let w = Workload::quick();
        let runner = SweepRunner::serial();
        let base = table3::run(&runner, &w, &[IssueRate::GHZ4], &[1024, 4096]);
        let t4 = run(&runner, &w, &base);
        assert_eq!(t4.cells.len(), 1);
        assert_eq!(t4.speedup[0].len(), 2);
        for &s in &t4.speedup[0] {
            assert!(s > 0.0, "speedups are positive ratios");
        }
        let (size, secs) = t4.best(0);
        assert!(secs > 0.0);
        assert!(size == 1024 || size == 4096);
        assert!(t4.render().contains("vs. no switch"));
    }
}
