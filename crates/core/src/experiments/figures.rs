//! Figures 2, 3 and 4: time-per-level fractions and software overhead.
//!
//! All three figures are views over the Table 3 sweep, so they are
//! computed from a [`Table3`] rather than re-simulated.

use crate::experiments::table3::Table3;
use crate::report::TableBuilder;
use rampage_json::{obj, Json, ToJson};

/// One panel of Figure 2/3: per-size level fractions for one system at
/// one issue rate.
#[derive(Debug, Clone)]
pub struct LevelPanel {
    /// Panel title ("direct-mapped L2" / "RAMpage").
    pub title: String,
    /// Issue rate in MHz.
    pub issue_mhz: u32,
    /// (size, fractions) per swept size.
    pub bars: Vec<Bar>,
}

/// One stacked bar.
#[derive(Debug, Clone, Copy)]
pub struct Bar {
    /// Block/page size in bytes.
    pub unit_bytes: u64,
    /// L1i fraction.
    pub l1i: f64,
    /// L1d fraction.
    pub l1d: f64,
    /// L2 / SRAM main memory fraction.
    pub l2_sram: f64,
    /// DRAM fraction.
    pub dram: f64,
    /// Idle fraction.
    pub idle: f64,
}

/// Figure 2 (200 MHz) or Figure 3 (4 GHz): both panels at one rate.
#[derive(Debug, Clone)]
pub struct LevelFigure {
    /// Which figure this is ("Figure 2" / "Figure 3").
    pub name: String,
    /// The direct-mapped L2 panel.
    pub cache_panel: LevelPanel,
    /// The RAMpage panel.
    pub rampage_panel: LevelPanel,
}

/// Extract a level-breakdown figure from a Table 3 sweep at the rate
/// index closest to `target_mhz`.
///
/// # Panics
///
/// Panics if the table is empty.
pub fn level_figure(table: &Table3, target_mhz: u32, name: &str) -> LevelFigure {
    let idx = nearest_rate(table, target_mhz);
    let mhz = table.rates_mhz[idx];
    let to_bars = |cells: &[crate::experiments::Cell]| {
        cells
            .iter()
            .map(|c| Bar {
                unit_bytes: c.unit_bytes,
                l1i: c.fractions.l1i,
                l1d: c.fractions.l1d,
                l2_sram: c.fractions.l2_sram,
                dram: c.fractions.dram,
                idle: c.fractions.idle,
            })
            .collect()
    };
    LevelFigure {
        name: name.to_string(),
        cache_panel: LevelPanel {
            title: "direct-mapped L2".into(),
            issue_mhz: mhz,
            bars: to_bars(&table.baseline[idx]),
        },
        rampage_panel: LevelPanel {
            title: "RAMpage".into(),
            issue_mhz: mhz,
            bars: to_bars(&table.rampage[idx]),
        },
    }
}

impl ToJson for Bar {
    fn to_json(&self) -> Json {
        obj! {
            "unit_bytes" => self.unit_bytes,
            "l1i" => self.l1i,
            "l1d" => self.l1d,
            "l2_sram" => self.l2_sram,
            "dram" => self.dram,
            "idle" => self.idle,
        }
    }
}

impl ToJson for LevelPanel {
    fn to_json(&self) -> Json {
        obj! {
            "title" => self.title,
            "issue_mhz" => self.issue_mhz,
            "bars" => self.bars,
        }
    }
}

impl ToJson for LevelFigure {
    fn to_json(&self) -> Json {
        obj! {
            "name" => self.name,
            "cache_panel" => self.cache_panel,
            "rampage_panel" => self.rampage_panel,
        }
    }
}

fn nearest_rate(table: &Table3, target_mhz: u32) -> usize {
    table
        .rates_mhz
        .iter()
        .enumerate()
        .min_by_key(|(_, &m)| m.abs_diff(target_mhz))
        // Sweep invariant: Table3 always carries the paper's rate axis;
        // index 0 is an inert fallback for the impossible empty table.
        .map_or(0, |(i, _)| i)
}

impl LevelFigure {
    /// Render both panels as fraction tables plus ASCII stacked bars
    /// (the shape the paper's Figures 2/3 actually have).
    pub fn render(&self) -> String {
        let mut out = format!(
            "{}: fraction of simulated run time in each level, {} MHz issue rate\n",
            self.name, self.cache_panel.issue_mhz
        );
        for panel in [&self.cache_panel, &self.rampage_panel] {
            let mut t = TableBuilder::new(vec![
                "size".into(),
                "L1i".into(),
                "L1d".into(),
                "L2/SRAM".into(),
                "DRAM".into(),
                "idle".into(),
            ]);
            for b in &panel.bars {
                t.row(vec![
                    b.unit_bytes.to_string(),
                    pct(b.l1i),
                    pct(b.l1d),
                    pct(b.l2_sram),
                    pct(b.dram),
                    pct(b.idle),
                ]);
            }
            out.push_str(&format!("\n({})\n{}", panel.title, t.render()));
            out.push_str(&render_bars(&panel.bars));
        }
        out.push_str("\nlegend: i = L1i, d = L1d, S = L2/SRAM, D = DRAM, . = idle\n");
        out
    }
}

/// One 50-character stacked bar per size.
fn render_bars(bars: &[Bar]) -> String {
    const WIDTH: usize = 50;
    let mut out = String::new();
    for b in bars {
        // Largest-remainder apportionment of WIDTH cells over the levels.
        let fracs = [b.l1i, b.l1d, b.l2_sram, b.dram, b.idle];
        let glyphs = ['i', 'd', 'S', 'D', '.'];
        let mut cells: Vec<usize> = fracs.iter().map(|f| (f * WIDTH as f64) as usize).collect();
        while cells.iter().sum::<usize>() < WIDTH {
            let Some((imax, _)) = fracs
                .iter()
                .enumerate()
                .map(|(i, f)| (i, f * WIDTH as f64 - cells[i] as f64))
                .max_by(|a, b| a.1.total_cmp(&b.1))
            else {
                // invariant: fracs is a fixed five-element array, so
                // max_by over it always yields an element.
                unreachable!("fracs is a fixed five-element array");
            };
            cells[imax] += 1;
        }
        let bar: String = cells
            .iter()
            .zip(glyphs)
            .flat_map(|(&n, g)| std::iter::repeat_n(g, n))
            .collect();
        out.push_str(&format!("{:>5} |{}|\n", b.unit_bytes, bar));
    }
    out
}

fn pct(f: f64) -> String {
    format!("{:.1}%", 100.0 * f)
}

/// Figure 4: TLB-miss and page-fault handling overhead (extra handler
/// references as a fraction of trace references) per size, for both
/// systems.
#[derive(Debug, Clone)]
pub struct Figure4 {
    /// Sizes swept.
    pub sizes: Vec<u64>,
    /// Conventional-hierarchy overhead per size (flat: the DRAM page size
    /// is fixed, so the TLB sees the same pages regardless of block size).
    pub baseline: Vec<f64>,
    /// RAMpage overhead per size (falls steeply as pages grow).
    pub rampage: Vec<f64>,
}

/// Extract Figure 4 from a Table 3 sweep (overhead is issue-rate
/// independent; the slowest rate's row is used).
pub fn figure4(table: &Table3) -> Figure4 {
    Figure4 {
        sizes: table.sizes.clone(),
        baseline: table.baseline[0].iter().map(|c| c.overhead).collect(),
        rampage: table.rampage[0].iter().map(|c| c.overhead).collect(),
    }
}

impl ToJson for Figure4 {
    fn to_json(&self) -> Json {
        obj! {
            "sizes" => self.sizes,
            "baseline" => self.baseline,
            "rampage" => self.rampage,
        }
    }
}

impl Figure4 {
    /// Render as a two-row table.
    pub fn render(&self) -> String {
        let mut header = vec!["system".into()];
        header.extend(self.sizes.iter().map(|s| s.to_string()));
        let mut t = TableBuilder::new(header);
        let mut row = vec!["conventional".to_string()];
        row.extend(self.baseline.iter().map(|o| format!("{:.1}%", 100.0 * o)));
        t.row(row);
        let mut row = vec!["RAMpage".to_string()];
        row.extend(self.rampage.iter().map(|o| format!("{:.1}%", 100.0 * o)));
        t.row(row);
        format!(
            "Figure 4: TLB miss + page fault handling overhead (handler refs / trace refs)\n{}",
            t.render()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::common::Workload;
    use crate::experiments::table3;
    use crate::time::IssueRate;

    fn small_table() -> Table3 {
        table3::run(
            &crate::experiments::runner::SweepRunner::serial(),
            &Workload::quick(),
            &[IssueRate::MHZ200, IssueRate::GHZ4],
            &[128, 4096],
        )
    }

    #[test]
    fn level_figures_extract_panels() {
        let t = small_table();
        let f2 = level_figure(&t, 200, "Figure 2");
        assert_eq!(f2.cache_panel.issue_mhz, 200);
        assert_eq!(f2.cache_panel.bars.len(), 2);
        let f3 = level_figure(&t, 4000, "Figure 3");
        assert_eq!(f3.rampage_panel.issue_mhz, 4000);
        assert!(f3.render().contains("RAMpage"));
    }

    #[test]
    fn stacked_bars_are_exactly_full_width() {
        let t = small_table();
        let f = level_figure(&t, 200, "Figure 2");
        let rendered = f.render();
        for line in rendered.lines().filter(|l| l.contains('|')) {
            let bar: String = line
                .chars()
                .skip_while(|&c| c != '|')
                .skip(1)
                .take_while(|&c| c != '|')
                .collect();
            assert_eq!(bar.len(), 50, "bar width in {line:?}");
            assert!(
                bar.chars().all(|c| "idSD.".contains(c)),
                "glyphs in {line:?}"
            );
        }
        assert!(rendered.contains("legend"));
    }

    #[test]
    fn figure4_extracts_overheads() {
        let t = small_table();
        let f4 = figure4(&t);
        assert_eq!(f4.sizes, vec![128, 4096]);
        assert!(
            f4.rampage[0] > f4.rampage[1],
            "RAMpage overhead falls with page size: {} vs {}",
            f4.rampage[0],
            f4.rampage[1]
        );
        assert!(f4.render().contains("Figure 4"));
    }
}
