//! Miss anatomy: 3C classification of L2 misses inside the real
//! simulated systems.
//!
//! The paper's core mechanism is that RAMpage's paged SRAM is *fully
//! associative*, so it takes none of the conflict misses a direct-mapped
//! (or 2-way) L2 takes. This experiment measures that directly: it runs
//! the conventional hierarchy with the shadow classifier enabled and
//! reports what fraction of its L2 misses are conflicts — i.e. the
//! misses RAMpage structurally cannot have.

use crate::config::SystemConfig;
use crate::engine::Engine;
use crate::experiments::common::Workload;
use crate::report::TableBuilder;
use crate::time::IssueRate;
use rampage_cache::MissProfile;
use rampage_json::{obj, Json, ToJson};

/// One organization's classified misses at one block size.
#[derive(Debug, Clone, Copy)]
pub struct AnatomyCell {
    /// L2 block size in bytes.
    pub block: u64,
    /// Associativity (1 or 2).
    pub ways: u32,
    /// The classification.
    pub profile: MissProfile,
}

/// The study: DM and 2-way L2 across the block-size sweep.
#[derive(Debug, Clone)]
pub struct Anatomy {
    /// Issue rate used (MHz) — classification is timing-independent, but
    /// the run needs one.
    pub issue_mhz: u32,
    /// One cell per (organization, size).
    pub cells: Vec<AnatomyCell>,
}

/// Run the classification sweep.
pub fn run(workload: &Workload, issue: IssueRate, sizes: &[u64]) -> Anatomy {
    let mut cells = Vec::new();
    for &block in sizes {
        for make in [SystemConfig::baseline, SystemConfig::two_way] {
            let mut cfg = make(issue, block);
            cfg.classify_l2 = true;
            // Table 5's switch trace would perturb the comparison; keep
            // both organizations on the plain workload.
            cfg.switch_trace = false;
            let out = Engine::new(&cfg, workload.sources()).run();
            let ways = match cfg.hierarchy {
                crate::config::HierarchyKind::Conventional(l2) => l2.ways,
                // invariant: anatomy only sweeps two_way presets, which
                // always build a Conventional hierarchy.
                crate::config::HierarchyKind::Rampage(_) => unreachable!("conventional only"),
            };
            cells.push(AnatomyCell {
                block,
                ways,
                profile: out.metrics.counts.l2_miss_profile,
            });
        }
    }
    Anatomy {
        issue_mhz: issue.mhz(),
        cells,
    }
}

impl ToJson for AnatomyCell {
    fn to_json(&self) -> Json {
        obj! {
            "block" => self.block,
            "ways" => self.ways,
            "hits" => self.profile.hits,
            "compulsory" => self.profile.compulsory,
            "capacity" => self.profile.capacity,
            "conflict" => self.profile.conflict,
        }
    }
}

impl ToJson for Anatomy {
    fn to_json(&self) -> Json {
        obj! {
            "issue_mhz" => self.issue_mhz,
            "cells" => self.cells,
        }
    }
}

impl Anatomy {
    /// Render the classification table.
    pub fn render(&self) -> String {
        let mut t = TableBuilder::new(vec![
            "L2".into(),
            "block".into(),
            "misses".into(),
            "compulsory".into(),
            "capacity".into(),
            "conflict".into(),
            "conflict share".into(),
        ]);
        for c in &self.cells {
            let p = c.profile;
            t.row(vec![
                format!("{}-way", c.ways),
                c.block.to_string(),
                p.misses().to_string(),
                p.compulsory.to_string(),
                p.capacity.to_string(),
                p.conflict.to_string(),
                format!("{:.1}%", 100.0 * p.conflict_share()),
            ]);
        }
        format!(
            "Miss anatomy: 3C classification of L2 misses (conflict = what RAMpage's full associativity removes)\n{}",
            t.render()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_sweep_is_consistent() {
        let w = Workload::quick();
        let a = run(&w, IssueRate::GHZ1, &[128, 2048]);
        assert_eq!(a.cells.len(), 4);
        for c in &a.cells {
            assert!(c.profile.misses() > 0, "workload misses L2 somewhere");
        }
        // At equal block size, the 2-way cache must have no more
        // conflict misses than the direct-mapped one.
        for pair in a.cells.chunks(2) {
            let (dm, two) = (&pair[0], &pair[1]);
            assert_eq!(dm.block, two.block);
            assert!(
                two.profile.conflict <= dm.profile.conflict,
                "associativity reduces conflicts ({} vs {})",
                two.profile.conflict,
                dm.profile.conflict
            );
        }
        assert!(a.render().contains("conflict share"));
    }
}
