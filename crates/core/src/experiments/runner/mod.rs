//! The parallel memoized sweep runner — the engine room of every table
//! and figure.
//!
//! Each paper artifact is a sweep of independent
//! [`run_config`]`(cfg, workload)` cells, and artifacts overlap: the
//! Table 5 sweep is exactly the fixed-reference half of the time-slice
//! study, the ablation study's base row is a Table 4 cell, and Figures
//! 2–4 are views over Table 3. The [`SweepRunner`] exploits both facts:
//!
//! * **Parallelism** — a batch of [`Job`]s is executed by a pool of
//!   worker threads (bounded by available cores, overridable via
//!   [`SweepRunner::new`]) pulling from a shared queue, so a sweep's
//!   wall-clock approaches `total / cores`. Results are returned in
//!   submission order regardless of completion order, and every cell is
//!   a deterministic function of its job, so parallel and serial runs
//!   are bit-identical (a golden test enforces this).
//! * **Memoization** — the [`CellCache`] fingerprints each job and
//!   returns finished [`Cell`]s, so overlapping sweeps across artifacts
//!   are simulated exactly once per `repro` invocation. The cache can be
//!   persisted as JSON (`--out DIR` keeps `cells.json`), letting reruns
//!   at the same scale skip finished cells entirely.
//! * **Fault tolerance** — each cell runs behind a validation gate and a
//!   panic boundary. A job whose configuration fails
//!   [`SystemConfig::validate`], or whose simulation panics twice (one
//!   retry), is recorded as a [`FailedCell`] and replaced by an inert
//!   [`Cell::failed_placeholder`]; the rest of the sweep completes.
//!   Persisted caches carry a version header and per-cell checksums,
//!   are written atomically (temp file + fsync + rename), and corrupt
//!   files are quarantined (`<name>.corrupt`) rather than trusted or
//!   allowed to abort a run.
//! * **Crash safety** — a runner given [`SweepRunner::with_journal`]
//!   records every cell transition in a durable append-only journal
//!   ([`journal`] module), claims cells under owner leases so several
//!   processes can drain one grid cooperatively ([`lease`] module), and
//!   resumes a killed sweep from the journal's `done` records. An
//!   optional [`watchdog`] flags cells that blow past a latency budget
//!   derived from the sweep's own history, and a shutdown flag
//!   ([`SweepRunner::with_shutdown_flag`]) turns SIGINT/SIGTERM into a
//!   graceful checkpoint-and-release instead of lost work.

mod journal;
mod lease;
mod watchdog;

pub use journal::{
    scan_path as scan_journal, Journal, JournalOp, JournalOpenReport, JournalRecord,
};
pub use lease::{CellView, ClaimDecision, ClaimView, JournalState, LeaseConfig};
pub use watchdog::{Watchdog, WatchdogConfig, STALL_PANIC_PREFIX};

use crate::config::{DramKind, SystemConfig};
use crate::error::{CacheIoError, InvariantError, RampageError};
use crate::experiments::common::{run_config, Cell, Workload};
use rampage_json::{obj, Json, ToJson};
use std::collections::btree_map::Entry;
use std::collections::BTreeMap;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// One unit of sweep work: simulate `cfg` over `workload`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Job {
    /// The system to simulate.
    pub cfg: SystemConfig,
    /// The workload to drive it with.
    pub workload: Workload,
}

impl Job {
    /// Package a configuration and workload as a job.
    pub fn new(cfg: SystemConfig, workload: Workload) -> Self {
        Job { cfg, workload }
    }

    /// A stable fingerprint of the job: FNV-1a over the `Debug`
    /// rendering of the configuration and workload. Both types derive
    /// `Debug` over every field, so the rendering is a complete encoding
    /// of everything the simulation depends on; two jobs with equal
    /// fingerprints produce identical cells.
    pub fn fingerprint(&self) -> u64 {
        fnv1a(format!("{:?}|{:?}", self.cfg, self.workload).as_bytes())
    }
}

/// 64-bit FNV-1a.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Version stamp for the persisted cache format; bump when [`Cell`],
/// the fingerprint scheme, or the on-disk envelope changes shape.
/// Version 2 added the per-cell `sum` checksum.
pub const CACHE_FORMAT_VERSION: u64 = 2;

/// Lock a mutex, recovering the data from a poisoned lock: a worker
/// that panicked mid-insert can at worst lose its own entry, and the
/// cache is a memo table, so a lost entry only costs recomputation.
fn lock_recovering<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// What [`CellCache::load_file`] found on disk.
///
/// Loading never fails the caller: a missing file is a cold start, and a
/// corrupt or stale file is quarantined (renamed `<name>.corrupt`) so
/// the next save rebuilds it — the report says which happened.
#[derive(Debug, Default)]
pub struct CacheLoad {
    /// Cells loaded into the cache.
    pub loaded: usize,
    /// One typed error per entry skipped: [`CacheIoError::BadChecksum`]
    /// for bit rot, [`CacheIoError::BadHeader`] for a malformed entry,
    /// [`CacheIoError::Parse`] for an undecodable cell body.
    pub entry_errors: Vec<CacheIoError>,
    /// Where the on-disk file was moved if it was quarantined.
    pub quarantined: Option<PathBuf>,
    /// The whole-file error, when the envelope itself was unusable.
    pub error: Option<CacheIoError>,
}

impl CacheLoad {
    /// Whether the load was entirely clean (including the cold start).
    pub fn is_clean(&self) -> bool {
        self.entry_errors.is_empty() && self.quarantined.is_none() && self.error.is_none()
    }

    /// Entries skipped for a bad checksum or undecodable body.
    pub fn skipped(&self) -> usize {
        self.entry_errors.len()
    }

    /// One-line human summary for the `repro` log.
    pub fn describe(&self) -> String {
        let mut s = format!("loaded {} cached cell(s)", self.loaded);
        if let Some(first) = self.entry_errors.first() {
            s.push_str(&format!(
                ", skipped {} corrupt (first: {first})",
                self.entry_errors.len()
            ));
        }
        if let Some(e) = &self.error {
            s.push_str(&format!("; cache unusable ({e})"));
        }
        if let Some(q) = &self.quarantined {
            s.push_str(&format!("; quarantined to {}", q.display()));
        }
        s
    }
}

/// Rename a suspect cache file to `<name>.corrupt` next to the
/// original. Best-effort: if the rename itself fails the file is simply
/// left in place (and will be overwritten by the next save).
fn quarantine(path: &Path) -> Option<PathBuf> {
    let mut name = path.file_name()?.to_os_string();
    name.push(".corrupt");
    let dest = path.with_file_name(name);
    std::fs::rename(path, &dest).ok()?;
    Some(dest)
}

/// A memo table of finished cells, keyed by [`Job::fingerprint`].
///
/// Thread-safe: workers insert concurrently while batch assembly reads.
/// `hits` counts every lookup served without simulation (including
/// duplicates deduplicated within one batch); `computed` counts cells
/// actually simulated.
///
/// Keyed by a `BTreeMap` so every walk over the cache (serialization,
/// reporting) is fingerprint-ordered by construction — the static
/// analyzer's hash-iter rule is about exactly this class of ordering
/// leak.
#[derive(Debug, Default)]
pub struct CellCache {
    map: Mutex<BTreeMap<u64, Cell>>,
    hits: AtomicU64,
    computed: AtomicU64,
}

impl CellCache {
    /// An empty cache.
    pub fn new() -> Self {
        CellCache::default()
    }

    /// Look up a fingerprint, counting a hit when found.
    pub fn get(&self, fp: u64) -> Option<Cell> {
        let found = lock_recovering(&self.map).get(&fp).copied();
        if found.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        found
    }

    /// Record a freshly computed cell.
    pub fn insert(&self, fp: u64, cell: Cell) {
        self.computed.fetch_add(1, Ordering::Relaxed);
        lock_recovering(&self.map).insert(fp, cell);
    }

    /// Seed a cell without counting it as computed (persistence load).
    fn seed(&self, fp: u64, cell: Cell) {
        lock_recovering(&self.map).insert(fp, cell);
    }

    /// Lookups served from memory instead of simulation.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cells actually simulated through this cache.
    pub fn computed(&self) -> u64 {
        self.computed.load(Ordering::Relaxed)
    }

    /// Distinct cells held.
    pub fn len(&self) -> usize {
        lock_recovering(&self.map).len()
    }

    /// Whether the cache holds nothing.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Serialize every entry (fingerprint-ordered — the map itself is
    /// ordered, so serialization is deterministic by construction).
    /// Each entry carries an FNV-1a checksum of its compact cell body,
    /// so single-entry bit rot is detected at load time.
    pub fn to_json(&self) -> Json {
        let map = lock_recovering(&self.map);
        let entries: Vec<(u64, Cell)> = map.iter().map(|(&fp, &c)| (fp, c)).collect();
        drop(map);
        obj! {
            "version" => CACHE_FORMAT_VERSION,
            "cells" => entries
                .iter()
                .map(|(fp, cell)| {
                    let body = cell.to_json();
                    let sum = fnv1a(body.compact().as_bytes());
                    obj! { "fp" => *fp, "sum" => sum, "cell" => body }
                })
                .collect::<Vec<Json>>(),
        }
    }

    /// Load entries from a serialized cache document.
    ///
    /// Returns `(loaded, entry_errors)`: entries whose checksum or shape
    /// is wrong are skipped individually — each with a typed
    /// [`CacheIoError`] saying why — so one rotten entry does not
    /// discard its neighbours.
    ///
    /// # Errors
    ///
    /// [`CacheIoError::BadHeader`] when the envelope is not this format;
    /// [`CacheIoError::VersionMismatch`] for any other version (stale
    /// fingerprints must not serve wrong cells).
    pub fn load_json(&self, doc: &Json) -> Result<(usize, Vec<CacheIoError>), CacheIoError> {
        let Some(version) = doc.get("version").and_then(Json::as_u64) else {
            return Err(CacheIoError::BadHeader("missing or non-integer version"));
        };
        if version != CACHE_FORMAT_VERSION {
            return Err(CacheIoError::VersionMismatch {
                found: version,
                expected: CACHE_FORMAT_VERSION,
            });
        }
        let Some(cells) = doc.get("cells").and_then(Json::as_array) else {
            return Err(CacheIoError::BadHeader("missing cells array"));
        };
        let mut loaded = 0;
        let mut entry_errors = Vec::new();
        for entry in cells {
            let (Some(fp), Some(sum), Some(body)) = (
                entry.get("fp").and_then(Json::as_u64),
                entry.get("sum").and_then(Json::as_u64),
                entry.get("cell"),
            ) else {
                entry_errors.push(CacheIoError::BadHeader("entry missing fp/sum/cell"));
                continue;
            };
            if fnv1a(body.compact().as_bytes()) != sum {
                entry_errors.push(CacheIoError::BadChecksum { fp });
                continue;
            }
            let Some(cell) = Cell::from_json(body) else {
                entry_errors.push(CacheIoError::Parse(format!(
                    "cell {fp:#018x} body undecodable"
                )));
                continue;
            };
            self.seed(fp, cell);
            loaded += 1;
        }
        Ok((loaded, entry_errors))
    }

    /// Persist to `path` as JSON, atomically: the document is written to
    /// `<name>.tmp`, synced to disk, then renamed over `path`, so a
    /// crash at any point leaves either the old file or the new one —
    /// never a torn mixture.
    ///
    /// # Errors
    ///
    /// Any underlying file I/O failure, as [`CacheIoError::Io`].
    pub fn save_file(&self, path: &Path) -> Result<(), CacheIoError> {
        let text = self.to_json().pretty() + "\n";
        #[cfg(feature = "fault")]
        if crate::experiments::fault::take_torn_save() {
            // Simulate a crash mid-write with a non-atomic writer: half
            // the document lands on the final path and the "process"
            // dies (returns) before finishing.
            let cut = text.len() / 2;
            std::fs::write(path, &text.as_bytes()[..cut])?;
            return Ok(());
        }
        let tmp = match path.file_name() {
            Some(n) => {
                let mut n = n.to_os_string();
                n.push(".tmp");
                path.with_file_name(n)
            }
            None => {
                return Err(CacheIoError::Io(std::io::Error::new(
                    std::io::ErrorKind::InvalidInput,
                    "cache path has no file name",
                )))
            }
        };
        {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(text.as_bytes())?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, path)?;
        Ok(())
    }

    /// Load from `path`, never failing the caller: a missing file is a
    /// cold start; an unreadable, unparsable, version-mismatched, or
    /// partially rotten file is quarantined to `<name>.corrupt` and as
    /// many good cells as possible are kept. The [`CacheLoad`] report
    /// says exactly what happened.
    pub fn load_file(&self, path: &Path) -> CacheLoad {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return CacheLoad::default(),
            Err(e) => {
                return CacheLoad {
                    quarantined: quarantine(path),
                    error: Some(CacheIoError::Io(e)),
                    ..CacheLoad::default()
                }
            }
        };
        let parsed = Json::parse(&text).map_err(|e| CacheIoError::Parse(e.to_string()));
        match parsed.and_then(|doc| self.load_json(&doc)) {
            Ok((loaded, entry_errors)) if entry_errors.is_empty() => CacheLoad {
                loaded,
                ..CacheLoad::default()
            },
            Ok((loaded, entry_errors)) => CacheLoad {
                loaded,
                entry_errors,
                quarantined: quarantine(path),
                error: None,
            },
            Err(e) => CacheLoad {
                quarantined: quarantine(path),
                error: Some(e),
                ..CacheLoad::default()
            },
        }
    }
}

/// The record of one job the runner could not complete: its identity,
/// how hard the runner tried, and why it failed. Sweeps that contain
/// failed cells still return a full-shape result (with
/// [`Cell::failed_placeholder`] standing in), so a single bad
/// configuration cannot kill a multi-hour run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FailedCell {
    /// [`Job::fingerprint`] of the failed job.
    pub fingerprint: u64,
    /// The job's L2 block / SRAM page size (for identifying the cell).
    pub unit_bytes: u64,
    /// The job's issue rate in MHz.
    pub issue_mhz: u32,
    /// Execution attempts made (1 for unretried errors, 2 after a retry).
    pub attempts: u32,
    /// The classified error, rendered.
    pub error: String,
    /// Workspace frames of the panic backtrace, when the failure was a
    /// caught panic and capture was available; empty otherwise.
    pub backtrace: String,
}

impl ToJson for FailedCell {
    fn to_json(&self) -> Json {
        obj! {
            "fp" => self.fingerprint,
            "unit_bytes" => self.unit_bytes,
            "issue_mhz" => self.issue_mhz,
            "attempts" => self.attempts,
            "error" => self.error.as_str(),
            "backtrace" => self.backtrace.as_str(),
        }
    }
}

impl FailedCell {
    fn new(job: &Job, fp: u64, attempts: u32, error: &RampageError, backtrace: String) -> Self {
        FailedCell {
            fingerprint: fp,
            unit_bytes: job.cfg.hierarchy.unit_bytes(),
            issue_mhz: job.cfg.issue.mhz(),
            attempts,
            error: error.to_string(),
            backtrace,
        }
    }

    /// Multi-line human rendering for the failure report.
    pub fn describe(&self) -> String {
        let mut s = format!(
            "cell {:#018x} (unit {} B, {} MHz, {} attempt{}):\n    {}",
            self.fingerprint,
            self.unit_bytes,
            self.issue_mhz,
            self.attempts,
            if self.attempts == 1 { "" } else { "s" },
            self.error,
        );
        if !self.backtrace.is_empty() {
            for line in self.backtrace.lines() {
                s.push_str("\n    | ");
                s.push_str(line);
            }
        }
        s
    }
}

/// Panic interception for the runner's per-cell isolation: a
/// process-wide hook that, on threads which opted in, records the panic
/// message, location, and a workspace-frame backtrace summary instead of
/// printing to stderr. Threads that did not opt in keep the previous
/// hook's behaviour.
mod panic_capture {
    use std::cell::{Cell, RefCell};
    use std::sync::Once;

    /// What the hook saw at the panic site.
    #[derive(Debug, Clone, Default)]
    pub struct CapturedPanic {
        pub message: String,
        pub location: String,
        pub backtrace: String,
    }

    thread_local! {
        static CAPTURING: Cell<bool> = const { Cell::new(false) };
        static LAST: RefCell<Option<CapturedPanic>> = const { RefCell::new(None) };
    }

    static INSTALL: Once = Once::new();

    fn install() {
        INSTALL.call_once(|| {
            let prev = std::panic::take_hook();
            std::panic::set_hook(Box::new(move |info| {
                if !CAPTURING.with(Cell::get) {
                    prev(info);
                    return;
                }
                let message = if let Some(s) = info.payload().downcast_ref::<&str>() {
                    (*s).to_string()
                } else if let Some(s) = info.payload().downcast_ref::<String>() {
                    s.clone()
                } else {
                    "panic payload of unknown type".to_string()
                };
                let location = info.location().map(|l| l.to_string()).unwrap_or_default();
                let backtrace = summarize(&std::backtrace::Backtrace::force_capture());
                LAST.with(|l| {
                    *l.borrow_mut() = Some(CapturedPanic {
                        message: scrub_thread_ids(&message),
                        location: repo_relative(&location).to_string(),
                        backtrace,
                    })
                });
            }));
        });
    }

    /// Keep only the frames that point into this workspace (the part of
    /// a backtrace a failure report can act on), capped at a few frames.
    ///
    /// Summaries land in persisted failure records (`metrics.json`, the
    /// failure report), which a golden test compares byte-for-byte
    /// between serial and pooled runs — so everything scheduling- or
    /// checkout-dependent is normalized away: frame indices (stack depth
    /// differs between the serial path and a worker thread), the capture
    /// hook's own frames (they sit at the top of the stack), everything
    /// below the `catch_unwind` isolation boundary, and absolute source
    /// paths (cut to their repo-relative suffix).
    fn summarize(bt: &std::backtrace::Backtrace) -> String {
        const MAX_FRAMES: usize = 8;
        let mut out: Vec<String> = Vec::new();
        let mut frames = 0usize;
        let mut kept_frame = false;
        for raw in bt.to_string().lines() {
            let line = raw.trim();
            if line.contains("catch_unwind") || line.contains("panicking::try") {
                break;
            }
            if line.contains("panic_capture") {
                continue;
            }
            if let Some(loc) = line.strip_prefix("at ") {
                if kept_frame {
                    out.push(format!("at {}", repo_relative(loc)));
                }
                kept_frame = false;
                continue;
            }
            kept_frame = false;
            if !line.contains("rampage") || frames >= MAX_FRAMES {
                continue;
            }
            let symbol = match line.split_once(": ") {
                Some((_, s)) => s,
                None => line,
            };
            out.push(symbol.to_string());
            frames += 1;
            kept_frame = true;
        }
        out.join("\n")
    }

    /// Cut an absolute source path down to its repo-relative suffix, so
    /// two checkouts (or two build machines) render the same summary.
    pub(super) fn repo_relative(path: &str) -> &str {
        for marker in ["crates/", "src/", "tests/"] {
            if let Some(ix) = path.find(marker) {
                return &path[ix..];
            }
        }
        path.rsplit('/').next().unwrap_or(path)
    }

    /// Replace every `ThreadId(<n>)` with `ThreadId(?)`: thread identity
    /// is scheduling-dependent and must never reach persisted failure
    /// records (jobs-1-vs-N byte equality).
    pub(super) fn scrub_thread_ids(s: &str) -> String {
        const NEEDLE: &str = "ThreadId(";
        let mut out = String::with_capacity(s.len());
        let mut rest = s;
        while let Some(ix) = rest.find(NEEDLE) {
            let (head, tail) = rest.split_at(ix + NEEDLE.len());
            out.push_str(head);
            let digits = tail.chars().take_while(char::is_ascii_digit).count();
            if digits > 0 && tail[digits..].starts_with(')') {
                out.push_str("?)");
                rest = &tail[digits + 1..];
            } else {
                rest = tail;
            }
        }
        out.push_str(rest);
        out
    }

    /// Run `f` with panics captured: on unwind, returns what the hook
    /// recorded on this thread.
    pub fn catch<T>(f: impl FnOnce() -> T) -> Result<T, CapturedPanic> {
        install();
        CAPTURING.with(|c| c.set(true));
        let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f));
        CAPTURING.with(|c| c.set(false));
        match out {
            Ok(v) => Ok(v),
            Err(payload) => Err(LAST.with(|l| l.borrow_mut().take()).unwrap_or_else(|| {
                // The hook did not fire (foreign panic runtime): salvage
                // what the payload itself carries.
                let message = if let Some(s) = payload.downcast_ref::<&str>() {
                    (*s).to_string()
                } else if let Some(s) = payload.downcast_ref::<String>() {
                    s.clone()
                } else {
                    "panic payload of unknown type".to_string()
                };
                CapturedPanic {
                    message: scrub_thread_ids(&message),
                    ..CapturedPanic::default()
                }
            })),
        }
    }
}

/// What a sweep's progress callback sees each time a cell finishes
/// computing (cache hits never fire it — only real simulations do).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProgressUpdate {
    /// [`Job::fingerprint`] of the finished cell.
    pub fingerprint: u64,
    /// The cell's L2 block / SRAM page size.
    pub unit_bytes: u64,
    /// The cell's issue rate in MHz.
    pub issue_mhz: u32,
    /// Whether the cell failed (and holds a placeholder).
    pub failed: bool,
    /// Wall-clock seconds this cell's simulation took.
    pub cell_secs: f64,
    /// Cells finished so far in the current batch (this one included).
    pub batch_done: usize,
    /// Cells the current batch set out to compute.
    pub batch_total: usize,
    /// Cells of the current batch served from the cache instead.
    pub batch_cached: usize,
    /// Naive remaining-work estimate: mean cell time × cells left ÷
    /// workers.
    pub eta_secs: f64,
}

/// Shared batch state snapshotted when a cell finishes, feeding the
/// ETA of the [`ProgressUpdate`] it triggers.
#[derive(Debug, Clone, Copy)]
struct BatchProgress {
    done: usize,
    total: usize,
    cached: usize,
    mean_secs: f64,
    workers: usize,
}

/// Wall-clock record of one computed cell, for `metrics.json`.
#[derive(Debug, Clone, PartialEq)]
struct CellTiming {
    fingerprint: u64,
    unit_bytes: u64,
    issue_mhz: u32,
    secs: f64,
    failed: bool,
}

/// Accumulated sweep telemetry (wall-clock side; the deterministic
/// counters live in [`CellCache`]).
#[derive(Debug, Default)]
struct Telemetry {
    batches: u64,
    total_secs: f64,
    cells: Vec<CellTiming>,
}

type ProgressFn = Box<dyn Fn(&ProgressUpdate) + Send + Sync>;

/// Wall-clock/ETA accumulators shared by every slice of one batch (in
/// the journaled path a batch executes as several claimed chunks).
#[derive(Debug, Default)]
struct SliceState {
    finished: AtomicUsize,
    spent_secs: Mutex<f64>,
}

/// The crash-safety state of a journaled runner: the open journal, the
/// lease identity/policy, and the resume/coordination counters that feed
/// the `journal` subtree of `metrics.json`.
#[derive(Debug)]
struct Durable {
    journal: Mutex<Journal>,
    lease: LeaseConfig,
    /// Monotonic lease number, bumped at every renew.
    lease_seq: AtomicU64,
    dones_since_renew: AtomicU64,
    last_renew_ms: AtomicU64,
    /// Finished cells recovered from the journal at open.
    resumed_cells: u64,
    corrupt_lines: u64,
    truncated_bytes: u64,
    /// Cells finished by someone else and read back mid-run.
    adopted: AtomicU64,
    claims: AtomicU64,
    reclaims: AtomicU64,
    renews: AtomicU64,
    /// Journal I/O failures (the run degrades to non-resumable instead
    /// of aborting; the count surfaces in telemetry).
    errors: AtomicU64,
}

impl Durable {
    /// Append one record under this runner's owner id and current lease
    /// number. Failures are counted, never fatal: losing the journal
    /// costs resumability, not the sweep.
    fn append(&self, op: JournalOp) {
        let rec = JournalRecord {
            op,
            owner: self.lease.owner.clone(),
            lease: self.lease_seq.load(Ordering::Relaxed),
            t_ms: journal::wall_ms(),
        };
        if lock_recovering(&self.journal).append(&rec).is_err() {
            self.errors.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Re-read the journal (other processes may have appended).
    fn scan(&self) -> Vec<JournalRecord> {
        match lock_recovering(&self.journal).scan() {
            Ok(records) => records,
            Err(_) => {
                self.errors.fetch_add(1, Ordering::Relaxed);
                Vec::new()
            }
        }
    }

    /// Bump the lease number and append a `renew` heartbeat.
    fn renew(&self) {
        self.lease_seq.fetch_add(1, Ordering::Relaxed);
        self.renews.fetch_add(1, Ordering::Relaxed);
        self.last_renew_ms
            .store(journal::wall_ms(), Ordering::Relaxed);
        self.append(JournalOp::Renew);
    }

    /// Called after each journaled `done`: renew every K completed
    /// cells, per the lease config.
    fn note_done(&self) {
        let n = self.dones_since_renew.fetch_add(1, Ordering::Relaxed) + 1;
        if self.lease.renew_every > 0 && n >= self.lease.renew_every {
            self.dones_since_renew.store(0, Ordering::Relaxed);
            self.renew();
        }
    }

    /// Heartbeat while idle-waiting on other owners' claims, often
    /// enough that a healthy process never looks TTL-stale.
    fn maybe_heartbeat(&self) {
        let now = journal::wall_ms();
        let last = self.last_renew_ms.load(Ordering::Relaxed);
        if now.saturating_sub(last) > self.lease.ttl_ms / 3 {
            self.renew();
        }
    }

    /// The `journal` subtree of `metrics.json`.
    fn telemetry(&self) -> Json {
        obj! {
            "owner" => self.lease.owner.as_str(),
            "resumed" => self.resumed_cells,
            "adopted" => self.adopted.load(Ordering::Relaxed),
            "claims" => self.claims.load(Ordering::Relaxed),
            "reclaims" => self.reclaims.load(Ordering::Relaxed),
            "renews" => self.renews.load(Ordering::Relaxed),
            "corrupt_lines" => self.corrupt_lines,
            "truncated_bytes" => self.truncated_bytes,
            "errors" => self.errors.load(Ordering::Relaxed),
        }
    }
}

/// The parallel memoized sweep runner every experiment module submits
/// its simulations through.
#[derive(Default)]
pub struct SweepRunner {
    jobs: usize,
    cache: CellCache,
    failures: Mutex<Vec<FailedCell>>,
    telemetry: Mutex<Telemetry>,
    progress: Option<ProgressFn>,
    watchdog: Option<Watchdog>,
    durable: Option<Durable>,
    shutdown: Option<&'static AtomicBool>,
    interrupted: AtomicBool,
    dram_override: Option<DramKind>,
}

impl std::fmt::Debug for SweepRunner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SweepRunner")
            .field("jobs", &self.jobs)
            .field("cache", &self.cache)
            .field("failures", &self.failures)
            .field("telemetry", &self.telemetry)
            .field("progress", &self.progress.as_ref().map(|_| "Fn"))
            .field("watchdog", &self.watchdog)
            .field("durable", &self.durable)
            .field(
                "shutdown",
                &self.shutdown.map(|f| f.load(Ordering::Relaxed)),
            )
            .field("interrupted", &self.interrupted)
            .field("dram_override", &self.dram_override)
            .finish()
    }
}

/// How a single pending job ended.
enum JobOutcome {
    /// Computed here: cached (counted as computed) and, when journaled,
    /// appended as a `done` record.
    Done(Cell),
    /// Finished by a previous run or a sibling process and read back
    /// from the journal: seeds the cache without counting as computed.
    Adopted(Cell),
    /// Failed deterministically: recorded, slot holds the placeholder.
    Failed(Box<FailedCell>),
    /// Never computed — a shutdown request drained the queue. The slot
    /// holds a placeholder and the runner reports itself interrupted.
    Interrupted,
}

impl SweepRunner {
    /// A runner with `jobs` worker threads; `0` means one per available
    /// core.
    pub fn new(jobs: usize) -> Self {
        let jobs = if jobs == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            jobs
        };
        SweepRunner {
            jobs,
            ..SweepRunner::default()
        }
    }

    /// Install a progress callback, fired from worker threads once per
    /// computed cell (heartbeat lines, progress bars). The callback must
    /// not submit work back into this runner.
    pub fn with_progress(mut self, f: impl Fn(&ProgressUpdate) + Send + Sync + 'static) -> Self {
        self.progress = Some(Box::new(f));
        self
    }

    /// Attach a durable cell journal at `path` (conventionally
    /// `journal.jsonl` next to `cells.json`), making every batch
    /// crash-safe and resumable:
    ///
    /// * finished cells already journaled (by a killed previous run, or
    ///   by this run's siblings) seed the cache, so resumption skips
    ///   them;
    /// * every cell transition is appended durably before the runner
    ///   moves on, so a `kill -9` loses at most the cells mid-compute;
    /// * cells are claimed under `lease` before computing, so several
    ///   processes can point at the same journal and cooperatively
    ///   drain one grid without duplicating work.
    ///
    /// # Errors
    ///
    /// [`CacheIoError`] when the journal cannot be opened or its torn
    /// tail cannot be truncated.
    pub fn with_journal(mut self, path: &Path, lease: LeaseConfig) -> Result<Self, CacheIoError> {
        let (mut journal, report) = Journal::open(path)?;
        let state = JournalState::replay(&journal.scan()?);
        let mut resumed = 0u64;
        for (fp, view) in &state.cells {
            if let Some(cell) = view.done {
                self.cache.seed(*fp, cell);
                resumed += 1;
            }
        }
        let now = journal::wall_ms();
        journal.append(&JournalRecord {
            op: JournalOp::Open,
            owner: lease.owner.clone(),
            lease: 1,
            t_ms: now,
        })?;
        self.durable = Some(Durable {
            journal: Mutex::new(journal),
            lease,
            lease_seq: AtomicU64::new(1),
            dones_since_renew: AtomicU64::new(0),
            last_renew_ms: AtomicU64::new(now),
            resumed_cells: resumed,
            corrupt_lines: report.corrupt_lines as u64,
            truncated_bytes: report.truncated_bytes,
            adopted: AtomicU64::new(0),
            claims: AtomicU64::new(0),
            reclaims: AtomicU64::new(0),
            renews: AtomicU64::new(0),
            errors: AtomicU64::new(0),
        });
        Ok(self)
    }

    /// Arm the hung-cell watchdog: cells whose wall time exceeds
    /// p99 × multiplier (see [`WatchdogConfig`]) are journaled `stalled`,
    /// cooperatively cancelled, and retried on an attempt-indexed
    /// backoff before being recorded as failed.
    pub fn with_watchdog(mut self, cfg: WatchdogConfig) -> Self {
        self.watchdog = Some(Watchdog::new(cfg));
        self
    }

    /// Force every job this runner executes onto the given DRAM backend
    /// (the `repro --dram-backend` knob): each submitted job's
    /// `cfg.dram` is rewritten *before* fingerprinting, so caching,
    /// journaling, and persisted `cells.json` files key on the backend
    /// actually simulated, and flat-run caches are never polluted.
    pub fn with_dram(mut self, kind: DramKind) -> Self {
        self.dram_override = Some(kind);
        self
    }

    /// The DRAM backend override, if one is installed.
    pub fn dram_override(&self) -> Option<DramKind> {
        self.dram_override
    }

    /// Install a shutdown flag (typically set by a SIGINT/SIGTERM
    /// handler). Once the flag reads true, workers finish the cells
    /// they have started, unstarted cells drain as interrupted
    /// placeholders (journaled `released` when a journal is attached),
    /// and [`interrupted`](Self::interrupted) reports true.
    pub fn with_shutdown_flag(mut self, flag: &'static AtomicBool) -> Self {
        self.shutdown = Some(flag);
        self
    }

    /// Whether any batch was cut short by the shutdown flag. Results
    /// from an interrupted runner contain placeholder cells and must
    /// not be published as experiment output — persist the cache and
    /// journal, then resume later.
    pub fn interrupted(&self) -> bool {
        self.interrupted.load(Ordering::Relaxed)
    }

    /// Finished cells recovered from the journal when it was attached
    /// (0 for a fresh journal or an unjournaled runner).
    pub fn resumed_cells(&self) -> u64 {
        self.durable.as_ref().map_or(0, |d| d.resumed_cells)
    }

    /// One human-readable line describing what attaching the journal
    /// recovered; `None` when no journal is attached.
    pub fn resume_summary(&self) -> Option<String> {
        let d = self.durable.as_ref()?;
        let mut s = format!(
            "journal: owner {}, resumed {} finished cell(s)",
            d.lease.owner, d.resumed_cells
        );
        if d.truncated_bytes > 0 {
            s.push_str(&format!(", truncated {}-byte torn tail", d.truncated_bytes));
        }
        if d.corrupt_lines > 0 {
            s.push_str(&format!(", skipped {} corrupt line(s)", d.corrupt_lines));
        }
        Some(s)
    }

    fn shutdown_requested(&self) -> bool {
        self.shutdown.is_some_and(|f| f.load(Ordering::Relaxed))
    }

    /// Append `op` to the journal, when one is attached.
    fn journal_op(&self, op: JournalOp) {
        if let Some(d) = &self.durable {
            d.append(op);
        }
    }

    /// The machine-readable sweep telemetry document (`metrics.json`):
    /// deterministic counters at the top level, every wall-clock-derived
    /// quantity isolated under the `"wall"` key so determinism checks can
    /// strip one subtree and compare the rest byte-for-byte.
    pub fn telemetry_json(&self) -> Json {
        let t = lock_recovering(&self.telemetry);
        let mut cells: Vec<CellTiming> = t.cells.clone();
        cells.sort_by(|a, b| {
            (a.fingerprint, a.unit_bytes, a.issue_mhz).cmp(&(
                b.fingerprint,
                b.unit_bytes,
                b.issue_mhz,
            ))
        });
        let mut doc = obj! {
            "version" => 1u64,
            "workers" => self.jobs,
            "batches" => t.batches,
            "cells_computed" => self.cache.computed(),
            "cache_hits" => self.cache.hits(),
            "distinct_cells" => self.cache.len(),
            "failures" => self.failure_count(),
            "interrupted" => self.interrupted(),
            "wall" => obj! {
                "total_secs" => t.total_secs,
                "stalled" => self.watchdog.as_ref().map_or(0, Watchdog::stalled_total),
                "cells" => cells
                    .iter()
                    .map(|c| obj! {
                        "fp" => c.fingerprint,
                        "unit_bytes" => c.unit_bytes,
                        "issue_mhz" => c.issue_mhz,
                        "secs" => c.secs,
                        "failed" => c.failed,
                    })
                    .collect::<Vec<Json>>(),
            },
        };
        if let Some(d) = &self.durable {
            if let Json::Obj(pairs) = &mut doc {
                pairs.push(("journal".to_string(), d.telemetry()));
            }
        }
        doc
    }

    /// A single-threaded runner (still memoized) — the reference the
    /// golden-equality test compares the pool against.
    pub fn serial() -> Self {
        SweepRunner::new(1)
    }

    /// Worker-thread count.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// The memo table (for stats and persistence).
    pub fn cache(&self) -> &CellCache {
        &self.cache
    }

    /// Every failure recorded so far, in deterministic submission order
    /// within each batch.
    pub fn failures(&self) -> Vec<FailedCell> {
        lock_recovering(&self.failures).clone()
    }

    /// Number of failed cells recorded so far.
    pub fn failure_count(&self) -> usize {
        lock_recovering(&self.failures).len()
    }

    /// A human-readable failure report; empty string when every cell
    /// succeeded.
    pub fn failure_report(&self) -> String {
        let failures = lock_recovering(&self.failures);
        if failures.is_empty() {
            return String::new();
        }
        let mut s = format!(
            "{} cell(s) failed; their table slots hold inert zero cells:\n",
            failures.len()
        );
        for f in failures.iter() {
            s.push_str("  ");
            s.push_str(&f.describe());
            s.push('\n');
        }
        s
    }

    /// Run one configuration through the cache and the same isolation
    /// boundary as batches; a failure is recorded and yields the inert
    /// placeholder cell.
    pub fn run_one(&self, cfg: &SystemConfig, workload: &Workload) -> Cell {
        let mut cells = self.run_batch(&[Job::new(*cfg, *workload)]);
        let Some(cell) = cells.pop() else {
            // invariant: run_batch returns exactly one cell per job.
            unreachable!("run_batch returns one cell per job");
        };
        cell
    }

    /// Run a batch of jobs, in parallel, returning cells in submission
    /// order. Duplicate jobs (within the batch or against the cache) are
    /// simulated once and fanned out to every submitter. Failed jobs
    /// yield [`Cell::failed_placeholder`] (never cached) and are
    /// recorded in [`failures`](Self::failures).
    pub fn run_batch(&self, jobs: &[Job]) -> Vec<Cell> {
        self.run_labeled("batch", jobs)
    }

    /// [`run_batch`](Self::run_batch) with a label (the calling
    /// artifact's name) that journaled claim records carry, so a
    /// journal reads as a per-artifact work log.
    pub fn run_labeled(&self, label: &str, jobs: &[Job]) -> Vec<Cell> {
        // Apply the DRAM-backend override before fingerprinting, so the
        // cache keys on what actually runs.
        let rewritten: Vec<Job>;
        let jobs = match self.dram_override {
            Some(kind) => {
                rewritten = jobs
                    .iter()
                    .map(|j| {
                        let mut j = *j;
                        j.cfg.dram = kind;
                        j
                    })
                    .collect();
                &rewritten[..]
            }
            None => jobs,
        };
        let batch_start = std::time::Instant::now();
        let mut slots: Vec<Option<Cell>> = vec![None; jobs.len()];
        // First occurrence of each uncached fingerprint, in order.
        let mut pending: Vec<(u64, Job)> = Vec::new();
        // fingerprint -> slots awaiting it. Ordered so any walk over the
        // waiters (now or under future refactors) stays deterministic.
        let mut waiters: BTreeMap<u64, Vec<usize>> = BTreeMap::new();
        let mut cached = 0usize;
        for (i, job) in jobs.iter().enumerate() {
            let fp = job.fingerprint();
            if let Some(cell) = self.cache.get(fp) {
                slots[i] = Some(cell);
                cached += 1;
                continue;
            }
            match waiters.entry(fp) {
                Entry::Occupied(mut e) => {
                    // Deduplicated within the batch: count as a hit.
                    self.cache.hits.fetch_add(1, Ordering::Relaxed);
                    cached += 1;
                    e.get_mut().push(i);
                }
                Entry::Vacant(e) => {
                    e.insert(vec![i]);
                    pending.push((fp, *job));
                }
            }
        }

        let mut computed = match &self.durable {
            Some(durable) => self.execute_durable(durable, label, &pending, cached),
            None => self.execute(&pending, cached),
        };
        {
            let mut t = lock_recovering(&self.telemetry);
            t.batches += 1;
            t.total_secs += batch_start.elapsed().as_secs_f64();
        }
        // Completion order is nondeterministic under the pool; submission
        // order keeps results — and the failure log — deterministic.
        computed.sort_by_key(|&(k, _)| k);

        for (k, outcome) in computed {
            let (fp, job) = pending[k];
            match outcome {
                JobOutcome::Done(cell) => {
                    self.cache.insert(fp, cell);
                    for &slot in &waiters[&fp] {
                        slots[slot] = Some(cell);
                    }
                }
                JobOutcome::Adopted(cell) => {
                    // Someone else simulated it: cache without counting
                    // it as computed here.
                    self.cache.seed(fp, cell);
                    for &slot in &waiters[&fp] {
                        slots[slot] = Some(cell);
                    }
                }
                JobOutcome::Failed(failed) => {
                    let placeholder = Cell::failed_placeholder(&job.cfg);
                    for &slot in &waiters[&fp] {
                        slots[slot] = Some(placeholder);
                    }
                    lock_recovering(&self.failures).push(*failed);
                }
                JobOutcome::Interrupted => {
                    self.interrupted.store(true, Ordering::Relaxed);
                    let placeholder = Cell::failed_placeholder(&job.cfg);
                    for &slot in &waiters[&fp] {
                        slots[slot] = Some(placeholder);
                    }
                }
            }
        }
        slots
            .into_iter()
            .map(|c| match c {
                Some(cell) => cell,
                // invariant: the cache-fill and compute loops above
                // populate every slot, including failed ones.
                None => unreachable!("every slot is cached, computed, or failed"),
            })
            .collect()
    }

    /// Record one computed cell's wall time and fire the progress
    /// callback. The [`BatchProgress`] comes back from shared batch
    /// counters so the ETA improves as the batch drains.
    fn observe_cell(&self, fp: u64, job: &Job, secs: f64, failed: bool, batch: BatchProgress) {
        let unit_bytes = job.cfg.hierarchy.unit_bytes();
        let issue_mhz = job.cfg.issue.mhz();
        lock_recovering(&self.telemetry).cells.push(CellTiming {
            fingerprint: fp,
            unit_bytes,
            issue_mhz,
            secs,
            failed,
        });
        if let Some(cb) = &self.progress {
            let remaining = batch.total.saturating_sub(batch.done);
            cb(&ProgressUpdate {
                fingerprint: fp,
                unit_bytes,
                issue_mhz,
                failed,
                cell_secs: secs,
                batch_done: batch.done,
                batch_total: batch.total,
                batch_cached: batch.cached,
                eta_secs: batch.mean_secs * remaining as f64 / batch.workers.max(1) as f64,
            });
        }
    }

    /// One isolated execution attempt sequence for a job: validate the
    /// configuration, then simulate behind a panic boundary, retrying a
    /// panicking cell once (a second identical panic is considered
    /// deterministic and recorded). When a watchdog is armed, each
    /// attempt is registered with it; a cooperative stall unwind is
    /// retried on the (separate) stall budget with attempt-indexed
    /// backoff baked into the watchdog's budget formula.
    fn compute_cell(&self, job: &Job, fp: u64) -> JobOutcome {
        const MAX_PANIC_ATTEMPTS: u32 = 2;
        if let Err(e) = job.cfg.validate() {
            return JobOutcome::Failed(Box::new(FailedCell::new(
                job,
                fp,
                1,
                &RampageError::Config(e),
                String::new(),
            )));
        }
        let stall_budget = self
            .watchdog
            .as_ref()
            .map_or(0, |w| w.config().max_stall_retries);
        let mut panic_attempts = 0u32;
        let mut stall_attempts = 0u32;
        let mut attempt = 0u32;
        loop {
            attempt += 1;
            let cancel = match &self.watchdog {
                Some(wd) => wd.register(fp, attempt),
                None => Arc::new(AtomicBool::new(false)),
            };
            #[cfg(not(feature = "fault"))]
            let _ = &cancel;
            let outcome = panic_capture::catch(|| {
                #[cfg(feature = "fault")]
                {
                    crate::experiments::fault::cell_panic_point(fp);
                    crate::experiments::fault::hang_cell_point(fp, &cancel);
                }
                run_config(&job.cfg, &job.workload)
            });
            if let Some(wd) = &self.watchdog {
                wd.complete(fp, attempt, outcome.is_ok());
            }
            match outcome {
                Ok(cell) => return JobOutcome::Done(cell),
                Err(p) if watchdog::is_stall_panic(&p.message) => {
                    stall_attempts += 1;
                    if stall_attempts <= stall_budget {
                        continue;
                    }
                    let err = RampageError::Invariant(InvariantError {
                        message: p.message,
                        location: p.location,
                        backtrace: p.backtrace.clone(),
                    });
                    return JobOutcome::Failed(Box::new(FailedCell::new(
                        job,
                        fp,
                        attempt,
                        &err,
                        p.backtrace,
                    )));
                }
                Err(_) if panic_attempts + 1 < MAX_PANIC_ATTEMPTS => {
                    panic_attempts += 1;
                    continue;
                }
                Err(p) => {
                    let err = RampageError::Invariant(InvariantError {
                        message: p.message,
                        location: p.location,
                        backtrace: p.backtrace.clone(),
                    });
                    return JobOutcome::Failed(Box::new(FailedCell::new(
                        job,
                        fp,
                        attempt,
                        &err,
                        p.backtrace,
                    )));
                }
            }
        }
    }

    /// Simulate `pending` on the worker pool; returns `(index, outcome)`
    /// pairs in arbitrary order. `cached` is how many of the batch's
    /// slots were already served from the cache (reported to the
    /// progress callback).
    fn execute(&self, pending: &[(u64, Job)], cached: usize) -> Vec<(usize, JobOutcome)> {
        let ks: Vec<usize> = (0..pending.len()).collect();
        self.execute_slice(pending, &ks, cached, pending.len(), &SliceState::default())
    }

    /// Simulate the pending-batch indices `ks` on the worker pool. The
    /// journaled path calls this once per claimed chunk, with `shared`
    /// carrying the done/mean accumulators across chunks so progress
    /// and ETA describe the whole batch of `total` cells. When a
    /// watchdog is armed, the calling thread runs its monitor loop
    /// alongside the workers (so even a 1-worker run gets stall
    /// detection).
    fn execute_slice(
        &self,
        pending: &[(u64, Job)],
        ks: &[usize],
        cached: usize,
        total: usize,
        shared: &SliceState,
    ) -> Vec<(usize, JobOutcome)> {
        if ks.is_empty() {
            return Vec::new();
        }
        let workers = self.jobs.min(ks.len()).max(1);
        let slice_done = AtomicUsize::new(0);
        let timed = |k: usize| {
            if self.shutdown_requested() {
                slice_done.fetch_add(1, Ordering::Relaxed);
                return (k, JobOutcome::Interrupted);
            }
            let (fp, job) = &pending[k];
            let t0 = std::time::Instant::now();
            let outcome = self.compute_cell(job, *fp);
            let secs = t0.elapsed().as_secs_f64();
            let done = shared.finished.fetch_add(1, Ordering::Relaxed) + 1;
            let mean = {
                let mut spent = lock_recovering(&shared.spent_secs);
                *spent += secs;
                *spent / done as f64
            };
            slice_done.fetch_add(1, Ordering::Relaxed);
            self.observe_cell(
                *fp,
                job,
                secs,
                !matches!(outcome, JobOutcome::Done(_)),
                BatchProgress {
                    done,
                    total,
                    cached,
                    mean_secs: mean,
                    workers,
                },
            );
            (k, outcome)
        };
        if workers <= 1 && self.watchdog.is_none() {
            return ks.iter().map(|&k| timed(k)).collect();
        }
        let next = AtomicUsize::new(0);
        let done: Mutex<Vec<(usize, JobOutcome)>> = Mutex::new(Vec::with_capacity(ks.len()));
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let j = next.fetch_add(1, Ordering::Relaxed);
                    if j >= ks.len() {
                        break;
                    }
                    lock_recovering(&done).push(timed(ks[j]));
                });
            }
            if let Some(wd) = &self.watchdog {
                let poll = std::time::Duration::from_millis(wd.config().poll_ms.max(1));
                while slice_done.load(Ordering::Relaxed) < ks.len() {
                    std::thread::sleep(poll);
                    wd.poll(|fp, attempt| self.journal_op(JournalOp::Stalled { fp, attempt }));
                }
            }
        });
        done.into_inner().unwrap_or_else(|p| p.into_inner())
    }

    /// The journaled orchestrator: claim cells in chunks under our
    /// lease, compute what we win, adopt what others finish, and
    /// reclaim stale leases — until every pending cell is resolved.
    ///
    /// The claim protocol is append-then-read-back (see the [`lease`]
    /// module): a claim only counts once it is durably in the file and
    /// wins the file-order race. Chunked claiming (about two chunks per
    /// worker in flight) keeps N processes genuinely sharing a grid
    /// instead of one process claiming everything up front.
    fn execute_durable(
        &self,
        durable: &Durable,
        label: &str,
        pending: &[(u64, Job)],
        cached: usize,
    ) -> Vec<(usize, JobOutcome)> {
        /// How long to wait before re-scanning when every remaining
        /// cell is live-claimed by another process.
        const WAIT_MS: u64 = 25;
        let total = pending.len();
        let shared = SliceState::default();
        let chunk_target = (self.jobs * 2).max(4);
        let mut results: Vec<(usize, JobOutcome)> = Vec::with_capacity(total);
        let mut remaining: Vec<usize> = (0..total).collect();
        while !remaining.is_empty() {
            // Adopt everything the journal already has a `done` record
            // for — cells from a killed previous run land here via the
            // cache seed at open; cells finished by a sibling process
            // land here mid-run.
            let state = JournalState::replay(&durable.scan());
            let now = journal::wall_ms();
            remaining.retain(|&k| {
                let (fp, _) = pending[k];
                match state.done_cell(fp) {
                    Some(cell) => {
                        durable.adopted.fetch_add(1, Ordering::Relaxed);
                        results.push((k, JobOutcome::Adopted(cell)));
                        false
                    }
                    None => true,
                }
            });
            if remaining.is_empty() {
                break;
            }
            if self.shutdown_requested() {
                // Graceful shutdown: everything we have not claimed is
                // simply left for the next run; claims we held were
                // resolved (done/failed/released) as they completed.
                for &k in &remaining {
                    results.push((k, JobOutcome::Interrupted));
                }
                break;
            }
            // Claim a chunk of free cells. `Ours` without an in-flight
            // compute means a stale claim from a previous incarnation
            // of this owner id — recompute it.
            let mut to_claim: Vec<(usize, bool)> = Vec::new();
            for &k in &remaining {
                if to_claim.len() >= chunk_target {
                    break;
                }
                let (fp, _) = pending[k];
                match state.decide(fp, &durable.lease, now) {
                    ClaimDecision::Theirs(_) => {}
                    ClaimDecision::Ours => to_claim.push((k, false)),
                    ClaimDecision::Claimable { reclaim } => to_claim.push((k, reclaim)),
                }
            }
            if to_claim.is_empty() {
                // Everything left is live-claimed elsewhere: heartbeat
                // so our own leases stay fresh, then wait for their
                // `done` records to land.
                durable.maybe_heartbeat();
                std::thread::sleep(std::time::Duration::from_millis(WAIT_MS));
                continue;
            }
            for &(k, reclaim) in &to_claim {
                let (fp, _) = pending[k];
                durable.claims.fetch_add(1, Ordering::Relaxed);
                if reclaim {
                    durable.reclaims.fetch_add(1, Ordering::Relaxed);
                }
                durable.append(JournalOp::Claim {
                    fp,
                    attempt: state.claims_total(fp) + 1,
                    reclaim,
                    label: label.to_string(),
                });
            }
            #[cfg(feature = "fault")]
            crate::experiments::fault::die_after_claim_point();
            // Read back: the first live claim in file order wins. A
            // lost race stays in `remaining`; the winner's result is
            // adopted by the rescan at the top of the loop.
            let readback = JournalState::replay(&durable.scan());
            let now = journal::wall_ms();
            let winners: Vec<usize> = to_claim
                .iter()
                .map(|&(k, _)| k)
                .filter(|&k| {
                    let (fp, _) = pending[k];
                    readback.done_cell(fp).is_none()
                        && readback.decide(fp, &durable.lease, now) == ClaimDecision::Ours
                })
                .collect();
            for (k, outcome) in self.execute_slice(pending, &winners, cached, total, &shared) {
                let (fp, _) = pending[k];
                match &outcome {
                    JobOutcome::Done(cell) => {
                        durable.append(JournalOp::Done { fp, cell: *cell });
                        durable.note_done();
                    }
                    JobOutcome::Failed(f) => {
                        durable.append(JournalOp::Failed {
                            fp,
                            error: f.error.clone(),
                        });
                    }
                    JobOutcome::Interrupted => {
                        durable.append(JournalOp::Released { fp });
                    }
                    JobOutcome::Adopted(_) => {}
                }
                remaining.retain(|&r| r != k);
                results.push((k, outcome));
            }
        }
        results
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::IssueRate;

    fn quick_jobs() -> Vec<Job> {
        let w = Workload::quick();
        [128u64, 1024, 4096]
            .iter()
            .flat_map(|&s| {
                [
                    Job::new(SystemConfig::baseline(IssueRate::GHZ1, s), w),
                    Job::new(SystemConfig::rampage(IssueRate::GHZ1, s), w),
                ]
            })
            .collect()
    }

    #[test]
    fn fingerprints_separate_configs_and_workloads() {
        let w = Workload::quick();
        let a = Job::new(SystemConfig::baseline(IssueRate::GHZ1, 128), w);
        let b = Job::new(SystemConfig::baseline(IssueRate::GHZ1, 256), w);
        let c = Job::new(SystemConfig::rampage(IssueRate::GHZ1, 128), w);
        let mut w2 = w;
        w2.scale += 1;
        let d = Job::new(SystemConfig::baseline(IssueRate::GHZ1, 128), w2);
        let fps = [a, b, c, d].map(|j| j.fingerprint());
        for i in 0..fps.len() {
            for j in i + 1..fps.len() {
                assert_ne!(fps[i], fps[j], "jobs {i} and {j} collide");
            }
        }
        assert_eq!(a.fingerprint(), Job::new(a.cfg, a.workload).fingerprint());
    }

    #[test]
    fn parallel_batch_matches_serial_batch_exactly() {
        let jobs = quick_jobs();
        let serial = SweepRunner::serial().run_batch(&jobs);
        let parallel = SweepRunner::new(4).run_batch(&jobs);
        assert_eq!(serial, parallel, "pools must not change results");
        assert_eq!(serial.len(), jobs.len());
        // Submission order survives the pool.
        for (job, cell) in jobs.iter().zip(&serial) {
            assert_eq!(job.cfg.hierarchy.unit_bytes(), cell.unit_bytes);
        }
    }

    #[test]
    fn cache_deduplicates_within_and_across_batches() {
        let runner = SweepRunner::new(2);
        let jobs = quick_jobs();
        // Submit every job twice in one batch.
        let doubled: Vec<Job> = jobs.iter().chain(jobs.iter()).copied().collect();
        let cells = runner.run_batch(&doubled);
        assert_eq!(&cells[..jobs.len()], &cells[jobs.len()..]);
        assert_eq!(runner.cache().computed(), jobs.len() as u64);
        assert_eq!(runner.cache().hits(), jobs.len() as u64);
        // A second batch is served entirely from the cache.
        let again = runner.run_batch(&jobs);
        assert_eq!(again, &cells[..jobs.len()]);
        assert_eq!(runner.cache().computed(), jobs.len() as u64);
        assert_eq!(runner.cache().hits(), 2 * jobs.len() as u64);
    }

    #[test]
    fn cache_persistence_roundtrips() {
        let runner = SweepRunner::serial();
        let jobs = quick_jobs();
        let cells = runner.run_batch(&jobs);
        let doc = runner.cache().to_json();

        let fresh = CellCache::new();
        let (loaded, errors) = fresh.load_json(&doc).expect("clean load");
        assert_eq!((loaded, errors.len()), (jobs.len(), 0));
        for (job, cell) in jobs.iter().zip(&cells) {
            assert_eq!(fresh.get(job.fingerprint()), Some(*cell));
        }

        // The JSON text itself roundtrips (checksums included).
        let reparsed = Json::parse(&doc.pretty()).expect("valid JSON");
        let fresh2 = CellCache::new();
        let (loaded2, errors2) = fresh2.load_json(&reparsed).expect("clean load");
        assert_eq!((loaded2, errors2.len()), (jobs.len(), 0));
        assert_eq!(fresh2.get(jobs[0].fingerprint()), Some(cells[0]));
    }

    #[test]
    fn version_mismatch_is_a_typed_error() {
        let bad = obj! { "version" => 999u64, "cells" => Vec::<Json>::new() };
        match CellCache::new().load_json(&bad) {
            Err(CacheIoError::VersionMismatch { found, expected }) => {
                assert_eq!(found, 999);
                assert_eq!(expected, CACHE_FORMAT_VERSION);
            }
            other => panic!("expected VersionMismatch, got {other:?}"),
        }
        let no_header = obj! { "cells" => Vec::<Json>::new() };
        assert!(matches!(
            CellCache::new().load_json(&no_header),
            Err(CacheIoError::BadHeader(_))
        ));
    }

    #[test]
    fn corrupt_entries_are_skipped_individually() {
        let runner = SweepRunner::serial();
        let jobs = quick_jobs();
        runner.run_batch(&jobs);
        let doc = runner.cache().to_json();
        // Flip one entry's checksum.
        let text = doc.pretty().replacen("\"sum\":", "\"sum\": 1, \"was\":", 1);
        let tampered = Json::parse(&text).expect("still JSON");
        let fresh = CellCache::new();
        let (loaded, errors) = fresh.load_json(&tampered).expect("envelope still valid");
        assert!(
            matches!(errors.as_slice(), [CacheIoError::BadChecksum { .. }]),
            "the tampered entry is dropped with a typed checksum error: {errors:?}"
        );
        assert_eq!(loaded, jobs.len() - 1, "its neighbours survive");
    }

    #[test]
    fn run_one_memoizes() {
        let runner = SweepRunner::serial();
        let w = Workload::quick();
        let cfg = SystemConfig::two_way(IssueRate::MHZ200, 512);
        let a = runner.run_one(&cfg, &w);
        let b = runner.run_one(&cfg, &w);
        assert_eq!(a, b);
        assert_eq!(runner.cache().computed(), 1);
        assert_eq!(runner.cache().hits(), 1);
    }

    #[test]
    fn progress_and_telemetry_track_the_batch() {
        let updates = std::sync::Arc::new(Mutex::new(Vec::new()));
        let seen = std::sync::Arc::clone(&updates);
        let runner = SweepRunner::new(2).with_progress(move |u| {
            lock_recovering(&seen).push(*u);
        });
        let jobs = quick_jobs();
        runner.run_batch(&jobs);
        {
            let ups = lock_recovering(&updates);
            assert_eq!(ups.len(), jobs.len(), "one update per computed cell");
            assert!(ups.iter().all(|u| u.batch_total == jobs.len()));
            assert!(ups.iter().all(|u| !u.failed && u.cell_secs >= 0.0));
            assert!(ups.iter().any(|u| u.batch_done == jobs.len()));
            let last_done = ups.iter().map(|u| u.batch_done).max().unwrap();
            assert_eq!(last_done, jobs.len());
        }
        let doc = runner.telemetry_json();
        assert_eq!(doc.get("batches").and_then(Json::as_u64), Some(1));
        assert_eq!(
            doc.get("cells_computed").and_then(Json::as_u64),
            Some(jobs.len() as u64)
        );
        assert_eq!(doc.get("failures").and_then(Json::as_u64), Some(0));
        let wall = doc.get("wall").expect("wall subtree");
        let cells = wall.get("cells").and_then(Json::as_array).expect("cells");
        assert_eq!(cells.len(), jobs.len());
        // Fingerprints are sorted, so the document is deterministic
        // modulo the wall-clock figures themselves.
        let fps: Vec<u64> = cells
            .iter()
            .map(|c| c.get("fp").and_then(Json::as_u64).expect("fp"))
            .collect();
        assert!(fps.windows(2).all(|w| w[0] <= w[1]));

        // A fully cached re-run fires no further updates but counts the
        // batch.
        runner.run_batch(&jobs);
        assert_eq!(lock_recovering(&updates).len(), jobs.len());
        let doc = runner.telemetry_json();
        assert_eq!(doc.get("batches").and_then(Json::as_u64), Some(2));
        assert_eq!(
            doc.get("cache_hits").and_then(Json::as_u64),
            Some(jobs.len() as u64)
        );
    }

    #[test]
    fn failed_cells_appear_in_progress_updates() {
        let updates = std::sync::Arc::new(Mutex::new(Vec::new()));
        let seen = std::sync::Arc::clone(&updates);
        let runner = SweepRunner::serial().with_progress(move |u| {
            lock_recovering(&seen).push(*u);
        });
        let mut bad = SystemConfig::baseline(IssueRate::GHZ1, 128);
        bad.quantum = 0;
        runner.run_batch(&[Job::new(bad, Workload::quick())]);
        let ups = lock_recovering(&updates);
        assert_eq!(ups.len(), 1);
        assert!(ups[0].failed);
        drop(ups);
        let doc = runner.telemetry_json();
        assert_eq!(doc.get("failures").and_then(Json::as_u64), Some(1));
    }

    #[test]
    fn invalid_config_becomes_failed_cell_not_abort() {
        let runner = SweepRunner::new(2);
        let mut bad = SystemConfig::baseline(IssueRate::GHZ1, 128);
        bad.quantum = 0;
        let good = SystemConfig::baseline(IssueRate::GHZ1, 256);
        let w = Workload::quick();
        let cells = runner.run_batch(&[Job::new(bad, w), Job::new(good, w)]);
        assert_eq!(cells.len(), 2);
        assert_eq!(cells[0].seconds, 0.0, "failed slot holds the placeholder");
        assert!(cells[1].seconds > 0.0, "sibling still simulated");
        let failures = runner.failures();
        assert_eq!(failures.len(), 1);
        assert_eq!(failures[0].attempts, 1, "config errors are not retried");
        assert!(
            failures[0].error.contains("quantum"),
            "{}",
            failures[0].error
        );
        assert!(!runner.failure_report().is_empty());
        // Failed cells are never cached: only the good one is held.
        assert_eq!(runner.cache().len(), 1);
    }
}
