//! Lease-based claiming over the journal: who owns a cell, when a lease
//! goes stale, and who wins a contested claim.
//!
//! The protocol is append-then-read-back: a process appends a `claim`
//! record, rescans the journal, and the first *live* claim in file order
//! wins (the `O_APPEND` writer makes file order a total order across
//! processes). Losers do not compute the cell — they adopt the winner's
//! `done` record when it lands. Liveness is two-tiered:
//!
//! * **pid check** — the default owner id is `pid<N>`; on Linux a dead
//!   pid (`/proc/<N>` missing) makes every lease it held immediately
//!   reclaimable, so a `kill -9`'d run resumes with no waiting.
//! * **TTL** — for non-pid owner ids (or off-Linux), a lease is stale
//!   once the owner's most recent journal record (claim, done, or
//!   `renew` heartbeat) is older than the TTL. Owners renew every K
//!   completed cells and heartbeat while idle-waiting, so a healthy
//!   process stays fresh; note a single cell slower than the TTL can
//!   still look stale to a *different host* — the pid check prevents
//!   that on one machine, which is the supported drain topology.

use super::journal::{JournalOp, JournalRecord};
use crate::experiments::common::Cell;
use std::collections::BTreeMap;

/// Lease policy knobs for a journaled runner.
#[derive(Debug, Clone)]
pub struct LeaseConfig {
    /// This process's owner id (`pid<N>` by default in `repro`; any
    /// unique string works, but only `pid<N>` gets the fast dead-pid
    /// reclaim).
    pub owner: String,
    /// Milliseconds after an owner's last journal record before its
    /// leases may be reclaimed (TTL tier).
    pub ttl_ms: u64,
    /// Completed cells between `renew` heartbeats.
    pub renew_every: u64,
}

impl LeaseConfig {
    /// A config with the given owner and default timing (60 s TTL,
    /// renew every 8 cells).
    pub fn new(owner: String) -> Self {
        LeaseConfig {
            owner,
            ttl_ms: 60_000,
            renew_every: 8,
        }
    }
}

/// One unresolved claim on a cell, in journal file order.
#[derive(Debug, Clone)]
pub struct ClaimView {
    /// Claiming owner.
    pub owner: String,
    /// Wall-clock ms of the claim record itself.
    pub t_ms: u64,
}

/// Everything the journal says about one fingerprint.
#[derive(Debug, Clone, Default)]
pub struct CellView {
    /// The finished cell, when any `done` record exists.
    pub done: Option<Cell>,
    /// Total `done` records seen (1 in a duplication-free drain).
    pub done_count: u32,
    /// `failed` records seen.
    pub failed: u32,
    /// Total `claim` records ever seen (attempt numbering).
    pub claims_total: u32,
    /// Claims not yet resolved by a done/failed/released record, in
    /// file order.
    pub open_claims: Vec<ClaimView>,
}

/// The replayed journal: per-cell state plus per-owner freshness.
#[derive(Debug, Default)]
pub struct JournalState {
    /// Per-fingerprint state.
    pub cells: BTreeMap<u64, CellView>,
    /// Most recent record timestamp per owner (freshness for the TTL
    /// tier).
    pub owner_last_ms: BTreeMap<String, u64>,
}

/// How the claim table currently disposes one fingerprint for `me`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClaimDecision {
    /// No live claim: free to claim (`reclaim` says whether a stale
    /// claim is being taken over).
    Claimable {
        /// True when a stale claim exists and this would take it over.
        reclaim: bool,
    },
    /// We already hold the live claim.
    Ours,
    /// A live claim by someone else: wait and adopt their result.
    Theirs(String),
}

impl JournalState {
    /// Replay a record stream into per-cell and per-owner state.
    pub fn replay(records: &[JournalRecord]) -> JournalState {
        let mut state = JournalState::default();
        for rec in records {
            let last = state.owner_last_ms.entry(rec.owner.clone()).or_insert(0);
            *last = (*last).max(rec.t_ms);
            match &rec.op {
                JournalOp::Open | JournalOp::Renew => {}
                JournalOp::Claim { fp, .. } => {
                    let cell = state.cells.entry(*fp).or_default();
                    cell.claims_total += 1;
                    if cell.done.is_none() {
                        cell.open_claims.push(ClaimView {
                            owner: rec.owner.clone(),
                            t_ms: rec.t_ms,
                        });
                    }
                }
                JournalOp::Done { fp, cell } => {
                    let view = state.cells.entry(*fp).or_default();
                    view.done = Some(*cell);
                    view.done_count += 1;
                    view.open_claims.clear();
                }
                JournalOp::Failed { fp, .. } => {
                    let view = state.cells.entry(*fp).or_default();
                    view.failed += 1;
                    view.open_claims.retain(|c| c.owner != rec.owner);
                }
                JournalOp::Released { fp } => {
                    let view = state.cells.entry(*fp).or_default();
                    view.open_claims.retain(|c| c.owner != rec.owner);
                }
                JournalOp::Stalled { .. } => {}
            }
        }
        state
    }

    /// The finished cell for `fp`, if any process journaled one.
    pub fn done_cell(&self, fp: u64) -> Option<Cell> {
        self.cells.get(&fp).and_then(|c| c.done)
    }

    /// Claims ever made for `fp` (the next claim's attempt number is
    /// this plus one).
    pub fn claims_total(&self, fp: u64) -> u32 {
        self.cells.get(&fp).map_or(0, |c| c.claims_total)
    }

    /// Is `owner` live at `now_ms`? Own records are always live; pid
    /// owners are live iff the process exists; anything else falls back
    /// to TTL freshness.
    fn owner_live(&self, owner: &str, lease: &LeaseConfig, now_ms: u64) -> bool {
        if owner == lease.owner {
            return true;
        }
        if let Some(alive) = pid_alive(owner) {
            if alive {
                return true;
            }
            // A dead pid is stale regardless of record age.
            return false;
        }
        let last = self.owner_last_ms.get(owner).copied().unwrap_or(0);
        now_ms.saturating_sub(last) <= lease.ttl_ms
    }

    /// Resolve the claim table for `fp` from `me`'s point of view: the
    /// first live claim in file order wins.
    pub fn decide(&self, fp: u64, lease: &LeaseConfig, now_ms: u64) -> ClaimDecision {
        let Some(view) = self.cells.get(&fp) else {
            return ClaimDecision::Claimable { reclaim: false };
        };
        let mut saw_stale = false;
        for claim in &view.open_claims {
            if self.owner_live(&claim.owner, lease, now_ms) {
                return if claim.owner == lease.owner {
                    ClaimDecision::Ours
                } else {
                    ClaimDecision::Theirs(claim.owner.clone())
                };
            }
            saw_stale = true;
        }
        ClaimDecision::Claimable { reclaim: saw_stale }
    }
}

/// Liveness of a `pid<N>` owner: `Some(exists)` on Linux, `None` when
/// the owner id is not pid-shaped (TTL applies instead). Pid reuse can
/// in principle resurrect a dead owner's lease; the TTL tier and the
/// idempotence of cell computation bound the damage to one duplicated
/// cell.
fn pid_alive(owner: &str) -> Option<bool> {
    let n: u32 = owner.strip_prefix("pid")?.parse().ok()?;
    if cfg!(target_os = "linux") {
        Some(std::path::Path::new(&format!("/proc/{n}")).exists())
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(op: JournalOp, owner: &str, t_ms: u64) -> JournalRecord {
        JournalRecord {
            op,
            owner: owner.into(),
            lease: 0,
            t_ms,
        }
    }

    fn claim(fp: u64, owner: &str, t_ms: u64) -> JournalRecord {
        rec(
            JournalOp::Claim {
                fp,
                attempt: 1,
                reclaim: false,
                label: "t".into(),
            },
            owner,
            t_ms,
        )
    }

    fn lease(owner: &str) -> LeaseConfig {
        LeaseConfig::new(owner.into())
    }

    #[test]
    fn first_live_claim_in_file_order_wins() {
        let state = JournalState::replay(&[claim(1, "a", 100), claim(1, "b", 101)]);
        assert_eq!(state.decide(1, &lease("a"), 150), ClaimDecision::Ours);
        assert_eq!(
            state.decide(1, &lease("b"), 150),
            ClaimDecision::Theirs("a".into())
        );
        assert_eq!(
            state.decide(2, &lease("b"), 150),
            ClaimDecision::Claimable { reclaim: false }
        );
    }

    #[test]
    fn ttl_staleness_makes_a_claim_reclaimable() {
        let state = JournalState::replay(&[claim(1, "a", 100)]);
        let me = lease("b");
        assert_eq!(
            state.decide(1, &me, 100 + me.ttl_ms),
            ClaimDecision::Theirs("a".into()),
            "fresh within the TTL"
        );
        assert_eq!(
            state.decide(1, &me, 101 + me.ttl_ms),
            ClaimDecision::Claimable { reclaim: true },
            "stale past the TTL"
        );
    }

    #[test]
    fn renew_heartbeats_keep_an_owner_fresh() {
        let me = lease("b");
        let late = 101 + me.ttl_ms;
        let state = JournalState::replay(&[claim(1, "a", 100), rec(JournalOp::Renew, "a", late)]);
        assert_eq!(
            state.decide(1, &me, late),
            ClaimDecision::Theirs("a".into())
        );
    }

    #[test]
    fn dead_pid_owner_is_immediately_reclaimable() {
        if !cfg!(target_os = "linux") {
            return;
        }
        // A pid from the unreachable end of the default pid space.
        let state = JournalState::replay(&[claim(1, "pid4194304", 100)]);
        assert_eq!(
            state.decide(1, &lease("b"), 101),
            ClaimDecision::Claimable { reclaim: true },
            "dead pid needs no TTL wait"
        );
        // Our own live pid stays a live claim.
        let own = format!("pid{}", std::process::id());
        let state = JournalState::replay(&[claim(2, &own, 100)]);
        assert_eq!(
            state.decide(2, &lease("b"), u64::MAX / 2),
            ClaimDecision::Theirs(own)
        );
    }

    #[test]
    fn done_and_released_resolve_claims() {
        let cell = Cell::failed_placeholder(&crate::config::SystemConfig::baseline(
            crate::time::IssueRate::GHZ1,
            128,
        ));
        let state = JournalState::replay(&[
            claim(1, "a", 100),
            rec(JournalOp::Done { fp: 1, cell }, "a", 101),
            claim(2, "a", 100),
            rec(JournalOp::Released { fp: 2 }, "a", 102),
            claim(3, "a", 100),
            rec(
                JournalOp::Failed {
                    fp: 3,
                    error: "boom".into(),
                },
                "a",
                103,
            ),
        ]);
        assert_eq!(state.done_cell(1), Some(cell));
        assert_eq!(state.cells[&1].done_count, 1);
        assert_eq!(
            state.decide(2, &lease("b"), 104),
            ClaimDecision::Claimable { reclaim: false },
            "released claims are free again"
        );
        assert_eq!(
            state.decide(3, &lease("b"), 104),
            ClaimDecision::Claimable { reclaim: false },
            "failed cells may be recomputed"
        );
        assert_eq!(state.cells[&3].failed, 1);
    }
}
