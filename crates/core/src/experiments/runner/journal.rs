//! The durable cell journal: an append-only JSONL file (`journal.jsonl`
//! next to `cells.json`) recording every cell-state transition of a
//! sweep, so a killed `repro` process resumes exactly where it left off
//! and N processes can drain one grid cooperatively.
//!
//! ## Record format
//!
//! One JSON object per line, wrapping the payload with an FNV-1a
//! checksum of its compact rendering:
//!
//! ```text
//! {"sum":<fnv1a(rec.compact())>,"rec":{"op":"claim","fp":…,"owner":…,…}}
//! ```
//!
//! Ops: `open` (one per journal session), `claim` (+`reclaim` flag when
//! taking over a stale lease), `done` (carries the full cell body — the
//! journal, not `cells.json`, is the incremental durable store), `failed`,
//! `stalled` (watchdog flagged, informational), `released` (graceful
//! shutdown gave the claim back), and `renew` (lease heartbeat).
//!
//! ## Durability and recovery
//!
//! Every append is a single `write_all` of one whole line on an
//! `O_APPEND` handle followed by `sync_data`, so concurrent writers
//! interleave at line granularity and a crash can tear at most the final
//! line. [`Journal::open`] scans the file, truncates a torn tail, and
//! skips (but counts) any mid-file line whose checksum fails — one
//! rotten record never discards its neighbours.

use crate::error::CacheIoError;
use crate::experiments::common::Cell;
use rampage_json::{obj, Json, ToJson};
use std::fs::OpenOptions;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// 64-bit FNV-1a (same function the cell cache uses for its checksums).
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Milliseconds since the Unix epoch — lease freshness timestamps.
/// Wall-clock is legitimate here: the journal lives in the runner's
/// reporting/persistence layer, never in a simulated path.
pub(crate) fn wall_ms() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

/// One decoded journal record.
#[derive(Debug, Clone)]
pub struct JournalRecord {
    /// Which transition this records.
    pub op: JournalOp,
    /// The recording process's owner id.
    pub owner: String,
    /// Lease number at the time of the record (monotonic per owner).
    pub lease: u64,
    /// Wall-clock milliseconds since the epoch when appended.
    pub t_ms: u64,
}

/// The operations a journal line can record.
#[derive(Debug, Clone)]
pub enum JournalOp {
    /// A process opened the journal (one per session).
    Open,
    /// A cell was claimed for computation.
    Claim {
        /// [`Job::fingerprint`](crate::experiments::Job::fingerprint).
        fp: u64,
        /// 1-based claim attempt for this fingerprint.
        attempt: u32,
        /// Whether this claim took over a stale lease.
        reclaim: bool,
        /// The batch label the claim was made under.
        label: String,
    },
    /// A cell finished; the full body rides along so resume can seed the
    /// cache without `cells.json`.
    Done {
        /// The finished cell's fingerprint.
        fp: u64,
        /// The computed cell.
        cell: Cell,
    },
    /// A cell failed deterministically (recorded, claim resolved).
    Failed {
        /// The failed cell's fingerprint.
        fp: u64,
        /// Rendered error.
        error: String,
    },
    /// The watchdog flagged an over-budget cell (informational; the
    /// owner keeps its claim while retrying).
    Stalled {
        /// The flagged cell's fingerprint.
        fp: u64,
        /// Which attempt was over budget.
        attempt: u32,
    },
    /// A graceful shutdown gave an unfinished claim back.
    Released {
        /// The released cell's fingerprint.
        fp: u64,
    },
    /// Lease heartbeat (no cell).
    Renew,
}

impl JournalRecord {
    fn to_payload(&self) -> Json {
        let mut pairs: Vec<(String, Json)> = vec![("op".into(), self.op_name().to_json())];
        match &self.op {
            JournalOp::Open | JournalOp::Renew => {}
            JournalOp::Claim {
                fp,
                attempt,
                reclaim,
                label,
            } => {
                pairs.push(("fp".into(), fp.to_json()));
                pairs.push(("attempt".into(), attempt.to_json()));
                pairs.push(("reclaim".into(), reclaim.to_json()));
                pairs.push(("label".into(), label.as_str().to_json()));
            }
            JournalOp::Done { fp, cell } => {
                pairs.push(("fp".into(), fp.to_json()));
                pairs.push(("cell".into(), cell.to_json()));
            }
            JournalOp::Failed { fp, error } => {
                pairs.push(("fp".into(), fp.to_json()));
                pairs.push(("error".into(), error.as_str().to_json()));
            }
            JournalOp::Stalled { fp, attempt } => {
                pairs.push(("fp".into(), fp.to_json()));
                pairs.push(("attempt".into(), attempt.to_json()));
            }
            JournalOp::Released { fp } => {
                pairs.push(("fp".into(), fp.to_json()));
            }
        }
        pairs.push(("owner".into(), self.owner.as_str().to_json()));
        pairs.push(("lease".into(), self.lease.to_json()));
        pairs.push(("t_ms".into(), self.t_ms.to_json()));
        Json::Obj(pairs)
    }

    fn op_name(&self) -> &'static str {
        match &self.op {
            JournalOp::Open => "open",
            JournalOp::Claim { .. } => "claim",
            JournalOp::Done { .. } => "done",
            JournalOp::Failed { .. } => "failed",
            JournalOp::Stalled { .. } => "stalled",
            JournalOp::Released { .. } => "released",
            JournalOp::Renew => "renew",
        }
    }

    fn from_payload(doc: &Json) -> Option<JournalRecord> {
        let op_name = doc.get("op")?.as_str()?;
        let fp = || doc.get("fp").and_then(Json::as_u64);
        let op = match op_name {
            "open" => JournalOp::Open,
            "renew" => JournalOp::Renew,
            "claim" => JournalOp::Claim {
                fp: fp()?,
                attempt: doc.get("attempt")?.as_u64()? as u32,
                reclaim: doc.get("reclaim")?.as_bool()?,
                label: doc.get("label")?.as_str()?.to_string(),
            },
            "done" => JournalOp::Done {
                fp: fp()?,
                cell: Cell::from_json(doc.get("cell")?)?,
            },
            "failed" => JournalOp::Failed {
                fp: fp()?,
                error: doc.get("error")?.as_str()?.to_string(),
            },
            "stalled" => JournalOp::Stalled {
                fp: fp()?,
                attempt: doc.get("attempt")?.as_u64()? as u32,
            },
            "released" => JournalOp::Released { fp: fp()? },
            _ => return None,
        };
        Some(JournalRecord {
            op,
            owner: doc.get("owner")?.as_str()?.to_string(),
            lease: doc.get("lease")?.as_u64()?,
            t_ms: doc.get("t_ms")?.as_u64()?,
        })
    }
}

/// Decode one journal line (checksum envelope + payload).
fn decode_line(line: &str) -> Option<JournalRecord> {
    let doc = Json::parse(line).ok()?;
    let sum = doc.get("sum")?.as_u64()?;
    let rec = doc.get("rec")?;
    if fnv1a(rec.compact().as_bytes()) != sum {
        return None;
    }
    JournalRecord::from_payload(rec)
}

/// What [`Journal::open`] found on disk.
#[derive(Debug, Default, Clone)]
pub struct JournalOpenReport {
    /// Valid records recovered.
    pub records: usize,
    /// Finished cells recoverable from `done` records.
    pub done_cells: usize,
    /// Mid-file lines dropped for a bad checksum or undecodable payload.
    pub corrupt_lines: usize,
    /// Bytes of torn tail truncated away.
    pub truncated_bytes: u64,
}

/// An open journal: an `O_APPEND` writer plus the path for rescans.
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
    file: std::fs::File,
}

impl Journal {
    /// Open (creating if absent) the journal at `path`, recovering a
    /// torn tail: if the file does not end in a valid, checksummed,
    /// newline-terminated record, the trailing fragment is truncated
    /// away before the append handle is opened.
    ///
    /// # Errors
    ///
    /// [`CacheIoError::Io`] on any underlying file I/O failure.
    pub fn open(path: &Path) -> Result<(Journal, JournalOpenReport), CacheIoError> {
        let mut report = JournalOpenReport::default();
        let existing = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => String::new(),
            Err(e) => return Err(CacheIoError::Io(e)),
        };
        // Walk the complete (newline-terminated) lines. A trailing
        // fragment with no newline is a torn append (appends write one
        // whole line at a time, so a crash can only leave a prefix) and
        // is truncated below; a complete line that fails its checksum
        // is disk rot — skipped and counted, but its neighbours kept.
        let mut keep: u64 = 0;
        let mut offset: usize = 0;
        for line in existing.split_inclusive('\n') {
            let end = offset + line.len();
            if line.ends_with('\n') {
                match decode_line(line.trim_end()) {
                    Some(rec) => {
                        if matches!(rec.op, JournalOp::Done { .. }) {
                            report.done_cells += 1;
                        }
                        report.records += 1;
                    }
                    None => report.corrupt_lines += 1,
                }
                keep = end as u64;
            }
            offset = end;
        }
        report.truncated_bytes = (existing.len() as u64).saturating_sub(keep);
        if report.truncated_bytes > 0 {
            let f = OpenOptions::new().write(true).open(path)?;
            f.set_len(keep)?;
            f.sync_data()?;
        }
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok((
            Journal {
                path: path.to_path_buf(),
                file,
            },
            report,
        ))
    }

    /// The journal's on-disk path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The checksummed append helper — the single legitimate write path
    /// to `journal.jsonl` (the `journal-append` lint enforces this).
    /// One whole line per `write_all` on an `O_APPEND` handle, then
    /// `sync_data`, so appends are atomic at line granularity and
    /// durable before the caller proceeds.
    ///
    /// # Errors
    ///
    /// [`CacheIoError::Io`] when the write or sync fails.
    pub fn append(&mut self, rec: &JournalRecord) -> Result<(), CacheIoError> {
        let payload = rec.to_payload();
        let sum = fnv1a(payload.compact().as_bytes());
        let line = obj! { "sum" => sum, "rec" => payload }.compact() + "\n";
        #[cfg(feature = "fault")]
        if crate::experiments::fault::take_die_mid_journal_append() {
            // Simulate a crash mid-append: half the line lands on disk
            // and the process dies. Resume must truncate this tail.
            let cut = (line.len() / 2).max(1);
            let _ = self.file.write_all(&line.as_bytes()[..cut]);
            let _ = self.file.sync_data();
            std::process::exit(crate::experiments::fault::INJECTED_CRASH_EXIT);
        }
        self.file.write_all(line.as_bytes())?;
        self.file.sync_data()?;
        Ok(())
    }

    /// Re-read every currently valid record from disk (other processes
    /// may have appended since open). Torn or rotten lines are skipped,
    /// never truncated — a concurrent writer may be mid-append.
    ///
    /// # Errors
    ///
    /// [`CacheIoError::Io`] when the journal cannot be read at all.
    pub fn scan(&self) -> Result<Vec<JournalRecord>, CacheIoError> {
        scan_path(&self.path)
    }
}

/// Read every valid record at `path` (standalone: tests and telemetry
/// inspect journals without opening an append handle).
///
/// # Errors
///
/// [`CacheIoError::Io`] when the file cannot be read (a missing file is
/// an empty journal, not an error).
pub fn scan_path(path: &Path) -> Result<Vec<JournalRecord>, CacheIoError> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(CacheIoError::Io(e)),
    };
    Ok(text.lines().filter_map(decode_line).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};

    fn scratch(name: &str) -> PathBuf {
        static N: AtomicU32 = AtomicU32::new(0);
        let dir = std::env::temp_dir().join(format!(
            "rampage-journal-{}-{name}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::SeqCst)
        ));
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        dir
    }

    fn rec(op: JournalOp) -> JournalRecord {
        JournalRecord {
            op,
            owner: "t".into(),
            lease: 1,
            t_ms: 42,
        }
    }

    #[test]
    fn records_roundtrip_through_the_file() {
        let path = scratch("roundtrip").join("journal.jsonl");
        let cell = Cell::failed_placeholder(&crate::config::SystemConfig::baseline(
            crate::time::IssueRate::GHZ1,
            128,
        ));
        {
            let (mut j, report) = Journal::open(&path).expect("open");
            assert_eq!(report.records, 0);
            j.append(&rec(JournalOp::Open)).expect("append");
            j.append(&rec(JournalOp::Claim {
                fp: 7,
                attempt: 1,
                reclaim: false,
                label: "table3".into(),
            }))
            .expect("append");
            j.append(&rec(JournalOp::Done { fp: 7, cell }))
                .expect("append");
        }
        let (j, report) = Journal::open(&path).expect("reopen");
        assert_eq!(report.records, 3);
        assert_eq!(report.done_cells, 1);
        assert_eq!(report.corrupt_lines, 0);
        assert_eq!(report.truncated_bytes, 0);
        let recs = j.scan().expect("scan");
        assert_eq!(recs.len(), 3);
        match &recs[2].op {
            JournalOp::Done { fp, cell: c } => {
                assert_eq!(*fp, 7);
                assert_eq!(*c, cell);
            }
            other => panic!("expected done, got {other:?}"),
        }
    }

    #[test]
    fn torn_tail_is_truncated_on_open() {
        let path = scratch("torn").join("journal.jsonl");
        {
            let (mut j, _) = Journal::open(&path).expect("open");
            j.append(&rec(JournalOp::Open)).expect("append");
            j.append(&rec(JournalOp::Renew)).expect("append");
        }
        let clean_len = std::fs::metadata(&path).expect("meta").len();
        // Tear: half a record, no newline.
        let mut f = OpenOptions::new().append(true).open(&path).expect("open");
        f.write_all(b"{\"sum\":123,\"rec\":{\"op\":\"cl")
            .expect("tear");
        drop(f);
        let (_, report) = Journal::open(&path).expect("recover");
        assert_eq!(report.records, 2);
        assert!(report.truncated_bytes > 0);
        assert_eq!(std::fs::metadata(&path).expect("meta").len(), clean_len);
    }

    #[test]
    fn mid_file_rot_is_skipped_not_truncated() {
        let path = scratch("rot").join("journal.jsonl");
        {
            let (mut j, _) = Journal::open(&path).expect("open");
            j.append(&rec(JournalOp::Open)).expect("append");
        }
        // A rotten full line, then a valid record after it.
        let mut f = OpenOptions::new().append(true).open(&path).expect("open");
        f.write_all(b"{\"sum\":1,\"rec\":{\"op\":\"renew\"}}\n")
            .expect("rot");
        drop(f);
        {
            let (mut j, report) = Journal::open(&path).expect("reopen");
            assert_eq!(report.corrupt_lines, 1);
            j.append(&rec(JournalOp::Renew)).expect("append");
        }
        let (j, report) = Journal::open(&path).expect("final open");
        assert_eq!(report.records, 2, "records before and after the rot");
        assert_eq!(report.corrupt_lines, 1);
        assert_eq!(j.scan().expect("scan").len(), 2);
    }
}
