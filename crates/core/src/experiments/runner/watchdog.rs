//! The hung-cell watchdog: flags cells whose wall time blows past a
//! budget derived from the sweep's own running latency histogram.
//!
//! The budget for attempt `a` is `max(p99 × multiplier, floor) × 2^(a-1)`
//! (capped): attempt-indexed deterministic backoff, never clock-seeded.
//! An over-budget cell gets its cancel token set and is journaled
//! `stalled`; cancellation is cooperative — simulation code never polls
//! wall-clock, so only cooperative points (the `fault` feature's
//! injected hangs, and any future runner-level yield points) observe the
//! token and unwind with [`STALL_PANIC_PREFIX`]. The runner retries a
//! stalled cell up to `max_stall_retries` times, then records a
//! [`FailedCell`](super::FailedCell). A cell wedged in a loop with no
//! cooperative point cannot be killed in-process; it stays flagged in
//! telemetry and, in a multi-process drain, its lease goes stale so
//! another process can reclaim it.
//!
//! Everything here is wall-clock-side reporting machinery (the lint
//! timing allowlist covers `runner/`); no simulated state depends on it.

use crate::obs::Hist;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Instant;

/// Panic-message prefix of a cooperative stall unwind; the runner
/// classifies these as watchdog stalls (retried on the stall budget)
/// rather than ordinary cell panics.
pub const STALL_PANIC_PREFIX: &str = "stalled by watchdog";

/// Is this captured panic message a cooperative stall unwind?
pub(crate) fn is_stall_panic(message: &str) -> bool {
    message.starts_with(STALL_PANIC_PREFIX)
}

/// Watchdog policy knobs.
#[derive(Debug, Clone)]
pub struct WatchdogConfig {
    /// Budget = p99 of completed cells × this.
    pub multiplier: f64,
    /// Budget floor in milliseconds (also the budget while the
    /// histogram is empty).
    pub floor_ms: u64,
    /// Monitor poll interval in milliseconds.
    pub poll_ms: u64,
    /// Stalled attempts tolerated before the cell is recorded failed.
    pub max_stall_retries: u32,
}

impl Default for WatchdogConfig {
    fn default() -> Self {
        WatchdogConfig {
            multiplier: 8.0,
            floor_ms: 30_000,
            poll_ms: 50,
            max_stall_retries: 1,
        }
    }
}

/// One attempt currently executing on a worker.
#[derive(Debug)]
struct InFlight {
    fp: u64,
    attempt: u32,
    started: Instant,
    cancel: Arc<AtomicBool>,
    flagged: bool,
}

/// Lock a mutex, recovering from poisoning (same policy as the runner:
/// the registry is reporting state, a lost update costs nothing).
fn lock_recovering<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// The watchdog: a registry of in-flight attempts plus the completed-
/// cell latency histogram its budgets derive from.
#[derive(Debug)]
pub struct Watchdog {
    cfg: WatchdogConfig,
    /// Completed-attempt wall millis (successes only, so hangs cannot
    /// inflate their own budget).
    hist: Mutex<Hist>,
    inflight: Mutex<Vec<InFlight>>,
    stalled: AtomicU64,
}

impl Watchdog {
    /// A watchdog with the given policy.
    pub fn new(cfg: WatchdogConfig) -> Self {
        Watchdog {
            cfg,
            hist: Mutex::new(Hist::new()),
            inflight: Mutex::new(Vec::new()),
            stalled: AtomicU64::new(0),
        }
    }

    /// The policy in force.
    pub fn config(&self) -> &WatchdogConfig {
        &self.cfg
    }

    /// Cells flagged stalled so far (telemetry).
    pub fn stalled_total(&self) -> u64 {
        self.stalled.load(Ordering::Relaxed)
    }

    /// The current per-attempt budget in milliseconds: p99 of completed
    /// attempts × multiplier (floored), doubled per retry (bounded
    /// deterministic backoff — indexed by attempt, not by any clock).
    pub fn budget_ms(&self, attempt: u32) -> u64 {
        let p99 = lock_recovering(&self.hist).quantile(0.99);
        let base = ((p99 as f64 * self.cfg.multiplier) as u64).max(self.cfg.floor_ms);
        base.saturating_mul(1u64 << attempt.saturating_sub(1).min(3))
    }

    /// Register an attempt; the returned token is set when the attempt
    /// goes over budget.
    pub(crate) fn register(&self, fp: u64, attempt: u32) -> Arc<AtomicBool> {
        let cancel = Arc::new(AtomicBool::new(false));
        lock_recovering(&self.inflight).push(InFlight {
            fp,
            attempt,
            started: Instant::now(),
            cancel: Arc::clone(&cancel),
            flagged: false,
        });
        cancel
    }

    /// Unregister an attempt; successful attempts feed the histogram.
    pub(crate) fn complete(&self, fp: u64, attempt: u32, success: bool) {
        let mut inflight = lock_recovering(&self.inflight);
        if let Some(ix) = inflight
            .iter()
            .position(|f| f.fp == fp && f.attempt == attempt)
        {
            let entry = inflight.swap_remove(ix);
            if success {
                let ms = entry.started.elapsed().as_millis() as u64;
                lock_recovering(&self.hist).record(ms.max(1));
            }
        }
    }

    /// One monitor sweep: flag every over-budget attempt (once), set its
    /// cancel token, and hand it to `on_stall(fp, attempt)` for
    /// journaling.
    pub(crate) fn poll(&self, mut on_stall: impl FnMut(u64, u32)) {
        let mut stalls = Vec::new();
        {
            let mut inflight = lock_recovering(&self.inflight);
            for entry in inflight.iter_mut() {
                if entry.flagged {
                    continue;
                }
                let elapsed_ms = entry.started.elapsed().as_millis() as u64;
                if elapsed_ms > self.budget_ms(entry.attempt) {
                    entry.flagged = true;
                    entry.cancel.store(true, Ordering::SeqCst);
                    stalls.push((entry.fp, entry.attempt));
                }
            }
        }
        for (fp, attempt) in stalls {
            self.stalled.fetch_add(1, Ordering::Relaxed);
            on_stall(fp, attempt);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_backoff_is_attempt_indexed_and_bounded() {
        let wd = Watchdog::new(WatchdogConfig {
            multiplier: 2.0,
            floor_ms: 100,
            poll_ms: 1,
            max_stall_retries: 1,
        });
        // Empty histogram: the floor applies, doubled per attempt,
        // capped at 8x.
        assert_eq!(wd.budget_ms(1), 100);
        assert_eq!(wd.budget_ms(2), 200);
        assert_eq!(wd.budget_ms(4), 800);
        assert_eq!(wd.budget_ms(40), 800, "backoff is bounded");
        // Completed cells raise the budget through the p99 (the slow
        // tail must hold more than 1% of samples to move it).
        for _ in 0..50 {
            let t = wd.register(7, 1);
            wd.complete(7, 1, true);
            assert!(!t.load(Ordering::SeqCst));
        }
        for _ in 0..10 {
            lock_recovering(&wd.hist).record(400);
        }
        assert!(wd.budget_ms(1) >= 400, "p99 x multiplier grows the budget");
    }

    #[test]
    fn poll_flags_over_budget_attempts_once() {
        let wd = Watchdog::new(WatchdogConfig {
            multiplier: 1.0,
            floor_ms: 0,
            poll_ms: 1,
            max_stall_retries: 1,
        });
        let token = wd.register(9, 1);
        std::thread::sleep(std::time::Duration::from_millis(5));
        let mut stalls = Vec::new();
        wd.poll(|fp, attempt| stalls.push((fp, attempt)));
        wd.poll(|fp, attempt| stalls.push((fp, attempt)));
        assert_eq!(stalls, vec![(9, 1)], "flagged exactly once");
        assert!(token.load(Ordering::SeqCst), "cancel token set");
        assert_eq!(wd.stalled_total(), 1);
        // Failed attempts never feed the histogram.
        wd.complete(9, 1, false);
        assert_eq!(lock_recovering(&wd.hist).count(), 0);
    }
}
