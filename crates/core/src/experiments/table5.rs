//! Table 5: the "more realistic" 2-way associative L2 with context
//! switches.

use crate::config::SystemConfig;
use crate::experiments::common::{sweep_sizes, Cell, Workload};
use crate::experiments::runner::SweepRunner;
use crate::report::TableBuilder;
use crate::time::IssueRate;
use rampage_json::{obj, Json, ToJson};

/// The Table 5 sweep.
#[derive(Debug, Clone)]
pub struct Table5 {
    /// Block sizes swept.
    pub sizes: Vec<u64>,
    /// Issue rates swept (MHz).
    pub rates_mhz: Vec<u32>,
    /// `cells[rate][size]`.
    pub cells: Vec<Vec<Cell>>,
}

/// Run the sweep: 2-way random-replacement L2, context-switch trace at
/// quantum boundaries (but no switches on misses — §4.7).
pub fn run(
    runner: &SweepRunner,
    workload: &Workload,
    rates: &[IssueRate],
    sizes: &[u64],
) -> Table5 {
    let cells = rates
        .iter()
        .map(|&rate| {
            sweep_sizes(
                runner,
                "table5",
                SystemConfig::two_way,
                rate,
                sizes,
                workload,
            )
        })
        .collect();
    Table5 {
        sizes: sizes.to_vec(),
        rates_mhz: rates.iter().map(|r| r.mhz()).collect(),
        cells,
    }
}

impl ToJson for Table5 {
    fn to_json(&self) -> Json {
        obj! {
            "sizes" => self.sizes,
            "rates_mhz" => self.rates_mhz,
            "cells" => self.cells,
        }
    }
}

impl Table5 {
    /// Best time and its block size at a rate index.
    pub fn best(&self, rate_idx: usize) -> (u64, f64) {
        match self.cells[rate_idx]
            .iter()
            .map(|c| (c.unit_bytes, c.seconds))
            .min_by(|a, b| a.1.total_cmp(&b.1))
        {
            Some(best) => best,
            // Sweep invariant: every rate row is built with one cell per
            // size, and the size axis is never empty.
            None => unreachable!("Table5 rows are built non-empty"),
        }
    }

    /// Render like the paper: one row per issue rate.
    pub fn render(&self) -> String {
        let mut header = vec!["issue rate".into()];
        header.extend(self.sizes.iter().map(|s| s.to_string()));
        let mut t = TableBuilder::new(header);
        for (i, &mhz) in self.rates_mhz.iter().enumerate() {
            let mut row = vec![fmt_rate(mhz)];
            row.extend(self.cells[i].iter().map(|c| format!("{:.3}", c.seconds)));
            t.row(row);
        }
        format!(
            "Table 5: run times (s), 2-way associative L2 with context switches\n{}",
            t.render()
        )
    }
}

fn fmt_rate(mhz: u32) -> String {
    if mhz >= 1000 && mhz.is_multiple_of(1000) {
        format!("{} GHz", mhz / 1000)
    } else {
        format!("{mhz} MHz")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_shape_and_render() {
        let w = Workload::quick();
        let t = run(
            &SweepRunner::serial(),
            &w,
            &[IssueRate::MHZ200],
            &[256, 2048],
        );
        assert_eq!(t.cells.len(), 1);
        assert_eq!(t.cells[0].len(), 2);
        assert!(t.cells[0][0].seconds > 0.0);
        let (_, best) = t.best(0);
        assert!(best <= t.cells[0][0].seconds);
        assert!(t.render().contains("2-way"));
    }
}
