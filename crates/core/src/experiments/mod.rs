//! Every table and figure of the paper as a parameter sweep.
//!
//! Each submodule regenerates one artifact of the evaluation section:
//!
//! | Module | Paper artifact |
//! |---|---|
//! | [`table1`] | Table 1 — bandwidth efficiency of Direct Rambus vs disk |
//! | [`table2`] | Table 2 — the benchmark suite |
//! | [`table3`] | Table 3 — baseline DM L2 vs RAMpage run times |
//! | [`figures`] | Figures 2–4 — time-per-level fractions and software overhead |
//! | [`table4`] | Table 4 — RAMpage with context switches on misses |
//! | [`table5`] | Table 5 — 2-way associative L2 with context switches |
//! | [`fig5`] | Figure 5 — RAMpage-with-switches vs 2-way L2, relative |
//! | [`ablations`] | §6.3 future work — big TLB, aggressive L1, pipelined Rambus, standby list, SDRAM |
//! | [`dram_backend`] | Flat-vs-banked DRAM error quantification (ROADMAP item 1) |
//! | [`per_benchmark`] | §6.3's per-application page-size study (the variable-page-size case) |
//! | [`anatomy`] | 3C classification of L2 misses — the conflicts full associativity removes |
//! | [`timeslice`] | §5.5's time-slice conjecture: reference-based vs real-time quanta |
//!
//! All sweeps share [`Workload`] (the interleaved Table 2 suite at a
//! chosen scale) and produce serializable result structs with `render()`
//! methods that print tables shaped like the paper's.

mod common;
#[cfg(feature = "fault")]
pub mod fault;
mod runner;

pub mod ablations;
pub mod anatomy;
pub mod dram_backend;
pub mod fig5;
pub mod figures;
pub mod grids;
pub mod per_benchmark;
pub mod table1;
pub mod table2;
pub mod table3;
pub mod table4;
pub mod table5;
pub mod timeslice;

pub use common::{
    corpus_source_stats, run_config, run_config_traced, set_trace_dir, sweep_sizes, trace_dir,
    Cell, CorpusSourceStats, Workload, PAPER_SIZES,
};
pub use runner::{
    scan_journal, CacheLoad, CellCache, CellView, ClaimDecision, ClaimView, FailedCell, Job,
    Journal, JournalOp, JournalOpenReport, JournalRecord, JournalState, LeaseConfig,
    ProgressUpdate, SweepRunner, Watchdog, WatchdogConfig, CACHE_FORMAT_VERSION,
    STALL_PANIC_PREFIX,
};
