//! Typed errors for the simulation pipeline.
//!
//! Every failure a sweep can encounter is classified into one of four
//! domains, so the [`SweepRunner`](crate::experiments::SweepRunner) can
//! decide what to do with it (retry, record, quarantine) instead of
//! aborting a multi-hour run:
//!
//! * [`ConfigError`] — a [`SystemConfig`](crate::SystemConfig) that could
//!   never simulate correctly (zero cache sizes, non-power-of-two blocks,
//!   an empty TLB). Caught by [`SystemConfig::validate`](crate::SystemConfig::validate)
//!   before any simulation runs; never retried.
//! * Trace decode — a malformed or truncated trace record
//!   ([`rampage_trace::io::TraceIoError`]).
//! * [`InvariantError`] — a simulation invariant violated at run time
//!   (a `panic!`/`assert!` inside the engine), captured by the runner's
//!   per-cell isolation with a panic-site summary. Retried once, then
//!   recorded as a failed cell.
//! * [`CacheIoError`] — the persisted cell cache (`cells.json`) was
//!   unreadable, corrupt, or version-mismatched. Never fatal: the file is
//!   quarantined and rebuilt.

use rampage_trace::io::TraceIoError;
use std::fmt;
use std::io;

/// Any error the simulation pipeline can surface.
#[derive(Debug)]
pub enum RampageError {
    /// Configuration validation failed (never retried).
    Config(ConfigError),
    /// Trace decode or trace I/O failed.
    Trace(TraceIoError),
    /// A simulation invariant was violated (a caught panic).
    Invariant(InvariantError),
    /// Cell-cache persistence failed.
    CacheIo(CacheIoError),
}

impl fmt::Display for RampageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RampageError::Config(e) => write!(f, "invalid configuration: {e}"),
            RampageError::Trace(e) => write!(f, "trace error: {e}"),
            RampageError::Invariant(e) => write!(f, "simulation invariant violated: {e}"),
            RampageError::CacheIo(e) => write!(f, "cell-cache error: {e}"),
        }
    }
}

impl std::error::Error for RampageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RampageError::Config(e) => Some(e),
            RampageError::Trace(e) => Some(e),
            RampageError::Invariant(_) => None,
            RampageError::CacheIo(e) => Some(e),
        }
    }
}

impl From<ConfigError> for RampageError {
    fn from(e: ConfigError) -> Self {
        RampageError::Config(e)
    }
}

impl From<TraceIoError> for RampageError {
    fn from(e: TraceIoError) -> Self {
        RampageError::Trace(e)
    }
}

impl From<InvariantError> for RampageError {
    fn from(e: InvariantError) -> Self {
        RampageError::Invariant(e)
    }
}

impl From<CacheIoError> for RampageError {
    fn from(e: CacheIoError) -> Self {
        RampageError::CacheIo(e)
    }
}

/// A [`SystemConfig`](crate::SystemConfig) that cannot be simulated.
///
/// Every variant's `Display` names the offending parameter, its value,
/// and what a valid value looks like, so a sweep author can fix the
/// config from the failure report alone.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// A size parameter is zero.
    ZeroSize {
        /// Which parameter (e.g. "L1 cache size").
        what: &'static str,
    },
    /// A size parameter must be a power of two and is not.
    NotPowerOfTwo {
        /// Which parameter.
        what: &'static str,
        /// The offending value.
        value: u64,
    },
    /// A block size exceeds its cache's capacity.
    BlockExceedsCache {
        /// Which cache.
        what: &'static str,
        /// The block size.
        block: u64,
        /// The cache capacity.
        size: u64,
    },
    /// Associativity is zero or not a power of two.
    BadWays {
        /// Which cache.
        what: &'static str,
        /// The offending way count.
        ways: u32,
    },
    /// The TLB has zero entries (sets × ways == 0).
    EmptyTlb,
    /// The TLB set count is not a power of two (set indexing is a mask).
    TlbSetsNotPowerOfTwo {
        /// The offending set count.
        sets: usize,
    },
    /// A RAMpage page size outside the valid range (power of two ≥ 8).
    BadPageSize {
        /// The offending value.
        value: u64,
    },
    /// The scheduling quantum is zero references.
    ZeroQuantum,
    /// A time-based quantum of zero picoseconds.
    ZeroTimeQuantum,
    /// No DRAM channels configured.
    ZeroDramChannels,
    /// A zero-capacity victim cache or write buffer.
    ZeroCapacity {
        /// Which optional structure.
        what: &'static str,
    },
    /// The banked DRAM backend's geometry or timing is unusable.
    Dram(rampage_dram::DramConfigError),
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::ZeroSize { what } => {
                write!(f, "{what} is zero; use a power of two (e.g. 16384)")
            }
            ConfigError::NotPowerOfTwo { what, value } => write!(
                f,
                "{what} is {value}, which is not a power of two; \
                 the paper sweeps 128/256/512/1024/2048/4096"
            ),
            ConfigError::BlockExceedsCache { what, block, size } => write!(
                f,
                "{what} block size {block} exceeds its capacity {size}; \
                 shrink the block or grow the cache"
            ),
            ConfigError::BadWays { what, ways } => write!(
                f,
                "{what} associativity {ways} is invalid; \
                 use a non-zero power of two (1 = direct-mapped)"
            ),
            ConfigError::EmptyTlb => write!(
                f,
                "TLB has 0 entries; the paper's default is 64 \
                 (sets=1, ways=64 — fully associative)"
            ),
            ConfigError::TlbSetsNotPowerOfTwo { sets } => write!(
                f,
                "TLB set count {sets} is not a power of two; \
                 set indexing requires one (use 1 for fully associative)"
            ),
            ConfigError::BadPageSize { value } => write!(
                f,
                "RAMpage page size {value} is invalid; \
                 use a power of two of at least 8 bytes (paper: 128–4096)"
            ),
            ConfigError::ZeroQuantum => write!(
                f,
                "scheduling quantum is 0 references; the paper uses 500000"
            ),
            ConfigError::ZeroTimeQuantum => {
                write!(f, "time-based quantum is 0 ps; leave it None or set > 0")
            }
            ConfigError::ZeroDramChannels => {
                write!(f, "0 DRAM channels; the paper's configuration uses 1")
            }
            ConfigError::ZeroCapacity { what } => {
                write!(
                    f,
                    "{what} has 0 entries; omit it (None) or give it capacity"
                )
            }
            ConfigError::Dram(e) => write!(f, "banked DRAM backend: {e}"),
        }
    }
}

impl std::error::Error for ConfigError {}

/// A violated simulation invariant: the summary of a panic caught by the
/// runner's per-cell isolation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvariantError {
    /// The panic message.
    pub message: String,
    /// `file:line:column` of the panic site, when the panic hook saw it.
    pub location: String,
    /// A short backtrace summary (frames inside this workspace), possibly
    /// empty when capture was unavailable.
    pub backtrace: String,
}

impl fmt::Display for InvariantError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.location.is_empty() {
            write!(f, "{}", self.message)
        } else {
            write!(f, "{} (at {})", self.message, self.location)
        }
    }
}

impl std::error::Error for InvariantError {}

/// A failure loading or saving the persisted cell cache.
#[derive(Debug)]
pub enum CacheIoError {
    /// Underlying file I/O failed.
    Io(io::Error),
    /// The file is not valid JSON.
    Parse(String),
    /// The header is missing or the wrong shape.
    BadHeader(&'static str),
    /// The format version does not match this binary's.
    VersionMismatch {
        /// Version found in the file.
        found: u64,
        /// Version this binary writes.
        expected: u64,
    },
    /// A cell's stored checksum does not match its content.
    BadChecksum {
        /// Fingerprint of the offending cell.
        fp: u64,
    },
}

impl fmt::Display for CacheIoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CacheIoError::Io(e) => write!(f, "i/o failure: {e}"),
            CacheIoError::Parse(e) => write!(f, "not valid JSON: {e}"),
            CacheIoError::BadHeader(what) => write!(f, "bad cache header: {what}"),
            CacheIoError::VersionMismatch { found, expected } => write!(
                f,
                "cache format version {found} (this binary writes {expected})"
            ),
            CacheIoError::BadChecksum { fp } => {
                write!(
                    f,
                    "checksum mismatch for cell {fp:#018x} (bit rot or torn write)"
                )
            }
        }
    }
}

impl std::error::Error for CacheIoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CacheIoError::Io(e) => Some(e),
            CacheIoError::Parse(_)
            | CacheIoError::BadHeader(_)
            | CacheIoError::VersionMismatch { .. }
            | CacheIoError::BadChecksum { .. } => None,
        }
    }
}

impl From<io::Error> for CacheIoError {
    fn from(e: io::Error) -> Self {
        CacheIoError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_errors_are_actionable() {
        let e = ConfigError::NotPowerOfTwo {
            what: "L2 block size",
            value: 3000,
        };
        let s = e.to_string();
        assert!(s.contains("3000"), "{s}");
        assert!(s.contains("power of two"), "{s}");
        assert!(s.contains("128"), "suggests valid values: {s}");

        let s = ConfigError::EmptyTlb.to_string();
        assert!(s.contains("64"), "names the paper default: {s}");

        let s = ConfigError::BlockExceedsCache {
            what: "L2",
            block: 8192,
            size: 4096,
        }
        .to_string();
        assert!(s.contains("8192") && s.contains("4096"), "{s}");
    }

    #[test]
    fn rampage_error_wraps_and_displays_domains() {
        let e = RampageError::from(ConfigError::ZeroQuantum);
        assert!(e.to_string().starts_with("invalid configuration"));
        assert!(matches!(e, RampageError::Config(_)));

        let e = RampageError::Invariant(InvariantError {
            message: "victim is mapped".into(),
            location: "rampage.rs:202:9".into(),
            backtrace: String::new(),
        });
        let s = e.to_string();
        assert!(
            s.contains("victim is mapped") && s.contains("rampage.rs:202:9"),
            "{s}"
        );

        let e = RampageError::CacheIo(CacheIoError::VersionMismatch {
            found: 1,
            expected: 2,
        });
        assert!(e.to_string().contains("version 1"));
    }

    #[test]
    fn cache_io_checksum_names_the_cell() {
        let s = CacheIoError::BadChecksum { fp: 0xdead }.to_string();
        assert!(s.contains("0x000000000000dead"), "{s}");
    }
}
