//! Issue rates and cycle arithmetic.

use rampage_dram::Picos;
use std::fmt;

/// The simulated instruction issue rate.
///
/// §4.3 of the paper: "A superscalar CPU is not explicitly modeled. The
/// CPU cycle time used is intended to approximate the effect of a
/// superscalar design, i.e., it is really meant to model the instruction
/// issue rate ... Issue rates of 200 MHz to 4 GHz are simulated to model
/// the growing CPU-DRAM speed gap (cache and SRAM main memory speed are
/// scaled up but DRAM speed is not)."
///
/// Stored in MHz; every rate in [`IssueRate::PAPER_SWEEP`] has an exact
/// integer cycle time in picoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct IssueRate(u32);

impl IssueRate {
    /// 200 MHz — the paper's slowest configuration.
    pub const MHZ200: IssueRate = IssueRate(200);
    /// 500 MHz.
    pub const MHZ500: IssueRate = IssueRate(500);
    /// 1 GHz — the rate §3.5 uses for its worked examples.
    pub const GHZ1: IssueRate = IssueRate(1000);
    /// 2 GHz.
    pub const GHZ2: IssueRate = IssueRate(2000);
    /// 4 GHz — the paper's fastest configuration.
    pub const GHZ4: IssueRate = IssueRate(4000);

    /// The sweep used throughout the experiments ("200 MHz to 4 GHz").
    pub const PAPER_SWEEP: [IssueRate; 5] = [
        IssueRate::MHZ200,
        IssueRate::MHZ500,
        IssueRate::GHZ1,
        IssueRate::GHZ2,
        IssueRate::GHZ4,
    ];

    /// An arbitrary rate in MHz.
    ///
    /// # Panics
    ///
    /// Panics if `mhz` is zero or does not divide 1 000 000 (the cycle
    /// time would not be a whole number of picoseconds and the simulator
    /// would lose exactness).
    pub fn from_mhz(mhz: u32) -> IssueRate {
        assert!(mhz > 0, "zero issue rate");
        assert!(
            1_000_000 % mhz == 0,
            "issue rate {mhz} MHz has a non-integral cycle time in picoseconds"
        );
        IssueRate(mhz)
    }

    /// The rate in MHz.
    pub fn mhz(self) -> u32 {
        self.0
    }

    /// One CPU cycle at this rate.
    pub fn cycle(self) -> Picos {
        Picos(1_000_000 / self.0 as u64)
    }

    /// Convert a cycle count at this rate to simulated seconds.
    pub fn cycles_to_secs(self, cycles: u64) -> f64 {
        cycles as f64 * self.cycle().0 as f64 * 1e-12
    }
}

impl fmt::Display for IssueRate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1000 && self.0.is_multiple_of(1000) {
            write!(f, "{} GHz", self.0 / 1000)
        } else {
            write!(f, "{} MHz", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_times_are_exact() {
        assert_eq!(IssueRate::MHZ200.cycle(), Picos(5000));
        assert_eq!(IssueRate::GHZ1.cycle(), Picos(1000));
        assert_eq!(IssueRate::GHZ4.cycle(), Picos(250));
    }

    #[test]
    fn sweep_is_monotone() {
        let mut prev = 0;
        for r in IssueRate::PAPER_SWEEP {
            assert!(r.mhz() > prev);
            prev = r.mhz();
        }
        assert_eq!(IssueRate::PAPER_SWEEP[0].mhz(), 200);
        assert_eq!(IssueRate::PAPER_SWEEP[4].mhz(), 4000);
    }

    #[test]
    fn seconds_conversion() {
        // 1 billion cycles at 1 GHz = 1 second.
        let s = IssueRate::GHZ1.cycles_to_secs(1_000_000_000);
        assert!((s - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "non-integral")]
    fn rejects_inexact_rates() {
        let _ = IssueRate::from_mhz(3000 - 1);
    }

    #[test]
    fn display() {
        assert_eq!(IssueRate::MHZ200.to_string(), "200 MHz");
        assert_eq!(IssueRate::GHZ4.to_string(), "4 GHz");
        assert_eq!(IssueRate::from_mhz(2500).to_string(), "2500 MHz");
    }
}
