//! An event-driven, bank-aware Direct Rambus channel.
//!
//! This is the high-fidelity counterpart to the flat
//! [`crate::DirectRambus`] arithmetic: transfers decompose through an
//! [`AddressMapping`] into per-bank row accesses, each bank keeps its
//! row buffer ([`Bank`]), and the shared data bus serializes bursts.
//! Two switches trade fidelity back down:
//!
//! * `open_rows` off → closed-page: every access pays tRCD + tCAS and
//!   transfers are not split at row boundaries (the paper's
//!   simplification);
//! * `pipelined` off → strictly serial: a transfer occupies the channel
//!   from command to last datum.
//!
//! With both off and [`BankTiming::paper`] (tRCD + tCAS = 50 ns), the
//! channel reproduces the flat model bit-identically — the invariant
//! the differential conformance suite (`tests/dram_backend.rs`) locks
//! down. With `pipelined` on, the next access's row activation overlaps
//! the in-flight data burst, structurally replacing the flat model's
//! 95 %-of-peak queued-transfer approximation (§5's pipelined
//! extension).

use crate::bank::{Bank, BankedConfig, RowOutcome};
use crate::time::Picos;

/// When a banked transfer starts (first command issues) and completes
/// (last datum arrives).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BankedTransfer {
    /// When the channel begins working on the transfer.
    pub start: Picos,
    /// When the last byte arrives.
    pub done: Picos,
}

/// Row-outcome counters, exposed for reports and tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RowStats {
    /// Accesses that found their row open.
    pub hits: u64,
    /// Accesses to an idle bank.
    pub misses: u64,
    /// Accesses that had to close another row first.
    pub conflicts: u64,
}

/// A bank-aware Direct Rambus channel with occupancy queueing.
#[derive(Debug, Clone)]
pub struct BankedChannel {
    cfg: BankedConfig,
    banks: Vec<Bank>,
    bus_free: Picos,
    transfers: u64,
    bytes: u64,
    busy_time: Picos,
    rows: RowStats,
}

impl BankedChannel {
    /// A channel over the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`BankedConfig::validate`];
    /// validate upstream (e.g. `SystemConfig::validate`) to get a typed
    /// error instead.
    pub fn new(cfg: BankedConfig) -> Self {
        if let Err(e) = cfg.validate() {
            panic!("invalid banked DRAM config: {e}");
        }
        BankedChannel {
            cfg,
            banks: vec![Bank::default(); cfg.mapping.banks() as usize],
            bus_free: Picos::ZERO,
            transfers: 0,
            bytes: 0,
            busy_time: Picos::ZERO,
            rows: RowStats::default(),
        }
    }

    /// The configuration behind the channel.
    pub fn config(&self) -> BankedConfig {
        self.cfg
    }

    /// When the data bus next becomes free.
    pub fn bus_free(&self) -> Picos {
        self.bus_free
    }

    /// Total transfers scheduled.
    pub fn transfers(&self) -> u64 {
        self.transfers
    }

    /// Total bytes moved.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Total time spent between first command and last datum.
    pub fn busy_time(&self) -> Picos {
        self.busy_time
    }

    /// Row-buffer outcome counters.
    pub fn row_stats(&self) -> RowStats {
        self.rows
    }

    fn count(&mut self, outcome: RowOutcome) {
        match outcome {
            RowOutcome::Hit => self.rows.hits += 1,
            RowOutcome::Miss => self.rows.misses += 1,
            RowOutcome::Conflict => self.rows.conflicts += 1,
        }
    }

    /// Schedule a transfer of `bytes` starting at byte address `addr`,
    /// requested at absolute time `now`.
    pub fn request(&mut self, now: Picos, addr: u64, bytes: u64) -> BankedTransfer {
        self.transfers += 1;
        self.bytes += bytes;
        if bytes == 0 {
            // Mirror the flat model: a zero-byte transfer takes no time
            // but still claims its start slot (and, like the flat
            // channel, drags the bus-free mark up to it).
            let start = now.max(self.bus_free);
            self.bus_free = start;
            return BankedTransfer { start, done: start };
        }
        let t = if self.cfg.pipelined {
            self.request_pipelined(now, addr, bytes)
        } else {
            self.request_serial(now, addr, bytes)
        };
        self.busy_time += t.done - t.start;
        t
    }

    /// Serial mode: the channel is held from first command to last
    /// datum; a queued transfer waits for the bus wholesale. Closed-page
    /// serial is exactly the flat model's `max(now, busy) + 50 ns +
    /// data` arithmetic.
    fn request_serial(&mut self, now: Picos, addr: u64, bytes: u64) -> BankedTransfer {
        let start = now.max(self.bus_free);
        let mut t = start;
        for (chunk_addr, chunk_len) in RowChunks::new(&self.cfg, addr, bytes) {
            let coord = self.cfg.mapping.decompose(chunk_addr);
            let outcome = self.banks[coord.bank as usize].access(coord.row, self.cfg.open_rows);
            self.count(outcome);
            let done = t + self.cfg.timing.overhead(outcome) + self.cfg.timing.data_time(chunk_len);
            self.banks[coord.bank as usize].ready_at = done;
            t = done;
        }
        self.bus_free = t;
        BankedTransfer { start, done: t }
    }

    /// Pipelined mode: each chunk's row activation starts as soon as its
    /// bank is ready — possibly under the previous chunk's (or previous
    /// transfer's) data burst — and only the data bus serializes.
    fn request_pipelined(&mut self, now: Picos, addr: u64, bytes: u64) -> BankedTransfer {
        let mut start = None;
        let mut bus = self.bus_free;
        for (chunk_addr, chunk_len) in RowChunks::new(&self.cfg, addr, bytes) {
            let coord = self.cfg.mapping.decompose(chunk_addr);
            let bank = &mut self.banks[coord.bank as usize];
            let cmd_at = now.max(bank.ready_at);
            let outcome = bank.access(coord.row, self.cfg.open_rows);
            let ready = cmd_at + self.cfg.timing.overhead(outcome);
            let data_start = bus.max(ready);
            let done = data_start + self.cfg.timing.data_time(chunk_len);
            bank.ready_at = done;
            bus = done;
            self.count(outcome);
            if start.is_none() {
                start = Some(cmd_at);
            }
        }
        self.bus_free = bus;
        BankedTransfer {
            start: start.unwrap_or(now),
            done: bus,
        }
    }
}

/// Iterator over the row-boundary chunks of a transfer. In closed-page
/// mode the transfer is one chunk (the paper's flat simplification);
/// with open-row modeling a transfer splits wherever it crosses a row.
struct RowChunks {
    addr: u64,
    remaining: u64,
    row_bytes: u64,
    split: bool,
}

impl RowChunks {
    fn new(cfg: &BankedConfig, addr: u64, bytes: u64) -> Self {
        RowChunks {
            addr,
            remaining: bytes,
            row_bytes: cfg.mapping.row_bytes(),
            split: cfg.open_rows,
        }
    }
}

impl Iterator for RowChunks {
    type Item = (u64, u64);

    fn next(&mut self) -> Option<(u64, u64)> {
        if self.remaining == 0 {
            return None;
        }
        let len = if self.split {
            let into_row = self.addr & (self.row_bytes - 1);
            self.remaining.min(self.row_bytes - into_row)
        } else {
            self.remaining
        };
        let chunk = (self.addr, len);
        self.addr = self.addr.wrapping_add(len);
        self.remaining -= len;
        Some(chunk)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bank::BankTiming;
    use crate::device::MemoryDevice;
    use crate::mapping::AddressMapping;
    use crate::rambus::DirectRambus;

    #[test]
    fn flat_equivalent_matches_direct_rambus_when_idle() {
        let flat = DirectRambus::non_pipelined();
        let mut ch = BankedChannel::new(BankedConfig::flat_equivalent());
        for bytes in [2u64, 32, 128, 512, 4096] {
            let t = ch.request(ch.bus_free(), 0xbeef_0000, bytes);
            assert_eq!(t.done - t.start, flat.transfer_time(bytes), "{bytes} B");
        }
    }

    #[test]
    fn flat_equivalent_queues_like_the_flat_channel() {
        let flat = DirectRambus::non_pipelined();
        let mut ch = BankedChannel::new(BankedConfig::flat_equivalent());
        let t1 = ch.request(Picos::ZERO, 0, 4096);
        let t2 = ch.request(Picos::from_nanos(100), 4096, 4096);
        assert_eq!(t2.start, t1.done, "queued transfer waits for the bus");
        assert_eq!(t2.done, t1.done + flat.transfer_time(4096));
    }

    #[test]
    fn open_row_hit_is_cheaper_than_cold_access() {
        let mut cfg = BankedConfig::paper();
        cfg.pipelined = false;
        let mut ch = BankedChannel::new(cfg);
        let cold = ch.request(ch.bus_free(), 0, 128);
        let warm = ch.request(ch.bus_free(), 128, 128);
        assert!(
            warm.done - warm.start < cold.done - cold.start,
            "row hit skips the activate"
        );
        assert_eq!(ch.row_stats().hits, 1);
        assert_eq!(ch.row_stats().misses, 1);
    }

    #[test]
    fn row_conflict_is_costlier_than_cold_access() {
        let mut cfg = BankedConfig::paper();
        cfg.pipelined = false;
        let mut ch = BankedChannel::new(cfg);
        let row_span = cfg.mapping.row_bytes() * cfg.mapping.banks();
        let cold = ch.request(ch.bus_free(), 0, 128);
        // Same bank (bank bits unchanged), different row.
        let conflict = ch.request(ch.bus_free(), row_span, 128);
        assert!(conflict.done - conflict.start > cold.done - cold.start);
        assert_eq!(ch.row_stats().conflicts, 1);
    }

    #[test]
    fn open_rows_split_transfers_at_row_boundaries() {
        let mut cfg = BankedConfig::paper();
        cfg.pipelined = false;
        let mut ch = BankedChannel::new(cfg);
        // 4 KB spanning two 2 KB rows in adjacent banks: two misses.
        ch.request(Picos::ZERO, 0, 4096);
        assert_eq!(ch.row_stats().misses, 2);
    }

    #[test]
    fn pipelining_hides_activation_behind_the_burst() {
        let mut serial_cfg = BankedConfig::paper();
        serial_cfg.pipelined = false;
        let mut serial = BankedChannel::new(serial_cfg);
        let mut piped = BankedChannel::new(BankedConfig::paper());
        // Back-to-back page transfers to different banks: the pipelined
        // channel overlaps the second activation with the first burst.
        let mut s_done = Picos::ZERO;
        let mut p_done = Picos::ZERO;
        for i in 0..4u64 {
            s_done = serial.request(Picos::ZERO, i * 8192, 4096).done;
            p_done = piped.request(Picos::ZERO, i * 8192, 4096).done;
        }
        assert!(p_done < s_done, "pipelined {p_done} < serial {s_done}");
    }

    #[test]
    fn pipelined_bus_still_serializes_data() {
        let mut ch = BankedChannel::new(BankedConfig::paper());
        let t1 = ch.request(Picos::ZERO, 0, 2048);
        let t2 = ch.request(Picos::ZERO, 8192, 2048);
        // Second burst cannot start before the first finished.
        assert!(t2.done >= t1.done + BankTiming::paper().data_time(2048));
    }

    #[test]
    fn zero_byte_transfer_takes_no_time() {
        let mut ch = BankedChannel::new(BankedConfig::paper());
        let t = ch.request(Picos::from_nanos(5), 0, 0);
        assert_eq!(t.start, t.done);
        assert_eq!(ch.bus_free(), t.start, "slot claimed, no duration");
        assert_eq!(ch.transfers(), 1);
    }

    #[test]
    fn counters_accumulate() {
        let mut ch = BankedChannel::new(BankedConfig::flat_equivalent());
        ch.request(Picos::ZERO, 0, 128);
        ch.request(Picos::ZERO, 4096, 128);
        assert_eq!(ch.transfers(), 2);
        assert_eq!(ch.bytes(), 256);
        assert_eq!(ch.busy_time(), Picos::from_nanos(260));
    }

    #[test]
    #[should_panic(expected = "invalid banked DRAM config")]
    fn invalid_config_panics_with_the_typed_message() {
        let mut bad = BankedConfig::paper();
        bad.timing.per_pair = Picos::ZERO;
        let _ = BankedChannel::new(bad);
    }

    #[test]
    fn mapping_reexports_are_consistent() {
        let m = AddressMapping::paper();
        assert_eq!(m.row_bytes(), 2048);
    }
}
