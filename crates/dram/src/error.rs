//! Typed construction errors for the device models.

use std::fmt;

/// Why a device model could not be constructed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DramConfigError {
    /// A disk with a zero transfer rate can never move data.
    ZeroDiskRate,
    /// A bus that carries zero bytes per beat can never move data.
    ZeroBusWidth,
    /// An unclocked bus never completes a beat.
    ZeroBusCycle,
}

impl fmt::Display for DramConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DramConfigError::ZeroDiskRate => {
                write!(
                    f,
                    "disk transfer rate must be positive (the paper's disk moves 40000 bytes/ms)"
                )
            }
            DramConfigError::ZeroBusWidth => {
                write!(
                    f,
                    "bus width must be positive (the paper's SDRAM bus is 16 bytes)"
                )
            }
            DramConfigError::ZeroBusCycle => {
                write!(
                    f,
                    "bus cycle time must be positive (the paper's SDRAM bus clocks at 10 ns)"
                )
            }
        }
    }
}

impl std::error::Error for DramConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_actionable() {
        for e in [
            DramConfigError::ZeroDiskRate,
            DramConfigError::ZeroBusWidth,
            DramConfigError::ZeroBusCycle,
        ] {
            let msg = e.to_string();
            assert!(msg.contains("must be positive"), "{msg}");
            assert!(msg.contains("paper"), "says what a good value is: {msg}");
        }
    }
}
