//! Typed construction errors for the device models.

use std::fmt;

/// Why a device model could not be constructed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DramConfigError {
    /// A disk with a zero transfer rate can never move data.
    ZeroDiskRate,
    /// A bus that carries zero bytes per beat can never move data.
    ZeroBusWidth,
    /// An unclocked bus never completes a beat.
    ZeroBusCycle,
    /// A DRAM row must hold at least one data pair.
    ZeroColumnBits,
    /// Row + bank + column bits cannot exceed the 64-bit address.
    MappingTooWide,
    /// An unclocked banked channel never moves a data pair.
    ZeroPairTime,
    /// A closed-page access (tRCD + tCAS) must take time.
    ZeroAccessTime,
}

impl fmt::Display for DramConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DramConfigError::ZeroDiskRate => {
                write!(
                    f,
                    "disk transfer rate must be positive (the paper's disk moves 40000 bytes/ms)"
                )
            }
            DramConfigError::ZeroBusWidth => {
                write!(
                    f,
                    "bus width must be positive (the paper's SDRAM bus is 16 bytes)"
                )
            }
            DramConfigError::ZeroBusCycle => {
                write!(
                    f,
                    "bus cycle time must be positive (the paper's SDRAM bus clocks at 10 ns)"
                )
            }
            DramConfigError::ZeroColumnBits => {
                write!(
                    f,
                    "column bits must be positive (the paper-era RDRAM geometry uses 11-bit \
                     columns / 2 KB rows)"
                )
            }
            DramConfigError::MappingTooWide => {
                write!(
                    f,
                    "address mapping exceeds 64 bits (the paper-era RDRAM geometry uses 11 \
                     column + 4 bank + 49 row bits)"
                )
            }
            DramConfigError::ZeroPairTime => {
                write!(
                    f,
                    "data pair time must be positive (the paper's Direct Rambus moves 2 bytes \
                     every 1.25 ns)"
                )
            }
            DramConfigError::ZeroAccessTime => {
                write!(
                    f,
                    "tRCD + tCAS must be positive (the paper's 50 ns initial latency \
                     decomposes as 30 ns + 20 ns)"
                )
            }
        }
    }
}

impl std::error::Error for DramConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_actionable() {
        for e in [
            DramConfigError::ZeroDiskRate,
            DramConfigError::ZeroBusWidth,
            DramConfigError::ZeroBusCycle,
            DramConfigError::ZeroColumnBits,
            DramConfigError::ZeroPairTime,
            DramConfigError::ZeroAccessTime,
        ] {
            let msg = e.to_string();
            assert!(msg.contains("must be positive"), "{msg}");
            assert!(msg.contains("paper"), "says what a good value is: {msg}");
        }
        let msg = DramConfigError::MappingTooWide.to_string();
        assert!(msg.contains("64 bits"), "{msg}");
        assert!(msg.contains("paper"), "says what a good value is: {msg}");
    }
}
