//! Memory-device timing models for the RAMpage simulator.
//!
//! The paper models DRAM as a simplified Direct Rambus (§3.3, §4.3): 50 ns
//! before the first datum, then 2 bytes every 1.25 ns, giving the same
//! 1.6 GB/s peak as a 128-bit SDRAM bus at 10 ns. Table 1 of the paper
//! compares the *efficiency* (fraction of peak bandwidth actually used) of
//! Direct Rambus against a disk (10 ms latency, 40 MB/s) to argue that
//! DRAM shares the disk's preference for large transfer units — the
//! premise of treating DRAM as a paging device.
//!
//! This crate provides those analytic models:
//!
//! * [`DirectRambus`] — the paper's DRAM, in non-pipelined and pipelined
//!   (95 %-of-peak, §3.3) variants;
//! * [`Sdram`] — the 128-bit-bus SDRAM comparator of §3.3;
//! * [`Disk`] — the Table 1 disk;
//! * [`MemoryDevice`] — the common transfer-time interface;
//! * [`efficiency`] / [`efficiency_table`] — Table 1 itself.
//!
//! Beyond the paper's flat arithmetic, the crate also carries an
//! event-driven, bank-aware Direct Rambus backend ([`BankedChannel`],
//! configured by [`BankedConfig`]): per-bank row-buffer state
//! ([`Bank`], hit/miss/conflict timing via [`BankTiming`]), a
//! configurable row/bank/column address mapping ([`AddressMapping`]),
//! and structural channel pipelining that replaces the flat model's
//! 95 %-of-peak approximation. Configured degenerately
//! ([`BankedConfig::flat_equivalent`]) it reproduces the flat model
//! bit-for-bit — the conformance contract `tests/dram_backend.rs`
//! enforces.
//!
//! All times are integer picoseconds ([`Picos`]) to keep the simulator
//! exact and reproducible.
//!
//! ```
//! use rampage_dram::{DirectRambus, MemoryDevice};
//!
//! let rambus = DirectRambus::non_pipelined();
//! // A 4 KB page transfer: 50 ns + 4096/2 x 1.25 ns = 2610 ns — the
//! // "about 2,600 instructions at a 1 GHz issue rate" of §3.5.
//! assert_eq!(rambus.transfer_time(4096).as_nanos_f64(), 2610.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bank;
mod channel;
mod device;
mod disk;
mod efficiency;
mod error;
mod mapping;
mod model;
mod rambus;
mod sdram;
mod time;

pub use bank::{Bank, BankTiming, BankedConfig, RowOutcome};
pub use channel::{BankedChannel, BankedTransfer, RowStats};
pub use device::MemoryDevice;
pub use disk::Disk;
pub use efficiency::{efficiency, efficiency_table, EfficiencyRow, TABLE1_SIZES};
pub use error::DramConfigError;
pub use mapping::{AddressMapping, BankPlacement, DramCoord};
pub use model::DramModel;
pub use rambus::DirectRambus;
pub use sdram::Sdram;
pub use time::Picos;
