//! The Table 1 disk model.

use crate::device::MemoryDevice;
use crate::error::DramConfigError;
use crate::time::Picos;

/// A disk with fixed access latency and streaming transfer rate.
///
/// Table 1 of the paper compares Direct Rambus efficiency against a "disk
/// with 10 ms latency and 40 MB/s transfer rate" to show that DRAM shares
/// the disk's property of being more efficient at transferring large
/// units — the quantitative motivation for managing DRAM as a paging
/// device. §3.5 works the example: "with a 1 GHz issue rate, a 4 Kbyte
/// disk transfer costs about 10-million instructions, whereas a 4 Kbyte
/// Direct Rambus transfer costs about 2,600 instructions."
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Disk {
    latency: Picos,
    /// Streaming rate in bytes per millisecond (40 MB/s = 40 000 B/ms
    /// exactly, keeping arithmetic integral).
    bytes_per_ms: u64,
}

impl Disk {
    /// The paper's disk: 10 ms latency, 40 MB/s.
    pub fn paper_example() -> Self {
        Disk {
            latency: Picos::from_millis(10),
            bytes_per_ms: 40_000,
        }
    }

    /// Custom disk.
    ///
    /// # Panics
    ///
    /// Panics if `bytes_per_ms` is zero; use [`try_new`](Self::try_new)
    /// to handle that as an error.
    pub fn new(latency: Picos, bytes_per_ms: u64) -> Self {
        match Self::try_new(latency, bytes_per_ms) {
            Ok(d) => d,
            Err(e) => panic!("disk model: {e}"),
        }
    }

    /// As [`new`](Self::new), reporting a zero transfer rate as a
    /// [`DramConfigError`] instead of panicking.
    ///
    /// # Errors
    ///
    /// [`DramConfigError::ZeroDiskRate`] if `bytes_per_ms` is zero.
    pub fn try_new(latency: Picos, bytes_per_ms: u64) -> Result<Self, DramConfigError> {
        if bytes_per_ms == 0 {
            return Err(DramConfigError::ZeroDiskRate);
        }
        Ok(Disk {
            latency,
            bytes_per_ms,
        })
    }
}

impl MemoryDevice for Disk {
    fn initial_latency(&self) -> Picos {
        self.latency
    }

    fn transfer_time(&self, bytes: u64) -> Picos {
        if bytes == 0 {
            return Picos::ZERO;
        }
        // bytes / (bytes_per_ms per 1e9 ps), rounded up to whole picoseconds.
        let data = Picos((bytes * 1_000_000_000).div_ceil(self.bytes_per_ms));
        self.latency + data
    }

    fn peak_bandwidth(&self) -> f64 {
        self.bytes_per_ms as f64 * 1000.0
    }

    fn name(&self) -> &str {
        "disk"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_4kb_disk_transfer_is_10_million_instructions_at_1ghz() {
        let d = Disk::paper_example();
        let t = d.transfer_time(4096);
        // 10 ms + 4096/40e6 s = 10.1024 ms; at 1 GHz that is ~10.1 M cycles.
        let cycles_at_1ghz = t.cycles_ceil(Picos::from_nanos(1));
        assert!(
            (10_000_000..10_300_000).contains(&cycles_at_1ghz),
            "got {cycles_at_1ghz}"
        );
    }

    #[test]
    fn peak_bandwidth_40mbs() {
        assert!((Disk::paper_example().peak_bandwidth() - 40e6).abs() < 1.0);
    }

    #[test]
    fn try_new_rejects_zero_rate() {
        assert_eq!(
            Disk::try_new(Picos::from_millis(10), 0).err(),
            Some(DramConfigError::ZeroDiskRate)
        );
        assert!(Disk::try_new(Picos::from_millis(10), 40_000).is_ok());
    }

    #[test]
    fn zero_bytes_zero_time() {
        assert_eq!(Disk::paper_example().transfer_time(0), Picos::ZERO);
    }

    #[test]
    fn large_transfer_approaches_peak() {
        let d = Disk::paper_example();
        // 40 MB takes 1 s of data time + 10 ms latency: ~99% efficient.
        let t = d.transfer_time(40_000_000);
        let eff = (40e6 / d.peak_bandwidth()) / t.as_secs_f64();
        assert!(eff > 0.98, "efficiency {eff}");
    }
}
