//! The paper's Direct Rambus model.

use crate::device::MemoryDevice;
use crate::time::Picos;

/// Direct Rambus DRAM, as modelled in §4.3 of the paper.
///
/// Non-pipelined (the configuration used for all of the paper's results):
/// 50 ns before the first reference starts, thereafter 2 bytes every
/// 1.25 ns — 1.6 GB/s peak over a 2-byte bus at 1.25 ns, equal to a
/// 128-bit SDRAM bus at 10 ns.
///
/// Pipelined (§3.3, the paper's future-work ablation): Direct Rambus "goes
/// further than other latency-hiding DRAM designs in that it allows
/// multiple independent references to be pipelined, allowing a theoretical
/// 95 % of peak bandwidth to be achieved on units as small as 2 bytes."
/// The pipelined variant models that by letting a transfer *queued behind
/// another* skip the initial latency, paying only data time at 95 % of
/// peak; an isolated transfer still pays full latency.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DirectRambus {
    pipelined: bool,
}

/// 50 ns initial access latency.
const INITIAL: Picos = Picos::from_nanos(50);
/// 1.25 ns per 2-byte transfer unit.
const PER_PAIR: Picos = Picos(1250);

impl DirectRambus {
    /// The paper's configuration: no pipelining of independent references.
    pub fn non_pipelined() -> Self {
        DirectRambus { pipelined: false }
    }

    /// The future-work configuration: independent references pipeline at
    /// 95 % of peak bandwidth.
    pub fn pipelined() -> Self {
        DirectRambus { pipelined: true }
    }

    /// Whether this device pipelines queued references.
    pub fn is_pipelined(&self) -> bool {
        self.pipelined
    }

    /// Time for a transfer that is issued while the channel is already
    /// streaming (pipelined devices hide the initial latency; for the
    /// non-pipelined paper configuration this equals
    /// [`transfer_time`](MemoryDevice::transfer_time)).
    pub fn queued_transfer_time(&self, bytes: u64) -> Picos {
        if bytes == 0 {
            return Picos::ZERO;
        }
        if self.pipelined {
            // Data at 95% of peak (packet overhead): time = data / 0.95,
            // exact in picoseconds via x20/19 — but pipelining can never
            // make a queued transfer slower than an isolated one, so cap
            // at the full latency-paying time (matters for large units,
            // where 5% overhead exceeds the 50 ns latency).
            let data = PER_PAIR * bytes.div_ceil(2);
            Picos((data.0 * 20).div_ceil(19)).min(self.transfer_time(bytes))
        } else {
            self.transfer_time(bytes)
        }
    }
}

impl MemoryDevice for DirectRambus {
    fn initial_latency(&self) -> Picos {
        INITIAL
    }

    fn transfer_time(&self, bytes: u64) -> Picos {
        if bytes == 0 {
            return Picos::ZERO;
        }
        INITIAL + PER_PAIR * bytes.div_ceil(2)
    }

    fn peak_bandwidth(&self) -> f64 {
        // 2 bytes per 1.25 ns = 1.6e9 B/s.
        2.0 / 1.25e-9
    }

    fn name(&self) -> &str {
        if self.pipelined {
            "Direct Rambus (pipelined)"
        } else {
            "Direct Rambus"
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_4kb_transfer_is_2610ns() {
        // §3.5: "a 4 Kbyte Direct Rambus transfer costs about 2,600
        // instructions" at 1 GHz — 50 + 2048 x 1.25 = 2610 ns.
        let r = DirectRambus::non_pipelined();
        assert_eq!(r.transfer_time(4096), Picos::from_nanos(2610));
    }

    #[test]
    fn small_block_transfers() {
        let r = DirectRambus::non_pipelined();
        // 128 bytes: 50 + 64 x 1.25 = 130 ns.
        assert_eq!(r.transfer_time(128), Picos::from_nanos(130));
        // 32 bytes: 50 + 16 x 1.25 = 70 ns.
        assert_eq!(r.transfer_time(32), Picos::from_nanos(70));
        // 2 bytes: 50 + 1.25 = 51.25 ns.
        assert_eq!(r.transfer_time(2), Picos(51_250));
    }

    #[test]
    fn odd_byte_counts_round_to_pairs() {
        let r = DirectRambus::non_pipelined();
        assert_eq!(r.transfer_time(3), r.transfer_time(4));
        assert_eq!(r.transfer_time(0), Picos::ZERO);
    }

    #[test]
    fn peak_bandwidth_is_1_6_gbs() {
        let r = DirectRambus::non_pipelined();
        assert!((r.peak_bandwidth() - 1.6e9).abs() < 1.0);
    }

    #[test]
    fn pipelined_queued_transfers_hit_95_percent() {
        let r = DirectRambus::pipelined();
        // Queued 2-byte unit: 1.25 ns / 0.95 ≈ 1.3158 ns, no 50 ns.
        let t = r.queued_transfer_time(2);
        assert!(t < Picos::from_nanos(2), "latency hidden, got {t}");
        let eff = (2.0 / r.peak_bandwidth()) / t.as_secs_f64();
        assert!((0.94..=0.96).contains(&eff), "efficiency {eff}");
    }

    #[test]
    fn non_pipelined_queued_equals_isolated() {
        let r = DirectRambus::non_pipelined();
        assert_eq!(r.queued_transfer_time(128), r.transfer_time(128));
    }

    #[test]
    fn isolated_pipelined_transfer_still_pays_latency() {
        let r = DirectRambus::pipelined();
        assert_eq!(r.transfer_time(128), Picos::from_nanos(130));
    }
}
