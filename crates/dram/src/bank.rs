//! Per-bank row-buffer state and Direct Rambus bank timing.
//!
//! The paper's flat model charges every access 50 ns before the first
//! datum. A real Direct Rambus part splits that into row-precharge
//! (tRP), row-activate (tRCD), and column access (tCAS), and keeps the
//! last-activated row latched per bank, so an access to the open row
//! skips the activate entirely. [`BankTiming::paper`] decomposes the
//! paper's 50 ns as tRCD 30 ns + tCAS 20 ns (with tRP 20 ns on a
//! conflict), so a closed-page access costs exactly the flat model's
//! initial latency — the invariant the differential conformance suite
//! locks down.

use crate::error::DramConfigError;
use crate::mapping::AddressMapping;
use crate::time::Picos;

/// How an access hit the bank's row buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RowOutcome {
    /// The addressed row is already open: pay tCAS only.
    Hit,
    /// The bank is idle (no open row): pay tRCD + tCAS.
    Miss,
    /// A different row is open: pay tRP + tRCD + tCAS.
    Conflict,
}

/// Bank-level timing parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BankTiming {
    /// Row precharge: closing an open row before activating another.
    pub t_rp: Picos,
    /// Row activate (RAS-to-CAS delay).
    pub t_rcd: Picos,
    /// Column access: open row to first datum.
    pub t_cas: Picos,
    /// Time per 2-byte data pair on the channel.
    pub per_pair: Picos,
}

impl BankTiming {
    /// A Direct Rambus-like decomposition of the paper's 50 ns initial
    /// latency: tRP 20 ns, tRCD 30 ns, tCAS 20 ns, 2 B / 1.25 ns data.
    /// tRCD + tCAS equals the flat model's 50 ns exactly.
    pub fn paper() -> Self {
        BankTiming {
            t_rp: Picos::from_nanos(20),
            t_rcd: Picos::from_nanos(30),
            t_cas: Picos::from_nanos(20),
            per_pair: Picos(1250),
        }
    }

    /// Command overhead before the first datum for a given row outcome.
    #[inline]
    pub fn overhead(&self, outcome: RowOutcome) -> Picos {
        match outcome {
            RowOutcome::Hit => self.t_cas,
            RowOutcome::Miss => self.t_rcd + self.t_cas,
            RowOutcome::Conflict => self.t_rp + self.t_rcd + self.t_cas,
        }
    }

    /// Data-burst time for `bytes` on the 2-bytes-per-pair channel.
    #[inline]
    pub fn data_time(&self, bytes: u64) -> Picos {
        self.per_pair * bytes.div_ceil(2)
    }

    /// Check the timing is usable.
    ///
    /// # Errors
    ///
    /// [`DramConfigError::ZeroPairTime`] if the per-pair data time is
    /// zero (an unclocked channel never moves data), and
    /// [`DramConfigError::ZeroAccessTime`] if tRCD + tCAS is zero (a
    /// closed-page access must take time).
    pub fn validate(&self) -> Result<(), DramConfigError> {
        if self.per_pair == Picos::ZERO {
            return Err(DramConfigError::ZeroPairTime);
        }
        if self.t_rcd + self.t_cas == Picos::ZERO {
            return Err(DramConfigError::ZeroAccessTime);
        }
        Ok(())
    }
}

/// One bank's row-buffer state.
#[derive(Debug, Clone, Copy, Default)]
pub struct Bank {
    /// The currently open row, if open-row modeling is on.
    pub open_row: Option<u64>,
    /// When this bank can accept its next command.
    pub ready_at: Picos,
}

impl Bank {
    /// Classify an access to `row` and update the row buffer. With
    /// `open_rows` off the bank runs closed-page: every access is a
    /// [`RowOutcome::Miss`] (activate + CAS, auto-precharge hidden
    /// behind the burst) and nothing stays open.
    #[inline]
    pub fn access(&mut self, row: u64, open_rows: bool) -> RowOutcome {
        if !open_rows {
            self.open_row = None;
            return RowOutcome::Miss;
        }
        let outcome = match self.open_row {
            None => RowOutcome::Miss,
            Some(open) if open == row => RowOutcome::Hit,
            Some(_) => RowOutcome::Conflict,
        };
        self.open_row = Some(row);
        outcome
    }
}

/// Full configuration of the banked backend: geometry, timing, and the
/// two fidelity switches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BankedConfig {
    /// Address-to-(row, bank, column) mapping.
    pub mapping: AddressMapping,
    /// Bank and channel timing.
    pub timing: BankTiming,
    /// Model open rows (row-buffer hits/conflicts). Off = closed-page.
    pub open_rows: bool,
    /// Overlap the next access's row activation with the current data
    /// burst (structural pipelining; replaces the flat model's
    /// 95 %-of-peak approximation).
    pub pipelined: bool,
}

impl BankedConfig {
    /// The full-fidelity configuration: RDRAM-like geometry, open-row
    /// modeling, and structural pipelining.
    pub fn paper() -> Self {
        BankedConfig {
            mapping: AddressMapping::paper(),
            timing: BankTiming::paper(),
            open_rows: true,
            pipelined: true,
        }
    }

    /// The degenerate configuration the conformance suite uses: one
    /// bank, closed-page, no pipelining. Every transfer then costs
    /// max(now, bus-free) + tRCD + tCAS + data — bit-identical to the
    /// flat [`crate::DirectRambus`] channel arithmetic.
    pub fn flat_equivalent() -> Self {
        BankedConfig {
            mapping: AddressMapping::single_bank(),
            timing: BankTiming::paper(),
            open_rows: false,
            pipelined: false,
        }
    }

    /// Check geometry and timing.
    ///
    /// # Errors
    ///
    /// Propagates [`AddressMapping::validate`] and
    /// [`BankTiming::validate`] failures.
    pub fn validate(&self) -> Result<(), DramConfigError> {
        self.mapping.validate()?;
        self.timing.validate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_timing_decomposes_the_flat_initial_latency() {
        let t = BankTiming::paper();
        assert_eq!(t.overhead(RowOutcome::Miss), Picos::from_nanos(50));
        assert_eq!(t.data_time(4096), Picos::from_nanos(2560));
    }

    #[test]
    fn overhead_orders_hit_miss_conflict() {
        let t = BankTiming::paper();
        assert!(t.overhead(RowOutcome::Hit) <= t.overhead(RowOutcome::Miss));
        assert!(t.overhead(RowOutcome::Miss) <= t.overhead(RowOutcome::Conflict));
    }

    #[test]
    fn bank_tracks_open_rows() {
        let mut b = Bank::default();
        assert_eq!(b.access(7, true), RowOutcome::Miss);
        assert_eq!(b.access(7, true), RowOutcome::Hit);
        assert_eq!(b.access(8, true), RowOutcome::Conflict);
        assert_eq!(b.open_row, Some(8));
    }

    #[test]
    fn closed_page_never_hits() {
        let mut b = Bank::default();
        assert_eq!(b.access(7, false), RowOutcome::Miss);
        assert_eq!(b.access(7, false), RowOutcome::Miss);
        assert_eq!(b.open_row, None);
    }

    #[test]
    fn configs_validate() {
        assert!(BankedConfig::paper().validate().is_ok());
        assert!(BankedConfig::flat_equivalent().validate().is_ok());
        let mut bad = BankedConfig::paper();
        bad.timing.per_pair = Picos::ZERO;
        assert_eq!(bad.validate(), Err(DramConfigError::ZeroPairTime));
        let mut bad = BankedConfig::paper();
        bad.timing.t_rcd = Picos::ZERO;
        bad.timing.t_cas = Picos::ZERO;
        assert_eq!(bad.validate(), Err(DramConfigError::ZeroAccessTime));
    }
}
