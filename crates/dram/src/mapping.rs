//! DRAM address mapping: how a physical byte address decomposes into
//! (row, bank, column) coordinates.
//!
//! The paper's flat model has no notion of banks or rows, so the choice
//! of mapping is exactly the knob the banked backend adds. Direct
//! Rambus 64-Mbit RDRAM parts expose 16 banks of 2 KB rows, which the
//! [`AddressMapping::paper`] geometry mirrors: 11 column bits, 4 bank
//! bits, and the remaining 49 bits of row. Two bank placements are
//! supported — bank bits just above the column (consecutive rows rotate
//! through banks, the RDRAM default) or above the row field (each bank
//! owns a contiguous slab).

use crate::error::DramConfigError;

/// Where the bank-select bits sit relative to the row bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BankPlacement {
    /// Bank bits directly above the column: `[row | bank | col]`.
    /// Sequential rows land in different banks (interleaved).
    LowAboveColumn,
    /// Bank bits above the row field: `[bank | row | col]`. Each bank
    /// owns a contiguous address slab.
    HighAboveRow,
}

/// A (row, bank, column) coordinate produced by [`AddressMapping::decompose`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DramCoord {
    /// Row index within the bank.
    pub row: u64,
    /// Bank index (`< 2^bank_bits`).
    pub bank: u64,
    /// Byte offset within the row (`< 2^col_bits`).
    pub col: u64,
}

/// A bitfield address mapping: `col_bits` of column, `bank_bits` of
/// bank, `row_bits` of row, placed per [`BankPlacement`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AddressMapping {
    /// Bits of byte-column: the row holds `2^col_bits` bytes.
    pub col_bits: u32,
    /// Bits of bank select: the device has `2^bank_bits` banks.
    pub bank_bits: u32,
    /// Bits of row index per bank.
    pub row_bits: u32,
    /// Where the bank bits sit.
    pub placement: BankPlacement,
}

/// Shift left, treating shifts of 64+ bits as producing zero (the field
/// being shifted is empty in that case).
#[inline]
fn shl(v: u64, n: u32) -> u64 {
    if n >= 64 {
        0
    } else {
        v << n
    }
}

/// Shift right with the same 64+ convention.
#[inline]
fn shr(v: u64, n: u32) -> u64 {
    if n >= 64 {
        0
    } else {
        v >> n
    }
}

/// A mask of the low `n` bits.
#[inline]
fn mask(n: u32) -> u64 {
    if n >= 64 {
        u64::MAX
    } else {
        (1u64 << n) - 1
    }
}

impl AddressMapping {
    /// The Direct RDRAM-like geometry used by [`crate::BankedConfig::paper`]:
    /// 2 KB rows (11 column bits), 16 banks (4 bank bits), interleaved
    /// placement, with the remaining 49 bits as row index.
    pub fn paper() -> Self {
        AddressMapping {
            col_bits: 11,
            bank_bits: 4,
            row_bits: 49,
            placement: BankPlacement::LowAboveColumn,
        }
    }

    /// A degenerate single-bank mapping whose row field swallows every
    /// non-column bit — used by [`crate::BankedConfig::flat_equivalent`].
    pub fn single_bank() -> Self {
        AddressMapping {
            col_bits: 12,
            bank_bits: 0,
            row_bits: 52,
            placement: BankPlacement::LowAboveColumn,
        }
    }

    /// Check the geometry is usable.
    ///
    /// # Errors
    ///
    /// [`DramConfigError::ZeroColumnBits`] if the row holds fewer than
    /// two bytes (a Rambus data pair must fit in one row), and
    /// [`DramConfigError::MappingTooWide`] if the three fields exceed
    /// 64 address bits.
    pub fn validate(&self) -> Result<(), DramConfigError> {
        if self.col_bits == 0 {
            return Err(DramConfigError::ZeroColumnBits);
        }
        let width = self.col_bits as u64 + self.bank_bits as u64 + self.row_bits as u64;
        if width > 64 {
            return Err(DramConfigError::MappingTooWide);
        }
        Ok(())
    }

    /// Bytes per row: `2^col_bits`.
    #[inline]
    pub fn row_bytes(&self) -> u64 {
        shl(1, self.col_bits)
    }

    /// Number of banks: `2^bank_bits`.
    #[inline]
    pub fn banks(&self) -> u64 {
        shl(1, self.bank_bits)
    }

    /// Total mapped address bits.
    #[inline]
    pub fn width(&self) -> u32 {
        self.col_bits + self.bank_bits + self.row_bits
    }

    /// Split a byte address into (row, bank, column). Bits above
    /// [`AddressMapping::width`] are ignored, so any `u64` is a valid
    /// input.
    #[inline]
    pub fn decompose(&self, addr: u64) -> DramCoord {
        let col = addr & mask(self.col_bits);
        match self.placement {
            BankPlacement::LowAboveColumn => DramCoord {
                col,
                bank: shr(addr, self.col_bits) & mask(self.bank_bits),
                row: shr(addr, self.col_bits + self.bank_bits) & mask(self.row_bits),
            },
            BankPlacement::HighAboveRow => DramCoord {
                col,
                row: shr(addr, self.col_bits) & mask(self.row_bits),
                bank: shr(addr, self.col_bits + self.row_bits) & mask(self.bank_bits),
            },
        }
    }

    /// Reassemble a byte address from (row, bank, column) — the inverse
    /// of [`AddressMapping::decompose`] for in-range coordinates.
    #[inline]
    pub fn compose(&self, coord: DramCoord) -> u64 {
        let col = coord.col & mask(self.col_bits);
        let bank = coord.bank & mask(self.bank_bits);
        let row = coord.row & mask(self.row_bits);
        match self.placement {
            BankPlacement::LowAboveColumn => {
                shl(row, self.col_bits + self.bank_bits) | shl(bank, self.col_bits) | col
            }
            BankPlacement::HighAboveRow => {
                shl(bank, self.col_bits + self.row_bits) | shl(row, self.col_bits) | col
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_geometry_is_rdram_like() {
        let m = AddressMapping::paper();
        assert!(m.validate().is_ok());
        assert_eq!(m.row_bytes(), 2048);
        assert_eq!(m.banks(), 16);
        assert_eq!(m.width(), 64);
    }

    #[test]
    fn decompose_compose_round_trip() {
        for m in [AddressMapping::paper(), AddressMapping::single_bank()] {
            for addr in [0u64, 1, 2047, 2048, 0xdead_beef, u64::MAX] {
                assert_eq!(m.compose(m.decompose(addr)), addr, "{m:?} addr {addr:#x}");
            }
        }
    }

    #[test]
    fn high_placement_round_trips_within_width() {
        let m = AddressMapping {
            col_bits: 8,
            bank_bits: 2,
            row_bits: 10,
            placement: BankPlacement::HighAboveRow,
        };
        assert!(m.validate().is_ok());
        for addr in 0..(1u64 << m.width()) {
            if addr % 997 == 0 {
                assert_eq!(m.compose(m.decompose(addr)), addr);
            }
        }
    }

    #[test]
    fn interleaved_placement_rotates_banks_across_rows() {
        let m = AddressMapping::paper();
        let a = m.decompose(0);
        let b = m.decompose(m.row_bytes());
        assert_eq!(a.bank, 0);
        assert_eq!(b.bank, 1, "next row lands in the next bank");
        assert_eq!(a.row, b.row, "same row index, different bank");
    }

    #[test]
    fn validation_rejects_degenerate_geometries() {
        let mut m = AddressMapping::paper();
        m.col_bits = 0;
        assert_eq!(m.validate(), Err(DramConfigError::ZeroColumnBits));
        let mut m = AddressMapping::paper();
        m.row_bits = 64;
        assert_eq!(m.validate(), Err(DramConfigError::MappingTooWide));
    }
}
