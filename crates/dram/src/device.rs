//! The common memory-device timing interface.

use crate::time::Picos;

/// A device that transfers contiguous byte ranges with a fixed initial
/// latency and a fixed peak bandwidth.
///
/// Implemented by [`DirectRambus`](crate::DirectRambus),
/// [`Sdram`](crate::Sdram) and [`Disk`](crate::Disk). The simulator treats
/// devices purely through this interface, so hierarchies can be
/// instantiated over any of them.
pub trait MemoryDevice {
    /// Time from request to first datum.
    fn initial_latency(&self) -> Picos;

    /// Total time to transfer `bytes` contiguous bytes, including the
    /// initial latency. Zero-byte transfers take zero time.
    fn transfer_time(&self, bytes: u64) -> Picos;

    /// Peak (streaming) bandwidth in bytes per second.
    fn peak_bandwidth(&self) -> f64;

    /// Short name for reports.
    fn name(&self) -> &str;

    /// Time for the data portion only (transfer minus initial latency),
    /// used when a pipelined device hides the latency of queued requests.
    fn data_time(&self, bytes: u64) -> Picos {
        self.transfer_time(bytes)
            .saturating_sub(self.initial_latency())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Fake;
    impl MemoryDevice for Fake {
        fn initial_latency(&self) -> Picos {
            Picos(100)
        }
        fn transfer_time(&self, bytes: u64) -> Picos {
            if bytes == 0 {
                Picos::ZERO
            } else {
                Picos(100) + Picos(10) * bytes
            }
        }
        fn peak_bandwidth(&self) -> f64 {
            1e11
        }
        fn name(&self) -> &str {
            "fake"
        }
    }

    #[test]
    fn data_time_strips_latency() {
        let d = Fake;
        assert_eq!(d.data_time(8), Picos(80));
        assert_eq!(d.data_time(0), Picos::ZERO);
    }
}
