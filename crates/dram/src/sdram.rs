//! The SDRAM comparator of §3.3.

use crate::device::MemoryDevice;
use crate::error::DramConfigError;
use crate::time::Picos;

/// Synchronous DRAM behind a wide bus, as sketched in §3.3 of the paper:
/// "SDRAM clocks DRAM to the bus and after an initial delay (for example
/// 50 ns), subsequent transfers can occur at bus speed (e.g., 10 ns). With
/// a wide 128-bit bus, a 10 ns SDRAM memory system can in principle
/// deliver 1.6 GB/s."
///
/// Defaults reproduce exactly that configuration; the constructor accepts
/// other widths and clocks for ablations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Sdram {
    initial: Picos,
    bus_bytes: u64,
    bus_cycle: Picos,
}

impl Sdram {
    /// The paper's example: 50 ns initial delay, 128-bit bus at 10 ns.
    pub fn paper_example() -> Self {
        Sdram {
            initial: Picos::from_nanos(50),
            bus_bytes: 16,
            bus_cycle: Picos::from_nanos(10),
        }
    }

    /// Custom SDRAM system.
    ///
    /// # Panics
    ///
    /// Panics if `bus_bytes` is zero or `bus_cycle` is zero; use
    /// [`try_new`](Self::try_new) to handle those as errors.
    pub fn new(initial: Picos, bus_bytes: u64, bus_cycle: Picos) -> Self {
        match Self::try_new(initial, bus_bytes, bus_cycle) {
            Ok(s) => s,
            Err(e) => panic!("SDRAM model: {e}"),
        }
    }

    /// As [`new`](Self::new), reporting a degenerate bus as a
    /// [`DramConfigError`] instead of panicking.
    ///
    /// # Errors
    ///
    /// [`DramConfigError::ZeroBusWidth`] if `bus_bytes` is zero;
    /// [`DramConfigError::ZeroBusCycle`] if `bus_cycle` is zero.
    pub fn try_new(
        initial: Picos,
        bus_bytes: u64,
        bus_cycle: Picos,
    ) -> Result<Self, DramConfigError> {
        if bus_bytes == 0 {
            return Err(DramConfigError::ZeroBusWidth);
        }
        if bus_cycle.0 == 0 {
            return Err(DramConfigError::ZeroBusCycle);
        }
        Ok(Sdram {
            initial,
            bus_bytes,
            bus_cycle,
        })
    }
}

impl MemoryDevice for Sdram {
    fn initial_latency(&self) -> Picos {
        self.initial
    }

    fn transfer_time(&self, bytes: u64) -> Picos {
        if bytes == 0 {
            return Picos::ZERO;
        }
        self.initial + self.bus_cycle * bytes.div_ceil(self.bus_bytes)
    }

    fn peak_bandwidth(&self) -> f64 {
        self.bus_bytes as f64 / (self.bus_cycle.0 as f64 * 1e-12)
    }

    fn name(&self) -> &str {
        "SDRAM"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_matches_rambus_peak() {
        let s = Sdram::paper_example();
        assert!((s.peak_bandwidth() - 1.6e9).abs() < 1.0);
    }

    #[test]
    fn transfer_times() {
        let s = Sdram::paper_example();
        // 128 bytes = 8 bus beats: 50 + 80 = 130 ns (same as Rambus for
        // bus-width multiples — the paper's point that the two are similar
        // without pipelining).
        assert_eq!(s.transfer_time(128), Picos::from_nanos(130));
        // Sub-width transfers still cost a full beat.
        assert_eq!(s.transfer_time(2), Picos::from_nanos(60));
        assert_eq!(s.transfer_time(0), Picos::ZERO);
    }

    #[test]
    fn try_new_rejects_degenerate_bus() {
        let ns10 = Picos::from_nanos(10);
        assert_eq!(
            Sdram::try_new(ns10, 0, ns10).err(),
            Some(DramConfigError::ZeroBusWidth)
        );
        assert_eq!(
            Sdram::try_new(ns10, 16, Picos(0)).err(),
            Some(DramConfigError::ZeroBusCycle)
        );
        assert!(Sdram::try_new(ns10, 16, ns10).is_ok());
    }

    #[test]
    fn custom_geometry() {
        let s = Sdram::new(Picos::from_nanos(40), 8, Picos::from_nanos(5));
        assert_eq!(s.transfer_time(64), Picos::from_nanos(40 + 40));
        assert!((s.peak_bandwidth() - 1.6e9).abs() < 1.0);
    }
}
