//! Exact time arithmetic in picoseconds.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Mul, Sub};

/// A duration in integer picoseconds.
///
/// Every latency in the paper is an exact multiple of 1.25 ns = 1250 ps,
/// and every simulated issue rate from 200 MHz to 4 GHz has an integer
/// cycle time in picoseconds, so all conversions in the simulator are
/// exact — no float drift across a billion references.
///
/// ```
/// use rampage_dram::Picos;
/// let latency = Picos::from_nanos(50);
/// let per_pair = Picos(1250); // 2 bytes / 1.25 ns
/// assert_eq!(latency + per_pair * 64, Picos::from_nanos(130));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Picos(pub u64);

impl Picos {
    /// Zero duration.
    pub const ZERO: Picos = Picos(0);

    /// From whole nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Picos {
        Picos(ns * 1000)
    }

    /// From whole microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Picos {
        Picos(us * 1_000_000)
    }

    /// From whole milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Picos {
        Picos(ms * 1_000_000_000)
    }

    /// As fractional nanoseconds (for reports only).
    #[inline]
    pub fn as_nanos_f64(self) -> f64 {
        self.0 as f64 / 1000.0
    }

    /// As fractional seconds (for reports only).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e12
    }

    /// How many CPU cycles of `cycle_time` this duration occupies,
    /// rounded up (a stall always costs whole cycles).
    ///
    /// # Panics
    ///
    /// Panics if `cycle_time` is zero.
    #[inline]
    pub fn cycles_ceil(self, cycle_time: Picos) -> u64 {
        assert!(cycle_time.0 > 0, "zero cycle time");
        self.0.div_ceil(cycle_time.0)
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, rhs: Picos) -> Picos {
        Picos(self.0.saturating_sub(rhs.0))
    }
}

impl Add for Picos {
    type Output = Picos;
    #[inline]
    fn add(self, rhs: Picos) -> Picos {
        Picos(self.0 + rhs.0)
    }
}

impl AddAssign for Picos {
    #[inline]
    fn add_assign(&mut self, rhs: Picos) {
        self.0 += rhs.0;
    }
}

impl Sub for Picos {
    type Output = Picos;
    #[inline]
    fn sub(self, rhs: Picos) -> Picos {
        Picos(self.0 - rhs.0)
    }
}

impl Mul<u64> for Picos {
    type Output = Picos;
    #[inline]
    fn mul(self, rhs: u64) -> Picos {
        Picos(self.0 * rhs)
    }
}

impl Sum for Picos {
    fn sum<I: Iterator<Item = Picos>>(iter: I) -> Picos {
        iter.fold(Picos::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for Picos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3} ms", self.0 as f64 / 1e9)
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3} us", self.0 as f64 / 1e6)
        } else if self.0 >= 1000 {
            write!(f, "{:.3} ns", self.0 as f64 / 1e3)
        } else {
            write!(f, "{} ps", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_scale() {
        assert_eq!(Picos::from_nanos(1), Picos(1000));
        assert_eq!(Picos::from_micros(1), Picos(1_000_000));
        assert_eq!(Picos::from_millis(1), Picos(1_000_000_000));
    }

    #[test]
    fn arithmetic() {
        assert_eq!(Picos(100) + Picos(23), Picos(123));
        assert_eq!(Picos(100) - Picos(23), Picos(77));
        assert_eq!(Picos(100) * 3, Picos(300));
        let s: Picos = [Picos(1), Picos(2), Picos(3)].into_iter().sum();
        assert_eq!(s, Picos(6));
    }

    #[test]
    fn cycles_round_up() {
        // 50 ns at 200 MHz (5 ns cycle) = 10 cycles exactly.
        assert_eq!(Picos::from_nanos(50).cycles_ceil(Picos::from_nanos(5)), 10);
        // 50 ns at 4 GHz (250 ps cycle) = 200 cycles exactly.
        assert_eq!(Picos::from_nanos(50).cycles_ceil(Picos(250)), 200);
        // Partial cycles round up.
        assert_eq!(Picos(1001).cycles_ceil(Picos(1000)), 2);
        assert_eq!(Picos(0).cycles_ceil(Picos(1000)), 0);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(Picos(500).to_string(), "500 ps");
        assert_eq!(Picos::from_nanos(50).to_string(), "50.000 ns");
        assert_eq!(Picos::from_micros(2).to_string(), "2.000 us");
        assert_eq!(Picos::from_millis(10).to_string(), "10.000 ms");
    }

    #[test]
    fn saturating_sub_clamps() {
        assert_eq!(Picos(5).saturating_sub(Picos(10)), Picos::ZERO);
    }
}
