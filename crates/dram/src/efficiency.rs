//! Table 1: bandwidth efficiency per transfer size.

use crate::device::MemoryDevice;
use crate::disk::Disk;
use crate::rambus::DirectRambus;

/// Fraction of a device's peak bandwidth actually used when transferring
/// `bytes` in one request (Table 1's "efficiency" measure):
/// `ideal_time / actual_time` where `ideal_time = bytes / peak`.
///
/// Returns 0 for zero-byte transfers.
pub fn efficiency<D: MemoryDevice + ?Sized>(device: &D, bytes: u64) -> f64 {
    if bytes == 0 {
        return 0.0;
    }
    let ideal_secs = bytes as f64 / device.peak_bandwidth();
    let actual_secs = device.transfer_time(bytes).as_secs_f64();
    ideal_secs / actual_secs
}

/// The transfer sizes reported in our rendition of Table 1.
///
/// The paper's table compares "2-byte-wide Direct Rambus ... with disk"
/// over a range of transfer sizes; the OCR of the table body did not
/// survive, so we report a size sweep from a cache-block-sized 32 B to a
/// disk-friendly 4 MB, which brackets every unit the paper discusses
/// (32 B L1 blocks, 128 B–4 KB L2 blocks/SRAM pages, disk pages).
pub const TABLE1_SIZES: [u64; 9] = [
    32,
    128,
    512,
    1024,
    4096,
    16 * 1024,
    64 * 1024,
    1024 * 1024,
    4 * 1024 * 1024,
];

/// One row of Table 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EfficiencyRow {
    /// Transfer size in bytes.
    pub bytes: u64,
    /// Direct Rambus, no pipelining (the paper's configuration).
    pub rambus: f64,
    /// Direct Rambus with pipelining (the paper's second variant).
    pub rambus_pipelined: f64,
    /// The 10 ms / 40 MB/s disk.
    pub disk: f64,
}

/// Compute Table 1 for the standard sizes.
pub fn efficiency_table() -> Vec<EfficiencyRow> {
    let rambus = DirectRambus::non_pipelined();
    let pipelined = DirectRambus::pipelined();
    let disk = Disk::paper_example();
    TABLE1_SIZES
        .iter()
        .map(|&bytes| EfficiencyRow {
            bytes,
            rambus: efficiency(&rambus, bytes),
            // The pipelined variant's steady-state efficiency: data time
            // at 95% of peak with latency hidden by the pipeline.
            rambus_pipelined: {
                let ideal = bytes as f64 / pipelined.peak_bandwidth();
                let actual = pipelined.queued_transfer_time(bytes).as_secs_f64();
                ideal / actual
            },
            disk: efficiency(&disk, bytes),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn efficiency_grows_with_transfer_size() {
        let r = DirectRambus::non_pipelined();
        let mut prev = 0.0;
        for bytes in [2u64, 32, 128, 4096, 1 << 20] {
            let e = efficiency(&r, bytes);
            assert!(e > prev, "monotone: {bytes} bytes -> {e}");
            assert!((0.0..=1.0).contains(&e));
            prev = e;
        }
    }

    #[test]
    fn rambus_4kb_is_about_98_percent() {
        // 2560 ns of data in 2610 ns total.
        let e = efficiency(&DirectRambus::non_pipelined(), 4096);
        assert!((0.975..0.985).contains(&e), "got {e}");
    }

    #[test]
    fn rambus_128b_is_about_62_percent() {
        // 80 ns of data in 130 ns total ≈ 0.615.
        let e = efficiency(&DirectRambus::non_pipelined(), 128);
        assert!((0.60..0.63).contains(&e), "got {e}");
    }

    #[test]
    fn disk_needs_megabytes_to_be_efficient() {
        let d = Disk::paper_example();
        assert!(efficiency(&d, 4096) < 0.02, "4 KB is terrible for disk");
        assert!(efficiency(&d, 4 << 20) > 0.9, "4 MB amortizes the seek");
    }

    #[test]
    fn dram_vs_disk_shape_matches_paper() {
        // The paper's point: at page-ish sizes DRAM is already efficient
        // where disk is not; both favour larger units.
        for row in efficiency_table() {
            assert!(row.rambus >= row.disk, "{} bytes", row.bytes);
            // Pipelined steady state hides the 50 ns latency, so it stays
            // near the 95% packet-overhead ceiling at every size (for huge
            // isolated transfers the non-pipelined column can exceed it —
            // the two columns measure different regimes).
            assert!(
                row.rambus_pipelined > 0.94,
                "pipelined efficiency at {} bytes: {}",
                row.bytes,
                row.rambus_pipelined
            );
        }
    }

    #[test]
    fn pipelined_efficiency_is_95_for_small_units() {
        let rows = efficiency_table();
        let small = rows.iter().find(|r| r.bytes == 32).unwrap();
        assert!(
            (0.93..=0.96).contains(&small.rambus_pipelined),
            "§3.3's 95% on small units, got {}",
            small.rambus_pipelined
        );
    }

    #[test]
    fn zero_bytes_is_zero_efficiency() {
        assert_eq!(efficiency(&DirectRambus::non_pipelined(), 0), 0.0);
    }
}
