//! A closed enum over the DRAM device models, for use where dynamic
//! dispatch would be inconvenient (the simulator's hot path).

use crate::device::MemoryDevice;
use crate::rambus::DirectRambus;
use crate::sdram::Sdram;
use crate::time::Picos;

/// Which DRAM sits behind the memory controller.
///
/// The paper's runs use [`DramModel::rambus`]; §3.3 argues a non-pipelined
/// Direct Rambus "has similar characteristics to an SDRAM implementation",
/// which the SDRAM variant lets an ablation verify at system level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DramModel {
    /// Direct Rambus (non-pipelined or pipelined).
    Rambus(DirectRambus),
    /// The §3.3 SDRAM example (or a custom geometry).
    Sdram(Sdram),
}

impl DramModel {
    /// The paper's configuration.
    pub fn rambus() -> Self {
        DramModel::Rambus(DirectRambus::non_pipelined())
    }

    /// The §6.3 pipelined ablation.
    pub fn rambus_pipelined() -> Self {
        DramModel::Rambus(DirectRambus::pipelined())
    }

    /// The §3.3 SDRAM comparator.
    pub fn sdram() -> Self {
        DramModel::Sdram(Sdram::paper_example())
    }

    /// Time for a transfer issued while the channel is already busy
    /// (only the pipelined Rambus hides latency in that case).
    pub fn queued_transfer_time(&self, bytes: u64) -> Picos {
        match self {
            DramModel::Rambus(r) => r.queued_transfer_time(bytes),
            DramModel::Sdram(s) => s.transfer_time(bytes),
        }
    }

    /// One-line description of the device for trace metadata and logs:
    /// name, initial latency, peak bandwidth.
    pub fn diagnostics(&self) -> String {
        format!(
            "{} ({} ns initial latency, {:.1} GB/s peak)",
            self.name(),
            ns_exact(self.initial_latency()),
            self.peak_bandwidth() / 1e9,
        )
    }
}

/// Render a duration in nanoseconds without truncating sub-nanosecond
/// remainders: whole nanoseconds print as integers, anything finer keeps
/// its (exact, since `Picos` is integral) fractional digits.
fn ns_exact(p: Picos) -> String {
    if p.0.is_multiple_of(1000) {
        format!("{}", p.0 / 1000)
    } else {
        let s = format!("{:.3}", p.as_nanos_f64());
        s.trim_end_matches('0').trim_end_matches('.').to_string()
    }
}

impl MemoryDevice for DramModel {
    fn initial_latency(&self) -> Picos {
        match self {
            DramModel::Rambus(r) => r.initial_latency(),
            DramModel::Sdram(s) => s.initial_latency(),
        }
    }

    fn transfer_time(&self, bytes: u64) -> Picos {
        match self {
            DramModel::Rambus(r) => r.transfer_time(bytes),
            DramModel::Sdram(s) => s.transfer_time(bytes),
        }
    }

    fn peak_bandwidth(&self) -> f64 {
        match self {
            DramModel::Rambus(r) => r.peak_bandwidth(),
            DramModel::Sdram(s) => s.peak_bandwidth(),
        }
    }

    fn name(&self) -> &str {
        match self {
            DramModel::Rambus(r) => r.name(),
            DramModel::Sdram(s) => s.name(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variants_delegate() {
        let r = DramModel::rambus();
        assert_eq!(r.transfer_time(128), Picos::from_nanos(130));
        assert_eq!(r.name(), "Direct Rambus");
        let s = DramModel::sdram();
        assert_eq!(s.transfer_time(128), Picos::from_nanos(130));
        assert_eq!(s.name(), "SDRAM");
        let p = DramModel::rambus_pipelined();
        assert!(p.queued_transfer_time(128) < p.transfer_time(128));
        // SDRAM has no reference pipelining (§3.3's contrast).
        assert_eq!(s.queued_transfer_time(128), s.transfer_time(128));
    }

    #[test]
    fn diagnostics_describe_the_device() {
        let d = DramModel::rambus().diagnostics();
        assert!(d.contains("Direct Rambus"), "{d}");
        assert!(d.contains("50 ns"), "{d}");
        assert!(d.contains("GB/s"), "{d}");
    }

    #[test]
    fn diagnostics_keep_sub_nanosecond_latency() {
        // 51.25 ns initial latency: integer division used to truncate
        // this to "51 ns".
        let d = DramModel::Sdram(Sdram::new(Picos(51_250), 16, Picos::from_nanos(10)));
        let text = d.diagnostics();
        assert!(text.contains("51.25 ns"), "{text}");
        // Whole nanoseconds still print as integers.
        assert_eq!(ns_exact(Picos::from_nanos(50)), "50");
        assert_eq!(ns_exact(Picos(1250)), "1.25");
        assert_eq!(ns_exact(Picos(1)), "0.001");
    }

    #[test]
    fn rambus_and_sdram_match_at_bus_width_multiples() {
        // §3.3: without pipelining the two are near-equivalent for
        // cache-block transfers — identical at 16-byte multiples.
        let (r, s) = (DramModel::rambus(), DramModel::sdram());
        for bytes in [32u64, 128, 512, 4096] {
            assert_eq!(r.transfer_time(bytes), s.transfer_time(bytes));
        }
    }
}
