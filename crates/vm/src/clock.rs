//! The clock (second-chance) page-replacement algorithm.

use crate::error::VmError;
use crate::ipt::InvertedPageTable;
use crate::page::FrameId;

/// The paper's replacement policy for the RAMpage SRAM main memory
/// (§4.5): "a clock hand advances through the page table, marking each
/// page that has previously been marked as 'in use' as 'unused', until an
/// 'unused' page is found. This 'unused' page becomes the victim."
///
/// The referenced ("in use") bits live in the [`InvertedPageTable`]; the
/// replacer owns only the hand. [`select_victim`](ClockReplacer::select_victim)
/// also reports how many entries the hand scanned, which the OS model
/// charges as page-table references in the fault handler.
#[derive(Debug, Clone, Default)]
pub struct ClockReplacer {
    hand: u32,
    /// Total entries scanned over the replacer's lifetime.
    total_scanned: u64,
    /// Victims selected.
    victims: u64,
}

impl ClockReplacer {
    /// A replacer with the hand at frame 0.
    pub fn new() -> Self {
        ClockReplacer::default()
    }

    /// Current hand position (next frame to examine).
    pub fn hand(&self) -> FrameId {
        FrameId(self.hand)
    }

    /// Total entries scanned across all selections.
    pub fn total_scanned(&self) -> u64 {
        self.total_scanned
    }

    /// Victims selected so far.
    pub fn victims(&self) -> u64 {
        self.victims
    }

    /// Sweep until an unreferenced, unpinned, mapped frame is found;
    /// return it plus the number of entries the hand examined.
    ///
    /// Referenced frames passed on the way get their bit cleared (second
    /// chance). Unmapped frames are skipped without effect — callers
    /// should drain [`InvertedPageTable::alloc_free`] first.
    ///
    /// # Errors
    ///
    /// [`VmError::NoEvictableFrame`] if two full sweeps find nothing:
    /// every mapped frame is pinned, or the memory is empty (an OS
    /// configuration bug — there is nothing to replace). The hand
    /// position still advances; referenced bits cleared during the
    /// failed sweep stay cleared, as they would in a real kernel.
    pub fn try_select_victim(
        &mut self,
        ipt: &mut InvertedPageTable,
    ) -> Result<(FrameId, u32), VmError> {
        let n = ipt.num_frames();
        // Two full sweeps always suffice: the first clears every
        // referenced bit, the second must find a victim.
        let mut scanned = 0u32;
        for _ in 0..2 * n {
            let f = FrameId(self.hand);
            self.hand = (self.hand + 1) % n;
            scanned += 1;
            match ipt.mapping(f) {
                None => continue,
                Some(m) if m.pinned => continue,
                Some(m) if m.referenced => ipt.clear_referenced(f),
                Some(_) => {
                    self.total_scanned += scanned as u64;
                    self.victims += 1;
                    return Ok((f, scanned));
                }
            }
        }
        Err(VmError::NoEvictableFrame)
    }

    /// As [`try_select_victim`](Self::try_select_victim).
    ///
    /// # Panics
    ///
    /// Panics if every mapped frame is pinned or the memory is empty.
    /// The RAMpage system guarantees unpinned frames at construction
    /// (the OS region is asserted smaller than the frame count), so this
    /// wrapper is safe on that path.
    pub fn select_victim(&mut self, ipt: &mut InvertedPageTable) -> (FrameId, u32) {
        match self.try_select_victim(ipt) {
            Ok(v) => v,
            Err(e) => panic!("clock replacement: {e}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::Vpn;
    use rampage_cache::PhysAddr;
    use rampage_trace::Asid;

    #[test]
    fn no_evictable_frame_is_an_error_not_a_panic() {
        // Empty table: nothing mapped.
        let mut empty = InvertedPageTable::new(4, PhysAddr(0));
        let mut clock = ClockReplacer::new();
        assert_eq!(
            clock.try_select_victim(&mut empty),
            Err(VmError::NoEvictableFrame)
        );
        // Fully pinned table: nothing replaceable.
        let mut pinned = InvertedPageTable::new(2, PhysAddr(0));
        for i in 0..2 {
            let f = pinned.alloc_free().unwrap();
            pinned.insert_pinned(f, Asid(0), Vpn(i));
        }
        assert_eq!(
            clock.try_select_victim(&mut pinned),
            Err(VmError::NoEvictableFrame)
        );
        assert_eq!(clock.victims(), 0);
    }

    fn full_table(frames: u32) -> InvertedPageTable {
        let mut t = InvertedPageTable::new(frames, PhysAddr(0));
        for i in 0..frames as u64 {
            let f = t.alloc_free().unwrap();
            t.insert(f, Asid(1), Vpn(i));
        }
        t
    }

    #[test]
    fn second_chance_clears_then_selects() {
        let mut ipt = full_table(4);
        let mut clock = ClockReplacer::new();
        // All referenced: first sweep clears 0..3, then frame 0 wins.
        let (victim, scanned) = clock.select_victim(&mut ipt);
        assert_eq!(victim, FrameId(0));
        assert_eq!(scanned, 5, "4 clears + 1 selection");
        assert_eq!(clock.victims(), 1);
    }

    #[test]
    fn recently_used_pages_survive() {
        let mut ipt = full_table(4);
        let mut clock = ClockReplacer::new();
        let _ = clock.select_victim(&mut ipt); // clears all bits, picks 0
                                               // Re-reference frame 1's page only.
        ipt.lookup(Asid(1), Vpn(1));
        let (victim, _) = clock.select_victim(&mut ipt);
        assert_eq!(victim, FrameId(2), "frame 1 got its second chance");
    }

    #[test]
    fn pinned_frames_are_skipped() {
        let mut ipt = InvertedPageTable::new(4, PhysAddr(0));
        let f0 = ipt.alloc_free().unwrap();
        ipt.insert_pinned(f0, Asid(0), Vpn(100));
        for i in 1..4u64 {
            let f = ipt.alloc_free().unwrap();
            ipt.insert(f, Asid(1), Vpn(i));
        }
        let mut clock = ClockReplacer::new();
        for _ in 0..10 {
            let (victim, _) = clock.select_victim(&mut ipt);
            assert_ne!(victim, f0, "pinned frame must never be chosen");
        }
    }

    #[test]
    fn hand_advances_round_robin_over_unreferenced() {
        let mut ipt = full_table(3);
        let mut clock = ClockReplacer::new();
        let (v1, _) = clock.select_victim(&mut ipt); // clears, picks 0
        let (v2, _) = clock.select_victim(&mut ipt); // bits now clear: picks 1
        let (v3, _) = clock.select_victim(&mut ipt);
        assert_eq!((v1, v2, v3), (FrameId(0), FrameId(1), FrameId(2)));
    }

    #[test]
    #[should_panic(expected = "no replaceable frame")]
    fn all_pinned_panics() {
        let mut ipt = InvertedPageTable::new(2, PhysAddr(0));
        for i in 0..2u64 {
            let f = ipt.alloc_free().unwrap();
            ipt.insert_pinned(f, Asid(0), Vpn(i));
        }
        let mut clock = ClockReplacer::new();
        let _ = clock.select_victim(&mut ipt);
    }

    #[test]
    fn scan_counts_accumulate() {
        let mut ipt = full_table(4);
        let mut clock = ClockReplacer::new();
        let (_, s1) = clock.select_victim(&mut ipt);
        let (_, s2) = clock.select_victim(&mut ipt);
        assert_eq!(clock.total_scanned(), (s1 + s2) as u64);
    }
}
