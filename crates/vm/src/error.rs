//! Typed errors for page-fault bookkeeping.

use crate::page::{FrameId, Vpn};
use rampage_trace::Asid;
use std::fmt;

/// An OS-level bookkeeping operation that could not be performed.
///
/// In a real OS each of these is a kernel bug; in the simulator they are
/// surfaced as values so the sweep runner can record a failed cell
/// instead of aborting the whole run. The panicking wrappers
/// ([`InvertedPageTable::insert`](crate::InvertedPageTable::insert),
/// [`ClockReplacer::select_victim`](crate::ClockReplacer::select_victim))
/// remain for call sites where the invariant is locally guaranteed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VmError {
    /// The target frame already holds a mapping.
    FrameAlreadyMapped {
        /// The occupied frame.
        frame: FrameId,
    },
    /// The `(asid, vpn)` pair is already mapped into another frame.
    PageAlreadyMapped {
        /// Owning address space.
        asid: Asid,
        /// The already-mapped virtual page.
        vpn: Vpn,
    },
    /// A pinned frame was named as a replacement victim.
    PinnedFrame {
        /// The pinned frame.
        frame: FrameId,
    },
    /// The clock swept every frame twice without finding a victim: every
    /// mapped frame is pinned (or the memory is empty).
    NoEvictableFrame,
}

impl fmt::Display for VmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmError::FrameAlreadyMapped { frame } => {
                write!(f, "{frame} is already mapped")
            }
            VmError::PageAlreadyMapped { asid, vpn } => {
                write!(f, "({asid}, {vpn}) is already mapped elsewhere")
            }
            VmError::PinnedFrame { frame } => {
                write!(f, "{frame} is pinned and cannot be replaced")
            }
            VmError::NoEvictableFrame => write!(
                f,
                "no replaceable frame: every mapped frame is pinned or memory is empty"
            ),
        }
    }
}

impl std::error::Error for VmError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_name_the_culprit() {
        let s = VmError::FrameAlreadyMapped { frame: FrameId(7) }.to_string();
        assert!(s.contains("frame:7"), "{s}");
        let s = VmError::PageAlreadyMapped {
            asid: Asid(3),
            vpn: Vpn(0x10),
        }
        .to_string();
        assert!(s.contains("vpn:0x10"), "{s}");
        assert!(VmError::NoEvictableFrame.to_string().contains("pinned"));
    }
}
