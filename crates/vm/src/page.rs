//! Page-granularity types.

use rampage_trace::VirtAddr;
use std::fmt;

/// A validated power-of-two page size in bytes.
///
/// The paper sweeps the RAMpage SRAM page size from 128 bytes to 4 KB
/// (matching the L2 block-size sweep) while holding the DRAM page size at
/// 4 KB (§2.4, §4.5).
///
/// ```
/// use rampage_vm::PageSize;
/// let p = PageSize::new(4096).unwrap();
/// assert_eq!(p.get(), 4096);
/// assert!(PageSize::new(100).is_none());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PageSize(u64);

impl PageSize {
    /// The paper's sweep of RAMpage SRAM page sizes / L2 block sizes.
    pub const PAPER_SWEEP: [u64; 6] = [128, 256, 512, 1024, 2048, 4096];

    /// Create a page size; `None` unless `bytes` is a power of two ≥ 8.
    pub fn new(bytes: u64) -> Option<PageSize> {
        (bytes >= 8 && bytes.is_power_of_two()).then_some(PageSize(bytes))
    }

    /// The size in bytes.
    #[inline]
    pub fn get(self) -> u64 {
        self.0
    }

    /// log2 of the size.
    #[inline]
    pub fn bits(self) -> u32 {
        self.0.trailing_zeros()
    }

    /// Virtual page number of a virtual address at this page size.
    #[inline]
    pub fn vpn(self, addr: VirtAddr) -> Vpn {
        Vpn(addr.0 >> self.bits())
    }

    /// Byte offset within the page.
    #[inline]
    pub fn offset(self, addr: VirtAddr) -> u64 {
        addr.0 & (self.0 - 1)
    }
}

impl fmt::Display for PageSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1024 && self.0.is_multiple_of(1024) {
            write!(f, "{} KiB", self.0 / 1024)
        } else {
            write!(f, "{} B", self.0)
        }
    }
}

/// A virtual page number (address space determined by context's ASID).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Vpn(pub u64);

impl fmt::Display for Vpn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "vpn:{:#x}", self.0)
    }
}

/// A physical frame number in the paged memory (SRAM main memory for
/// RAMpage; DRAM for the paging device).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct FrameId(pub u32);

impl FrameId {
    /// Base physical address of this frame for a given page size.
    #[inline]
    pub fn base_addr(self, page: PageSize) -> rampage_cache::PhysAddr {
        rampage_cache::PhysAddr((self.0 as u64) << page.bits())
    }
}

impl fmt::Display for FrameId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "frame:{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_paper_sweep() {
        for s in PageSize::PAPER_SWEEP {
            let p = PageSize::new(s).expect("paper size is valid");
            assert_eq!(p.get(), s);
        }
    }

    #[test]
    fn rejects_non_powers_and_tiny() {
        assert!(PageSize::new(0).is_none());
        assert!(PageSize::new(3).is_none());
        assert!(PageSize::new(96).is_none());
        assert!(PageSize::new(4).is_none(), "below 8-byte minimum");
    }

    #[test]
    fn vpn_and_offset() {
        let p = PageSize::new(128).unwrap();
        let a = VirtAddr(0x1234);
        assert_eq!(p.vpn(a), Vpn(0x1234 >> 7));
        assert_eq!(p.offset(a), 0x1234 & 0x7f);
        assert_eq!(p.vpn(a).0 * 128 + p.offset(a), 0x1234);
    }

    #[test]
    fn frame_base_addresses() {
        let p = PageSize::new(4096).unwrap();
        assert_eq!(FrameId(3).base_addr(p).0, 3 * 4096);
    }

    #[test]
    fn display_formats() {
        assert_eq!(PageSize::new(128).unwrap().to_string(), "128 B");
        assert_eq!(PageSize::new(4096).unwrap().to_string(), "4 KiB");
        assert_eq!(FrameId(7).to_string(), "frame:7");
        assert_eq!(Vpn(16).to_string(), "vpn:0x10");
    }
}
