//! The OS cost model: software events as reference sequences.
//!
//! The paper simulates software overhead faithfully: "TLB ... misses
//! modeled by interleaving a trace of page lookup software" (§4.3) and
//! "measurement is done by adding a trace of simulated context switch code
//! ... (approximately 400 references per context switch)" (§4.6). This
//! module generates those reference sequences. The simulator then runs
//! them *through the memory hierarchy*, so handler cost depends on where
//! the handler's code and data actually live — pinned in SRAM for
//! RAMpage (§2.3), DRAM-backed and cached for the conventional hierarchy.

use rampage_cache::PhysAddr;
use rampage_trace::AccessKind;

/// One reference issued by OS software. Handler references are already
/// physical (handlers run pinned/untranslated), so they bypass the TLB.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HandlerRef {
    /// Physical address touched.
    pub addr: PhysAddr,
    /// Fetch / read / write.
    pub kind: AccessKind,
}

/// Instruction counts for each software event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OsCosts {
    /// Instructions in the TLB-refill handler (hash, probe, TLB write).
    pub tlb_handler_instrs: u32,
    /// Instructions in the page-fault handler, excluding the clock scan
    /// and DRAM transfer (policy, queue manipulation, table updates).
    pub fault_handler_instrs: u32,
    /// Total references in a context switch (paper: "approximately 400").
    pub switch_total_refs: u32,
}

impl Default for OsCosts {
    /// Calibrated to the paper: a short refill handler (a hash plus a
    /// few probes — the ~30-reference scale that produces Figure 4's up
    /// to ~60 % overhead at 128-byte pages with a 64-entry TLB), a
    /// ~100-instruction fault handler, and the 400-reference switch.
    fn default() -> Self {
        OsCosts {
            tlb_handler_instrs: 22,
            fault_handler_instrs: 100,
            switch_total_refs: 400,
        }
    }
}

/// Where OS code and data live in the physical space of the level that
/// executes handlers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OsLayout {
    /// Base of handler code.
    pub code_base: PhysAddr,
    /// Bytes of handler code (instruction fetches cycle within this).
    pub code_bytes: u64,
    /// Base of the process-control-block array.
    pub pcb_base: PhysAddr,
    /// Bytes per PCB.
    pub pcb_stride: u64,
}

impl OsLayout {
    /// A layout at `base` with 16 KB of code followed by PCBs of 512
    /// bytes each — the residency model behind the paper's pinned-OS
    /// sizing (§4.5).
    pub fn at(base: PhysAddr) -> Self {
        OsLayout {
            code_base: base,
            code_bytes: 16 * 1024,
            pcb_base: PhysAddr(base.0 + 16 * 1024),
            pcb_stride: 512,
        }
    }
}

/// Generates the reference sequence of each software event.
#[derive(Debug, Clone, Copy)]
pub struct OsModel {
    costs: OsCosts,
    layout: OsLayout,
}

impl OsModel {
    /// Build a model from costs and layout.
    pub fn new(costs: OsCosts, layout: OsLayout) -> Self {
        OsModel { costs, layout }
    }

    /// The configured costs.
    pub fn costs(&self) -> OsCosts {
        self.costs
    }

    /// The configured layout.
    pub fn layout(&self) -> OsLayout {
        self.layout
    }

    /// Emit `n` instruction fetches starting at `entry` within the code
    /// region, wrapping at its end.
    fn emit_code(&self, entry: u64, n: u32, out: &mut Vec<HandlerRef>) {
        let base = self.layout.code_base.0;
        let len = self.layout.code_bytes;
        for i in 0..n as u64 {
            out.push(HandlerRef {
                addr: PhysAddr(base + (entry + i * 4) % len),
                kind: AccessKind::InstrFetch,
            });
        }
    }

    /// The TLB-refill handler: handler code interleaved with the page-
    /// table probe reads recorded by
    /// [`InvertedPageTable::lookup`](crate::InvertedPageTable::lookup).
    ///
    /// Longer hash chains produce more probes and therefore more
    /// references — chain length is simulated, not averaged.
    pub fn tlb_refill(&self, probe_addrs: &[PhysAddr], out: &mut Vec<HandlerRef>) {
        let n = self.costs.tlb_handler_instrs;
        // Prologue (hash computation), then one code/data pair per probe,
        // then epilogue (TLB insert).
        let prologue = n / 2;
        self.emit_code(0, prologue, out);
        for (i, &p) in probe_addrs.iter().enumerate() {
            self.emit_code((prologue as u64 + i as u64) * 4, 2, out);
            out.push(HandlerRef {
                addr: p,
                kind: AccessKind::Read,
            });
        }
        let used = prologue + 2 * probe_addrs.len() as u32;
        self.emit_code(used as u64 * 4, n.saturating_sub(used).max(2), out);
    }

    /// The page-fault handler (software portion only; the caller charges
    /// the DRAM transfer separately): fault-policy code, the clock scan
    /// (one table read per scanned entry), and the table updates for the
    /// victim and incoming pages.
    pub fn page_fault(
        &self,
        probe_addrs: &[PhysAddr],
        scan_addrs: &[PhysAddr],
        update_addrs: &[PhysAddr],
        out: &mut Vec<HandlerRef>,
    ) {
        let n = self.costs.fault_handler_instrs;
        // Entry + lookup confirmation.
        self.emit_code(0x400, n / 4, out);
        for &p in probe_addrs {
            out.push(HandlerRef {
                addr: p,
                kind: AccessKind::Read,
            });
        }
        // Clock scan: advance-hand code and a table read per entry.
        for (i, &s) in scan_addrs.iter().enumerate() {
            self.emit_code(0x400 + (n as u64 / 4 + i as u64) * 4, 1, out);
            out.push(HandlerRef {
                addr: s,
                kind: AccessKind::Read,
            });
        }
        // Table updates (victim unmap, new map, TLB insert): writes.
        self.emit_code(0x800, n / 2, out);
        for &u in update_addrs {
            out.push(HandlerRef {
                addr: u,
                kind: AccessKind::Write,
            });
        }
        self.emit_code(0xc00, n / 4, out);
    }

    /// A context switch between process table slots `from` and `to`:
    /// "approximately 400 references" (§4.6) of textbook save/restore —
    /// 60 % instruction fetches, 20 % reads, 20 % writes over the two
    /// PCBs and the scheduler code.
    pub fn context_switch(&self, from: usize, to: usize, out: &mut Vec<HandlerRef>) {
        let total = self.costs.switch_total_refs;
        let save = total * 2 / 10; // writes to old PCB
        let restore = total * 2 / 10; // reads from new PCB
        let code = total - save - restore;
        let from_pcb = self.layout.pcb_base.0 + from as u64 * self.layout.pcb_stride;
        let to_pcb = self.layout.pcb_base.0 + to as u64 * self.layout.pcb_stride;
        // Interleave: groups of code then a save write then a restore read,
        // approximating store/load multiple sequences.
        let mut code_left = code;
        let mut save_left = save;
        let mut restore_left = restore;
        let mut code_pc = 0x1000u64;
        let mut off = 0u64;
        while code_left > 0 || save_left > 0 || restore_left > 0 {
            if code_left > 0 {
                let chunk = (code_left).min(3);
                self.emit_code(code_pc, chunk, out);
                code_pc += chunk as u64 * 4;
                code_left -= chunk;
            }
            if save_left > 0 {
                out.push(HandlerRef {
                    addr: PhysAddr(from_pcb + (off * 4) % self.layout.pcb_stride),
                    kind: AccessKind::Write,
                });
                save_left -= 1;
            }
            if restore_left > 0 {
                out.push(HandlerRef {
                    addr: PhysAddr(to_pcb + (off * 4) % self.layout.pcb_stride),
                    kind: AccessKind::Read,
                });
                restore_left -= 1;
            }
            off += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> OsModel {
        OsModel::new(OsCosts::default(), OsLayout::at(PhysAddr(0)))
    }

    #[test]
    fn tlb_refill_includes_every_probe() {
        let m = model();
        let probes = [PhysAddr(0x5000), PhysAddr(0x5010), PhysAddr(0x5020)];
        let mut out = Vec::new();
        m.tlb_refill(&probes, &mut out);
        let reads: Vec<_> = out
            .iter()
            .filter(|r| r.kind == AccessKind::Read)
            .map(|r| r.addr)
            .collect();
        assert_eq!(reads, probes, "probes appear in order");
        let ifetches = out
            .iter()
            .filter(|r| r.kind == AccessKind::InstrFetch)
            .count();
        assert!(ifetches >= OsCosts::default().tlb_handler_instrs as usize / 2);
    }

    #[test]
    fn tlb_refill_scales_with_chain_length() {
        let m = model();
        let mut short = Vec::new();
        m.tlb_refill(&[PhysAddr(0x5000)], &mut short);
        let mut long = Vec::new();
        let chain: Vec<_> = (0..6).map(|i| PhysAddr(0x5000 + i * 16)).collect();
        m.tlb_refill(&chain, &mut long);
        assert!(long.len() > short.len(), "longer chains cost more");
    }

    #[test]
    fn context_switch_is_about_400_refs() {
        let m = model();
        let mut out = Vec::new();
        m.context_switch(0, 1, &mut out);
        let n = out.len() as u32;
        let want = OsCosts::default().switch_total_refs;
        assert!(
            (want - 4..=want + 4).contains(&n),
            "switch refs {n} vs target {want}"
        );
        let writes = out.iter().filter(|r| r.kind == AccessKind::Write).count();
        let reads = out.iter().filter(|r| r.kind == AccessKind::Read).count();
        assert_eq!(writes, (want * 2 / 10) as usize);
        assert_eq!(reads, (want * 2 / 10) as usize);
    }

    #[test]
    fn context_switch_touches_both_pcbs() {
        let m = model();
        let mut out = Vec::new();
        m.context_switch(2, 5, &mut out);
        let layout = m.layout();
        let pcb2 = layout.pcb_base.0 + 2 * layout.pcb_stride;
        let pcb5 = layout.pcb_base.0 + 5 * layout.pcb_stride;
        assert!(out
            .iter()
            .any(|r| r.kind == AccessKind::Write && r.addr.0 >= pcb2 && r.addr.0 < pcb2 + 512));
        assert!(out
            .iter()
            .any(|r| r.kind == AccessKind::Read && r.addr.0 >= pcb5 && r.addr.0 < pcb5 + 512));
    }

    #[test]
    fn page_fault_includes_scan_and_updates() {
        let m = model();
        let mut out = Vec::new();
        let scans: Vec<_> = (0..5).map(|i| PhysAddr(0x6000 + i * 16)).collect();
        let updates = [PhysAddr(0x6100), PhysAddr(0x6110)];
        m.page_fault(&[PhysAddr(0x5000)], &scans, &updates, &mut out);
        let reads = out.iter().filter(|r| r.kind == AccessKind::Read).count();
        assert_eq!(reads, 1 + scans.len(), "probe + scan reads");
        let writes: Vec<_> = out
            .iter()
            .filter(|r| r.kind == AccessKind::Write)
            .map(|r| r.addr)
            .collect();
        assert_eq!(writes, updates);
        let ifetches = out
            .iter()
            .filter(|r| r.kind == AccessKind::InstrFetch)
            .count();
        assert!(ifetches as u32 >= OsCosts::default().fault_handler_instrs);
    }

    #[test]
    fn code_fetches_stay_in_code_region() {
        let m = model();
        let mut out = Vec::new();
        m.context_switch(0, 17, &mut out);
        m.tlb_refill(&[PhysAddr(0x9000)], &mut out);
        for r in out.iter().filter(|r| r.kind == AccessKind::InstrFetch) {
            assert!(r.addr.0 < m.layout().code_bytes, "fetch at {}", r.addr);
        }
    }
}
