//! The standby page list: a software victim cache.

use crate::page::{FrameId, Vpn};
use rampage_trace::Asid;
use std::collections::VecDeque;

/// A page sitting on the standby list: replaced, but its frame not yet
/// reused, so it can be reclaimed without a DRAM transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StandbyEntry {
    /// Owning address space.
    pub asid: Asid,
    /// The page.
    pub vpn: Vpn,
    /// The frame still holding its contents.
    pub frame: FrameId,
    /// Whether the contents are dirty with respect to DRAM.
    pub dirty: bool,
}

/// §3.2 of the paper: "The victim cache concept can be implemented as an
/// extension of the page replacement strategy, using a conventional
/// operating system approach: when a page is replaced, it is moved to the
/// standby page list; the page which is on the list longest is the one
/// actually discarded."
///
/// The list holds pages whose frames have been reclaimed *logically* but
/// whose contents are still intact; a fault on a listed page is a "soft
/// fault" costing only handler software, no DRAM transfer. Used by the
/// ablation experiments comparing software standby lists against the
/// hardware victim cache in `rampage-cache`.
#[derive(Debug, Clone)]
pub struct StandbyList {
    entries: VecDeque<StandbyEntry>,
    capacity: usize,
    soft_faults: u64,
    hard_discards: u64,
}

impl StandbyList {
    /// A list holding up to `capacity` replaced pages.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "standby list needs capacity");
        StandbyList {
            entries: VecDeque::with_capacity(capacity),
            capacity,
            soft_faults: 0,
            hard_discards: 0,
        }
    }

    /// Record a replaced page. If the list is full, the longest-standing
    /// page is discarded for real and returned — its frame is now free
    /// and, if dirty, must be written back to DRAM by the caller.
    pub fn push(&mut self, entry: StandbyEntry) -> Option<StandbyEntry> {
        self.entries.push_back(entry);
        if self.entries.len() > self.capacity {
            self.hard_discards += 1;
            self.entries.pop_front()
        } else {
            None
        }
    }

    /// Reclaim a page on fault, if it is still standing by (a soft
    /// fault). The entry is removed and returned; its frame can simply be
    /// remapped.
    pub fn reclaim(&mut self, asid: Asid, vpn: Vpn) -> Option<StandbyEntry> {
        let pos = self
            .entries
            .iter()
            .position(|e| e.asid == asid && e.vpn == vpn)?;
        self.soft_faults += 1;
        self.entries.remove(pos)
    }

    /// Surrender the oldest standby frame to the allocator (the OS needs
    /// a truly free frame and the free pool is empty).
    pub fn surrender_oldest(&mut self) -> Option<StandbyEntry> {
        let e = self.entries.pop_front();
        if e.is_some() {
            self.hard_discards += 1;
        }
        e
    }

    /// Whether a page is currently standing by (without reclaiming it).
    pub fn contains(&self, asid: Asid, vpn: Vpn) -> bool {
        self.entries.iter().any(|e| e.asid == asid && e.vpn == vpn)
    }

    /// Pages currently standing by.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is standing by.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Soft faults served (reclaims).
    pub fn soft_faults(&self) -> u64 {
        self.soft_faults
    }

    /// Pages discarded for real.
    pub fn hard_discards(&self) -> u64 {
        self.hard_discards
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(vpn: u64, frame: u32, dirty: bool) -> StandbyEntry {
        StandbyEntry {
            asid: Asid(1),
            vpn: Vpn(vpn),
            frame: FrameId(frame),
            dirty,
        }
    }

    #[test]
    fn push_then_reclaim_is_soft_fault() {
        let mut l = StandbyList::new(4);
        l.push(entry(10, 3, true));
        let got = l.reclaim(Asid(1), Vpn(10)).unwrap();
        assert_eq!(got.frame, FrameId(3));
        assert!(got.dirty);
        assert_eq!(l.soft_faults(), 1);
        assert!(l.is_empty());
        assert!(l.reclaim(Asid(1), Vpn(10)).is_none(), "gone after reclaim");
    }

    #[test]
    fn overflow_discards_longest_standing() {
        let mut l = StandbyList::new(2);
        assert!(l.push(entry(1, 1, false)).is_none());
        assert!(l.push(entry(2, 2, false)).is_none());
        let out = l.push(entry(3, 3, false)).unwrap();
        assert_eq!(out.vpn, Vpn(1), "FIFO discard");
        assert_eq!(l.hard_discards(), 1);
        assert_eq!(l.len(), 2);
    }

    #[test]
    fn surrender_oldest_frees_a_frame() {
        let mut l = StandbyList::new(4);
        l.push(entry(1, 1, false));
        l.push(entry(2, 2, true));
        let e = l.surrender_oldest().unwrap();
        assert_eq!(e.vpn, Vpn(1));
        assert_eq!(l.len(), 1);
        assert!(StandbyList::new(1).surrender_oldest().is_none());
    }

    #[test]
    fn asid_isolation() {
        let mut l = StandbyList::new(4);
        l.push(entry(10, 1, false));
        assert!(l.reclaim(Asid(2), Vpn(10)).is_none());
        assert_eq!(l.len(), 1);
    }
}
