//! Virtual-memory substrate for the RAMpage simulator.
//!
//! RAMpage's core idea (paper §2) is that the lowest SRAM level is not a
//! cache but a *paged main memory*, managed entirely in software:
//!
//! * an **inverted page table** pinned in SRAM maps `(ASID, virtual page)`
//!   to SRAM frames — [`InvertedPageTable`], complete with the hash-anchor
//!   and chain structure whose probe addresses the TLB-miss handler
//!   actually touches;
//! * a **TLB** (64-entry fully-associative, random replacement in the
//!   paper's configuration) caches those translations — [`Tlb`];
//! * a **clock** (second-chance) algorithm chooses victims on page faults
//!   from SRAM — [`ClockReplacer`];
//! * an optional **standby page list** gives the software hierarchy the
//!   effect of a victim cache (§3.2) — [`StandbyList`];
//! * the **OS cost model** — [`os`] — turns each software event (TLB
//!   refill, page fault, context switch) into the reference sequence the
//!   handler would execute, so software overhead is *simulated through
//!   the memory hierarchy* rather than charged as a constant.
//!
//! The same structures serve the conventional hierarchy's DRAM-level
//! paging (the paper uses "the same inverted page table strategy ... for
//! simplicity", §2.4).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod clock;
mod error;
mod ipt;
pub mod os;
mod page;
mod standby;
mod tlb;

pub use clock::ClockReplacer;
pub use error::VmError;
pub use ipt::{InvertedPageTable, IptLookup, Mapping};
pub use page::{FrameId, PageSize, Vpn};
pub use standby::{StandbyEntry, StandbyList};
pub use tlb::{Tlb, TlbStats};
