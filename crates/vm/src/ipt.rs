//! The inverted page table.

use crate::error::VmError;
use crate::page::{FrameId, Vpn};
use rampage_cache::PhysAddr;
use rampage_trace::Asid;

/// What a frame currently holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Mapping {
    /// Owning address space.
    pub asid: Asid,
    /// Virtual page mapped into this frame.
    pub vpn: Vpn,
    /// Referenced bit for the clock algorithm.
    pub referenced: bool,
    /// Dirty: the frame must be written back on replacement.
    pub dirty: bool,
    /// Pinned frames (OS code, the page table itself) are never replaced.
    pub pinned: bool,
}

/// Result of a table lookup: the frame (if mapped) and the physical
/// addresses the lookup touched — one hash-anchor-table slot plus one
/// entry per chain step. The TLB-miss handler in [`crate::os`] replays
/// these through the simulated hierarchy, so longer chains genuinely cost
/// more.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IptLookup {
    /// The mapped frame, or `None` (page fault).
    pub frame: Option<FrameId>,
    /// Physical addresses probed, in order.
    pub probe_addrs: Vec<PhysAddr>,
}

impl IptLookup {
    /// How many table reads the walk performed (the HAT slot plus one
    /// per chain step) — the cost figure observability events carry.
    pub fn probes(&self) -> usize {
        self.probe_addrs.len()
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Slot {
    mapping: Option<Mapping>,
    /// Next frame on the same hash chain.
    next: Option<FrameId>,
}

/// An inverted page table: one entry per physical frame, reached through a
/// hash anchor table (HAT) with per-bucket chains (the structure of
/// Huck & Hays 1993, which the paper cites in §2.2).
///
/// The paper chooses an inverted table because the SRAM main memory is
/// small, the table size is fixed (so it can be pinned in SRAM), and with
/// the whole of SRAM mapped by a pinned table "a TLB miss need never
/// reference DRAM or disk, until there is a page fault from SRAM."
///
/// The table knows its own physical layout (`table_base`): the HAT is an
/// array of 4-byte frame indices, followed by 16-byte entries, so lookups
/// report the exact addresses a software handler would touch.
#[derive(Debug)]
pub struct InvertedPageTable {
    slots: Vec<Slot>,
    hat: Vec<Option<FrameId>>,
    free: Vec<FrameId>,
    table_base: PhysAddr,
    mapped: u32,
}

/// Bytes per hash-anchor-table slot (a frame index).
const HAT_ENTRY_BYTES: u64 = 4;
/// Bytes per table entry (ASID + VPN + flags + chain link).
pub(crate) const ENTRY_BYTES: u64 = 16;

impl InvertedPageTable {
    /// Create a table covering `num_frames` frames, resident at
    /// `table_base` in the physical space it maps.
    ///
    /// # Panics
    ///
    /// Panics if `num_frames` is zero.
    pub fn new(num_frames: u32, table_base: PhysAddr) -> Self {
        assert!(num_frames > 0, "a paged memory needs frames");
        // One bucket per frame (rounded up to a power of two): the
        // classic inverted-table load factor, and it keeps the pinned
        // table within the paper's §4.5 OS-region budget.
        let buckets = (num_frames as usize).next_power_of_two();
        InvertedPageTable {
            slots: vec![Slot::default(); num_frames as usize],
            hat: vec![None; buckets],
            // Allocate low frames first: pop from the back.
            free: (0..num_frames).rev().map(FrameId).collect(),
            table_base,
            mapped: 0,
        }
    }

    /// Number of frames covered.
    pub fn num_frames(&self) -> u32 {
        self.slots.len() as u32
    }

    /// Number of currently mapped frames.
    pub fn mapped_frames(&self) -> u32 {
        self.mapped
    }

    /// Number of hash-anchor-table buckets.
    pub fn hat_buckets(&self) -> usize {
        self.hat.len()
    }

    /// Total bytes the table occupies (HAT + entries) — the quantity the
    /// OS pins in SRAM (paper §4.5: 6 pages at a 4 KB page size, up to
    /// 5336 pages at 128 bytes).
    pub fn table_bytes(&self) -> u64 {
        self.hat.len() as u64 * HAT_ENTRY_BYTES + self.slots.len() as u64 * ENTRY_BYTES
    }

    fn bucket_of(&self, asid: Asid, vpn: Vpn) -> usize {
        let key = ((asid.0 as u64) << 48) ^ vpn.0;
        let h = key.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        (h >> (64 - self.hat.len().trailing_zeros())) as usize
    }

    fn hat_addr(&self, bucket: usize) -> PhysAddr {
        PhysAddr(self.table_base.0 + bucket as u64 * HAT_ENTRY_BYTES)
    }

    /// Physical address of the table entry for `frame` (used by the OS
    /// model to generate clock-scan and update references).
    pub fn entry_addr(&self, frame: FrameId) -> PhysAddr {
        PhysAddr(
            self.table_base.0
                + self.hat.len() as u64 * HAT_ENTRY_BYTES
                + frame.0 as u64 * ENTRY_BYTES,
        )
    }

    /// Look up `(asid, vpn)`, recording the probe addresses. On a hit the
    /// referenced bit is set (feeding the clock algorithm).
    pub fn lookup(&mut self, asid: Asid, vpn: Vpn) -> IptLookup {
        let bucket = self.bucket_of(asid, vpn);
        let mut probe_addrs = vec![self.hat_addr(bucket)];
        let mut cur = self.hat[bucket];
        while let Some(f) = cur {
            probe_addrs.push(self.entry_addr(f));
            let slot = &mut self.slots[f.0 as usize];
            let Some(m) = slot.mapping.as_mut() else {
                // invariant: frames on a collision chain always hold a
                // mapping; unmapped frames are unlinked on free.
                unreachable!("IPT invariant: chained frames are always mapped")
            };
            if m.asid == asid && m.vpn == vpn {
                m.referenced = true;
                return IptLookup {
                    frame: Some(f),
                    probe_addrs,
                };
            }
            cur = slot.next;
        }
        IptLookup {
            frame: None,
            probe_addrs,
        }
    }

    /// Behavioural lookup: no probe recording, no referenced-bit update.
    pub fn frame_of(&self, asid: Asid, vpn: Vpn) -> Option<FrameId> {
        let bucket = self.bucket_of(asid, vpn);
        let mut cur = self.hat[bucket];
        while let Some(f) = cur {
            let slot = &self.slots[f.0 as usize];
            let m = slot.mapping.as_ref()?;
            if m.asid == asid && m.vpn == vpn {
                return Some(f);
            }
            cur = slot.next;
        }
        None
    }

    /// Take a frame from the free pool (low frame numbers first, unless
    /// shuffled with [`shuffle_free`](Self::shuffle_free)).
    pub fn alloc_free(&mut self) -> Option<FrameId> {
        self.free.pop()
    }

    /// Shuffle the free pool (deterministically, by `seed`).
    ///
    /// A real OS's free list is effectively randomly ordered, which is
    /// what makes large direct-mapped caches suffer page-placement
    /// conflicts (the problem the paper's §3.2 cites page-coloring work
    /// [KH92b, BLRC94] for). Sequential allocation would amount to
    /// perfect page coloring and unrealistically flatter the baseline.
    pub fn shuffle_free(&mut self, seed: u64) {
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        self.free.shuffle(&mut rng);
    }

    /// Number of unmapped frames remaining.
    pub fn free_frames(&self) -> usize {
        self.free.len()
    }

    /// Map `(asid, vpn)` into `frame`, linking it onto its hash chain.
    ///
    /// # Errors
    ///
    /// [`VmError::FrameAlreadyMapped`] / [`VmError::PageAlreadyMapped`]
    /// when the frame or the pair is already in use (both are OS bugs in
    /// a real system); the table is unchanged on error.
    pub fn try_insert(&mut self, frame: FrameId, asid: Asid, vpn: Vpn) -> Result<(), VmError> {
        if self.slots[frame.0 as usize].mapping.is_some() {
            return Err(VmError::FrameAlreadyMapped { frame });
        }
        if self.frame_of(asid, vpn).is_some() {
            return Err(VmError::PageAlreadyMapped { asid, vpn });
        }
        let bucket = self.bucket_of(asid, vpn);
        self.slots[frame.0 as usize] = Slot {
            mapping: Some(Mapping {
                asid,
                vpn,
                referenced: true,
                dirty: false,
                pinned: false,
            }),
            next: self.hat[bucket],
        };
        self.hat[bucket] = Some(frame);
        self.mapped += 1;
        Ok(())
    }

    /// Map `(asid, vpn)` into `frame`, linking it onto its hash chain.
    ///
    /// # Panics
    ///
    /// Panics if the frame is already mapped or the pair is already
    /// mapped elsewhere; use [`try_insert`](Self::try_insert) to handle
    /// those as values.
    pub fn insert(&mut self, frame: FrameId, asid: Asid, vpn: Vpn) {
        if let Err(e) = self.try_insert(frame, asid, vpn) {
            panic!("IPT insert: {e}");
        }
    }

    /// Map and pin a frame (OS code / page-table residency). Pinned
    /// frames are skipped by the clock replacer.
    ///
    /// # Panics
    ///
    /// As [`insert`](Self::insert).
    pub fn insert_pinned(&mut self, frame: FrameId, asid: Asid, vpn: Vpn) {
        self.insert(frame, asid, vpn);
        if let Some(m) = self.slots[frame.0 as usize].mapping.as_mut() {
            m.pinned = true;
        }
    }

    /// Unmap a frame, unlinking it from its chain. Returns the old
    /// mapping (with dirty flag, for write-back).
    ///
    /// # Panics
    ///
    /// Panics if the frame is pinned.
    pub fn remove(&mut self, frame: FrameId) -> Option<Mapping> {
        let m = self.remove_reserved(frame)?;
        self.free.push(frame);
        Some(m)
    }

    /// Unmap a frame but keep it out of the free pool — the standby-list
    /// path, where the frame's contents stay intact until the page is
    /// discarded for real. Pair with [`release`](Self::release).
    ///
    /// # Errors
    ///
    /// [`VmError::PinnedFrame`] if the frame is pinned (pinned frames
    /// hold the OS and the table itself; replacing one is a kernel bug).
    pub fn try_remove_reserved(&mut self, frame: FrameId) -> Result<Option<Mapping>, VmError> {
        let Some(m) = self.slots[frame.0 as usize].mapping else {
            return Ok(None);
        };
        if m.pinned {
            return Err(VmError::PinnedFrame { frame });
        }
        let bucket = self.bucket_of(m.asid, m.vpn);
        // Unlink from the chain.
        if self.hat[bucket] == Some(frame) {
            self.hat[bucket] = self.slots[frame.0 as usize].next;
        } else {
            let mut cur = self.hat[bucket];
            while let Some(f) = cur {
                let next = self.slots[f.0 as usize].next;
                if next == Some(frame) {
                    self.slots[f.0 as usize].next = self.slots[frame.0 as usize].next;
                    break;
                }
                cur = next;
            }
        }
        self.slots[frame.0 as usize] = Slot::default();
        self.mapped -= 1;
        Ok(Some(m))
    }

    /// As [`try_remove_reserved`](Self::try_remove_reserved), panicking
    /// on a pinned frame.
    ///
    /// # Panics
    ///
    /// Panics if the frame is pinned.
    pub fn remove_reserved(&mut self, frame: FrameId) -> Option<Mapping> {
        match self.try_remove_reserved(frame) {
            Ok(m) => m,
            Err(e) => panic!("IPT remove: {e}"),
        }
    }

    /// Return a frame previously detached with
    /// [`remove_reserved`](Self::remove_reserved) to the free pool (its
    /// standby contents have been discarded).
    ///
    /// # Panics
    ///
    /// Panics if the frame is still mapped.
    pub fn release(&mut self, frame: FrameId) {
        assert!(
            self.slots[frame.0 as usize].mapping.is_none(),
            "releasing a mapped frame {frame}"
        );
        debug_assert!(!self.free.contains(&frame), "double release of {frame}");
        self.free.push(frame);
    }

    /// The mapping currently in `frame`, if any.
    pub fn mapping(&self, frame: FrameId) -> Option<&Mapping> {
        self.slots[frame.0 as usize].mapping.as_ref()
    }

    /// Set the dirty bit of a mapped frame (on write-back into the page).
    ///
    /// # Panics
    ///
    /// Panics if the frame is unmapped (the caller just resolved the
    /// frame through the TLB or table, so this is an internal invariant).
    pub fn set_dirty(&mut self, frame: FrameId) {
        match self.slots[frame.0 as usize].mapping.as_mut() {
            Some(m) => m.dirty = true,
            None => panic!("VM invariant: dirtying unmapped {frame}"),
        }
    }

    /// Clear the referenced bit (the clock hand sweeping past).
    pub(crate) fn clear_referenced(&mut self, frame: FrameId) {
        if let Some(m) = self.slots[frame.0 as usize].mapping.as_mut() {
            m.referenced = false;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(frames: u32) -> InvertedPageTable {
        InvertedPageTable::new(frames, PhysAddr(0x1000))
    }

    #[test]
    fn insert_lookup_remove_roundtrip() {
        let mut t = table(8);
        let f = t.alloc_free().unwrap();
        assert_eq!(f, FrameId(0), "low frames first");
        t.insert(f, Asid(1), Vpn(42));
        assert_eq!(t.frame_of(Asid(1), Vpn(42)), Some(f));
        assert_eq!(t.mapped_frames(), 1);
        let m = t.remove(f).unwrap();
        assert_eq!(m.vpn, Vpn(42));
        assert_eq!(t.frame_of(Asid(1), Vpn(42)), None);
        assert_eq!(t.free_frames(), 8);
    }

    #[test]
    fn lookup_records_hat_and_chain_probes() {
        let mut t = table(8);
        let f = t.alloc_free().unwrap();
        t.insert(f, Asid(1), Vpn(1));
        let r = t.lookup(Asid(1), Vpn(1));
        assert_eq!(r.frame, Some(f));
        // One HAT probe + one entry probe.
        assert_eq!(r.probe_addrs.len(), 2);
        assert_eq!(r.probes(), r.probe_addrs.len());
        assert!(r.probe_addrs[0].0 >= 0x1000);
        // A missing page probes at least the HAT slot.
        let miss = t.lookup(Asid(9), Vpn(9));
        assert_eq!(miss.frame, None);
        assert!(!miss.probe_addrs.is_empty());
    }

    #[test]
    fn chains_grow_probe_sequences() {
        // Force every page into the same bucket by brute force: insert
        // many pages and find a bucket with a chain of length >= 2.
        let mut t = table(64);
        for i in 0..64u64 {
            let f = t.alloc_free().unwrap();
            t.insert(f, Asid(1), Vpn(i));
        }
        let max_probes = (0..64u64)
            .map(|i| t.lookup(Asid(1), Vpn(i)).probe_addrs.len())
            .max()
            .unwrap();
        assert!(
            max_probes >= 2,
            "with 64 pages in 128 buckets some chain should exist; max {max_probes}"
        );
    }

    #[test]
    fn remove_from_middle_of_chain_preserves_rest() {
        let mut t = table(64);
        // Fill completely so chains certainly form.
        for i in 0..64u64 {
            let f = t.alloc_free().unwrap();
            t.insert(f, Asid(1), Vpn(i));
        }
        // Remove every even page, then verify all odd pages still resolve.
        for i in (0..64u64).step_by(2) {
            let f = t.frame_of(Asid(1), Vpn(i)).unwrap();
            t.remove(f);
        }
        for i in (1..64u64).step_by(2) {
            assert!(
                t.frame_of(Asid(1), Vpn(i)).is_some(),
                "odd page {i} lost its mapping"
            );
        }
        assert_eq!(t.mapped_frames(), 32);
    }

    #[test]
    fn referenced_bit_set_on_lookup() {
        let mut t = table(4);
        let f = t.alloc_free().unwrap();
        t.insert(f, Asid(1), Vpn(7));
        t.clear_referenced(f);
        assert!(!t.mapping(f).unwrap().referenced);
        t.lookup(Asid(1), Vpn(7));
        assert!(t.mapping(f).unwrap().referenced);
    }

    #[test]
    fn dirty_bit_lifecycle() {
        let mut t = table(4);
        let f = t.alloc_free().unwrap();
        t.insert(f, Asid(1), Vpn(7));
        assert!(!t.mapping(f).unwrap().dirty);
        t.set_dirty(f);
        let m = t.remove(f).unwrap();
        assert!(m.dirty, "write-back needed");
    }

    #[test]
    #[should_panic(expected = "pinned")]
    fn pinned_frames_cannot_be_removed() {
        let mut t = table(4);
        let f = t.alloc_free().unwrap();
        t.insert_pinned(f, Asid(0), Vpn(0));
        t.remove(f);
    }

    #[test]
    #[should_panic(expected = "already mapped")]
    fn double_insert_is_a_bug() {
        let mut t = table(4);
        let f = t.alloc_free().unwrap();
        t.insert(f, Asid(1), Vpn(1));
        t.insert(f, Asid(1), Vpn(2));
    }

    #[test]
    fn try_insert_reports_conflicts_without_mutating() {
        use crate::error::VmError;
        let mut t = table(4);
        let f = t.alloc_free().unwrap();
        assert_eq!(t.try_insert(f, Asid(1), Vpn(1)), Ok(()));
        assert_eq!(
            t.try_insert(f, Asid(1), Vpn(2)),
            Err(VmError::FrameAlreadyMapped { frame: f })
        );
        let g = t.alloc_free().unwrap();
        assert_eq!(
            t.try_insert(g, Asid(1), Vpn(1)),
            Err(VmError::PageAlreadyMapped {
                asid: Asid(1),
                vpn: Vpn(1)
            })
        );
        assert_eq!(t.mapped_frames(), 1, "failed inserts change nothing");
        assert_eq!(t.frame_of(Asid(1), Vpn(1)), Some(f));
    }

    #[test]
    fn try_remove_reserved_refuses_pinned() {
        use crate::error::VmError;
        let mut t = table(4);
        let f = t.alloc_free().unwrap();
        t.insert_pinned(f, Asid(0), Vpn(0));
        assert_eq!(
            t.try_remove_reserved(f),
            Err(VmError::PinnedFrame { frame: f })
        );
        assert_eq!(t.mapped_frames(), 1, "pinned mapping survives");
    }

    #[test]
    fn table_bytes_scale_with_frames() {
        // 4.125 MB of SRAM at 128-byte pages = 33792 frames: entries alone
        // are 528 KB, matching the order of the paper's 667 KB OS region.
        let t = InvertedPageTable::new(33792, PhysAddr(0));
        let bytes = t.table_bytes();
        assert!(bytes > 528 * 1024, "entries: {bytes}");
        assert!(bytes < 1024 * 1024, "but below 1 MB: {bytes}");
    }

    #[test]
    fn remove_reserved_keeps_frame_out_of_pool() {
        let mut t = table(2);
        let f = t.alloc_free().unwrap();
        t.insert(f, Asid(1), Vpn(1));
        let m = t.remove_reserved(f).unwrap();
        assert_eq!(m.vpn, Vpn(1));
        assert_eq!(t.frame_of(Asid(1), Vpn(1)), None, "unmapped");
        assert_eq!(t.free_frames(), 1, "frame 0 reserved, frame 1 free");
        t.release(f);
        assert_eq!(t.free_frames(), 2);
    }

    #[test]
    #[should_panic(expected = "releasing a mapped frame")]
    fn release_of_mapped_frame_is_a_bug() {
        let mut t = table(2);
        let f = t.alloc_free().unwrap();
        t.insert(f, Asid(1), Vpn(1));
        t.release(f);
    }

    #[test]
    fn alloc_exhausts_then_none() {
        let mut t = table(2);
        assert!(t.alloc_free().is_some());
        assert!(t.alloc_free().is_some());
        assert!(t.alloc_free().is_none());
    }
}
