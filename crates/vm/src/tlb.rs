//! The translation lookaside buffer.

use crate::page::{FrameId, Vpn};
use rampage_trace::Asid;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// TLB hit/miss counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TlbStats {
    /// Lookups that found a translation.
    pub hits: u64,
    /// Lookups that missed (handler invoked).
    pub misses: u64,
    /// Entries flushed because their page was replaced.
    pub flushes: u64,
}

impl TlbStats {
    /// Miss ratio in `[0, 1]`; 0 for an unused TLB.
    pub fn miss_ratio(&self) -> f64 {
        let t = self.hits + self.misses;
        if t == 0 {
            0.0
        } else {
            self.misses as f64 / t as f64
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Entry {
    asid: Asid,
    vpn: Vpn,
    frame: FrameId,
}

/// A set-associative TLB with random replacement.
///
/// The paper's configuration (§4.3) is 64 entries, fully associative,
/// random replacement, 1-cycle (pipelined, zero-cost) hits. §6.3 starts
/// measurements with a 1 K-entry 2-way TLB, which this type also covers.
///
/// In the conventional hierarchy the TLB caches virtual → DRAM-physical
/// translations; in RAMpage it caches virtual → SRAM-physical
/// translations, so "a TLB miss never results in a reference below the
/// SRAM main memory" (§2.3).
#[derive(Debug)]
pub struct Tlb {
    sets: usize,
    ways: usize,
    /// `sets * ways` slots, row-major by set.
    slots: Vec<Option<Entry>>,
    /// Exact-match index for O(1) lookup: (asid, vpn) → slot.
    index: HashMap<(Asid, Vpn), usize>,
    rng: StdRng,
    stats: TlbStats,
}

impl Tlb {
    /// The paper's TLB: 64 entries, fully associative.
    pub fn paper_default() -> Self {
        Tlb::new(1, 64, 0x71b_5eed)
    }

    /// The §6.3 future-work TLB: 1 K entries, 2-way.
    pub fn large_2way() -> Self {
        Tlb::new(512, 2, 0x71b_5eed)
    }

    /// A TLB of `sets` sets × `ways` ways with the given RNG seed for
    /// random replacement.
    ///
    /// # Panics
    ///
    /// Panics if `sets` or `ways` is zero, or `sets` is not a power of two.
    pub fn new(sets: usize, ways: usize, seed: u64) -> Self {
        assert!(sets > 0 && ways > 0, "TLB needs capacity");
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        Tlb {
            sets,
            ways,
            slots: vec![None; sets * ways],
            index: HashMap::new(),
            rng: StdRng::seed_from_u64(seed),
            stats: TlbStats::default(),
        }
    }

    /// Total entries.
    pub fn capacity(&self) -> usize {
        self.sets * self.ways
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> TlbStats {
        self.stats
    }

    /// Zero the statistics.
    pub fn reset_stats(&mut self) {
        self.stats = TlbStats::default();
    }

    fn set_of(&self, vpn: Vpn) -> usize {
        (vpn.0 as usize) & (self.sets - 1)
    }

    /// Look up a translation, counting a hit or miss.
    pub fn lookup(&mut self, asid: Asid, vpn: Vpn) -> Option<FrameId> {
        match self.index.get(&(asid, vpn)) {
            Some(&slot) => {
                let Some(entry) = self.slots[slot] else {
                    // invariant: the index only points at occupied slots;
                    // eviction removes the index entry first.
                    unreachable!("TLB invariant: indexed slot {slot} is empty")
                };
                self.stats.hits += 1;
                Some(entry.frame)
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Peek without touching statistics (for assertions and tests).
    pub fn peek(&self, asid: Asid, vpn: Vpn) -> Option<FrameId> {
        self.index.get(&(asid, vpn)).map(|&slot| {
            let Some(entry) = self.slots[slot] else {
                // invariant: the index only points at occupied slots;
                // eviction removes the index entry first.
                unreachable!("TLB invariant: indexed slot {slot} is empty")
            };
            entry.frame
        })
    }

    /// Insert a translation (after a handler refill), evicting a random
    /// way of the set if full. Returns the displaced translation, if any.
    pub fn insert(&mut self, asid: Asid, vpn: Vpn, frame: FrameId) -> Option<(Asid, Vpn)> {
        // Refresh in place if already present.
        if let Some(&slot) = self.index.get(&(asid, vpn)) {
            self.slots[slot] = Some(Entry { asid, vpn, frame });
            return None;
        }
        let set = self.set_of(vpn);
        let base = set * self.ways;
        let slot = match (0..self.ways).find(|&w| self.slots[base + w].is_none()) {
            Some(w) => base + w,
            None => base + self.rng.gen_range(0..self.ways),
        };
        let displaced = self.slots[slot].map(|e| {
            self.index.remove(&(e.asid, e.vpn));
            (e.asid, e.vpn)
        });
        self.slots[slot] = Some(Entry { asid, vpn, frame });
        self.index.insert((asid, vpn), slot);
        displaced
    }

    /// Drop the translation for one page (paper §2.3: "if a page is
    /// replaced from the SRAM main memory, its entry (if it has one) in
    /// the TLB is flushed"). Returns whether an entry was present.
    pub fn flush_page(&mut self, asid: Asid, vpn: Vpn) -> bool {
        match self.index.remove(&(asid, vpn)) {
            Some(slot) => {
                self.slots[slot] = None;
                self.stats.flushes += 1;
                true
            }
            None => false,
        }
    }

    /// Drop every translation (e.g. on a full address-space teardown).
    pub fn flush_all(&mut self) {
        for s in &mut self.slots {
            *s = None;
        }
        self.index.clear();
    }

    /// Number of valid entries.
    pub fn occupancy(&self) -> usize {
        self.index.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(n: u16) -> Asid {
        Asid(n)
    }

    #[test]
    fn miss_then_insert_then_hit() {
        let mut t = Tlb::paper_default();
        assert_eq!(t.lookup(a(1), Vpn(10)), None);
        t.insert(a(1), Vpn(10), FrameId(5));
        assert_eq!(t.lookup(a(1), Vpn(10)), Some(FrameId(5)));
        let s = t.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
    }

    #[test]
    fn asids_do_not_alias() {
        let mut t = Tlb::paper_default();
        t.insert(a(1), Vpn(10), FrameId(5));
        assert_eq!(t.lookup(a(2), Vpn(10)), None);
    }

    #[test]
    fn capacity_eviction_is_bounded() {
        let mut t = Tlb::new(1, 4, 7);
        for i in 0..20u64 {
            t.insert(a(1), Vpn(i), FrameId(i as u32));
        }
        assert_eq!(t.occupancy(), 4, "never exceeds capacity");
        // Exactly 4 of the 20 remain translatable.
        let present = (0..20u64)
            .filter(|&i| t.peek(a(1), Vpn(i)).is_some())
            .count();
        assert_eq!(present, 4);
    }

    #[test]
    fn eviction_reports_displaced_translation() {
        let mut t = Tlb::new(1, 1, 7);
        assert_eq!(t.insert(a(1), Vpn(1), FrameId(1)), None);
        let displaced = t.insert(a(1), Vpn(2), FrameId(2));
        assert_eq!(displaced, Some((a(1), Vpn(1))));
    }

    #[test]
    fn reinsert_updates_in_place() {
        let mut t = Tlb::new(1, 2, 7);
        t.insert(a(1), Vpn(1), FrameId(1));
        assert_eq!(t.insert(a(1), Vpn(1), FrameId(9)), None);
        assert_eq!(t.peek(a(1), Vpn(1)), Some(FrameId(9)));
        assert_eq!(t.occupancy(), 1);
    }

    #[test]
    fn flush_page_removes_only_that_page() {
        let mut t = Tlb::paper_default();
        t.insert(a(1), Vpn(1), FrameId(1));
        t.insert(a(1), Vpn(2), FrameId(2));
        assert!(t.flush_page(a(1), Vpn(1)));
        assert!(!t.flush_page(a(1), Vpn(1)), "already gone");
        assert_eq!(t.peek(a(1), Vpn(1)), None);
        assert_eq!(t.peek(a(1), Vpn(2)), Some(FrameId(2)));
        assert_eq!(t.stats().flushes, 1);
    }

    #[test]
    fn set_associative_maps_by_low_vpn_bits() {
        let mut t = Tlb::new(2, 1, 7);
        // Vpn 0 and Vpn 2 share set 0; Vpn 1 goes to set 1.
        t.insert(a(1), Vpn(0), FrameId(0));
        t.insert(a(1), Vpn(1), FrameId(1));
        t.insert(a(1), Vpn(2), FrameId(2)); // evicts Vpn 0
        assert_eq!(t.peek(a(1), Vpn(0)), None);
        assert_eq!(t.peek(a(1), Vpn(1)), Some(FrameId(1)));
        assert_eq!(t.peek(a(1), Vpn(2)), Some(FrameId(2)));
    }

    #[test]
    fn flush_all_empties() {
        let mut t = Tlb::paper_default();
        for i in 0..10u64 {
            t.insert(a(1), Vpn(i), FrameId(i as u32));
        }
        t.flush_all();
        assert_eq!(t.occupancy(), 0);
        assert_eq!(t.peek(a(1), Vpn(3)), None);
    }

    #[test]
    fn paper_configurations() {
        assert_eq!(Tlb::paper_default().capacity(), 64);
        assert_eq!(Tlb::large_2way().capacity(), 1024);
    }

    #[test]
    fn miss_ratio() {
        let mut t = Tlb::paper_default();
        t.lookup(a(1), Vpn(0));
        t.insert(a(1), Vpn(0), FrameId(0));
        t.lookup(a(1), Vpn(0));
        t.lookup(a(1), Vpn(0));
        assert!((t.stats().miss_ratio() - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(TlbStats::default().miss_ratio(), 0.0);
    }
}
