// Fixture: a crate's own fallible `expect` parser method and
// `unwrap_or` are out of scope. Never compiled.
pub struct Reader {
    data: Vec<u8>,
    pos: usize,
}

impl Reader {
    pub fn expect(&mut self, want: u8) -> Result<(), String> {
        match self.data.get(self.pos) {
            Some(&b) if b == want => {
                self.pos += 1;
                Ok(())
            }
            _ => Err(format!("wanted {want}")),
        }
    }

    pub fn demand(&mut self, want: u8) -> Result<(), String> {
        self.expect(want)
    }
}

pub fn head(v: &[u64]) -> u64 {
    v.first().copied().unwrap_or(0)
}
