// Fixture: simulated time only — picosecond counters, no host clock.
// Never compiled.
pub struct SimClock {
    now_ps: u64,
}

impl SimClock {
    pub fn advance(&mut self, ps: u64) -> u64 {
        self.now_ps += ps;
        self.now_ps
    }
}
