//! Good: every path re-reads the journal between claim and execution.

/// The protocol: append the claim, re-scan, execute only if ours.
pub fn claim_and_run(durable: &mut Durable, ready: bool) {
    durable.append(JournalOp::Claim { fp: 7, attempt: 1 });
    let readback = durable.scan();
    if ready {
        touch(&readback);
    }
    execute_slice(durable);
}

/// No claim appended: execution needs no readback.
pub fn run_adopted(durable: &mut Durable) {
    execute_slice(durable);
}
