// Fixture: the trait carries a default `attach_trace` body, so a bare
// impl inherits it. Never compiled.
pub trait MemorySystem {
    fn access(&mut self, addr: u64) -> u64;
    fn attach_trace(&mut self, _sink: usize) {}
}

pub struct Flat;

impl MemorySystem for Flat {
    fn access(&mut self, addr: u64) -> u64 {
        addr
    }
}
