// Fixture: panics covered by a `# Panics` doc section and by an
// `// invariant:` comment. Never compiled.

/// Halve an even number.
///
/// # Panics
///
/// Panics when `x` is odd.
pub fn half(x: u64) -> u64 {
    assert!(x % 2 == 0);
    x / 2
}

pub fn quarter(x: u64) -> u64 {
    // invariant: callers pre-check divisibility by 4; a remainder here
    // is a caller bug, not recoverable state.
    assert_eq!(x % 4, 0);
    x / 4
}
