// Fixture: an experiments/table*.rs file that routes its cells through
// the SweepRunner. Never compiled.
pub fn run(runner: &SweepRunner, jobs: &[Job]) -> Vec<u64> {
    runner.run_batch(jobs);
    Vec::new()
}
