// Fixture: configuration plumbed explicitly instead of read from the
// host environment. Never compiled.
pub struct Seed(pub u64);

pub fn workload_seed(cfg_seed: Seed) -> u64 {
    cfg_seed.0
}
