//! Good: a deliberate cross-domain comparison, waived at the site.

/// Compares a picosecond budget against a reference count on purpose
/// (a coarse admission heuristic), with the waiver explaining why.
pub fn admit(quantum_refs: u64) -> bool {
    // lint: allow(unit-mix) — coarse admission heuristic, both sides scale together
    t_rcd > quantum_refs
}
