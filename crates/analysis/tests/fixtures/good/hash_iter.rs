// Fixture: ordered iteration and order-free hash lookups — nothing to
// flag in a simulation path. Never compiled.
use std::collections::{BTreeMap, HashMap};

pub fn sum(m: &BTreeMap<u64, u64>) -> u64 {
    let mut total = 0;
    for (k, v) in m.iter() {
        total += k + v;
    }
    total
}

pub fn lookup(table: &HashMap<u64, u64>, k: u64) -> Option<u64> {
    table.get(&k).copied()
}
