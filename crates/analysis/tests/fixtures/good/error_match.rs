// Fixture: error matches stay exhaustive; wildcards over non-error
// types are fine. Never compiled.
pub enum ConfigError {
    EmptyTlb,
    ZeroCapacity,
}

pub fn describe(e: &ConfigError) -> &'static str {
    match e {
        ConfigError::EmptyTlb => "empty TLB",
        ConfigError::ZeroCapacity => "zero capacity",
    }
}

pub fn class(byte: u8) -> u8 {
    match byte {
        0 => 0,
        _ => 1,
    }
}
