//! Good: unit-correct timing arithmetic.

/// Typed slice configuration: the unit lives in the newtype.
pub struct SliceCfg {
    /// The slice length, typed.
    pub slice_time: Picos,
    /// A rate is a ratio of units, not a time.
    pub bytes_per_ms: u64,
}

/// Same-domain arithmetic and explicit conversions are fine.
pub fn accumulate(busy_until: u64, now_ps: u64, refs_done: u64) -> u64 {
    // Picoseconds with picoseconds.
    let wait = busy_until.max(now_ps) - now_ps;
    // Multiplication legitimately changes the unit (refs × ps/ref).
    let budget = refs_done * 2_000;
    let _ = budget;
    // An unknown-domain scalar is compatible with anything.
    let limit = threshold();
    if wait > limit {
        return wait;
    }
    wait
}
