//! Good: every sleeping loop consults a cancel/shutdown signal.

/// The watchdog poll doubles as the cancel consultation.
pub fn wait_all(done: &Counter, total: usize, wd: &Watchdog) {
    while done.load(Ordering::Relaxed) < total {
        std::thread::sleep(POLL);
        wd.poll(total);
    }
}

/// Shutdown checked explicitly each iteration.
pub fn idle_until_shutdown(durable: &mut Durable) {
    loop {
        if shutdown_requested() {
            break;
        }
        durable.maybe_heartbeat();
        std::thread::sleep(WAIT);
    }
}

/// A cancel-token load counts as consultation.
pub fn drain(cancel: &AtomicBool) {
    while !cancel.load(Ordering::Relaxed) {
        std::thread::sleep(POLL);
    }
}

/// A loop that never sleeps needs no cancel check.
pub fn spin(items: &[u64]) -> u64 {
    let mut acc = 0;
    for it in items {
        acc += *it;
    }
    acc
}
