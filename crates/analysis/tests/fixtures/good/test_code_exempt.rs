// Fixture: `#[cfg(test)]` items are exempt from every rule even in a
// library file. Never compiled.
pub fn double(x: u64) -> u64 {
    x * 2
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn doubles() {
        assert_eq!(double(2), 4);
        let v: Option<u64> = Some(3);
        assert_eq!(v.unwrap(), 3);
    }
}
