// Fixture: the deterministic shape the banked backend actually uses —
// banks in a Vec indexed by the address mapping's bank field, plus
// order-free point lookups. Never compiled.
use std::collections::HashMap;

pub struct Banks {
    ready_at: Vec<u64>,
}

pub fn earliest_ready(b: &Banks) -> u64 {
    let mut t = u64::MAX;
    for &ready in &b.ready_at {
        t = t.min(ready);
    }
    t
}

pub fn lookup(timing: &HashMap<u64, u64>, bank: u64) -> Option<u64> {
    timing.get(&bank).copied()
}
