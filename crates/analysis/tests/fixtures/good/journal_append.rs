//! Fixture: journal records routed through the checksummed append
//! helper; writes on non-journal handles and paths stay out of scope.

use std::io::Write;

pub struct Journal {
    file: std::fs::File,
}

impl Journal {
    /// The one sanctioned write path: checksummed single-line append.
    pub fn append(&mut self, payload: &str) -> std::io::Result<()> {
        let line = format!("{{\"sum\":1,\"rec\":{payload}}}\n");
        self.file.write_all(line.as_bytes())?;
        self.file.sync_data()
    }
}

pub fn unrelated(log_file: &mut std::fs::File, text: &str) -> std::io::Result<()> {
    log_file.write_all(text.as_bytes())
}

pub fn results(dir: &std::path::Path, body: &str) -> std::io::Result<()> {
    std::fs::write(dir.join("results.json"), body)
}
