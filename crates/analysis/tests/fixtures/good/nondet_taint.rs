//! Good: wall-clock feeds progress reporting only.

/// Progress telemetry (never serialized into results).
pub struct BatchProgress {
    /// Mean wall seconds per cell — reporting only.
    pub mean_secs: f64,
}

/// Times a batch for the progress callback.
pub fn observe() -> BatchProgress {
    let started = std::time::Instant::now();
    let secs = started.elapsed().as_secs_f64();
    BatchProgress { mean_secs: secs }
}

/// Simulated values may flow anywhere.
pub fn freeze(simulated: u64) -> Cell {
    Cell { value: simulated }
}
