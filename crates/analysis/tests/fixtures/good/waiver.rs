// Fixture: a reasoned waiver suppresses the finding on the next line.
// Never compiled.
use std::collections::HashMap;

pub fn sum(m: &HashMap<u64, u64>) -> u64 {
    // lint: allow(hash-iter) — summation is order-independent
    m.values().sum()
}
