// Fixture: no default body in the trait, but the impl defines
// `attach_trace` itself. Never compiled.
pub trait MemorySystem {
    fn access(&mut self, addr: u64) -> u64;
    fn attach_trace(&mut self, sink: usize);
}

pub struct Flat {
    sink: usize,
}

impl MemorySystem for Flat {
    fn access(&mut self, addr: u64) -> u64 {
        addr
    }

    fn attach_trace(&mut self, sink: usize) {
        self.sink = sink;
    }
}
