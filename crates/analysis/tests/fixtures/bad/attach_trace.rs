// Fixture: the trait declares `attach_trace` without a default body and
// the impl neither defines nor inherits it. Never compiled.
pub trait MemorySystem {
    fn access(&mut self, addr: u64) -> u64;
    fn attach_trace(&mut self, sink: usize);
}

pub struct Flat;

impl MemorySystem for Flat {
    fn access(&mut self, addr: u64) -> u64 {
        addr
    }
}
