// Fixture: hash-ordered iteration in a simulation path (analyzed under
// a crates/vm/src/ relative path). Never compiled.
use std::collections::{HashMap, HashSet};

pub fn sum(m: &HashMap<u64, u64>) -> u64 {
    let mut total = 0;
    for (k, v) in m.iter() {
        total += k + v;
    }
    total
}

pub fn drain_all(set: HashSet<u64>) -> u64 {
    let mut total = 0;
    for x in set {
        total += x;
    }
    total
}
