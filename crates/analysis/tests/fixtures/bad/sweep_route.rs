// Fixture: an experiments/table*.rs file that bypasses the SweepRunner,
// calling the engine helpers directly. Never compiled.
pub fn run(sizes: &[u64]) -> Vec<u64> {
    sizes.iter().map(|&s| run_config(s)).collect()
}

pub fn run_one() -> u64 {
    let eng = Engine::new(512);
    eng.finish()
}
