// Fixture: unwrap/expect in library code. Never compiled.
pub fn first(v: &[u64]) -> u64 {
    *v.first().unwrap()
}

pub fn parse(s: &str) -> u64 {
    s.parse().expect("a number")
}
