//! Bad: raw-integer time declarations and mixed-domain arithmetic.

/// A time-based slice configuration.
pub struct SliceCfg {
    /// BAD: a time quantity declared as a raw integer.
    pub slice_time: u64,
}

/// Mixes units three ways.
pub fn mix(elapsed_ns: u64) -> u64 {
    // BAD: picoseconds (vocabulary) + references (vocabulary).
    let total = t_rcd + quantum_refs;
    // BAD: picoseconds compared against bytes.
    if total > unit_bytes {
        return total;
    }
    // BAD: a cast does not launder nanoseconds into picoseconds.
    let sum = elapsed_ns as u64 + t_cas;
    sum
}
