//! Bad: a claim is appended but one path executes without a readback.

/// Claims a cell, then runs it — but only the `ready` path re-reads the
/// journal to confirm the claim won the file-order race.
pub fn claim_and_run(durable: &mut Durable, ready: bool) {
    durable.append(JournalOp::Claim { fp: 7, attempt: 1 });
    if ready {
        let confirmed = durable.scan();
        consume(confirmed);
    }
    // BAD: on the `!ready` path the claim was never read back.
    execute_slice(durable);
}
