// Fixture: a waiver without a reason suppresses nothing and is itself a
// finding. Never compiled.
use std::collections::HashMap;

pub fn sum(m: &HashMap<u64, u64>) -> u64 {
    // lint: allow(hash-iter)
    m.values().sum()
}
