//! Bad: polling loops that sleep without consulting a cancel signal.

/// Waits for workers with no way to be shut down.
pub fn wait_all(done: &Counter, total: usize) {
    while done.load(Ordering::Relaxed) < total {
        std::thread::sleep(POLL);
    }
}

/// An idle heartbeat loop with no exit signal either.
pub fn idle_forever(durable: &mut Durable) {
    loop {
        durable.maybe_heartbeat();
        std::thread::sleep(WAIT);
    }
}
