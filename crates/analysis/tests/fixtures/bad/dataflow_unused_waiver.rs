//! Bad: a dataflow-rule waiver that matches no finding.

/// Same-unit arithmetic needs no waiver; this one is stale.
pub fn clean(now_ps: u64, start_ps: u64) -> u64 {
    // lint: allow(unit-mix) — stale waiver, nothing mixes here
    now_ps - start_ps
}
