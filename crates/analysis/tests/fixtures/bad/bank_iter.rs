// Fixture: hash-ordered iteration over per-bank state in the banked
// DRAM backend (analyzed under a crates/dram/src/ relative path).
// Bank scheduling order must be deterministic; draining a HashMap of
// banks makes transfer timing depend on hasher state. Never compiled.
use std::collections::HashMap;

pub struct Banks {
    ready_at: HashMap<u64, u64>,
}

pub fn earliest_ready(b: &Banks) -> u64 {
    let mut t = u64::MAX;
    for (_, &ready) in b.ready_at.iter() {
        t = t.min(ready);
    }
    t
}

pub fn drain(banks: HashMap<u64, u64>) -> u64 {
    let mut total = 0;
    for (_, v) in banks {
        total += v;
    }
    total
}
