// Fixture: an undocumented panic in library code. Never compiled.
pub fn half(x: u64) -> u64 {
    if x % 2 != 0 {
        panic!("odd input {x}");
    }
    x / 2
}
