// Fixture: a wildcard arm in a match over a typed error enum. Never
// compiled.
pub enum ConfigError {
    EmptyTlb,
    ZeroCapacity,
}

pub fn describe(e: &ConfigError) -> &'static str {
    match e {
        ConfigError::EmptyTlb => "empty TLB",
        _ => "other",
    }
}
