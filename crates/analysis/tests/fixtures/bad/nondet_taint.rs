//! Bad: wall-clock-derived values reach serialized/fingerprinted state.

/// One sweep-cell payload (serialized into cells.json on replay).
pub struct Cell {
    /// Simulated result value.
    pub value: u64,
}

/// Stamps a wall-clock reading into the serialized payload.
pub fn stamp() -> Cell {
    let started = std::time::Instant::now();
    let measured = started.elapsed().as_nanos() as u64;
    // BAD: host-speed-dependent value in a replay-compared payload.
    Cell { value: measured }
}

/// Seeds a fingerprint from wall time.
pub fn seed() -> u64 {
    let stamp_ms = wall_ms();
    // BAD: nondeterministic fingerprint input.
    fingerprint(stamp_ms)
}
