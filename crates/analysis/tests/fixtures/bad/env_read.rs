// Fixture: environment and thread-identity reads in a simulation path.
// Never compiled.
pub fn seed_from_env() -> u64 {
    match std::env::var("RAMPAGE_SEED") {
        Ok(v) => v.len() as u64,
        Err(_) => 0,
    }
}

pub fn worker_tag() -> String {
    format!("{:?}", std::thread::current().id())
}
