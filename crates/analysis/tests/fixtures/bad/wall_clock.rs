// Fixture: a wall-clock read outside the timing allowlist. Never
// compiled.
pub fn now_ps() -> u128 {
    let t = std::time::Instant::now();
    t.elapsed().as_nanos()
}
