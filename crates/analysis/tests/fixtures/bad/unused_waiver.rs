// Fixture: waivers that match no finding, including one naming an
// unknown rule. Never compiled.
use std::collections::BTreeMap;

pub fn sum(m: &BTreeMap<u64, u64>) -> u64 {
    // lint: allow(hash-iter) — BTreeMap is ordered, nothing fires here
    m.values().sum()
}

pub fn total(m: &BTreeMap<u64, u64>) -> u64 {
    // lint: allow(no-such-rule) — a reason does not rescue an unknown id
    m.len() as u64
}
