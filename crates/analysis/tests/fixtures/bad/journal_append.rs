//! Fixture: raw sweep-journal writes bypassing the checksummed
//! `Journal::append` helper — every shape the rule knows.

use std::io::Write;

pub fn raw_append(journal_file: &mut std::fs::File, line: &str) -> std::io::Result<()> {
    journal_file.write_all(line.as_bytes())
}

pub fn macro_append(journal: &mut std::fs::File, n: u64) -> std::io::Result<()> {
    writeln!(journal, "{n}")
}

pub fn whole_file(dir: &std::path::Path, body: &str) -> std::io::Result<()> {
    std::fs::write(dir.join("journal.jsonl"), body)
}
