//! Fixture tests for the dataflow tier: unit-mix, nondet-taint,
//! claim-readback, and cancel-poll, each with a failing and a passing
//! fixture analyzed under a synthetic workspace-relative path that puts
//! it in the right scope. Positions are asserted exactly, computed from
//! the fixture text rather than hard-coded.

use rampage_analysis::diag::{Diagnostic, RuleId, WaiverStatus};
use rampage_analysis::{analyze_one_tier, Tier};
use std::path::Path;

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

/// 1-based (line, col) of the first occurrence of `needle`.
fn loc(text: &str, needle: &str) -> (u32, u32) {
    for (i, line) in text.lines().enumerate() {
        if let Some(p) = line.find(needle) {
            return ((i + 1) as u32, (p + 1) as u32);
        }
    }
    panic!("needle {needle:?} not found in fixture");
}

fn active(diags: &[Diagnostic]) -> Vec<&Diagnostic> {
    diags.iter().filter(|d| d.is_active()).collect()
}

/// Assert the active diagnostics are exactly `(rule, line, col)` in order.
fn assert_findings(diags: &[Diagnostic], expected: &[(RuleId, u32, u32)]) {
    let got: Vec<(RuleId, u32, u32)> = active(diags)
        .iter()
        .map(|d| (d.rule, d.line, d.col))
        .collect();
    assert_eq!(got, expected, "diagnostics: {diags:#?}");
}

// ---------------------------------------------------------------------------
// unit-mix
// ---------------------------------------------------------------------------

#[test]
fn unit_mix_fires_on_decls_mixed_arithmetic_and_casts() {
    let text = fixture("bad/unit_mix.rs");
    let diags = analyze_one_tier("crates/dram/src/unit_mix.rs", &text, Tier::Dataflow);
    let decl = loc(&text, "slice_time: u64");
    let add = loc(&text, "t_rcd + quantum_refs");
    let cmp = loc(&text, "total > unit_bytes");
    let cast = loc(&text, "elapsed_ns as u64");
    assert_findings(
        &diags,
        &[
            (RuleId::UnitMix, decl.0, decl.1),
            (RuleId::UnitMix, add.0, add.1),
            (RuleId::UnitMix, cmp.0, cmp.1),
            (RuleId::UnitMix, cast.0, cast.1),
        ],
    );
}

#[test]
fn unit_mix_quiet_on_typed_fields_same_domain_math_and_rates() {
    let text = fixture("good/unit_mix.rs");
    let diags = analyze_one_tier("crates/dram/src/unit_mix.rs", &text, Tier::Dataflow);
    assert_findings(&diags, &[]);
}

#[test]
fn unit_mix_is_silent_at_the_token_tier() {
    let text = fixture("bad/unit_mix.rs");
    let diags = analyze_one_tier("crates/dram/src/unit_mix.rs", &text, Tier::Token);
    assert!(
        !diags.iter().any(|d| d.rule == RuleId::UnitMix),
        "dataflow rules must not run at the token tier: {diags:#?}"
    );
}

#[test]
fn unit_mix_waiver_suppresses_the_site() {
    let text = fixture("good/unit_mix_waiver.rs");
    let diags = analyze_one_tier("crates/dram/src/unit_mix_waiver.rs", &text, Tier::Dataflow);
    assert_findings(&diags, &[]);
    let waived: Vec<&Diagnostic> = diags
        .iter()
        .filter(|d| d.waiver == WaiverStatus::Waived)
        .collect();
    assert_eq!(waived.len(), 1, "exactly one waived finding: {diags:#?}");
    assert_eq!(waived[0].rule, RuleId::UnitMix);
}

#[test]
fn stale_dataflow_waiver_is_reported_unused() {
    let text = fixture("bad/dataflow_unused_waiver.rs");
    let diags = analyze_one_tier(
        "crates/dram/src/dataflow_unused_waiver.rs",
        &text,
        Tier::Dataflow,
    );
    let w = loc(&text, "// lint: allow(unit-mix)");
    assert_findings(&diags, &[(RuleId::UnusedWaiver, w.0, w.1)]);
}

// ---------------------------------------------------------------------------
// nondet-taint
// ---------------------------------------------------------------------------

#[test]
fn nondet_taint_fires_on_cell_payloads_and_fingerprints() {
    let text = fixture("bad/nondet_taint.rs");
    let diags = analyze_one_tier(
        "crates/core/src/experiments/runner/nondet_taint.rs",
        &text,
        Tier::Dataflow,
    );
    let cell = loc(&text, "measured }");
    let fp = loc(&text, "stamp_ms)");
    assert_findings(
        &diags,
        &[
            (RuleId::NondetTaint, cell.0, cell.1),
            (RuleId::NondetTaint, fp.0, fp.1),
        ],
    );
}

#[test]
fn nondet_taint_quiet_on_progress_telemetry() {
    let text = fixture("good/nondet_taint.rs");
    let diags = analyze_one_tier(
        "crates/core/src/experiments/runner/nondet_taint.rs",
        &text,
        Tier::Dataflow,
    );
    assert_findings(&diags, &[]);
}

// ---------------------------------------------------------------------------
// claim-readback
// ---------------------------------------------------------------------------

#[test]
fn claim_readback_fires_when_one_path_skips_the_readback() {
    let text = fixture("bad/claim_readback.rs");
    let diags = analyze_one_tier(
        "crates/core/src/experiments/runner/claim_readback.rs",
        &text,
        Tier::Dataflow,
    );
    let exec = loc(&text, "execute_slice(durable)");
    assert_findings(&diags, &[(RuleId::ClaimReadback, exec.0, exec.1)]);
}

#[test]
fn claim_readback_quiet_when_every_path_rescans() {
    let text = fixture("good/claim_readback.rs");
    let diags = analyze_one_tier(
        "crates/core/src/experiments/runner/claim_readback.rs",
        &text,
        Tier::Dataflow,
    );
    assert_findings(&diags, &[]);
}

#[test]
fn claim_readback_scope_is_the_runner_tree_only() {
    // The same code outside the runner tree is not protocol code.
    let text = fixture("bad/claim_readback.rs");
    let diags = analyze_one_tier(
        "crates/core/src/experiments/grids.rs",
        &text,
        Tier::Dataflow,
    );
    assert!(
        !diags.iter().any(|d| d.rule == RuleId::ClaimReadback),
        "claim-readback must only run in the runner tree: {diags:#?}"
    );
}

// ---------------------------------------------------------------------------
// cancel-poll
// ---------------------------------------------------------------------------

#[test]
fn cancel_poll_fires_on_sleeping_loops_without_cancel_checks() {
    let text = fixture("bad/cancel_poll.rs");
    let diags = analyze_one_tier(
        "crates/core/src/experiments/runner/cancel_poll.rs",
        &text,
        Tier::Dataflow,
    );
    let w = loc(&text, "while done.load");
    let l = loc(&text, "loop {");
    assert_findings(
        &diags,
        &[
            (RuleId::CancelPoll, w.0, w.1),
            (RuleId::CancelPoll, l.0, l.1),
        ],
    );
}

#[test]
fn cancel_poll_quiet_when_loops_consult_a_signal() {
    let text = fixture("good/cancel_poll.rs");
    let diags = analyze_one_tier(
        "crates/core/src/experiments/runner/cancel_poll.rs",
        &text,
        Tier::Dataflow,
    );
    assert_findings(&diags, &[]);
}

// ---------------------------------------------------------------------------
// cross-cutting
// ---------------------------------------------------------------------------

#[test]
fn dataflow_rules_skip_test_code() {
    // The same bad sources under a tests/ path produce nothing.
    for name in [
        "bad/unit_mix.rs",
        "bad/nondet_taint.rs",
        "bad/claim_readback.rs",
        "bad/cancel_poll.rs",
    ] {
        let text = fixture(name);
        let diags = analyze_one_tier("tests/fixture_copy.rs", &text, Tier::Dataflow);
        assert_findings(&diags, &[]);
    }
}

#[test]
fn json_and_sarif_agree_on_finding_counts() {
    let text = fixture("bad/unit_mix.rs");
    let diags = analyze_one_tier("crates/dram/src/unit_mix.rs", &text, Tier::Dataflow);
    let json = rampage_analysis::diag::render_json_report(&diags);
    let sarif = rampage_analysis::sarif::render_sarif(&diags);
    let active_n = diags.iter().filter(|d| d.is_active()).count();
    assert!(json.contains(&format!("\"active\":{active_n}")));
    let results = sarif.matches("\"ruleId\"").count();
    let suppressed = sarif.matches("\"suppressions\"").count();
    assert_eq!(
        results - suppressed,
        active_n,
        "SARIF unsuppressed results must equal the JSON active count"
    );
}
