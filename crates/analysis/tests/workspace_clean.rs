//! The meta-test: the live workspace must carry zero unwaived
//! diagnostics. This is the same gate `scripts/check.sh` and CI run via
//! `repro lint`; keeping it in the test suite means a plain
//! `cargo test` also refuses regressions.

use rampage_analysis::{analyze_workspace, analyze_workspace_tier, find_workspace_root, Tier};
use std::path::Path;

#[test]
fn live_workspace_has_no_unwaived_findings() {
    let root = find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("the analysis crate lives inside the workspace");
    let diags = analyze_workspace(&root).expect("workspace walks cleanly");
    let active: Vec<String> = diags
        .iter()
        .filter(|d| d.is_active())
        .map(|d| d.render_text())
        .collect();
    assert!(
        active.is_empty(),
        "unwaived findings in the live workspace:\n{}",
        active.join("\n")
    );
}

#[test]
fn live_workspace_is_clean_at_the_dataflow_tier() {
    let root = find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("the analysis crate lives inside the workspace");
    let report = analyze_workspace_tier(&root, Tier::Dataflow).expect("workspace walks cleanly");
    let active: Vec<String> = report
        .diagnostics
        .iter()
        .filter(|d| d.is_active())
        .map(|d| d.render_text())
        .collect();
    assert!(
        active.is_empty(),
        "unwaived dataflow-tier findings in the live workspace:\n{}",
        active.join("\n")
    );
    assert!(report.files > 0, "the walk must visit the workspace");
}

#[test]
fn dataflow_tier_is_a_superset_of_the_token_tier() {
    let root = find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("the analysis crate lives inside the workspace");
    let token = analyze_workspace_tier(&root, Tier::Token).expect("token tier walks");
    let dataflow = analyze_workspace_tier(&root, Tier::Dataflow).expect("dataflow tier walks");
    let token_keys: Vec<String> = token.diagnostics.iter().map(|d| d.render_text()).collect();
    let dataflow_keys: Vec<String> = dataflow
        .diagnostics
        .iter()
        .map(|d| d.render_text())
        .collect();
    for k in &token_keys {
        assert!(
            dataflow_keys.contains(k),
            "token-tier finding missing at the dataflow tier: {k}"
        );
    }
}
