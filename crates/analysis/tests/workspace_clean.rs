//! The meta-test: the live workspace must carry zero unwaived
//! diagnostics. This is the same gate `scripts/check.sh` and CI run via
//! `repro lint`; keeping it in the test suite means a plain
//! `cargo test` also refuses regressions.

use rampage_analysis::{analyze_workspace, find_workspace_root};
use std::path::Path;

#[test]
fn live_workspace_has_no_unwaived_findings() {
    let root = find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("the analysis crate lives inside the workspace");
    let diags = analyze_workspace(&root).expect("workspace walks cleanly");
    let active: Vec<String> = diags
        .iter()
        .filter(|d| d.is_active())
        .map(|d| d.render_text())
        .collect();
    assert!(
        active.is_empty(),
        "unwaived findings in the live workspace:\n{}",
        active.join("\n")
    );
}
