//! Fixture-driven rule tests: every rule has at least one failing and
//! one passing fixture under `tests/fixtures/{bad,good}/`, analyzed
//! under a synthetic workspace-relative path that gives it the right
//! classification (simulation path, library, experiment file, …).
//! Positions are asserted exactly — `file:line:col` is computed from the
//! fixture text, not hard-coded.

use rampage_analysis::diag::{Diagnostic, RuleId};
use rampage_analysis::{analyze_one, analyze_sources};
use std::path::Path;

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

/// 1-based (line, col) of the first occurrence of `needle`.
fn loc(text: &str, needle: &str) -> (u32, u32) {
    for (i, line) in text.lines().enumerate() {
        if let Some(p) = line.find(needle) {
            return ((i + 1) as u32, (p + 1) as u32);
        }
    }
    panic!("needle {needle:?} not found in fixture");
}

fn active(diags: &[Diagnostic]) -> Vec<&Diagnostic> {
    diags.iter().filter(|d| d.is_active()).collect()
}

/// Assert the active diagnostics are exactly `(rule, line, col)` in order.
fn assert_findings(diags: &[Diagnostic], expected: &[(RuleId, u32, u32)]) {
    let got: Vec<(RuleId, u32, u32)> = active(diags)
        .iter()
        .map(|d| (d.rule, d.line, d.col))
        .collect();
    assert_eq!(got, expected, "diagnostics: {diags:#?}");
}

#[test]
fn hash_iter_fires_on_methods_and_for_loops() {
    let text = fixture("bad/hash_iter.rs");
    let diags = analyze_one("crates/vm/src/hash_iter.rs", &text);
    let m_iter = loc(&text, "iter()");
    let for_set = loc(&text, "set {");
    assert_findings(
        &diags,
        &[
            (RuleId::HashIter, m_iter.0, m_iter.1),
            (RuleId::HashIter, for_set.0, for_set.1),
        ],
    );
}

#[test]
fn hash_iter_quiet_on_ordered_collections_and_point_lookups() {
    let text = fixture("good/hash_iter.rs");
    let diags = analyze_one("crates/vm/src/hash_iter.rs", &text);
    assert_findings(&diags, &[]);
}

#[test]
fn bank_iter_fires_in_the_banked_backend_modules() {
    // Per-bank state iterated in hash order: nondeterministic transfer
    // timing. Both the dram crate's modules and the core channel router
    // are simulation paths.
    let text = fixture("bad/bank_iter.rs");
    let m_iter = loc(&text, "iter()");
    let for_banks = loc(&text, "banks {");
    for rel in ["crates/dram/src/bank_iter.rs", "crates/core/src/channel.rs"] {
        let diags = analyze_one(rel, &text);
        assert_findings(
            &diags,
            &[
                (RuleId::HashIter, m_iter.0, m_iter.1),
                (RuleId::HashIter, for_banks.0, for_banks.1),
            ],
        );
    }
}

#[test]
fn bank_iter_quiet_on_vec_indexed_banks() {
    let text = fixture("good/bank_iter.rs");
    for rel in ["crates/dram/src/bank_iter.rs", "crates/core/src/channel.rs"] {
        let diags = analyze_one(rel, &text);
        assert_findings(&diags, &[]);
    }
}

#[test]
fn hash_iter_not_applied_outside_simulation_paths() {
    // The same bad source in a non-simulation crate is out of scope.
    let text = fixture("bad/hash_iter.rs");
    let diags = analyze_one("crates/json/src/hash_iter.rs", &text);
    assert_findings(&diags, &[]);
}

#[test]
fn wall_clock_fires_outside_the_allowlist() {
    let text = fixture("bad/wall_clock.rs");
    let diags = analyze_one("crates/core/src/report.rs", &text);
    let at = loc(&text, "Instant::now");
    assert_findings(&diags, &[(RuleId::WallClock, at.0, at.1)]);
}

#[test]
fn wall_clock_allowlist_is_honored() {
    // The identical source is fine in a binary and in the sweep runner.
    let text = fixture("bad/wall_clock.rs");
    for rel in [
        "src/bin/wall_clock.rs",
        "crates/core/src/experiments/runner/mod.rs",
        "crates/core/src/experiments/runner/watchdog.rs",
        "crates/core/src/experiments/fault.rs",
        "crates/criterion/src/lib.rs",
    ] {
        let diags = analyze_one(rel, &text);
        assert_findings(&diags, &[]);
    }
}

#[test]
fn wall_clock_quiet_on_simulated_time() {
    let text = fixture("good/wall_clock.rs");
    let diags = analyze_one("crates/core/src/system/clock.rs", &text);
    assert_findings(&diags, &[]);
}

#[test]
fn env_read_fires_on_env_and_thread_identity() {
    let text = fixture("bad/env_read.rs");
    let diags = analyze_one("crates/dram/src/env_read.rs", &text);
    let env = loc(&text, "env::var");
    let cur = loc(&text, "current()");
    assert_findings(
        &diags,
        &[
            (RuleId::EnvRead, env.0, env.1),
            (RuleId::EnvRead, cur.0, cur.1),
        ],
    );
}

#[test]
fn env_read_quiet_when_config_is_plumbed() {
    let text = fixture("good/env_read.rs");
    let diags = analyze_one("crates/dram/src/env_read.rs", &text);
    assert_findings(&diags, &[]);
}

#[test]
fn panic_doc_fires_on_undocumented_panic() {
    let text = fixture("bad/panic_doc.rs");
    let diags = analyze_one("crates/core/src/panic_doc.rs", &text);
    let at = loc(&text, "panic!");
    assert_findings(&diags, &[(RuleId::PanicDoc, at.0, at.1)]);
}

#[test]
fn panic_doc_satisfied_by_panics_section_or_invariant_comment() {
    let text = fixture("good/panic_doc.rs");
    let diags = analyze_one("crates/core/src/panic_doc.rs", &text);
    assert_findings(&diags, &[]);
}

#[test]
fn unwrap_fires_in_library_code() {
    let text = fixture("bad/unwrap.rs");
    let diags = analyze_one("crates/core/src/unwrap.rs", &text);
    let u = loc(&text, "unwrap()");
    let e = loc(&text, "expect(");
    assert_findings(
        &diags,
        &[(RuleId::Unwrap, u.0, u.1), (RuleId::Unwrap, e.0, e.1)],
    );
}

#[test]
fn unwrap_skips_custom_expect_methods_and_unwrap_or() {
    let text = fixture("good/unwrap.rs");
    let diags = analyze_one("crates/core/src/unwrap.rs", &text);
    assert_findings(&diags, &[]);
}

#[test]
fn attach_trace_fires_when_neither_defined_nor_inherited() {
    let text = fixture("bad/attach_trace.rs");
    let diags = analyze_one("crates/core/src/system/attach_trace.rs", &text);
    let at = loc(&text, "impl MemorySystem");
    assert_findings(&diags, &[(RuleId::AttachTrace, at.0, at.1)]);
}

#[test]
fn attach_trace_inherited_from_default_body() {
    let text = fixture("good/attach_trace.rs");
    let diags = analyze_one("crates/core/src/system/attach_trace.rs", &text);
    assert_findings(&diags, &[]);
}

#[test]
fn attach_trace_defined_in_the_impl() {
    let text = fixture("good/attach_trace_defined.rs");
    let diags = analyze_one("crates/core/src/system/attach_trace.rs", &text);
    assert_findings(&diags, &[]);
}

#[test]
fn attach_trace_works_across_files() {
    // Trait in one file, bare impl in another: the workspace-level
    // finalizer still connects them.
    let trait_src = "pub trait MemorySystem {\n    fn attach_trace(&mut self, sink: usize);\n}\n";
    let impl_src = "impl MemorySystem for Flat {\n    fn access(&mut self) {}\n}\n";
    let diags = analyze_sources(&[
        ("crates/core/src/system/mod.rs", trait_src),
        ("crates/core/src/system/flat.rs", impl_src),
    ]);
    let got = active(&diags);
    assert_eq!(got.len(), 1, "{diags:#?}");
    assert_eq!(got[0].rule, RuleId::AttachTrace);
    assert_eq!(got[0].file, "crates/core/src/system/flat.rs");
    assert_eq!((got[0].line, got[0].col), (1, 1));
}

#[test]
fn sweep_route_fires_on_direct_engine_use() {
    let text = fixture("bad/sweep_route.rs");
    let diags = analyze_one("crates/core/src/experiments/table9.rs", &text);
    let rc = loc(&text, "run_config(s)");
    let en = loc(&text, "Engine::new");
    assert_findings(
        &diags,
        &[
            (RuleId::SweepRoute, rc.0, rc.1),
            (RuleId::SweepRoute, en.0, en.1),
        ],
    );
}

#[test]
fn sweep_route_quiet_when_routed_through_the_runner() {
    let text = fixture("good/sweep_route.rs");
    let diags = analyze_one("crates/core/src/experiments/table9.rs", &text);
    assert_findings(&diags, &[]);
}

#[test]
fn sweep_route_not_applied_to_non_experiment_files() {
    let text = fixture("bad/sweep_route.rs");
    let diags = analyze_one("crates/core/src/experiments/common.rs", &text);
    assert_findings(&diags, &[]);
}

#[test]
fn error_match_fires_on_wildcard_over_error_enum() {
    let text = fixture("bad/error_match.rs");
    let diags = analyze_one("crates/core/src/error_match.rs", &text);
    let at = loc(&text, "_ =>");
    assert_findings(&diags, &[(RuleId::ErrorMatch, at.0, at.1)]);
}

#[test]
fn error_match_quiet_on_exhaustive_and_non_error_matches() {
    let text = fixture("good/error_match.rs");
    let diags = analyze_one("crates/core/src/error_match.rs", &text);
    assert_findings(&diags, &[]);
}

#[test]
fn journal_append_fires_on_raw_journal_writes() {
    let text = fixture("bad/journal_append.rs");
    let diags = analyze_one("crates/core/src/experiments/journal_append.rs", &text);
    let raw = loc(&text, "write_all");
    let mac = loc(&text, "writeln!");
    let fsw = loc(&text, "write(dir.join");
    assert_findings(
        &diags,
        &[
            (RuleId::JournalAppend, raw.0, raw.1),
            (RuleId::JournalAppend, mac.0, mac.1),
            (RuleId::JournalAppend, fsw.0, fsw.1),
        ],
    );
}

#[test]
fn journal_append_quiet_on_the_helper_and_unrelated_writes() {
    let text = fixture("good/journal_append.rs");
    let diags = analyze_one("crates/core/src/experiments/journal_append.rs", &text);
    assert_findings(&diags, &[]);
}

#[test]
fn journal_append_exempt_in_tests() {
    // Tests may stage torn or corrupt journals by hand.
    let text = fixture("bad/journal_append.rs");
    let diags = analyze_one("tests/journal_append.rs", &text);
    assert_findings(&diags, &[]);
}

#[test]
fn waiver_with_reason_suppresses_the_next_line() {
    let text = fixture("good/waiver.rs");
    let diags = analyze_one("crates/cache/src/waiver.rs", &text);
    assert_findings(&diags, &[]);
    // The finding still exists — it is recorded as waived, not dropped.
    assert_eq!(diags.len(), 1, "{diags:#?}");
    assert_eq!(diags[0].rule, RuleId::HashIter);
    assert!(!diags[0].is_active());
    assert!(diags[0].render_text().ends_with("(waived)"));
}

#[test]
fn waiver_without_reason_suppresses_nothing() {
    let text = fixture("bad/waiver_missing_reason.rs");
    let diags = analyze_one("crates/cache/src/waiver.rs", &text);
    let site = loc(&text, "values()");
    let waiver = loc(&text, "// lint: allow(hash-iter)");
    assert_findings(
        &diags,
        &[
            (RuleId::WaiverMissingReason, waiver.0, waiver.1),
            (RuleId::HashIter, site.0, site.1),
        ],
    );
}

#[test]
fn unused_and_unknown_waivers_are_findings() {
    let text = fixture("bad/unused_waiver.rs");
    let diags = analyze_one("crates/cache/src/waiver.rs", &text);
    let unused = loc(&text, "// lint: allow(hash-iter)");
    let unknown = loc(&text, "// lint: allow(no-such-rule)");
    assert_findings(
        &diags,
        &[
            (RuleId::UnusedWaiver, unused.0, unused.1),
            (RuleId::UnusedWaiver, unknown.0, unknown.1),
        ],
    );
    assert!(diags[1].message.contains("unknown rule"), "{diags:#?}");
}

#[test]
fn test_items_are_exempt_even_in_library_files() {
    let text = fixture("good/test_code_exempt.rs");
    let diags = analyze_one("crates/core/src/exempt.rs", &text);
    assert_findings(&diags, &[]);
}

#[test]
fn diagnostics_render_file_line_col_and_json() {
    let text = fixture("bad/panic_doc.rs");
    let diags = analyze_one("crates/core/src/panic_doc.rs", &text);
    let (line, col) = loc(&text, "panic!");
    let rendered = diags[0].render_text();
    assert!(
        rendered.starts_with(&format!(
            "crates/core/src/panic_doc.rs:{line}:{col}: [panic-doc]"
        )),
        "{rendered}"
    );
    let json = rampage_analysis::diag::render_json_report(&diags);
    assert!(json.contains("\"rule\":\"panic-doc\""), "{json}");
    assert!(
        json.contains(&format!("\"line\":{line},\"col\":{col}")),
        "{json}"
    );
    assert!(json.contains("\"active\":1"), "{json}");
}
