//! A minimal Rust lexer: enough token structure for line-oriented
//! source analysis, with exact line/column positions.
//!
//! This is *not* a full implementation of the Rust lexical grammar — it
//! is the subset the rule passes need to be reliable on this workspace:
//!
//! * comments are **kept** as tokens (waivers and `// invariant:`
//!   annotations live in them), with line comments, doc comments, and
//!   arbitrarily **nested** block comments distinguished;
//! * string literals (including **raw strings** `r#"…"#` with any hash
//!   depth, byte strings, and C strings) and char literals are consumed
//!   as single tokens so `//` or `HashMap` inside a literal can never
//!   masquerade as code;
//! * lifetimes (`'a`) are distinguished from char literals (`'x'`);
//! * everything else becomes identifier, number, or single-character
//!   punctuation tokens.
//!
//! The lexer never fails: unterminated literals or comments produce a
//! final token stretching to end of input, which keeps the analyzer
//! usable on work-in-progress source.

/// What a token is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`fn`, `HashMap`, `drain`, …).
    Ident,
    /// Single punctuation character (`.`, `:`, `{`, …).
    Punct,
    /// Numeric literal (integer or float, any base, with suffix).
    Num,
    /// String literal of any flavour (plain, raw, byte, C).
    Str,
    /// Character or byte-character literal.
    Char,
    /// Lifetime (`'a`, `'static`).
    Lifetime,
    /// `// …` comment that is *not* a doc comment.
    LineComment,
    /// `/* … */` comment (nesting handled) that is not a doc comment.
    BlockComment,
    /// `/// …`, `//! …`, `/** … */`, or `/*! … */`.
    DocComment,
}

/// One lexed token with its 1-based source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Classification.
    pub kind: TokenKind,
    /// Exact source text of the token.
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: u32,
    /// 1-based column (in characters) of the token's first character.
    pub col: u32,
}

impl Token {
    /// Whether this token is any kind of comment.
    pub fn is_comment(&self) -> bool {
        matches!(
            self.kind,
            TokenKind::LineComment | TokenKind::BlockComment | TokenKind::DocComment
        )
    }
}

/// Tokenize `src` in full, comments included.
pub fn tokenize(src: &str) -> Vec<Token> {
    Lexer::new(src).run()
}

struct Lexer<'a> {
    chars: Vec<char>,
    src: &'a str,
    pos: usize,
    line: u32,
    col: u32,
    out: Vec<Token>,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            chars: src.chars().collect(),
            src,
            pos: 0,
            line: 1,
            col: 1,
            out: Vec::new(),
        }
    }

    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    /// Consume one character, tracking line/column.
    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn run(mut self) -> Vec<Token> {
        let _ = self.src; // kept for debugging hooks
        while let Some(c) = self.peek(0) {
            let (line, col) = (self.line, self.col);
            if c.is_whitespace() {
                self.bump();
            } else if c == '/' && self.peek(1) == Some('/') {
                self.line_comment(line, col);
            } else if c == '/' && self.peek(1) == Some('*') {
                self.block_comment(line, col);
            } else if is_ident_start(c) {
                self.ident_or_prefixed_literal(line, col);
            } else if c.is_ascii_digit() {
                self.number(line, col);
            } else if c == '"' {
                self.string(line, col, String::new());
            } else if c == '\'' {
                self.lifetime_or_char(line, col);
            } else {
                self.bump();
                self.push(TokenKind::Punct, c.to_string(), line, col);
            }
        }
        self.out
    }

    fn push(&mut self, kind: TokenKind, text: String, line: u32, col: u32) {
        self.out.push(Token {
            kind,
            text,
            line,
            col,
        });
    }

    fn line_comment(&mut self, line: u32, col: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        // `///` and `//!` are doc comments; `////…` reverts to plain.
        let kind =
            if (text.starts_with("///") && !text.starts_with("////")) || text.starts_with("//!") {
                TokenKind::DocComment
            } else {
                TokenKind::LineComment
            };
        self.push(kind, text, line, col);
    }

    fn block_comment(&mut self, line: u32, col: u32) {
        let mut text = String::new();
        let mut depth = 0usize;
        while let Some(c) = self.peek(0) {
            if c == '/' && self.peek(1) == Some('*') {
                depth += 1;
                text.push_str("/*");
                self.bump();
                self.bump();
            } else if c == '*' && self.peek(1) == Some('/') {
                depth -= 1;
                text.push_str("*/");
                self.bump();
                self.bump();
                if depth == 0 {
                    break;
                }
            } else {
                text.push(c);
                self.bump();
            }
        }
        let kind = if (text.starts_with("/**") && !text.starts_with("/***") && text.len() > 4)
            || text.starts_with("/*!")
        {
            TokenKind::DocComment
        } else {
            TokenKind::BlockComment
        };
        self.push(kind, text, line, col);
    }

    /// An identifier — or the prefix of a raw/byte/C string (`r"`,
    /// `r#"`, `b"`, `br#"`, `c"`, `b'`).
    fn ident_or_prefixed_literal(&mut self, line: u32, col: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if is_ident_continue(c) {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        // String-literal prefixes end the identifier at `"`/`#`/`'`.
        match (text.as_str(), self.peek(0)) {
            ("r" | "b" | "br" | "c" | "cr" | "rb", Some('"')) => {
                return self.string(line, col, text)
            }
            ("r" | "br" | "cr" | "rb", Some('#')) if self.raw_string_ahead() => {
                return self.raw_string(line, col, text)
            }
            ("b", Some('\'')) => {
                // Byte char literal b'x'.
                text.push('\'');
                self.bump();
                self.char_body(&mut text);
                return self.push(TokenKind::Char, text, line, col);
            }
            _ => {}
        }
        self.push(TokenKind::Ident, text, line, col);
    }

    /// After an `r`/`br` prefix, does `#…#"` follow (a raw string), as
    /// opposed to e.g. `r#ident` (a raw identifier)?
    fn raw_string_ahead(&self) -> bool {
        let mut i = 0;
        while self.peek(i) == Some('#') {
            i += 1;
        }
        i > 0 && self.peek(i) == Some('"')
    }

    /// Raw string with hash fencing: `prefix#…#"…"#…#`.
    fn raw_string(&mut self, line: u32, col: u32, mut text: String) {
        let mut hashes = 0usize;
        while self.peek(0) == Some('#') {
            hashes += 1;
            text.push('#');
            self.bump();
        }
        text.push('"');
        self.bump(); // opening quote
        loop {
            match self.bump() {
                None => break,
                Some('"') => {
                    text.push('"');
                    let mut seen = 0usize;
                    while seen < hashes && self.peek(0) == Some('#') {
                        seen += 1;
                        text.push('#');
                        self.bump();
                    }
                    if seen == hashes {
                        break;
                    }
                }
                Some(c) => text.push(c),
            }
        }
        self.push(TokenKind::Str, text, line, col);
    }

    /// Plain (escaped) string, with any already-consumed prefix.
    fn string(&mut self, line: u32, col: u32, mut text: String) {
        text.push('"');
        self.bump(); // opening quote
        loop {
            match self.bump() {
                None => break,
                Some('\\') => {
                    text.push('\\');
                    if let Some(e) = self.bump() {
                        text.push(e);
                    }
                }
                Some('"') => {
                    text.push('"');
                    break;
                }
                Some(c) => text.push(c),
            }
        }
        self.push(TokenKind::Str, text, line, col);
    }

    /// Body of a char literal after the opening quote: consume up to and
    /// including the closing quote.
    fn char_body(&mut self, text: &mut String) {
        loop {
            match self.bump() {
                None => break,
                Some('\\') => {
                    text.push('\\');
                    if let Some(e) = self.bump() {
                        text.push(e);
                    }
                }
                Some('\'') => {
                    text.push('\'');
                    break;
                }
                Some(c) => text.push(c),
            }
        }
    }

    /// `'a` (lifetime) vs `'x'` (char literal): a quote followed by an
    /// identifier is a lifetime unless a closing quote immediately
    /// follows the identifier.
    fn lifetime_or_char(&mut self, line: u32, col: u32) {
        let mut text = String::from("'");
        self.bump(); // the quote
        match self.peek(0) {
            Some(c) if is_ident_start(c) => {
                let mut i = 0;
                while self.peek(i).is_some_and(is_ident_continue) {
                    i += 1;
                }
                if self.peek(i) == Some('\'') && i == 1 {
                    // 'x' — a one-character char literal.
                    self.char_body(&mut text);
                    self.push(TokenKind::Char, text, line, col);
                } else if self.peek(i) == Some('\'') && i > 1 {
                    // 'abc' is not valid Rust; treat as char-ish blob.
                    self.char_body(&mut text);
                    self.push(TokenKind::Char, text, line, col);
                } else {
                    while self.peek(0).is_some_and(is_ident_continue) {
                        text.push(self.bump().unwrap_or('_'));
                    }
                    self.push(TokenKind::Lifetime, text, line, col);
                }
            }
            _ => {
                // '\n', '0', etc. — a char literal.
                self.char_body(&mut text);
                self.push(TokenKind::Char, text, line, col);
            }
        }
    }

    /// Numeric literal: digits, underscores, base prefixes, a fractional
    /// part (but never a `..` range), exponents, and type suffixes.
    fn number(&mut self, line: u32, col: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c.is_ascii_alphanumeric()
                || c == '_'
                || (c == '.' && self.peek(1).is_some_and(|d| d.is_ascii_digit()))
            {
                text.push(c);
                self.bump();
            } else if (c == '+' || c == '-')
                && matches!(text.chars().last(), Some('e') | Some('E'))
                && text.starts_with(|f: char| f.is_ascii_digit())
                && !text.starts_with("0x")
            {
                // Exponent sign: 1e-9.
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push(TokenKind::Num, text, line, col);
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        tokenize(src)
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn idents_puncts_numbers() {
        let ts = kinds("let x = 42 + y_2;");
        assert_eq!(ts[0], (TokenKind::Ident, "let".into()));
        assert_eq!(ts[1], (TokenKind::Ident, "x".into()));
        assert_eq!(ts[2], (TokenKind::Punct, "=".into()));
        assert_eq!(ts[3], (TokenKind::Num, "42".into()));
        assert_eq!(ts[5], (TokenKind::Ident, "y_2".into()));
    }

    #[test]
    fn positions_are_line_and_column_exact() {
        let ts = tokenize("a\n  bb\n");
        assert_eq!((ts[0].line, ts[0].col), (1, 1));
        assert_eq!((ts[1].line, ts[1].col), (2, 3));
    }

    #[test]
    fn line_and_doc_comments() {
        let ts = kinds("// plain\n/// doc\n//! inner\n//// plain again\n");
        assert_eq!(ts[0].0, TokenKind::LineComment);
        assert_eq!(ts[1].0, TokenKind::DocComment);
        assert_eq!(ts[2].0, TokenKind::DocComment);
        assert_eq!(ts[3].0, TokenKind::LineComment);
    }

    #[test]
    fn nested_block_comments() {
        let ts = kinds("/* a /* b */ c */ x");
        assert_eq!(ts[0].0, TokenKind::BlockComment);
        assert_eq!(ts[0].1, "/* a /* b */ c */");
        assert_eq!(ts[1], (TokenKind::Ident, "x".into()));
    }

    #[test]
    fn strings_hide_comment_markers() {
        let ts = kinds(r#"let s = "// not a comment"; y"#);
        assert_eq!(ts[3].0, TokenKind::Str);
        assert_eq!(ts[5], (TokenKind::Ident, "y".into()));
    }

    #[test]
    fn raw_strings_with_hashes() {
        let ts = kinds(r###"let s = r#"quote " inside"# ; y"###);
        assert_eq!(ts[3].0, TokenKind::Str);
        assert!(ts[3].1.contains("quote"));
        assert_eq!(ts[5], (TokenKind::Ident, "y".into()));
    }

    #[test]
    fn lifetimes_vs_chars() {
        let ts = kinds("&'static str; 'a, '\\n' 'x' b'z'");
        assert_eq!(ts[1], (TokenKind::Lifetime, "'static".into()));
        let cs: Vec<_> = ts.iter().filter(|(k, _)| *k == TokenKind::Char).collect();
        assert_eq!(cs.len(), 3, "{ts:?}");
        assert!(ts
            .iter()
            .any(|(k, t)| *k == TokenKind::Lifetime && t == "'a"));
    }

    #[test]
    fn numbers_do_not_swallow_ranges() {
        let ts = kinds("0..n 1.5 0xff_u64 1e-9");
        assert_eq!(ts[0], (TokenKind::Num, "0".into()));
        assert_eq!(ts[1], (TokenKind::Punct, ".".into()));
        assert_eq!(ts[2], (TokenKind::Punct, ".".into()));
        assert_eq!(ts[3], (TokenKind::Ident, "n".into()));
        assert_eq!(ts[4], (TokenKind::Num, "1.5".into()));
        assert_eq!(ts[5], (TokenKind::Num, "0xff_u64".into()));
        assert_eq!(ts[6], (TokenKind::Num, "1e-9".into()));
    }

    #[test]
    fn unterminated_input_still_tokenizes() {
        assert_eq!(tokenize("/* open").len(), 1);
        assert_eq!(tokenize("\"open").len(), 1);
        assert!(!tokenize("fn main() {").is_empty());
    }
}
