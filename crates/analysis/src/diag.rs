//! Diagnostics: rule identifiers, findings, and their text/JSON renderings.

use std::fmt;

/// Every rule the analyzer can fire. The string form is the stable id
/// used in waiver comments (`// lint: allow(<id>) — reason`) and in the
/// JSON output.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RuleId {
    /// Hash-ordered iteration (`iter`/`keys`/`values`/`drain`/`into_iter`
    /// on a `HashMap`/`HashSet`) in a simulation path.
    HashIter,
    /// `Instant::now`/`SystemTime` read outside the timing allowlist.
    WallClock,
    /// `std::env` or thread-id read in a simulation path.
    EnvRead,
    /// `panic!`/`unreachable!`/`assert!` in library code without an
    /// `// invariant:` comment or `# Panics` doc section.
    PanicDoc,
    /// `unwrap()`/`expect()` in library code.
    Unwrap,
    /// `impl MemorySystem` that neither defines nor inherits
    /// `attach_trace`.
    AttachTrace,
    /// `experiments/table*.rs`/`fig*.rs` bypassing `SweepRunner`.
    SweepRoute,
    /// Wildcard `_ =>` arm in a `match` over a typed error enum.
    ErrorMatch,
    /// A raw write to a sweep journal (`journal.jsonl`) bypassing the
    /// checksummed `Journal::append` helper.
    JournalAppend,
    /// Dataflow tier: arithmetic/comparison mixing two inferred unit
    /// domains (picoseconds vs. cycles vs. bytes vs. refs), or a time
    /// quantity declared as a raw integer.
    UnitMix,
    /// Dataflow tier: a wall-clock/env/thread-identity value flowing
    /// into simulated state, a fingerprint, or a serialized cell.
    NondetTaint,
    /// Dataflow tier: a journal claim append with a CFG path to cell
    /// execution that never re-reads the journal.
    ClaimReadback,
    /// Dataflow tier: a polling loop in the runner tree that sleeps
    /// without consulting a cancel/shutdown signal.
    CancelPoll,
    /// A `// lint: allow(...)` waiver with no `— <reason>` text.
    WaiverMissingReason,
    /// A waiver that matched no diagnostic on its line.
    UnusedWaiver,
}

impl RuleId {
    /// All rules, in report order.
    pub const ALL: [RuleId; 15] = [
        RuleId::HashIter,
        RuleId::WallClock,
        RuleId::EnvRead,
        RuleId::PanicDoc,
        RuleId::Unwrap,
        RuleId::AttachTrace,
        RuleId::SweepRoute,
        RuleId::ErrorMatch,
        RuleId::JournalAppend,
        RuleId::UnitMix,
        RuleId::NondetTaint,
        RuleId::ClaimReadback,
        RuleId::CancelPoll,
        RuleId::WaiverMissingReason,
        RuleId::UnusedWaiver,
    ];

    /// The stable string id (used in waivers and JSON).
    pub fn as_str(self) -> &'static str {
        match self {
            RuleId::HashIter => "hash-iter",
            RuleId::WallClock => "wall-clock",
            RuleId::EnvRead => "env-read",
            RuleId::PanicDoc => "panic-doc",
            RuleId::Unwrap => "unwrap",
            RuleId::AttachTrace => "attach-trace",
            RuleId::SweepRoute => "sweep-route",
            RuleId::ErrorMatch => "error-match",
            RuleId::JournalAppend => "journal-append",
            RuleId::UnitMix => "unit-mix",
            RuleId::NondetTaint => "nondet-taint",
            RuleId::ClaimReadback => "claim-readback",
            RuleId::CancelPoll => "cancel-poll",
            RuleId::WaiverMissingReason => "waiver-missing-reason",
            RuleId::UnusedWaiver => "unused-waiver",
        }
    }

    /// Parse a waiver id back into a rule. Waiver-meta rules cannot be
    /// waived, so they don't parse.
    pub fn from_waiver_str(s: &str) -> Option<RuleId> {
        Some(match s {
            "hash-iter" => RuleId::HashIter,
            "wall-clock" => RuleId::WallClock,
            "env-read" => RuleId::EnvRead,
            "panic-doc" => RuleId::PanicDoc,
            "unwrap" => RuleId::Unwrap,
            "attach-trace" => RuleId::AttachTrace,
            "sweep-route" => RuleId::SweepRoute,
            "error-match" => RuleId::ErrorMatch,
            "journal-append" => RuleId::JournalAppend,
            "unit-mix" => RuleId::UnitMix,
            "nondet-taint" => RuleId::NondetTaint,
            "claim-readback" => RuleId::ClaimReadback,
            "cancel-poll" => RuleId::CancelPoll,
            _ => return None,
        })
    }

    /// Parse any rule id, including the waiver-meta rules (used by
    /// `--explain`, where the meta rules are legitimate queries even
    /// though they cannot be waived).
    pub fn from_waiver_str_or_meta(s: &str) -> Option<RuleId> {
        RuleId::ALL.into_iter().find(|r| r.as_str() == s)
    }

    /// Which tier runs this rule.
    pub fn tier_name(self) -> &'static str {
        match self {
            RuleId::UnitMix | RuleId::NondetTaint | RuleId::ClaimReadback | RuleId::CancelPoll => {
                "dataflow"
            }
            _ => "token",
        }
    }

    /// One-line description, used by SARIF rule metadata and `--explain`.
    pub fn short_description(self) -> &'static str {
        match self {
            RuleId::HashIter => "hash-ordered iteration in a simulation path",
            RuleId::WallClock => "wall-clock read outside the timing allowlist",
            RuleId::EnvRead => "environment/thread-id read in a simulation path",
            RuleId::PanicDoc => "undocumented panic in library code",
            RuleId::Unwrap => "unwrap()/expect() in library code",
            RuleId::AttachTrace => "MemorySystem impl without attach_trace",
            RuleId::SweepRoute => "experiment table/figure bypassing SweepRunner",
            RuleId::ErrorMatch => "wildcard arm in a typed error match",
            RuleId::JournalAppend => "raw journal write bypassing Journal::append",
            RuleId::UnitMix => "arithmetic mixing unit domains (ps/ns/cycles/bytes/refs)",
            RuleId::NondetTaint => "wall-clock-derived value reaching sim state or a fingerprint",
            RuleId::ClaimReadback => "claim appended but not read back before cell execution",
            RuleId::CancelPoll => "polling loop that sleeps without a cancel check",
            RuleId::WaiverMissingReason => "waiver without a `— <reason>`",
            RuleId::UnusedWaiver => "waiver matching no finding",
        }
    }

    /// Full help text for `repro lint --explain <rule>`.
    pub fn explain(self) -> &'static str {
        match self {
            RuleId::HashIter => {
                "hash-iter (token tier)\n\
                 Iterating a HashMap/HashSet yields a different order on every run\n\
                 (the hasher is seeded randomly), so any simulated result derived\n\
                 from the order is nondeterministic. Use BTreeMap/BTreeSet or sort\n\
                 before iterating in simulation paths."
            }
            RuleId::WallClock => {
                "wall-clock (token tier)\n\
                 Instant::now/SystemTime reads are only legitimate in reporting\n\
                 code (sweep-runner timing, watchdog budgets, binaries, benches).\n\
                 Anywhere else they make results depend on host speed."
            }
            RuleId::EnvRead => {
                "env-read (token tier)\n\
                 std::env and thread-identity reads in simulation paths make\n\
                 results depend on the host environment. Thread configuration\n\
                 belongs in SystemConfig, not the process environment."
            }
            RuleId::PanicDoc => {
                "panic-doc (token tier)\n\
                 A panic!/unreachable!/assert! in library code must state its\n\
                 invariant: add a `// invariant: ...` comment on an adjacent line\n\
                 or a `# Panics` doc section so callers know the contract."
            }
            RuleId::Unwrap => {
                "unwrap (token tier)\n\
                 unwrap()/expect() in library code turns recoverable errors into\n\
                 aborts mid-sweep. Propagate with `?` or handle the None/Err arm."
            }
            RuleId::AttachTrace => {
                "attach-trace (token tier)\n\
                 Every `impl MemorySystem` must define or inherit attach_trace so\n\
                 the tracing harness can observe it."
            }
            RuleId::SweepRoute => {
                "sweep-route (token tier)\n\
                 experiments/table*.rs and fig*.rs must route through SweepRunner\n\
                 so journaling, leases, and resumability apply to every cell."
            }
            RuleId::JournalAppend => {
                "journal-append (token tier)\n\
                 Writing journal.jsonl directly bypasses the checksummed\n\
                 Journal::append helper and breaks crash-safe replay."
            }
            RuleId::ErrorMatch => {
                "error-match (token tier)\n\
                 A wildcard `_ =>` arm over a typed error enum silently swallows\n\
                 variants added later. Match every variant explicitly."
            }
            RuleId::UnitMix => {
                "unit-mix (dataflow tier)\n\
                 The analyzer infers a unit domain — picoseconds, nanoseconds,\n\
                 cycles, bytes, references — for each value from Picos newtypes,\n\
                 `_ps`/`_ns`/`_cycles` name suffixes, and the BankTiming/\n\
                 SystemConfig vocabulary (t_rp, t_rcd, t_cas, quantum_time,\n\
                 busy_until are picoseconds; quantum_refs is references;\n\
                 unit_bytes is bytes). Domains flow through let-bindings,\n\
                 assignments, casts, and unit-preserving methods (max, min,\n\
                 saturating_add, ...). Adding, subtracting, or comparing two\n\
                 values with *different* known domains is an error: the paper's\n\
                 timing claims collapse if a tRCD in nanoseconds is ever added\n\
                 to a quantum in cycles. Casts do not launder units — `ps as\n\
                 u64` keeps its domain. Fields named like time quantities\n\
                 (`*_ps`, `*_time`) declared as raw integers are also flagged:\n\
                 wrap them in the Picos newtype. Multiplication and division\n\
                 legitimately change units and are not checked.\n\
                 \n\
                 Example finding:\n\
                     let total = cfg.quantum_time + refs_done;\n\
                     // [unit-mix] `+` mixes picoseconds with references\n\
                 Fix: convert explicitly (refs_done * ps_per_ref) or keep the\n\
                 quantities in separate typed fields."
            }
            RuleId::NondetTaint => {
                "nondet-taint (dataflow tier)\n\
                 Values derived from Instant::now, SystemTime, std::env,\n\
                 thread::current, or wall_ms are tainted; taint propagates\n\
                 through bindings, arithmetic, field reads, and call arguments.\n\
                 A tainted value reaching a Cell/FrozenCell payload, a\n\
                 fingerprint, or a run_config argument breaks bit-identical\n\
                 reproducibility — those bytes are serialized into cells.json /\n\
                 journal.jsonl and compared on replay. Wall-clock may feed\n\
                 progress reporting and lease timestamps, never results."
            }
            RuleId::ClaimReadback => {
                "claim-readback (dataflow tier)\n\
                 The crash-safe sweep protocol requires: append a Claim record,\n\
                 then RE-READ the journal (the first live claim in file order\n\
                 wins), and only execute the cell if the readback says the claim\n\
                 is ours. This rule checks, on every control-flow path of every\n\
                 runner function, that no execute call is reachable from a claim\n\
                 append without an intervening scan/replay. Executing an\n\
                 unconfirmed claim double-computes cells and corrupts adoption\n\
                 after a crash."
            }
            RuleId::CancelPoll => {
                "cancel-poll (dataflow tier)\n\
                 Every runner loop that sleeps (watchdog polls, heartbeat waits)\n\
                 must consult a cancel/shutdown signal each iteration —\n\
                 shutdown_requested(), a cancel token load, or wd.poll().\n\
                 Otherwise a stalled worker holds its lease past the stall\n\
                 budget and the watchdog cannot reclaim the cell."
            }
            RuleId::WaiverMissingReason => {
                "waiver-missing-reason (meta)\n\
                 `// lint: allow(<rule>)` must carry `— <reason>` text; an\n\
                 unexplained suppression is itself a finding."
            }
            RuleId::UnusedWaiver => {
                "unused-waiver (meta)\n\
                 A waiver that matches no finding on its line is stale — the\n\
                 code was fixed or the rule changed. Remove it."
            }
        }
    }
}

impl fmt::Display for RuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Whether a diagnostic was suppressed by a waiver, and how.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WaiverStatus {
    /// No waiver applies: the diagnostic counts against the exit code.
    None,
    /// A `// lint: allow(<rule>) — <reason>` waiver suppresses it.
    Waived,
}

/// One finding at an exact source position.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Path of the offending file, relative to the workspace root.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Which rule fired.
    pub rule: RuleId,
    /// Human-readable description of the finding.
    pub message: String,
    /// Whether a waiver suppressed it.
    pub waiver: WaiverStatus,
}

impl Diagnostic {
    /// Does this diagnostic count against the exit code?
    pub fn is_active(&self) -> bool {
        self.waiver == WaiverStatus::None
    }

    /// `file:line:col: [rule] message` — the human rendering.
    pub fn render_text(&self) -> String {
        let suffix = match self.waiver {
            WaiverStatus::None => "",
            WaiverStatus::Waived => " (waived)",
        };
        format!(
            "{}:{}:{}: [{}] {}{}",
            self.file, self.line, self.col, self.rule, self.message, suffix
        )
    }

    /// One JSON object, hand-rolled (the analyzer is dependency-free).
    pub fn render_json(&self) -> String {
        format!(
            "{{\"file\":{},\"line\":{},\"col\":{},\"rule\":{},\"message\":{},\"waived\":{}}}",
            json_string(&self.file),
            self.line,
            self.col,
            json_string(self.rule.as_str()),
            json_string(&self.message),
            self.waiver == WaiverStatus::Waived,
        )
    }
}

/// Render a full report as a JSON document:
/// `{"diagnostics":[...],"active":N,"waived":M}`.
pub fn render_json_report(diags: &[Diagnostic]) -> String {
    let mut out = String::from("{\"diagnostics\":[");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&d.render_json());
    }
    let active = diags.iter().filter(|d| d.is_active()).count();
    out.push_str(&format!(
        "],\"active\":{},\"waived\":{}}}",
        active,
        diags.len() - active
    ));
    out
}

/// Minimal JSON string escaping: quotes, backslashes, control chars.
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rule_ids_round_trip_through_waiver_syntax() {
        for rule in RuleId::ALL {
            let parsed = RuleId::from_waiver_str(rule.as_str());
            if matches!(rule, RuleId::WaiverMissingReason | RuleId::UnusedWaiver) {
                assert_eq!(parsed, None, "meta rules must not be waivable");
            } else {
                assert_eq!(parsed, Some(rule));
            }
        }
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn report_counts_active_vs_waived() {
        let mk = |waiver| Diagnostic {
            file: "x.rs".into(),
            line: 1,
            col: 2,
            rule: RuleId::HashIter,
            message: "m".into(),
            waiver,
        };
        let report = render_json_report(&[mk(WaiverStatus::None), mk(WaiverStatus::Waived)]);
        assert!(report.contains("\"active\":1"));
        assert!(report.contains("\"waived\":1"));
        assert!(report.contains("\"rule\":\"hash-iter\""));
    }
}
