//! Diagnostics: rule identifiers, findings, and their text/JSON renderings.

use std::fmt;

/// Every rule the analyzer can fire. The string form is the stable id
/// used in waiver comments (`// lint: allow(<id>) — reason`) and in the
/// JSON output.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RuleId {
    /// Hash-ordered iteration (`iter`/`keys`/`values`/`drain`/`into_iter`
    /// on a `HashMap`/`HashSet`) in a simulation path.
    HashIter,
    /// `Instant::now`/`SystemTime` read outside the timing allowlist.
    WallClock,
    /// `std::env` or thread-id read in a simulation path.
    EnvRead,
    /// `panic!`/`unreachable!`/`assert!` in library code without an
    /// `// invariant:` comment or `# Panics` doc section.
    PanicDoc,
    /// `unwrap()`/`expect()` in library code.
    Unwrap,
    /// `impl MemorySystem` that neither defines nor inherits
    /// `attach_trace`.
    AttachTrace,
    /// `experiments/table*.rs`/`fig*.rs` bypassing `SweepRunner`.
    SweepRoute,
    /// Wildcard `_ =>` arm in a `match` over a typed error enum.
    ErrorMatch,
    /// A raw write to a sweep journal (`journal.jsonl`) bypassing the
    /// checksummed `Journal::append` helper.
    JournalAppend,
    /// A `// lint: allow(...)` waiver with no `— <reason>` text.
    WaiverMissingReason,
    /// A waiver that matched no diagnostic on its line.
    UnusedWaiver,
}

impl RuleId {
    /// All rules, in report order.
    pub const ALL: [RuleId; 11] = [
        RuleId::HashIter,
        RuleId::WallClock,
        RuleId::EnvRead,
        RuleId::PanicDoc,
        RuleId::Unwrap,
        RuleId::AttachTrace,
        RuleId::SweepRoute,
        RuleId::ErrorMatch,
        RuleId::JournalAppend,
        RuleId::WaiverMissingReason,
        RuleId::UnusedWaiver,
    ];

    /// The stable string id (used in waivers and JSON).
    pub fn as_str(self) -> &'static str {
        match self {
            RuleId::HashIter => "hash-iter",
            RuleId::WallClock => "wall-clock",
            RuleId::EnvRead => "env-read",
            RuleId::PanicDoc => "panic-doc",
            RuleId::Unwrap => "unwrap",
            RuleId::AttachTrace => "attach-trace",
            RuleId::SweepRoute => "sweep-route",
            RuleId::ErrorMatch => "error-match",
            RuleId::JournalAppend => "journal-append",
            RuleId::WaiverMissingReason => "waiver-missing-reason",
            RuleId::UnusedWaiver => "unused-waiver",
        }
    }

    /// Parse a waiver id back into a rule. Waiver-meta rules cannot be
    /// waived, so they don't parse.
    pub fn from_waiver_str(s: &str) -> Option<RuleId> {
        Some(match s {
            "hash-iter" => RuleId::HashIter,
            "wall-clock" => RuleId::WallClock,
            "env-read" => RuleId::EnvRead,
            "panic-doc" => RuleId::PanicDoc,
            "unwrap" => RuleId::Unwrap,
            "attach-trace" => RuleId::AttachTrace,
            "sweep-route" => RuleId::SweepRoute,
            "error-match" => RuleId::ErrorMatch,
            "journal-append" => RuleId::JournalAppend,
            _ => return None,
        })
    }
}

impl fmt::Display for RuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Whether a diagnostic was suppressed by a waiver, and how.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WaiverStatus {
    /// No waiver applies: the diagnostic counts against the exit code.
    None,
    /// A `// lint: allow(<rule>) — <reason>` waiver suppresses it.
    Waived,
}

/// One finding at an exact source position.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Path of the offending file, relative to the workspace root.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Which rule fired.
    pub rule: RuleId,
    /// Human-readable description of the finding.
    pub message: String,
    /// Whether a waiver suppressed it.
    pub waiver: WaiverStatus,
}

impl Diagnostic {
    /// Does this diagnostic count against the exit code?
    pub fn is_active(&self) -> bool {
        self.waiver == WaiverStatus::None
    }

    /// `file:line:col: [rule] message` — the human rendering.
    pub fn render_text(&self) -> String {
        let suffix = match self.waiver {
            WaiverStatus::None => "",
            WaiverStatus::Waived => " (waived)",
        };
        format!(
            "{}:{}:{}: [{}] {}{}",
            self.file, self.line, self.col, self.rule, self.message, suffix
        )
    }

    /// One JSON object, hand-rolled (the analyzer is dependency-free).
    pub fn render_json(&self) -> String {
        format!(
            "{{\"file\":{},\"line\":{},\"col\":{},\"rule\":{},\"message\":{},\"waived\":{}}}",
            json_string(&self.file),
            self.line,
            self.col,
            json_string(self.rule.as_str()),
            json_string(&self.message),
            self.waiver == WaiverStatus::Waived,
        )
    }
}

/// Render a full report as a JSON document:
/// `{"diagnostics":[...],"active":N,"waived":M}`.
pub fn render_json_report(diags: &[Diagnostic]) -> String {
    let mut out = String::from("{\"diagnostics\":[");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&d.render_json());
    }
    let active = diags.iter().filter(|d| d.is_active()).count();
    out.push_str(&format!(
        "],\"active\":{},\"waived\":{}}}",
        active,
        diags.len() - active
    ));
    out
}

/// Minimal JSON string escaping: quotes, backslashes, control chars.
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rule_ids_round_trip_through_waiver_syntax() {
        for rule in RuleId::ALL {
            let parsed = RuleId::from_waiver_str(rule.as_str());
            if matches!(rule, RuleId::WaiverMissingReason | RuleId::UnusedWaiver) {
                assert_eq!(parsed, None, "meta rules must not be waivable");
            } else {
                assert_eq!(parsed, Some(rule));
            }
        }
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn report_counts_active_vs_waived() {
        let mk = |waiver| Diagnostic {
            file: "x.rs".into(),
            line: 1,
            col: 2,
            rule: RuleId::HashIter,
            message: "m".into(),
            waiver,
        };
        let report = render_json_report(&[mk(WaiverStatus::None), mk(WaiverStatus::Waived)]);
        assert!(report.contains("\"active\":1"));
        assert!(report.contains("\"waived\":1"));
        assert!(report.contains("\"rule\":\"hash-iter\""));
    }
}
