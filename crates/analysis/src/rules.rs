//! The rule passes: token-stream lints, waiver resolution, and the
//! workspace-level structural checks.
//!
//! Every pass works on the lexed token stream — there is no type
//! information, so rules that need types (hash-iter) use a declared-name
//! heuristic: any binding, field, or parameter whose declaration
//! mentions `HashMap`/`HashSet` is tracked by name, and iteration-order
//! methods on those names are flagged.

use std::collections::BTreeSet;

use crate::diag::{Diagnostic, RuleId, WaiverStatus};
use crate::lexer::{tokenize, Token, TokenKind};
use crate::FileClass;

/// Macros whose presence in library code demands an `// invariant:`
/// comment or a `# Panics` doc section.
const PANIC_MACROS: [&str; 5] = ["panic", "unreachable", "assert", "assert_eq", "assert_ne"];

/// Iteration-order methods that leak hash ordering.
const HASH_ITER_METHODS: [&str; 7] = [
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
];

/// Methods we hop through when resolving a receiver chain like
/// `self.map.lock().iter()` back to the field name.
const RECEIVER_WRAPPERS: [&str; 8] = [
    "lock",
    "borrow",
    "borrow_mut",
    "read",
    "write",
    "as_ref",
    "as_mut",
    "get_mut",
];

/// Error enums whose `match`es must stay exhaustive (no `_ =>` arm).
const ERROR_ENUMS: [&str; 5] = [
    "RampageError",
    "ConfigError",
    "CacheIoError",
    "TraceIoError",
    "DramConfigError",
];

/// Structural facts one file contributes to the workspace-level
/// attach-trace check.
#[derive(Debug, Default)]
pub struct StructuralFacts {
    /// `Some(true)` if `trait MemorySystem` declares `attach_trace` with
    /// a default body; `Some(false)` if it declares it body-less; `None`
    /// if the trait definition was not seen.
    pub trait_attach_default: Option<bool>,
    /// Every `impl MemorySystem for …` block seen.
    pub impls: Vec<ImplFact>,
}

/// One `impl MemorySystem for …` block.
#[derive(Debug)]
pub struct ImplFact {
    /// File holding the impl, relative to the workspace root.
    pub file: String,
    /// 1-based line of the `impl` keyword.
    pub line: u32,
    /// 1-based column of the `impl` keyword.
    pub col: u32,
    /// Whether the block defines `fn attach_trace` itself.
    pub defines_attach: bool,
}

impl StructuralFacts {
    /// Merge facts from another file into this accumulator.
    pub fn merge(&mut self, other: StructuralFacts) {
        if self.trait_attach_default.is_none() {
            self.trait_attach_default = other.trait_attach_default;
        }
        self.impls.extend(other.impls);
    }
}

/// A parsed `// lint: allow(<rule>) — <reason>` comment.
struct Waiver {
    line: u32,
    col: u32,
    rule: Option<RuleId>,
    raw_id: String,
    has_reason: bool,
    used: bool,
}

/// Analyze one file at the default (token) tier.
pub fn analyze_source(
    rel: &str,
    class: &FileClass,
    text: &str,
) -> (Vec<Diagnostic>, StructuralFacts) {
    analyze_source_tier(rel, class, text, crate::Tier::Token)
}

/// Analyze one file: run every applicable per-file rule at the chosen
/// tier, resolve waivers, and collect structural facts for the
/// workspace finalizer. The file is tokenized exactly once; both tiers
/// share the stream (the dataflow tier parses the same comment-free,
/// test-mask-free view the token passes index).
pub fn analyze_source_tier(
    rel: &str,
    class: &FileClass,
    text: &str,
    tier: crate::Tier,
) -> (Vec<Diagnostic>, StructuralFacts) {
    let toks = tokenize(text);
    let mask = test_mask(&toks);
    let code = Code::new(&toks, &mask);
    let comments: Vec<&Token> = toks
        .iter()
        .zip(mask.iter())
        .filter(|(t, &m)| t.is_comment() && !m)
        .map(|(t, _)| t)
        .collect();

    let mut diags = Vec::new();
    if class.sim_path && !class.is_test {
        hash_iter_pass(rel, &code, &mut diags);
        env_read_pass(rel, &code, &mut diags);
    }
    if !class.wall_clock_allowed && !class.is_test {
        wall_clock_pass(rel, &code, &mut diags);
    }
    if class.is_lib && !class.is_test {
        panic_doc_pass(rel, &toks, &code, &comments, &mut diags);
        unwrap_pass(rel, &code, &mut diags);
        error_match_pass(rel, &code, &mut diags);
    }
    if class.sweep_routed && !class.is_test {
        sweep_route_pass(rel, &code, &mut diags);
    }
    if !class.is_test {
        journal_append_pass(rel, &code, &mut diags);
    }

    if tier == crate::Tier::Dataflow && !class.is_test {
        let filtered: Vec<&Token> = code.ix.iter().map(|&i| &toks[i]).collect();
        crate::tier2::run(rel, class, &filtered, &mut diags);
    }

    let facts = if class.is_test {
        StructuralFacts::default()
    } else {
        collect_structural(rel, &code)
    };

    apply_waivers(rel, &comments, &mut diags);
    diags.sort_by_key(|d| (d.line, d.col, d.rule));
    (diags, facts)
}

/// Turn the merged structural facts into diagnostics.
pub fn finalize_structural(facts: &StructuralFacts) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    // Only judge impls when the trait definition was actually seen:
    // without it we cannot know whether a default body exists.
    if facts.trait_attach_default == Some(false) {
        for imp in &facts.impls {
            if !imp.defines_attach {
                out.push(Diagnostic {
                    file: imp.file.clone(),
                    line: imp.line,
                    col: imp.col,
                    rule: RuleId::AttachTrace,
                    message: "impl MemorySystem neither defines nor inherits attach_trace \
                              (trait declares it without a default body)"
                        .to_string(),
                    waiver: WaiverStatus::None,
                });
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Token-stream plumbing
// ---------------------------------------------------------------------------

/// Comment-free, test-mask-free view of the token stream.
struct Code<'a> {
    toks: &'a [Token],
    /// Indices into `toks` of live code tokens, in order.
    ix: Vec<usize>,
}

impl<'a> Code<'a> {
    fn new(toks: &'a [Token], mask: &[bool]) -> Self {
        let ix = (0..toks.len())
            .filter(|&i| !toks[i].is_comment() && !mask.get(i).copied().unwrap_or(false))
            .collect();
        Code { toks, ix }
    }

    fn len(&self) -> usize {
        self.ix.len()
    }

    fn tok(&self, i: usize) -> Option<&Token> {
        self.ix.get(i).map(|&orig| &self.toks[orig])
    }

    fn kind(&self, i: usize) -> Option<TokenKind> {
        self.tok(i).map(|t| t.kind)
    }

    fn ident(&self, i: usize) -> Option<&str> {
        match self.tok(i) {
            Some(t) if t.kind == TokenKind::Ident => Some(t.text.as_str()),
            _ => None,
        }
    }

    fn is_ident(&self, i: usize, s: &str) -> bool {
        self.ident(i) == Some(s)
    }

    fn is_punct(&self, i: usize, ch: char) -> bool {
        matches!(self.tok(i), Some(t) if t.kind == TokenKind::Punct && t.text.starts_with(ch))
    }

    /// `::` is two consecutive `:` puncts.
    fn is_path_sep(&self, i: usize) -> bool {
        self.is_punct(i, ':') && self.is_punct(i + 1, ':')
    }

    fn pos(&self, i: usize) -> (u32, u32) {
        self.tok(i).map(|t| (t.line, t.col)).unwrap_or((0, 0))
    }
}

/// Compute which tokens sit inside `#[cfg(test)]` / `#[test]` items.
/// The mask covers the attribute itself through the end of the item it
/// decorates (matching brace or top-level semicolon).
fn test_mask(toks: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; toks.len()];
    let code: Vec<usize> = (0..toks.len()).filter(|&i| !toks[i].is_comment()).collect();
    let at = |ci: usize| -> Option<&Token> { code.get(ci).map(|&i| &toks[i]) };
    let is_p = |ci: usize, ch: char| -> bool {
        matches!(at(ci), Some(t) if t.kind == TokenKind::Punct && t.text.starts_with(ch))
    };

    let mut ci = 0usize;
    while ci < code.len() {
        if !(is_p(ci, '#') && is_p(ci + 1, '[')) {
            ci += 1;
            continue;
        }
        // Find the matching `]`.
        let Some(close) = matching_close(&code, toks, ci + 1, '[', ']') else {
            break;
        };
        let content: Vec<&Token> = ((ci + 2)..close).filter_map(at).collect();
        if !is_test_attr(&content) {
            ci = close + 1;
            continue;
        }
        // Skip any further attributes on the same item.
        let mut p = close + 1;
        while is_p(p, '#') && is_p(p + 1, '[') {
            match matching_close(&code, toks, p + 1, '[', ']') {
                Some(c) => p = c + 1,
                None => break,
            }
        }
        // Consume the item: to the matching `}` of its first brace, or a
        // top-level `;`.
        let mut brace = 0i32;
        let mut q = p;
        while q < code.len() {
            if is_p(q, '{') {
                brace += 1;
            } else if is_p(q, '}') {
                brace -= 1;
                if brace == 0 {
                    break;
                }
            } else if is_p(q, ';') && brace == 0 {
                break;
            }
            q += 1;
        }
        let q = q.min(code.len().saturating_sub(1));
        if let (Some(&a), Some(&b)) = (code.get(ci), code.get(q)) {
            for m in mask.iter_mut().take(b + 1).skip(a) {
                *m = true;
            }
        }
        ci = q + 1;
    }
    mask
}

/// Find the code index of the bracket matching `code[open_ci]`.
fn matching_close(
    code: &[usize],
    toks: &[Token],
    open_ci: usize,
    open: char,
    close: char,
) -> Option<usize> {
    let mut depth = 0i32;
    for (off, &orig) in code.iter().enumerate().skip(open_ci) {
        let t = &toks[orig];
        if t.kind == TokenKind::Punct {
            let c = t.text.chars().next()?;
            if c == open {
                depth += 1;
            } else if c == close {
                depth -= 1;
                if depth == 0 {
                    return Some(off);
                }
            }
        }
    }
    None
}

/// Is this attribute content `test`, `cfg(test)`, or a `cfg(all(test, …))`
/// variant (but never `cfg(not(test))`)?
fn is_test_attr(content: &[&Token]) -> bool {
    let idents: Vec<&str> = content
        .iter()
        .filter(|t| t.kind == TokenKind::Ident)
        .map(|t| t.text.as_str())
        .collect();
    match idents.first() {
        Some(&"test") => content.len() == 1,
        Some(&"cfg") => idents.contains(&"test") && !idents.contains(&"not"),
        _ => false,
    }
}

// ---------------------------------------------------------------------------
// Determinism rules
// ---------------------------------------------------------------------------

/// Track names declared with `HashMap`/`HashSet` types, then flag
/// iteration-order methods on them (and `for … in name` loops).
fn hash_iter_pass(rel: &str, code: &Code<'_>, diags: &mut Vec<Diagnostic>) {
    let names = hash_typed_names(code);
    for j in 0..code.len() {
        // `recv.iter()` and friends.
        if let Some(m) = code.ident(j) {
            if HASH_ITER_METHODS.contains(&m) && code.is_punct(j + 1, '(') {
                if let Some(recv) = receiver_ident(code, j) {
                    if names.contains(recv.as_str()) {
                        let (line, col) = code.pos(j);
                        diags.push(diag(
                            rel,
                            line,
                            col,
                            RuleId::HashIter,
                            format!(
                                "`{m}()` on hash-ordered collection `{recv}` — iteration order is \
                             nondeterministic; use a BTreeMap/sorted keys or waive with a reason"
                            ),
                        ));
                    }
                }
            }
        }
        // `for pat in [&mut] name {` / `for pat in [&mut] self.name {`.
        if code.is_ident(j, "for") {
            if let Some((name, line, col)) = for_loop_hash_target(code, j, &names) {
                diags.push(diag(
                    rel,
                    line,
                    col,
                    RuleId::HashIter,
                    format!(
                        "for-loop over hash-ordered collection `{name}` — iteration order is \
                     nondeterministic; use a BTreeMap/sorted keys or waive with a reason"
                    ),
                ));
            }
        }
    }
}

/// Collect every name whose declaration mentions `HashMap`/`HashSet`:
/// `name: …HashMap<…>…` (fields, params, typed lets) and
/// `let [mut] name = …HashMap::new()…` bindings.
fn hash_typed_names(code: &Code<'_>) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    for j in 0..code.len() {
        // Pattern A: `name : <type…HashMap…>` — stop the type scan at a
        // delimiter outside all brackets.
        if let Some(name) = code.ident(j) {
            if code.is_punct(j + 1, ':')
                && !code.is_punct(j + 2, ':')
                && !code.is_punct(j.wrapping_sub(1), ':')
            {
                let mut angle = 0i32;
                let mut paren = 0i32;
                for k in (j + 2)..(j + 2 + 64).min(code.len()) {
                    if let Some(id) = code.ident(k) {
                        if id == "HashMap" || id == "HashSet" {
                            names.insert(name.to_string());
                            break;
                        }
                    } else if code.is_punct(k, '<') {
                        angle += 1;
                    } else if code.is_punct(k, '>') && !code.is_punct(k.wrapping_sub(1), '-') {
                        angle -= 1;
                        if angle < 0 {
                            break;
                        }
                    } else if code.is_punct(k, '(') {
                        paren += 1;
                    } else if code.is_punct(k, ')') {
                        paren -= 1;
                        if paren < 0 {
                            break;
                        }
                    } else if angle == 0 && paren == 0 {
                        let stop = [',', ';', '=', '{', '}'];
                        if stop.iter().any(|&c| code.is_punct(k, c)) {
                            break;
                        }
                    }
                }
            }
        }
        // Pattern B: `let [mut] name = … HashMap/HashSet … ;`
        if code.is_ident(j, "let") {
            let mut p = j + 1;
            if code.is_ident(p, "mut") {
                p += 1;
            }
            if let Some(name) = code.ident(p) {
                if code.is_punct(p + 1, '=') && !code.is_punct(p + 2, '=') {
                    for k in (p + 2)..(p + 2 + 128).min(code.len()) {
                        if code.is_punct(k, ';') {
                            break;
                        }
                        if let Some(id) = code.ident(k) {
                            if id == "HashMap" || id == "HashSet" {
                                names.insert(name.to_string());
                                break;
                            }
                        }
                    }
                }
            }
        }
    }
    names
}

/// Resolve the receiver of a `.method(` call at code index `j` back to a
/// simple identifier, hopping through `lock()`-style wrappers.
fn receiver_ident(code: &Code<'_>, mut j: usize) -> Option<String> {
    loop {
        if j < 2 || !code.is_punct(j - 1, '.') {
            return None;
        }
        let r = j - 2;
        match code.kind(r) {
            Some(TokenKind::Ident) => return code.ident(r).map(str::to_string),
            Some(TokenKind::Punct) if code.is_punct(r, ')') => {
                // Walk back to the matching `(` and hop through known
                // wrapper calls: `map.lock().iter()` → receiver `map`.
                let mut depth = 0i32;
                let mut k = r;
                loop {
                    if code.is_punct(k, ')') {
                        depth += 1;
                    } else if code.is_punct(k, '(') {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    if k == 0 {
                        return None;
                    }
                    k -= 1;
                }
                match code.ident(k.wrapping_sub(1)) {
                    Some(callee) if RECEIVER_WRAPPERS.contains(&callee) => {
                        j = k - 1;
                    }
                    _ => return None,
                }
            }
            _ => return None,
        }
    }
}

/// For a `for` keyword at code index `j`, return the hash-typed loop
/// target if the loop iterates a tracked name directly.
fn for_loop_hash_target(
    code: &Code<'_>,
    j: usize,
    names: &BTreeSet<String>,
) -> Option<(String, u32, u32)> {
    // Find the `in` keyword (patterns may contain parens/commas).
    let mut k = j + 1;
    let limit = (j + 32).min(code.len());
    while k < limit && !code.is_ident(k, "in") {
        k += 1;
    }
    if !code.is_ident(k, "in") {
        return None;
    }
    let mut p = k + 1;
    while code.is_punct(p, '&') || code.is_ident(p, "mut") {
        p += 1;
    }
    // Allow a `self.` prefix.
    if code.is_ident(p, "self") && code.is_punct(p + 1, '.') {
        p += 2;
    }
    let name = code.ident(p)?;
    // Only a bare name followed by the loop body: method calls on the
    // name (`name.keys()`) are handled by the method pass.
    if code.is_punct(p + 1, '{') && names.contains(name) {
        let (line, col) = code.pos(p);
        return Some((name.to_string(), line, col));
    }
    None
}

/// Flag `Instant::now` and any `SystemTime` use.
fn wall_clock_pass(rel: &str, code: &Code<'_>, diags: &mut Vec<Diagnostic>) {
    for j in 0..code.len() {
        if code.is_ident(j, "Instant") && code.is_path_sep(j + 1) && code.is_ident(j + 3, "now") {
            let (line, col) = code.pos(j);
            diags.push(diag(
                rel,
                line,
                col,
                RuleId::WallClock,
                "`Instant::now()` outside the timing allowlist — wall-clock reads are \
                 nondeterministic; route timing through the sweep runner"
                    .to_string(),
            ));
        }
        if code.is_ident(j, "SystemTime") {
            let (line, col) = code.pos(j);
            diags.push(diag(
                rel,
                line,
                col,
                RuleId::WallClock,
                "`SystemTime` outside the timing allowlist — wall-clock reads are \
                 nondeterministic; route timing through the sweep runner"
                    .to_string(),
            ));
        }
    }
}

/// Flag `std::env` and `thread::current` in simulation paths.
fn env_read_pass(rel: &str, code: &Code<'_>, diags: &mut Vec<Diagnostic>) {
    for j in 0..code.len() {
        if code.is_ident(j, "std") && code.is_path_sep(j + 1) && code.is_ident(j + 3, "env") {
            let (line, col) = code.pos(j + 3);
            diags.push(diag(
                rel,
                line,
                col,
                RuleId::EnvRead,
                "`std::env` in a simulation path — environment reads make runs \
                 host-dependent; plumb configuration through SystemConfig"
                    .to_string(),
            ));
        }
        if code.is_ident(j, "thread") && code.is_path_sep(j + 1) && code.is_ident(j + 3, "current")
        {
            let (line, col) = code.pos(j + 3);
            diags.push(diag(
                rel,
                line,
                col,
                RuleId::EnvRead,
                "`thread::current` in a simulation path — thread identity is \
                 nondeterministic under a work-stealing pool"
                    .to_string(),
            ));
        }
    }
}

// ---------------------------------------------------------------------------
// Panic discipline
// ---------------------------------------------------------------------------

/// `panic!`/`unreachable!`/`assert!` in library code must sit within 3
/// lines of an `// invariant:` comment, or inside a fn documented with
/// `# Panics`.
fn panic_doc_pass(
    rel: &str,
    toks: &[Token],
    code: &Code<'_>,
    comments: &[&Token],
    diags: &mut Vec<Diagnostic>,
) {
    // Map each fn's body-opening brace (code index) to whether its doc
    // comment carries a `# Panics` section.
    let mut fn_body_doc: Vec<(usize, bool)> = Vec::new();
    for j in 0..code.len() {
        if !code.is_ident(j, "fn") {
            continue;
        }
        let has_doc = fn_docs_mention_panics(toks, code, j);
        // The signature ends at the first `{` (body) or `;` (trait decl).
        for k in (j + 1)..(j + 96).min(code.len()) {
            if code.is_punct(k, '{') {
                fn_body_doc.push((k, has_doc));
                break;
            }
            if code.is_punct(k, ';') {
                break;
            }
        }
    }

    let blocks = comment_blocks(comments);
    let mut depth = 0i32;
    let mut frames: Vec<(i32, bool)> = Vec::new(); // (depth after open, has # Panics)
    let mut body_iter = fn_body_doc.iter().peekable();
    for j in 0..code.len() {
        if code.is_punct(j, '{') {
            depth += 1;
            if let Some(&&(open_ix, has_doc)) = body_iter.peek() {
                if open_ix == j {
                    frames.push((depth, has_doc));
                    body_iter.next();
                }
            }
        } else if code.is_punct(j, '}') {
            if matches!(frames.last(), Some(&(d, _)) if d == depth) {
                frames.pop();
            }
            depth -= 1;
        }
        let Some(mac) = code.ident(j) else { continue };
        if !PANIC_MACROS.contains(&mac) || !code.is_punct(j + 1, '!') {
            continue;
        }
        if frames.iter().any(|&(_, has_doc)| has_doc) {
            continue;
        }
        let (line, col) = code.pos(j);
        // A comment block counts if any of its lines says `invariant:`
        // and its last line is within 3 lines above the panic site.
        let documented = blocks
            .iter()
            .any(|&(start, end, inv)| inv && line >= start && line <= end + 3);
        if !documented {
            diags.push(diag(
                rel,
                line,
                col,
                RuleId::PanicDoc,
                format!(
                    "`{mac}!` in library code without an `// invariant:` comment or a \
                 `# Panics` doc section"
                ),
            ));
        }
    }
}

/// Coalesce comments on consecutive lines into blocks of
/// `(first_line, last_line, mentions_invariant)`.
fn comment_blocks(comments: &[&Token]) -> Vec<(u32, u32, bool)> {
    let mut blocks: Vec<(u32, u32, bool)> = Vec::new();
    for c in comments {
        let end = c.line + c.text.matches('\n').count() as u32;
        let inv = c.text.contains("invariant:");
        match blocks.last_mut() {
            Some(b) if c.line <= b.1 + 1 => {
                b.1 = end.max(b.1);
                b.2 |= inv;
            }
            _ => blocks.push((c.line, end, inv)),
        }
    }
    blocks
}

/// Walk back from the `fn` keyword through attributes and qualifiers to
/// its doc comments; true if any mention `# Panics`.
fn fn_docs_mention_panics(toks: &[Token], code: &Code<'_>, fn_code_ix: usize) -> bool {
    let Some(&orig) = code.ix.get(fn_code_ix) else {
        return false;
    };
    let mut i = orig;
    // Walking backwards: `]`/`)` open an attribute or visibility group,
    // `[`/`(` close it. Anything inside a group is skipped wholesale.
    let mut bracket = 0i32;
    let mut paren = 0i32;
    while i > 0 {
        i -= 1;
        let t = &toks[i];
        match t.kind {
            TokenKind::DocComment if t.text.contains("# Panics") => return true,
            TokenKind::DocComment | TokenKind::LineComment | TokenKind::BlockComment => {}
            TokenKind::Punct => {
                match t.text.chars().next() {
                    Some(']') => bracket += 1,
                    Some('[') => bracket -= 1,
                    Some(')') => paren += 1,
                    Some('(') => paren -= 1,
                    // A `;`, `{`, or `}` outside any group ends the
                    // item above this fn.
                    Some(';') | Some('{') | Some('}') if bracket == 0 && paren == 0 => {
                        return false;
                    }
                    _ => {}
                }
            }
            TokenKind::Ident if bracket == 0 && paren == 0 => {
                let q = t.text.as_str();
                if !matches!(
                    q,
                    "pub"
                        | "crate"
                        | "in"
                        | "unsafe"
                        | "const"
                        | "async"
                        | "extern"
                        | "super"
                        | "self"
                        | "default"
                ) {
                    return false;
                }
            }
            _ => {} // anything inside an attribute/visibility group
        }
    }
    false
}

/// `.unwrap()` / `.expect("…")` in library code. `unwrap` must be
/// zero-arg and `expect`'s first argument must be a string literal —
/// this keeps a crate's own fallible `fn expect(…) -> Result<…>`
/// parser methods out of scope.
fn unwrap_pass(rel: &str, code: &Code<'_>, diags: &mut Vec<Diagnostic>) {
    for j in 0..code.len() {
        let Some(m) = code.ident(j) else { continue };
        if j < 1 || !code.is_punct(j - 1, '.') || !code.is_punct(j + 1, '(') {
            continue;
        }
        let flagged = match m {
            "unwrap" => code.is_punct(j + 2, ')'),
            "expect" => code.kind(j + 2) == Some(TokenKind::Str),
            _ => false,
        };
        if flagged {
            let (line, col) = code.pos(j);
            diags.push(diag(
                rel,
                line,
                col,
                RuleId::Unwrap,
                format!("`.{m}()` in library code — return a typed error instead"),
            ));
        }
    }
}

/// Wildcard `_ =>` arms in `match`es whose arms pattern-match one of the
/// workspace's typed error enums.
fn error_match_pass(rel: &str, code: &Code<'_>, diags: &mut Vec<Diagnostic>) {
    for j in 0..code.len() {
        if !code.is_ident(j, "match") {
            continue;
        }
        // The match body is the first `{` outside parens after the
        // scrutinee expression.
        let mut paren = 0i32;
        let mut open = None;
        for k in (j + 1)..(j + 128).min(code.len()) {
            if code.is_punct(k, '(') {
                paren += 1;
            } else if code.is_punct(k, ')') {
                paren -= 1;
            } else if code.is_punct(k, '{') && paren == 0 {
                open = Some(k);
                break;
            } else if code.is_punct(k, ';') && paren == 0 {
                break;
            }
        }
        let Some(open) = open else { continue };
        let mut brace = 1i32;
        let mut k = open + 1;
        let mut enum_arm = false;
        let mut wildcard: Option<usize> = None;
        while k < code.len() && brace > 0 {
            if code.is_punct(k, '{') {
                brace += 1;
            } else if code.is_punct(k, '}') {
                brace -= 1;
            } else if brace == 1 {
                if let Some(id) = code.ident(k) {
                    if ERROR_ENUMS.contains(&id) {
                        enum_arm = true;
                    }
                    if id == "_" && code.is_punct(k + 1, '=') && code.is_punct(k + 2, '>') {
                        wildcard.get_or_insert(k);
                    }
                }
            }
            k += 1;
        }
        if enum_arm {
            if let Some(w) = wildcard {
                let (line, col) = code.pos(w);
                diags.push(diag(
                    rel,
                    line,
                    col,
                    RuleId::ErrorMatch,
                    "wildcard `_ =>` arm in a match over a typed error enum — keep \
                     error matches exhaustive so new variants are handled"
                        .to_string(),
                ));
            }
        }
    }
}

/// Raw writes addressed at a sweep journal must go through the
/// checksummed `Journal::append` helper: a bare write skips the FNV
/// line checksum and single-write line atomicity that make torn tails
/// detectable (and concurrent appends safe) on reopen. Three shapes
/// are flagged: `.write_all(…)`/`.write(…)` on a journal-named
/// receiver, `write!`/`writeln!` into a journal-named destination, and
/// `write`-style calls handed a `journal…` path literal.
fn journal_append_pass(rel: &str, code: &Code<'_>, diags: &mut Vec<Diagnostic>) {
    for j in 0..code.len() {
        let Some(id) = code.ident(j) else { continue };
        // `journal_file.write_all(…)` / `journal.write(…)`.
        if (id == "write_all" || id == "write")
            && j >= 1
            && code.is_punct(j - 1, '.')
            && code.is_punct(j + 1, '(')
        {
            if let Some(recv) = receiver_ident(code, j) {
                if recv.to_ascii_lowercase().contains("journal") {
                    let (line, col) = code.pos(j);
                    diags.push(diag(
                        rel,
                        line,
                        col,
                        RuleId::JournalAppend,
                        format!(
                            "raw `.{id}()` on journal handle `{recv}` — journal records must go \
                             through the checksummed Journal::append helper"
                        ),
                    ));
                }
            }
        }
        // `write!(journal_file, …)` / `writeln!(journal_file, …)`.
        if (id == "write" || id == "writeln")
            && code.is_punct(j + 1, '!')
            && code.is_punct(j + 2, '(')
        {
            if let Some(dest) = code.ident(j + 3) {
                if dest.to_ascii_lowercase().contains("journal") && code.is_punct(j + 4, ',') {
                    let (line, col) = code.pos(j);
                    diags.push(diag(
                        rel,
                        line,
                        col,
                        RuleId::JournalAppend,
                        format!(
                            "`{id}!` into journal destination `{dest}` — journal records must go \
                             through the checksummed Journal::append helper"
                        ),
                    ));
                }
            }
        }
        // `fs::write("…journal.jsonl", …)`-style free calls carrying a
        // journal path literal.
        if id == "write"
            && code.is_punct(j + 1, '(')
            && !code.is_punct(j.wrapping_sub(1), '.')
            && !code.is_ident(j.wrapping_sub(1), "fn")
        {
            let mut depth = 0i32;
            for k in (j + 1)..(j + 64).min(code.len()) {
                if code.is_punct(k, '(') {
                    depth += 1;
                } else if code.is_punct(k, ')') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                } else if code.kind(k) == Some(TokenKind::Str)
                    && code.tok(k).is_some_and(|t| t.text.contains("journal"))
                {
                    let (line, col) = code.pos(j);
                    diags.push(diag(
                        rel,
                        line,
                        col,
                        RuleId::JournalAppend,
                        "`write` call given a journal path — journal records must go through \
                         the checksummed Journal::append helper"
                            .to_string(),
                    ));
                    break;
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Structural rules
// ---------------------------------------------------------------------------

/// `experiments/table*.rs` / `fig*.rs` must route cells through
/// `SweepRunner` rather than calling the engine directly.
fn sweep_route_pass(rel: &str, code: &Code<'_>, diags: &mut Vec<Diagnostic>) {
    for j in 0..code.len() {
        let Some(id) = code.ident(j) else { continue };
        if (id == "run_config" || id == "run_config_traced")
            && code.is_punct(j + 1, '(')
            && !code.is_ident(j.wrapping_sub(1), "fn")
        {
            let (line, col) = code.pos(j);
            diags.push(diag(
                rel,
                line,
                col,
                RuleId::SweepRoute,
                format!(
                    "direct `{id}(…)` call in a runner-routed experiment file — build Jobs and \
                 go through SweepRunner::run_batch"
                ),
            ));
        }
        if id == "Engine" && code.is_path_sep(j + 1) && code.is_ident(j + 3, "new") {
            let (line, col) = code.pos(j);
            diags.push(diag(
                rel,
                line,
                col,
                RuleId::SweepRoute,
                "direct `Engine::new` in a runner-routed experiment file — build Jobs and \
                 go through SweepRunner::run_batch"
                    .to_string(),
            ));
        }
    }
}

/// Record `trait MemorySystem` default-body status and every
/// `impl MemorySystem for …` block.
fn collect_structural(rel: &str, code: &Code<'_>) -> StructuralFacts {
    let mut facts = StructuralFacts::default();
    for j in 0..code.len() {
        if code.is_ident(j, "trait") && code.is_ident(j + 1, "MemorySystem") {
            facts.trait_attach_default = trait_attach_default(code, j);
        }
        if code.is_ident(j, "impl") {
            // `impl [<…>] MemorySystem for Type { … }`
            let mut saw_name = false;
            let mut saw_for = false;
            let mut open = None;
            for k in (j + 1)..(j + 24).min(code.len()) {
                if code.is_ident(k, "MemorySystem") && !saw_for {
                    saw_name = true;
                } else if code.is_ident(k, "for") {
                    saw_for = true;
                } else if code.is_punct(k, '{') {
                    open = Some(k);
                    break;
                } else if code.is_punct(k, ';') {
                    break;
                }
            }
            let (Some(open), true, true) = (open, saw_name, saw_for) else {
                continue;
            };
            let mut brace = 1i32;
            let mut k = open + 1;
            let mut defines = false;
            while k < code.len() && brace > 0 {
                if code.is_punct(k, '{') {
                    brace += 1;
                } else if code.is_punct(k, '}') {
                    brace -= 1;
                } else if code.is_ident(k, "fn") && code.is_ident(k + 1, "attach_trace") {
                    defines = true;
                }
                k += 1;
            }
            let (line, col) = code.pos(j);
            facts.impls.push(ImplFact {
                file: rel.to_string(),
                line,
                col,
                defines_attach: defines,
            });
        }
    }
    facts
}

/// For a `trait MemorySystem` at code index `j`: does its
/// `fn attach_trace` declaration carry a default body?
fn trait_attach_default(code: &Code<'_>, j: usize) -> Option<bool> {
    // Find the trait body.
    let mut open = None;
    for k in (j + 1)..(j + 64).min(code.len()) {
        if code.is_punct(k, '{') {
            open = Some(k);
            break;
        }
    }
    let open = open?;
    let mut brace = 1i32;
    let mut k = open + 1;
    while k < code.len() && brace > 0 {
        if code.is_punct(k, '{') {
            brace += 1;
        } else if code.is_punct(k, '}') {
            brace -= 1;
        } else if brace == 1 && code.is_ident(k, "fn") && code.is_ident(k + 1, "attach_trace") {
            // Default body iff a `{` comes before the next `;`.
            for m in (k + 2)..(k + 96).min(code.len()) {
                if code.is_punct(m, '{') {
                    return Some(true);
                }
                if code.is_punct(m, ';') {
                    return Some(false);
                }
            }
            return Some(false);
        }
        k += 1;
    }
    None
}

// ---------------------------------------------------------------------------
// Waivers
// ---------------------------------------------------------------------------

/// Parse waivers out of the comments, suppress matching diagnostics on
/// the waiver's line or the line below it, and report malformed or
/// unused waivers.
fn apply_waivers(rel: &str, comments: &[&Token], diags: &mut Vec<Diagnostic>) {
    // Doc comments never carry waivers: prose *describing* the waiver
    // syntax (like the analyzer's own docs) must not act as one.
    let mut waivers: Vec<Waiver> = comments
        .iter()
        .filter(|c| c.kind != TokenKind::DocComment)
        .filter_map(|c| parse_waiver(c))
        .collect();
    for d in diags.iter_mut() {
        for w in waivers.iter_mut() {
            let lines_match = w.line == d.line || w.line + 1 == d.line;
            if w.has_reason && w.rule == Some(d.rule) && lines_match {
                d.waiver = WaiverStatus::Waived;
                w.used = true;
                break;
            }
        }
    }
    for w in &waivers {
        if !w.has_reason {
            diags.push(diag(
                rel,
                w.line,
                w.col,
                RuleId::WaiverMissingReason,
                format!(
                    "waiver `lint: allow({})` has no reason — append `— <why this is safe>`",
                    w.raw_id
                ),
            ));
        } else if w.rule.is_none() {
            diags.push(diag(
                rel,
                w.line,
                w.col,
                RuleId::UnusedWaiver,
                format!("waiver names unknown rule `{}`", w.raw_id),
            ));
        } else if !w.used {
            diags.push(diag(
                rel,
                w.line,
                w.col,
                RuleId::UnusedWaiver,
                format!(
                    "waiver `lint: allow({})` matched no diagnostic on this or the next line",
                    w.raw_id
                ),
            ));
        }
    }
}

/// Parse one comment as a waiver: `lint: allow(<id>) — <reason>`.
fn parse_waiver(c: &Token) -> Option<Waiver> {
    let text = &c.text;
    let lint_at = text.find("lint:")?;
    let rest = &text[lint_at + 5..];
    let allow_at = rest.find("allow(")?;
    let after = &rest[allow_at + 6..];
    let close = after.find(')')?;
    let raw_id = after[..close].trim().to_string();
    let reason = after[close + 1..]
        .trim_start_matches(|ch: char| ch.is_whitespace() || matches!(ch, '—' | '–' | '-' | ':'));
    Some(Waiver {
        line: c.line,
        col: c.col,
        rule: RuleId::from_waiver_str(&raw_id),
        raw_id,
        has_reason: !reason.trim().is_empty(),
        used: false,
    })
}

fn diag(rel: &str, line: u32, col: u32, rule: RuleId, message: String) -> Diagnostic {
    Diagnostic {
        file: rel.to_string(),
        line,
        col,
        rule,
        message,
        waiver: WaiverStatus::None,
    }
}
