//! The dataflow tier: unit-consistency, nondeterminism taint, and
//! journal/lease protocol conformance over the parsed AST and per-
//! function CFGs.
//!
//! These passes run only under `--tier=dataflow`. They are built to be
//! conservative in the *non-flagging* direction: anything the parser or
//! the inference cannot understand has no unit domain and carries no
//! taint, so an imprecise analysis produces silence, never noise. The
//! acceptance bar is zero findings on the live workspace with every bad
//! fixture still caught.

use std::collections::{BTreeMap, BTreeSet};

use crate::ast::{self, Arena, Block, ExprId, ExprKind, FileAst, Stmt, StmtId};
use crate::cfg::{self, Event};
use crate::dataflow;
use crate::diag::{Diagnostic, RuleId, WaiverStatus};
use crate::lexer::Token;
use crate::FileClass;

/// Run every tier-2 pass that applies to this file. `toks` is the
/// comment-free, test-mask-free token view (the same stream the token
/// tier uses).
pub fn run(rel: &str, class: &FileClass, toks: &[&Token], diags: &mut Vec<Diagnostic>) {
    if class.is_test {
        return;
    }
    let ast = ast::parse(toks);
    if class.unit_checked {
        unit_pass(rel, &ast, diags);
    }
    if class.is_lib {
        taint_pass(rel, &ast, diags);
    }
    if class.runner_protocol {
        claim_readback_pass(rel, &ast, diags);
        cancel_poll_pass(rel, &ast, diags);
    }
}

fn diag(rel: &str, line: u32, col: u32, rule: RuleId, message: String) -> Diagnostic {
    Diagnostic {
        file: rel.to_string(),
        line,
        col,
        rule,
        message,
        waiver: WaiverStatus::None,
    }
}

// ---------------------------------------------------------------------------
// Unit-consistency
// ---------------------------------------------------------------------------

/// A quantity's unit, as far as names and declarations reveal it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Domain {
    /// Simulated picoseconds (the `Picos` newtype, `_ps` names).
    Ps,
    /// Nanoseconds.
    Ns,
    /// Microseconds.
    Us,
    /// Milliseconds.
    Ms,
    /// Seconds.
    Sec,
    /// Processor cycles.
    Cycles,
    /// Bytes.
    Bytes,
    /// Memory references.
    Refs,
}

impl Domain {
    fn name(self) -> &'static str {
        match self {
            Domain::Ps => "picoseconds",
            Domain::Ns => "nanoseconds",
            Domain::Us => "microseconds",
            Domain::Ms => "milliseconds",
            Domain::Sec => "seconds",
            Domain::Cycles => "cycles",
            Domain::Bytes => "bytes",
            Domain::Refs => "references",
        }
    }
}

/// Cross-file vocabulary: field/variable names whose unit the workspace
/// fixes by convention (`BankTiming`, `SystemConfig`, the engine's
/// clock). Per-file declarations override these.
const UNIT_VOCAB: [(&str, Domain); 8] = [
    ("quantum_time", Domain::Ps),
    ("t_rp", Domain::Ps),
    ("t_rcd", Domain::Ps),
    ("t_cas", Domain::Ps),
    ("busy_until", Domain::Ps),
    ("busy_time", Domain::Ps),
    ("quantum_refs", Domain::Refs),
    ("unit_bytes", Domain::Bytes),
];

/// Methods whose operands must share a unit (order/difference
/// preserving); the result keeps the receiver's unit.
const SAME_UNIT_METHODS: [&str; 9] = [
    "max",
    "min",
    "saturating_add",
    "saturating_sub",
    "wrapping_add",
    "wrapping_sub",
    "checked_add",
    "checked_sub",
    "abs_diff",
];

/// Methods transparent to unit inference: the result keeps the
/// receiver's unit.
const IDENTITY_METHODS: [&str; 8] = [
    "clone",
    "copied",
    "cloned",
    "to_owned",
    "unwrap_or",
    "unwrap_or_default",
    "unwrap",
    "expect",
];

/// Unit-suffix inference from a snake_case name: the name's trailing
/// segments name the unit (`t_ns`, `budget_ms`, `slice_ps`, bare `ps`).
/// Rate names (`bytes_per_ms`) carry a *ratio* of units, not a unit, and
/// are never inferred.
fn suffix_domain(name: &str) -> Option<Domain> {
    if name.split('_').any(|seg| seg == "per") {
        return None;
    }
    let last = name.rsplit('_').next().unwrap_or(name);
    match last {
        "ps" | "picos" => Some(Domain::Ps),
        "ns" | "nanos" => Some(Domain::Ns),
        "us" | "micros" => Some(Domain::Us),
        "ms" | "millis" => Some(Domain::Ms),
        "sec" | "secs" | "seconds" => Some(Domain::Sec),
        "cycles" => Some(Domain::Cycles),
        "bytes" => Some(Domain::Bytes),
        "refs" => Some(Domain::Refs),
        _ => None,
    }
}

/// Unit from a declared type string (`Picos`, `Option < Picos >`).
fn type_domain(ty: &str) -> Option<Domain> {
    if ty.split_whitespace().any(|t| t == "Picos") {
        Some(Domain::Ps)
    } else {
        None
    }
}

/// Is a declared type a raw machine integer (possibly behind `Option`)?
fn is_raw_int(ty: &str) -> bool {
    let parts: Vec<&str> = ty
        .split(|c: char| !c.is_ascii_alphanumeric())
        .filter(|s| !s.is_empty())
        .collect();
    let ints = ["u64", "u32", "u16", "usize", "i64", "i32", "isize"];
    match parts.as_slice() {
        [one] => ints.contains(one),
        ["Option", inner] => ints.contains(inner),
        _ => false,
    }
}

/// Name segments that mark a quantity as simulated/wall time for the
/// declaration check (`quantum_time`, `slice_ps`, …). Rates
/// (`bytes_per_ms`) are ratios, not times.
fn time_named(name: &str) -> bool {
    let segs: Vec<&str> = name.split('_').collect();
    !segs.contains(&"per")
        && segs
            .iter()
            .any(|seg| matches!(*seg, "ps" | "ns" | "us" | "ms" | "time" | "picos" | "nanos"))
}

struct UnitCtx<'a> {
    rel: &'a str,
    arena: &'a Arena,
    /// Field name → unit, from this file's struct declarations
    /// (conflicting declarations drop the name).
    fields: BTreeMap<String, Domain>,
    /// Function name → unit of its return type, when declared `Picos`.
    fn_ret: BTreeMap<String, Domain>,
    /// Parameter name → unit for the function being analyzed.
    params: BTreeMap<String, Domain>,
    /// Emit diagnostics (final pass) or stay silent (fixpoint rounds).
    emit: bool,
    /// Sites already reported, to dedupe across blocks.
    seen: BTreeSet<(u32, u32)>,
    out: Vec<Diagnostic>,
}

type UnitEnv = BTreeMap<String, Domain>;

/// The unit-consistency pass: declaration hygiene plus flow-sensitive
/// mixed-unit arithmetic detection.
fn unit_pass(rel: &str, ast: &FileAst, diags: &mut Vec<Diagnostic>) {
    // Declaration check: a field named like a time quantity must not be
    // a raw integer — wrap it in the `Picos` newtype.
    for f in &ast.fields {
        if time_named(&f.name) && is_raw_int(&f.ty) {
            diags.push(diag(
                rel,
                f.line,
                f.col,
                RuleId::UnitMix,
                format!(
                    "field `{}: {}` declares a time quantity as a raw integer — wrap it in \
                     the `Picos` newtype so the unit survives arithmetic",
                    f.name,
                    f.ty.replace(' ', "")
                ),
            ));
        }
    }

    // Per-file field and return-type vocabulary.
    let mut fields: BTreeMap<String, Domain> = BTreeMap::new();
    let mut dropped: BTreeSet<String> = BTreeSet::new();
    for f in &ast.fields {
        let d = type_domain(&f.ty).or_else(|| suffix_domain(&f.name));
        if let Some(d) = d {
            match fields.get(&f.name) {
                Some(&prev) if prev != d => {
                    dropped.insert(f.name.clone());
                }
                _ => {
                    fields.insert(f.name.clone(), d);
                }
            }
        }
    }
    for name in dropped {
        fields.remove(&name);
    }
    let mut fn_ret = BTreeMap::new();
    for f in &ast.fns {
        if let Some(d) = type_domain(&f.ret_ty) {
            fn_ret.insert(f.name.clone(), d);
        }
    }

    for f in &ast.fns {
        let mut params = BTreeMap::new();
        for p in &f.params {
            if let Some(d) = type_domain(&p.ty).or_else(|| suffix_domain(&p.name)) {
                params.insert(p.name.clone(), d);
            }
        }
        let mut ctx = UnitCtx {
            rel,
            arena: &ast.arena,
            fields: fields.clone(),
            fn_ret: fn_ret.clone(),
            params,
            emit: false,
            seen: BTreeSet::new(),
            out: Vec::new(),
        };
        let graph = cfg::build(&ast.arena, &f.body);
        let entries = dataflow::forward(
            &graph,
            UnitEnv::new(),
            unit_join,
            |ev, env: &mut UnitEnv| ctx.transfer(ev, env),
        );
        ctx.emit = true;
        for (bix, blk) in graph.blocks.iter().enumerate() {
            let mut env = entries.get(bix).cloned().unwrap_or_default();
            for ev in &blk.events {
                ctx.transfer(ev, &mut env);
            }
        }
        diags.append(&mut ctx.out);
    }
}

/// Join unit environments: a variable keeps its unit only where every
/// incoming path agrees.
fn unit_join(acc: &mut UnitEnv, inc: &UnitEnv) {
    acc.retain(|k, v| inc.get(k) == Some(v));
}

impl<'a> UnitCtx<'a> {
    fn transfer(&mut self, ev: &Event, env: &mut UnitEnv) {
        match ev {
            Event::Stmt(sid) => self.stmt(*sid, env),
            Event::Cond(eid) => {
                let _ = self.infer(*eid, env);
            }
            Event::ArmBind { stmt, arm } => match self.arena.stmt(*stmt) {
                Stmt::Match { scrutinee, arms } => {
                    let d = self.infer(*scrutinee, env);
                    if let Some((names, _)) = arms.get(*arm) {
                        bind_names(env, names, d);
                    }
                }
                Stmt::For { names, .. } => {
                    // Iterating a collection loses element units; clear.
                    bind_names(env, names, None);
                }
                _ => {}
            },
        }
    }

    fn stmt(&mut self, sid: StmtId, env: &mut UnitEnv) {
        match self.arena.stmt(sid) {
            Stmt::Let {
                names, ty, init, ..
            } => {
                let declared = ty.as_deref().and_then(type_domain);
                let inferred = init.map(|e| self.infer(e, env)).unwrap_or(None);
                let d = declared.or(inferred);
                bind_names(env, names, d);
            }
            Stmt::Expr(e) => {
                let _ = self.infer(*e, env);
            }
            Stmt::Return(Some(e)) => {
                let _ = self.infer(*e, env);
            }
            _ => {}
        }
    }

    /// Infer the unit of an expression, checking same-unit operations
    /// along the way. `None` means unknown — compatible with anything.
    fn infer(&mut self, eid: ExprId, env: &mut UnitEnv) -> Option<Domain> {
        let e = self.arena.expr(eid);
        match &e.kind {
            ExprKind::Lit | ExprKind::MacroCall { .. } | ExprKind::Opaque => None,
            ExprKind::Path(segs) => match segs.as_slice() {
                [name] => env
                    .get(name)
                    .copied()
                    .or_else(|| self.params.get(name).copied())
                    .or_else(|| vocab_domain(name))
                    .or_else(|| suffix_domain(name)),
                [.., last] => suffix_domain(&last.to_ascii_lowercase()),
                [] => None,
            },
            ExprKind::Field { base, name } => {
                let base_d = self.infer(*base, env);
                if name == "0" {
                    // Newtype projection (`picos.0`) keeps the unit.
                    return base_d;
                }
                self.fields
                    .get(name)
                    .copied()
                    .or_else(|| vocab_domain(name))
                    .or_else(|| suffix_domain(name))
            }
            ExprKind::Cast { expr, .. } => self.infer(*expr, env),
            ExprKind::Unary { expr } => self.infer(*expr, env),
            ExprKind::Binary { op, lhs, rhs } => {
                let (le, re) = (*lhs, *rhs);
                let l = self.infer(le, env);
                let r = self.infer(re, env);
                match op.as_str() {
                    "+" | "-" | "%" | "==" | "!=" | "<" | ">" | "<=" | ">=" => {
                        self.check_pair(e.line, e.col, op, l, r);
                        if matches!(op.as_str(), "+" | "-" | "%") {
                            l.or(r)
                        } else {
                            None // comparisons yield bool
                        }
                    }
                    // Multiplication/division change the unit.
                    _ => None,
                }
            }
            ExprKind::Assign { op, target, value } => {
                let (te, ve) = (*target, *value);
                let t = self.lvalue_domain(te, env);
                let v = self.infer(ve, env);
                if matches!(op.as_str(), "=" | "+=" | "-=" | "%=") && op != "=" {
                    self.check_pair(e.line, e.col, op, t, v);
                }
                if op == "=" {
                    self.check_pair(e.line, e.col, op, t, v);
                    if let ExprKind::Path(segs) = &self.arena.expr(te).kind {
                        if let [name] = segs.as_slice() {
                            match v {
                                Some(d) => {
                                    env.insert(name.clone(), d);
                                }
                                None => {
                                    env.remove(name);
                                }
                            }
                        }
                    }
                }
                None
            }
            ExprKind::MethodCall { base, name, args } => {
                let (be, nm) = (*base, name.clone());
                let argv = args.clone();
                let b = self.infer(be, env);
                let mut arg_ds = Vec::new();
                for &a in &argv {
                    arg_ds.push(self.infer(a, env));
                }
                if SAME_UNIT_METHODS.contains(&nm.as_str()) {
                    if let Some(&a0) = arg_ds.first() {
                        self.check_pair(e.line, e.col, &nm, b, a0);
                        return b.or(a0);
                    }
                    return b;
                }
                if IDENTITY_METHODS.contains(&nm.as_str()) {
                    return b;
                }
                // Conversion methods: `as_nanos_f64` → nanoseconds,
                // `cycles_ceil` → cycles, `wall_ms`-style suffixes.
                method_result_domain(&nm)
            }
            ExprKind::Call { callee, args } => {
                let (ce, argv) = (*callee, args.clone());
                let mut arg_ds = Vec::new();
                for &a in &argv {
                    arg_ds.push(self.infer(a, env));
                }
                if let ExprKind::Path(segs) = &self.arena.expr(ce).kind {
                    let segs = segs.clone();
                    if let Some(last) = segs.last() {
                        // `Picos(raw)` constructor: the argument must be
                        // picoseconds (or unknown), and the result is.
                        if last == "Picos" {
                            if let Some(&a0) = arg_ds.first() {
                                self.check_expected(e.line, e.col, "Picos(..)", Domain::Ps, a0);
                            }
                            return Some(Domain::Ps);
                        }
                        // `Picos::from_nanos(x)` and friends: the
                        // argument's unit is named by the constructor.
                        if segs.len() >= 2 && segs[segs.len() - 2] == "Picos" {
                            let expected = match last.as_str() {
                                "from_nanos" => Some(Domain::Ns),
                                "from_micros" => Some(Domain::Us),
                                "from_millis" => Some(Domain::Ms),
                                _ => None,
                            };
                            if let (Some(exp), Some(&a0)) = (expected, arg_ds.first()) {
                                self.check_expected(e.line, e.col, last, exp, a0);
                                return Some(Domain::Ps);
                            }
                            if last == "from_nanos"
                                || last == "from_micros"
                                || last == "from_millis"
                            {
                                return Some(Domain::Ps);
                            }
                        }
                        if let Some(&d) = self.fn_ret.get(last) {
                            return Some(d);
                        }
                        return method_result_domain(last);
                    }
                }
                None
            }
            ExprKind::StructLit { path, fields } => {
                let fs = fields.clone();
                for (fname, fval) in &fs {
                    let v = self.infer(*fval, env);
                    let declared = self
                        .fields
                        .get(fname)
                        .copied()
                        .or_else(|| vocab_domain(fname));
                    if let Some(d) = declared {
                        let fe = self.arena.expr(*fval);
                        self.check_expected(fe.line, fe.col, &format!("{path}.{fname}"), d, v);
                    }
                }
                None
            }
            ExprKind::BlockExpr { block } => {
                let blk = block.clone();
                self.block_tail(&blk, env)
            }
            ExprKind::Closure { body } => {
                let b = *body;
                let _ = self.infer(b, env);
                None
            }
            ExprKind::Tuple { elems } => {
                let es = elems.clone();
                for &el in &es {
                    let _ = self.infer(el, env);
                }
                None
            }
            ExprKind::Index { base, index } => {
                let (b, ix) = (*base, *index);
                let _ = self.infer(ix, env);
                self.infer(b, env)
            }
        }
    }

    /// Walk a block in expression position: side-effect every statement
    /// and return the tail expression's unit (joined across branches).
    fn block_tail(&mut self, blk: &Block, env: &mut UnitEnv) -> Option<Domain> {
        let mut tail = None;
        for (ix, &sid) in blk.stmts.iter().enumerate() {
            let last = ix + 1 == blk.stmts.len();
            match self.arena.stmt(sid) {
                Stmt::Expr(e) if last => {
                    tail = self.infer(*e, env);
                }
                Stmt::If {
                    cond,
                    then_blk,
                    els,
                } if last => {
                    let (c, tb, eb) = (*cond, then_blk.clone(), els.clone());
                    let _ = self.infer(c, env);
                    let mut then_env = env.clone();
                    let a = self.block_tail(&tb, &mut then_env);
                    let b = match eb {
                        Some(eb) => {
                            let mut else_env = env.clone();
                            self.block_tail(&eb, &mut else_env)
                        }
                        None => None,
                    };
                    tail = if a == b { a } else { None };
                }
                Stmt::Match { scrutinee, arms } if last => {
                    let (sc, arms) = (*scrutinee, arms.clone());
                    let d = self.infer(sc, env);
                    let mut agreed: Option<Option<Domain>> = None;
                    for (names, body) in &arms {
                        let mut arm_env = env.clone();
                        bind_names(&mut arm_env, names, d);
                        let t = self.block_tail(body, &mut arm_env);
                        agreed = match agreed {
                            None => Some(t),
                            Some(prev) if prev == t => Some(prev),
                            Some(_) => Some(None),
                        };
                    }
                    tail = agreed.flatten();
                }
                _ => {
                    self.stmt(sid, env);
                    tail = None;
                }
            }
        }
        tail
    }

    /// The unit of an assignment target, without treating it as a read.
    fn lvalue_domain(&mut self, eid: ExprId, env: &mut UnitEnv) -> Option<Domain> {
        match &self.arena.expr(eid).kind {
            ExprKind::Path(segs) => match segs.as_slice() {
                [name] => env
                    .get(name)
                    .copied()
                    .or_else(|| self.params.get(name).copied())
                    .or_else(|| suffix_domain(name)),
                _ => None,
            },
            _ => self.infer(eid, env),
        }
    }

    /// Two operands of a same-unit operation must agree.
    fn check_pair(&mut self, line: u32, col: u32, op: &str, l: Option<Domain>, r: Option<Domain>) {
        if let (Some(a), Some(b)) = (l, r) {
            if a != b {
                self.report(
                    line,
                    col,
                    format!(
                        "`{op}` mixes {} with {} — convert one side explicitly (units do \
                         not survive raw integer arithmetic)",
                        a.name(),
                        b.name()
                    ),
                );
            }
        }
    }

    /// An operand with a fixed expected unit (constructor arguments,
    /// struct fields) must match it.
    fn check_expected(
        &mut self,
        line: u32,
        col: u32,
        what: &str,
        expected: Domain,
        got: Option<Domain>,
    ) {
        if let Some(g) = got {
            if g != expected {
                self.report(
                    line,
                    col,
                    format!(
                        "`{what}` expects {} but the value is {} — convert it explicitly",
                        expected.name(),
                        g.name()
                    ),
                );
            }
        }
    }

    fn report(&mut self, line: u32, col: u32, message: String) {
        if !self.emit || !self.seen.insert((line, col)) {
            return;
        }
        self.out
            .push(diag(self.rel, line, col, RuleId::UnitMix, message));
    }
}

/// The unit a method/function's *result* carries, inferred from its
/// name (`as_nanos_f64` → nanoseconds, `cycles_ceil` → cycles,
/// `wall_ms` → milliseconds). The *last* unit segment wins, so
/// conversion names like `cycles_to_secs` yield the target unit.
/// Constructor-style `from_*` names are not inferred this way: their
/// suffix names the *argument's* unit.
fn method_result_domain(name: &str) -> Option<Domain> {
    if name.starts_with("from_") {
        return None;
    }
    name.split('_').rev().find_map(|seg| match seg {
        "ps" | "picos" => Some(Domain::Ps),
        "ns" | "nanos" => Some(Domain::Ns),
        "us" | "micros" => Some(Domain::Us),
        "ms" | "millis" => Some(Domain::Ms),
        "sec" | "secs" | "seconds" => Some(Domain::Sec),
        "cycles" => Some(Domain::Cycles),
        _ => None,
    })
}

fn vocab_domain(name: &str) -> Option<Domain> {
    UNIT_VOCAB.iter().find(|(n, _)| *n == name).map(|&(_, d)| d)
}

fn bind_names(env: &mut UnitEnv, names: &[String], d: Option<Domain>) {
    match (names, d) {
        ([one], Some(d)) => {
            env.insert(one.clone(), d);
        }
        _ => {
            for n in names {
                env.remove(n);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Nondeterminism taint
// ---------------------------------------------------------------------------

/// Struct literals whose fields must never hold wall-clock-derived
/// values: these are the payloads serialized into `cells.json` /
/// `journal.jsonl` `done` records and compared bit-for-bit on replay.
const TAINT_SINK_STRUCTS: [&str; 2] = ["Cell", "FrozenCell"];

/// Calls whose arguments must be deterministic: the simulation entry
/// points (their inputs decide simulated results) and fingerprinting.
const TAINT_SINK_CALLS: [&str; 3] = ["run_config", "run_config_traced", "fingerprint"];

type TaintEnv = BTreeSet<String>;

struct TaintCtx<'a> {
    rel: &'a str,
    arena: &'a Arena,
    emit: bool,
    seen: BTreeSet<(u32, u32)>,
    out: Vec<Diagnostic>,
}

/// The taint pass: wall-clock/env/thread-identity values must not flow
/// into simulated state, fingerprints, or serialized cell payloads.
fn taint_pass(rel: &str, ast: &FileAst, diags: &mut Vec<Diagnostic>) {
    for f in &ast.fns {
        let mut ctx = TaintCtx {
            rel,
            arena: &ast.arena,
            emit: false,
            seen: BTreeSet::new(),
            out: Vec::new(),
        };
        let graph = cfg::build(&ast.arena, &f.body);
        let entries = dataflow::forward(
            &graph,
            TaintEnv::new(),
            |acc: &mut TaintEnv, inc: &TaintEnv| {
                for v in inc {
                    acc.insert(v.clone());
                }
            },
            |ev, env: &mut TaintEnv| ctx.transfer(ev, env),
        );
        ctx.emit = true;
        for (bix, blk) in graph.blocks.iter().enumerate() {
            let mut env = entries.get(bix).cloned().unwrap_or_default();
            for ev in &blk.events {
                ctx.transfer(ev, &mut env);
            }
        }
        diags.append(&mut ctx.out);
    }
}

impl<'a> TaintCtx<'a> {
    fn transfer(&mut self, ev: &Event, env: &mut TaintEnv) {
        match ev {
            Event::Stmt(sid) => self.stmt(*sid, env),
            Event::Cond(eid) => {
                let _ = self.tainted(*eid, env);
            }
            Event::ArmBind { stmt, arm } => {
                if let Stmt::Match { scrutinee, arms } = self.arena.stmt(*stmt) {
                    let t = self.tainted(*scrutinee, env);
                    if let Some((names, _)) = arms.get(*arm) {
                        for n in names {
                            if t {
                                env.insert(n.clone());
                            } else {
                                env.remove(n);
                            }
                        }
                    }
                }
            }
        }
    }

    fn stmt(&mut self, sid: StmtId, env: &mut TaintEnv) {
        match self.arena.stmt(sid) {
            Stmt::Let { names, init, .. } => {
                let t = init.map(|e| self.tainted(e, env)).unwrap_or(false);
                for n in names {
                    if t {
                        env.insert(n.clone());
                    } else {
                        env.remove(n);
                    }
                }
            }
            Stmt::Expr(e) | Stmt::Return(Some(e)) => {
                let _ = self.tainted(*e, env);
            }
            _ => {}
        }
    }

    /// Is this expression wall-clock/env/thread-identity derived? Sink
    /// checks fire as a side effect.
    fn tainted(&mut self, eid: ExprId, env: &mut TaintEnv) -> bool {
        let e = self.arena.expr(eid);
        match &e.kind {
            ExprKind::Lit | ExprKind::MacroCall { .. } | ExprKind::Opaque => false,
            ExprKind::Path(segs) => {
                matches!(segs.as_slice(), [name] if env.contains(name))
                    || segs.iter().any(|s| s == "SystemTime")
            }
            ExprKind::Field { base, .. } => self.tainted(*base, env),
            ExprKind::Cast { expr, .. } | ExprKind::Unary { expr } => self.tainted(*expr, env),
            ExprKind::Binary { lhs, rhs, .. } => {
                let (l, r) = (*lhs, *rhs);
                let a = self.tainted(l, env);
                let b = self.tainted(r, env);
                a || b
            }
            ExprKind::Assign { target, value, .. } => {
                let (te, ve) = (*target, *value);
                let t = self.tainted(ve, env);
                if let ExprKind::Path(segs) = &self.arena.expr(te).kind {
                    if let [name] = segs.as_slice() {
                        if t {
                            env.insert(name.clone());
                        } else {
                            env.remove(name);
                        }
                    }
                }
                t
            }
            ExprKind::MethodCall { base, args, .. } => {
                let (b, argv) = (*base, args.clone());
                let mut t = self.tainted(b, env);
                for &a in &argv {
                    t |= self.tainted(a, env);
                }
                t
            }
            ExprKind::Call { callee, args } => {
                let (ce, argv) = (*callee, args.clone());
                let mut arg_taint = Vec::new();
                for &a in &argv {
                    arg_taint.push((a, self.tainted(a, env)));
                }
                let source = match &self.arena.expr(ce).kind {
                    ExprKind::Path(segs) => taint_source(segs),
                    _ => false,
                };
                if let ExprKind::Path(segs) = &self.arena.expr(ce).kind {
                    if let Some(last) = segs.last() {
                        if TAINT_SINK_CALLS.contains(&last.as_str()) {
                            let last = last.clone();
                            for &(a, t) in &arg_taint {
                                if t {
                                    let ae = self.arena.expr(a);
                                    self.report(
                                        ae.line,
                                        ae.col,
                                        format!(
                                            "wall-clock-derived value passed to `{last}` — \
                                             deterministic inputs only; keep timing in \
                                             progress/telemetry channels"
                                        ),
                                    );
                                }
                            }
                        }
                    }
                }
                source || arg_taint.iter().any(|&(_, t)| t)
            }
            ExprKind::StructLit { path, fields } => {
                let (p, fs) = (path.clone(), fields.clone());
                let mut any = false;
                for (fname, fval) in &fs {
                    let t = self.tainted(*fval, env);
                    any |= t;
                    if t && (TAINT_SINK_STRUCTS.contains(&p.as_str()) || fname == "cell") {
                        let fe = self.arena.expr(*fval);
                        self.report(
                            fe.line,
                            fe.col,
                            format!(
                                "wall-clock-derived value stored in `{p}.{fname}` — this \
                                 payload is serialized and replayed bit-for-bit; derive it \
                                 from simulated state instead"
                            ),
                        );
                    }
                }
                any
            }
            ExprKind::BlockExpr { block } => {
                let blk = block.clone();
                let mut tail = false;
                for (ix, &sid) in blk.stmts.iter().enumerate() {
                    if ix + 1 == blk.stmts.len() {
                        if let Stmt::Expr(e) = self.arena.stmt(sid) {
                            tail = self.tainted(*e, env);
                            continue;
                        }
                    }
                    self.stmt(sid, env);
                }
                tail
            }
            ExprKind::Closure { body } => {
                let b = *body;
                let _ = self.tainted(b, env);
                false
            }
            ExprKind::Tuple { elems } => {
                let es = elems.clone();
                let mut t = false;
                for &el in &es {
                    t |= self.tainted(el, env);
                }
                t
            }
            ExprKind::Index { base, index } => {
                let (b, ix) = (*base, *index);
                let _ = self.tainted(ix, env);
                self.tainted(b, env)
            }
        }
    }

    fn report(&mut self, line: u32, col: u32, message: String) {
        if !self.emit || !self.seen.insert((line, col)) {
            return;
        }
        self.out
            .push(diag(self.rel, line, col, RuleId::NondetTaint, message));
    }
}

/// Does this call path read a nondeterministic source?
fn taint_source(segs: &[String]) -> bool {
    let joined: Vec<&str> = segs.iter().map(|s| s.as_str()).collect();
    match joined.as_slice() {
        [.., "Instant", "now"] | [.., "SystemTime", "now"] => true,
        [.., "thread", "current"] => true,
        [.., "env", m] if matches!(*m, "var" | "vars" | "var_os" | "vars_os") => true,
        [.., m] if *m == "wall_ms" => true,
        _ => false,
    }
}

// ---------------------------------------------------------------------------
// Journal/lease protocol conformance
// ---------------------------------------------------------------------------

/// Calls that *execute* a claimed cell: a claim must have been read
/// back before any of these run.
const EXECUTE_CALLS: [&str; 5] = [
    "execute_slice",
    "execute",
    "compute_cell",
    "run_config",
    "run_config_traced",
];

/// Calls that re-read the journal (the claim read-back).
const READBACK_CALLS: [&str; 3] = ["scan", "scan_path", "replay"];

/// Protocol actions extracted from one statement's expression tree.
#[derive(Debug, Clone, Copy)]
enum ProtoAction {
    /// `…append(JournalOp::Claim { … })`.
    ClaimAppend,
    /// A journal re-read.
    Readback,
    /// A cell-execution call.
    Execute(u32, u32),
}

/// The claim-then-read-back conformance pass: on every CFG path from an
/// appended claim to the cell's execution there must be a journal
/// re-read (the file-order race decides ownership; executing an
/// unconfirmed claim double-computes cells and corrupts adoption).
fn claim_readback_pass(rel: &str, ast: &FileAst, diags: &mut Vec<Diagnostic>) {
    for f in &ast.fns {
        // `Journal::append` itself (and the `Durable::append` wrapper)
        // legitimately see claim records pass through; the protocol
        // check applies to orchestration code *calling* append.
        if f.name == "append" {
            continue;
        }
        let graph = cfg::build(&ast.arena, &f.body);
        let mut findings: BTreeSet<(u32, u32)> = BTreeSet::new();
        let transfer = |arena: &Arena,
                        ev: &Event,
                        pending: &mut bool,
                        findings: Option<&mut BTreeSet<(u32, u32)>>| {
            let mut actions = Vec::new();
            match ev {
                Event::Stmt(sid) => proto_actions_stmt(arena, *sid, &mut actions),
                Event::Cond(eid) => proto_actions_expr(arena, *eid, &mut actions),
                Event::ArmBind { .. } => {}
            }
            let mut local: Vec<(u32, u32)> = Vec::new();
            for a in actions {
                match a {
                    ProtoAction::ClaimAppend => *pending = true,
                    ProtoAction::Readback => *pending = false,
                    ProtoAction::Execute(line, col) => {
                        if *pending {
                            local.push((line, col));
                        }
                    }
                }
            }
            if let Some(f) = findings {
                for site in local {
                    f.insert(site);
                }
            }
        };
        let entries = dataflow::forward(
            &graph,
            false,
            |acc: &mut bool, inc: &bool| *acc = *acc || *inc,
            |ev, pending: &mut bool| transfer(&ast.arena, ev, pending, None),
        );
        for (bix, blk) in graph.blocks.iter().enumerate() {
            let mut pending = entries.get(bix).copied().unwrap_or(false);
            for ev in &blk.events {
                transfer(&ast.arena, ev, &mut pending, Some(&mut findings));
            }
        }
        for (line, col) in findings {
            diags.push(diag(
                rel,
                line,
                col,
                RuleId::ClaimReadback,
                "cell executes on a path where an appended claim was never read back — \
                 re-scan the journal (the first live claim in file order wins) before \
                 computing"
                    .to_string(),
            ));
        }
    }
}

/// Collect protocol actions from a statement subtree, in evaluation
/// order (nested control flow is walked linearly — branch precision
/// comes from the CFG at statement level).
fn proto_actions_stmt(arena: &Arena, sid: StmtId, out: &mut Vec<ProtoAction>) {
    match arena.stmt(sid) {
        Stmt::Let { init: Some(e), .. } => proto_actions_expr(arena, *e, out),
        Stmt::Let { init: None, .. } => {}
        Stmt::Expr(e) | Stmt::Return(Some(e)) => proto_actions_expr(arena, *e, out),
        Stmt::If {
            cond,
            then_blk,
            els,
        } => {
            proto_actions_expr(arena, *cond, out);
            for &s in &then_blk.stmts {
                proto_actions_stmt(arena, s, out);
            }
            if let Some(eb) = els {
                for &s in &eb.stmts {
                    proto_actions_stmt(arena, s, out);
                }
            }
        }
        Stmt::While { cond, body, .. } => {
            proto_actions_expr(arena, *cond, out);
            for &s in &body.stmts {
                proto_actions_stmt(arena, s, out);
            }
        }
        Stmt::Loop { body, .. } => {
            for &s in &body.stmts {
                proto_actions_stmt(arena, s, out);
            }
        }
        Stmt::For { iter, body, .. } => {
            proto_actions_expr(arena, *iter, out);
            for &s in &body.stmts {
                proto_actions_stmt(arena, s, out);
            }
        }
        Stmt::Match { scrutinee, arms } => {
            proto_actions_expr(arena, *scrutinee, out);
            for (_, b) in arms {
                for &s in &b.stmts {
                    proto_actions_stmt(arena, s, out);
                }
            }
        }
        _ => {}
    }
}

fn proto_actions_expr(arena: &Arena, eid: ExprId, out: &mut Vec<ProtoAction>) {
    let e = arena.expr(eid);
    match &e.kind {
        ExprKind::MethodCall { base, name, args } => {
            proto_actions_expr(arena, *base, out);
            for &a in args {
                proto_actions_expr(arena, a, out);
            }
            classify_call(arena, name, args, e.line, e.col, out);
        }
        ExprKind::Call { callee, args } => {
            for &a in args {
                proto_actions_expr(arena, a, out);
            }
            if let ExprKind::Path(segs) = &arena.expr(*callee).kind {
                if let Some(last) = segs.last() {
                    classify_call(arena, last, args, e.line, e.col, out);
                }
            }
        }
        ExprKind::Field { base, .. } => proto_actions_expr(arena, *base, out),
        ExprKind::Cast { expr, .. } | ExprKind::Unary { expr } => {
            proto_actions_expr(arena, *expr, out)
        }
        ExprKind::Binary { lhs, rhs, .. } => {
            proto_actions_expr(arena, *lhs, out);
            proto_actions_expr(arena, *rhs, out);
        }
        ExprKind::Assign { target, value, .. } => {
            proto_actions_expr(arena, *target, out);
            proto_actions_expr(arena, *value, out);
        }
        ExprKind::StructLit { fields, .. } => {
            for (_, v) in fields {
                proto_actions_expr(arena, *v, out);
            }
        }
        ExprKind::BlockExpr { block } => {
            for &s in &block.stmts {
                proto_actions_stmt(arena, s, out);
            }
        }
        ExprKind::Closure { body } => proto_actions_expr(arena, *body, out),
        ExprKind::Tuple { elems } => {
            for &el in elems {
                proto_actions_expr(arena, el, out);
            }
        }
        ExprKind::Index { base, index } => {
            proto_actions_expr(arena, *base, out);
            proto_actions_expr(arena, *index, out);
        }
        _ => {}
    }
}

fn classify_call(
    arena: &Arena,
    name: &str,
    args: &[ExprId],
    line: u32,
    col: u32,
    out: &mut Vec<ProtoAction>,
) {
    if name == "append" && args.iter().any(|&a| contains_claim(arena, a)) {
        out.push(ProtoAction::ClaimAppend);
    } else if READBACK_CALLS.contains(&name) || name.contains("readback") {
        out.push(ProtoAction::Readback);
    } else if EXECUTE_CALLS.contains(&name) {
        out.push(ProtoAction::Execute(line, col));
    }
}

/// Does this expression mention the `Claim` journal-op constructor?
fn contains_claim(arena: &Arena, eid: ExprId) -> bool {
    let e = arena.expr(eid);
    match &e.kind {
        ExprKind::Path(segs) => segs.iter().any(|s| s == "Claim"),
        ExprKind::StructLit { path, fields } => {
            path == "Claim" || fields.iter().any(|(_, v)| contains_claim(arena, *v))
        }
        ExprKind::Field { base, .. } => contains_claim(arena, *base),
        ExprKind::Cast { expr, .. } | ExprKind::Unary { expr } => contains_claim(arena, *expr),
        ExprKind::MethodCall { base, args, .. } => {
            contains_claim(arena, *base) || args.iter().any(|&a| contains_claim(arena, a))
        }
        ExprKind::Call { callee, args } => {
            contains_claim(arena, *callee) || args.iter().any(|&a| contains_claim(arena, a))
        }
        ExprKind::Binary { lhs, rhs, .. } => {
            contains_claim(arena, *lhs) || contains_claim(arena, *rhs)
        }
        ExprKind::Tuple { elems } => elems.iter().any(|&el| contains_claim(arena, el)),
        _ => false,
    }
}

// ---------------------------------------------------------------------------
// Watchdog cancel-token polling
// ---------------------------------------------------------------------------

/// The cancel-poll pass: any polling/idle-wait loop in the runner tree
/// (a loop whose body sleeps) must consult a cancel/shutdown condition,
/// or a stalled worker holds its lease forever and the watchdog's stall
/// budget cannot end it.
fn cancel_poll_pass(rel: &str, ast: &FileAst, diags: &mut Vec<Diagnostic>) {
    for f in &ast.fns {
        for &sid in &f.body.stmts {
            walk_loops(rel, &ast.arena, sid, diags);
        }
    }
}

fn walk_loops(rel: &str, arena: &Arena, sid: StmtId, diags: &mut Vec<Diagnostic>) {
    let (cond, body, line, col): (Option<ExprId>, Option<&Block>, u32, u32) = match arena.stmt(sid)
    {
        Stmt::While {
            cond,
            body,
            line,
            col,
        } => (Some(*cond), Some(body), *line, *col),
        Stmt::Loop { body, line, col } => (None, Some(body), *line, *col),
        Stmt::For {
            iter,
            body,
            line,
            col,
            ..
        } => (Some(*iter), Some(body), *line, *col),
        _ => (None, None, 0, 0),
    };
    if let Some(body) = body {
        // Sleeps directly in this loop (not in a nested one — that
        // nested loop gets its own check).
        if block_has_sleep(arena, body, true) {
            let cancel_in_cond = cond.is_some_and(|c| expr_has_cancel_check(arena, c));
            if !cancel_in_cond && !block_has_cancel_check(arena, body) {
                diags.push(diag(
                    rel,
                    line,
                    col,
                    RuleId::CancelPoll,
                    "polling loop sleeps without consulting a cancel/shutdown signal — \
                     check the watchdog cancel token or shutdown flag each iteration"
                        .to_string(),
                ));
            }
        }
        for &s in &body.stmts {
            walk_loops(rel, arena, s, diags);
        }
        return;
    }
    // Recurse into non-loop control flow to find nested loops.
    match arena.stmt(sid) {
        Stmt::If { then_blk, els, .. } => {
            for &s in &then_blk.stmts {
                walk_loops(rel, arena, s, diags);
            }
            if let Some(eb) = els {
                for &s in &eb.stmts {
                    walk_loops(rel, arena, s, diags);
                }
            }
        }
        Stmt::Match { arms, .. } => {
            for (_, b) in arms {
                for &s in &b.stmts {
                    walk_loops(rel, arena, s, diags);
                }
            }
        }
        Stmt::Let { init: Some(e), .. } | Stmt::Expr(e) | Stmt::Return(Some(e)) => {
            walk_expr_loops(rel, arena, *e, diags);
        }
        _ => {}
    }
}

fn walk_expr_loops(rel: &str, arena: &Arena, eid: ExprId, diags: &mut Vec<Diagnostic>) {
    match &arena.expr(eid).kind {
        ExprKind::BlockExpr { block } => {
            for &s in &block.stmts {
                walk_loops(rel, arena, s, diags);
            }
        }
        ExprKind::Closure { body } => walk_expr_loops(rel, arena, *body, diags),
        ExprKind::MethodCall { base, args, .. } => {
            walk_expr_loops(rel, arena, *base, diags);
            for &a in args {
                walk_expr_loops(rel, arena, a, diags);
            }
        }
        ExprKind::Call { callee, args } => {
            walk_expr_loops(rel, arena, *callee, diags);
            for &a in args {
                walk_expr_loops(rel, arena, a, diags);
            }
        }
        ExprKind::Binary { lhs, rhs, .. } => {
            walk_expr_loops(rel, arena, *lhs, diags);
            walk_expr_loops(rel, arena, *rhs, diags);
        }
        ExprKind::Assign { target, value, .. } => {
            walk_expr_loops(rel, arena, *target, diags);
            walk_expr_loops(rel, arena, *value, diags);
        }
        ExprKind::Tuple { elems } => {
            for &el in elems {
                walk_expr_loops(rel, arena, el, diags);
            }
        }
        ExprKind::StructLit { fields, .. } => {
            for (_, v) in fields {
                walk_expr_loops(rel, arena, *v, diags);
            }
        }
        _ => {}
    }
}

/// Does this block call `sleep` (outside nested loops when
/// `stop_at_loops`)?
fn block_has_sleep(arena: &Arena, blk: &Block, stop_at_loops: bool) -> bool {
    blk.stmts
        .iter()
        .any(|&s| stmt_matches(arena, s, stop_at_loops, &|name, _| name == "sleep"))
}

/// Does this block consult a cancel/shutdown signal anywhere (nested
/// loops included — a cancel check anywhere in the body counts)?
fn block_has_cancel_check(arena: &Arena, blk: &Block) -> bool {
    blk.stmts
        .iter()
        .any(|&s| stmt_matches(arena, s, false, &is_cancel_call))
}

fn expr_has_cancel_check(arena: &Arena, eid: ExprId) -> bool {
    expr_matches(arena, eid, false, &is_cancel_call)
}

/// Is `name(…)` / `.name(…)` on `recv` a cancel/shutdown consultation?
fn is_cancel_call(name: &str, recv: &str) -> bool {
    matches!(
        name,
        "shutdown_requested"
            | "is_cancelled"
            | "is_canceled"
            | "is_shutdown"
            | "cancelled"
            | "poll"
    ) || (name == "load" && cancelish(recv))
}

fn cancelish(name: &str) -> bool {
    let n = name.to_ascii_lowercase();
    ["cancel", "shutdown", "stop", "halt", "quit", "interrupt"]
        .iter()
        .any(|p| n.contains(p))
}

/// Walk a statement subtree for a call matching `pred(name, receiver)`.
fn stmt_matches(
    arena: &Arena,
    sid: StmtId,
    stop_at_loops: bool,
    pred: &dyn Fn(&str, &str) -> bool,
) -> bool {
    match arena.stmt(sid) {
        Stmt::Let { init, .. } => init.is_some_and(|e| expr_matches(arena, e, stop_at_loops, pred)),
        Stmt::Expr(e) | Stmt::Return(Some(e)) => expr_matches(arena, *e, stop_at_loops, pred),
        Stmt::If {
            cond,
            then_blk,
            els,
        } => {
            expr_matches(arena, *cond, stop_at_loops, pred)
                || then_blk
                    .stmts
                    .iter()
                    .any(|&s| stmt_matches(arena, s, stop_at_loops, pred))
                || els.as_ref().is_some_and(|b| {
                    b.stmts
                        .iter()
                        .any(|&s| stmt_matches(arena, s, stop_at_loops, pred))
                })
        }
        Stmt::While { cond, body, .. } => {
            !stop_at_loops
                && (expr_matches(arena, *cond, stop_at_loops, pred)
                    || body
                        .stmts
                        .iter()
                        .any(|&s| stmt_matches(arena, s, stop_at_loops, pred)))
        }
        Stmt::Loop { body, .. } => {
            !stop_at_loops
                && body
                    .stmts
                    .iter()
                    .any(|&s| stmt_matches(arena, s, stop_at_loops, pred))
        }
        Stmt::For { iter, body, .. } => {
            expr_matches(arena, *iter, stop_at_loops, pred)
                || (!stop_at_loops
                    && body
                        .stmts
                        .iter()
                        .any(|&s| stmt_matches(arena, s, stop_at_loops, pred)))
        }
        Stmt::Match { scrutinee, arms } => {
            expr_matches(arena, *scrutinee, stop_at_loops, pred)
                || arms.iter().any(|(_, b)| {
                    b.stmts
                        .iter()
                        .any(|&s| stmt_matches(arena, s, stop_at_loops, pred))
                })
        }
        _ => false,
    }
}

fn expr_matches(
    arena: &Arena,
    eid: ExprId,
    stop_at_loops: bool,
    pred: &dyn Fn(&str, &str) -> bool,
) -> bool {
    let e = arena.expr(eid);
    match &e.kind {
        ExprKind::MethodCall { base, name, args } => {
            let recv = receiver_name(arena, *base);
            pred(name, &recv)
                || expr_matches(arena, *base, stop_at_loops, pred)
                || args
                    .iter()
                    .any(|&a| expr_matches(arena, a, stop_at_loops, pred))
        }
        ExprKind::Call { callee, args } => {
            let hit = match &arena.expr(*callee).kind {
                ExprKind::Path(segs) => segs.last().is_some_and(|last| {
                    let recv = segs
                        .len()
                        .checked_sub(2)
                        .and_then(|i| segs.get(i))
                        .cloned()
                        .unwrap_or_default();
                    pred(last, &recv)
                }),
                _ => false,
            };
            hit || args
                .iter()
                .any(|&a| expr_matches(arena, a, stop_at_loops, pred))
        }
        ExprKind::Field { base, .. } => expr_matches(arena, *base, stop_at_loops, pred),
        ExprKind::Cast { expr, .. } | ExprKind::Unary { expr } => {
            expr_matches(arena, *expr, stop_at_loops, pred)
        }
        ExprKind::Binary { lhs, rhs, .. } => {
            expr_matches(arena, *lhs, stop_at_loops, pred)
                || expr_matches(arena, *rhs, stop_at_loops, pred)
        }
        ExprKind::Assign { target, value, .. } => {
            expr_matches(arena, *target, stop_at_loops, pred)
                || expr_matches(arena, *value, stop_at_loops, pred)
        }
        ExprKind::StructLit { fields, .. } => fields
            .iter()
            .any(|(_, v)| expr_matches(arena, *v, stop_at_loops, pred)),
        ExprKind::BlockExpr { block } => block
            .stmts
            .iter()
            .any(|&s| stmt_matches(arena, s, stop_at_loops, pred)),
        ExprKind::Closure { body } => expr_matches(arena, *body, stop_at_loops, pred),
        ExprKind::Tuple { elems } => elems
            .iter()
            .any(|&el| expr_matches(arena, el, stop_at_loops, pred)),
        ExprKind::Index { base, index } => {
            expr_matches(arena, *base, stop_at_loops, pred)
                || expr_matches(arena, *index, stop_at_loops, pred)
        }
        _ => false,
    }
}

/// The receiver's simple name, for `recv.load(…)`-style checks.
fn receiver_name(arena: &Arena, eid: ExprId) -> String {
    match &arena.expr(eid).kind {
        ExprKind::Path(segs) => segs.last().cloned().unwrap_or_default(),
        ExprKind::Field { name, .. } => name.clone(),
        ExprKind::Unary { expr } => receiver_name(arena, *expr),
        _ => String::new(),
    }
}
