//! Per-function control-flow graphs over the [`crate::ast`] statement
//! tree.
//!
//! Blocks hold a sequence of [`Event`]s — straight-line statements,
//! branch conditions, and match-arm pattern bindings — and edges follow
//! Rust's structured control flow (`if`/`else`, loops with `break`/
//! `continue`, `match`, early `return`). Expression-position control
//! flow ([`crate::ast::ExprKind::BlockExpr`]) is *not* expanded into
//! blocks: rule passes walk those nested statements linearly, which is
//! conservative but keeps the graph small and loop-free where it
//! matters (the protocol-conformance pass needs path precision for
//! statement-level branches, which this provides).

use crate::ast::{Arena, Block as AstBlock, ExprId, Stmt, StmtId};

/// One event inside a basic block, in execution order.
#[derive(Debug, Clone, Copy)]
pub enum Event {
    /// A straight-line statement (let, expression, return, …).
    Stmt(StmtId),
    /// A branch condition / loop condition / match scrutinee / for-loop
    /// iterator, evaluated before the block's successors fork.
    Cond(ExprId),
    /// Entering arm `arm` of the `match` statement `stmt`: the arm's
    /// pattern bindings take the scrutinee's value.
    ArmBind {
        /// The match statement.
        stmt: StmtId,
        /// Which arm (index into its `arms`).
        arm: usize,
    },
}

/// One basic block.
#[derive(Debug, Default)]
pub struct BasicBlock {
    /// Events in execution order.
    pub events: Vec<Event>,
    /// Successor block indices.
    pub succs: Vec<usize>,
}

/// A function's control-flow graph. Block 0 is the entry; blocks with
/// no successors exit the function.
#[derive(Debug, Default)]
pub struct Cfg {
    /// All blocks; indices are stable.
    pub blocks: Vec<BasicBlock>,
}

/// Build the CFG of one function body.
pub fn build(arena: &Arena, body: &AstBlock) -> Cfg {
    let mut b = Builder {
        arena,
        cfg: Cfg::default(),
        loops: Vec::new(),
    };
    let entry = b.new_block();
    let end = b.lower_block(body, entry);
    let _ = end;
    b.cfg
}

struct Builder<'a> {
    arena: &'a Arena,
    cfg: Cfg,
    /// Stack of `(continue_target, break_target)` for enclosing loops.
    loops: Vec<(usize, usize)>,
}

impl<'a> Builder<'a> {
    fn new_block(&mut self) -> usize {
        self.cfg.blocks.push(BasicBlock::default());
        self.cfg.blocks.len() - 1
    }

    fn edge(&mut self, from: usize, to: usize) {
        if let Some(blk) = self.cfg.blocks.get_mut(from) {
            if !blk.succs.contains(&to) {
                blk.succs.push(to);
            }
        }
    }

    fn event(&mut self, blk: usize, ev: Event) {
        if let Some(b) = self.cfg.blocks.get_mut(blk) {
            b.events.push(ev);
        }
    }

    /// Lower the statements of `blk_ast` starting in CFG block `cur`;
    /// returns the block control falls out of (a fresh unreachable
    /// block after a diverging statement).
    fn lower_block(&mut self, blk_ast: &AstBlock, mut cur: usize) -> usize {
        for &sid in &blk_ast.stmts {
            cur = self.lower_stmt(sid, cur);
        }
        cur
    }

    fn lower_stmt(&mut self, sid: StmtId, cur: usize) -> usize {
        match self.arena.stmt(sid) {
            Stmt::Let { .. } | Stmt::Expr(_) | Stmt::Item | Stmt::Empty => {
                self.event(cur, Event::Stmt(sid));
                cur
            }
            Stmt::Return(_) => {
                self.event(cur, Event::Stmt(sid));
                // No successors: control exits the function.
                self.new_block()
            }
            Stmt::Break => {
                self.event(cur, Event::Stmt(sid));
                if let Some(&(_, brk)) = self.loops.last() {
                    self.edge(cur, brk);
                }
                self.new_block()
            }
            Stmt::Continue => {
                self.event(cur, Event::Stmt(sid));
                if let Some(&(cont, _)) = self.loops.last() {
                    self.edge(cur, cont);
                }
                self.new_block()
            }
            Stmt::If {
                cond,
                then_blk,
                els,
            } => {
                self.event(cur, Event::Cond(*cond));
                let then_entry = self.new_block();
                self.edge(cur, then_entry);
                let join = self.new_block();
                let then_blk = then_blk.clone();
                let els = els.clone();
                let then_end = self.lower_block(&then_blk, then_entry);
                self.edge(then_end, join);
                match els {
                    Some(eb) => {
                        let else_entry = self.new_block();
                        self.edge(cur, else_entry);
                        let else_end = self.lower_block(&eb, else_entry);
                        self.edge(else_end, join);
                    }
                    None => self.edge(cur, join),
                }
                join
            }
            Stmt::While { cond, body, .. } => {
                let cond = *cond;
                let body = body.clone();
                let head = self.new_block();
                self.edge(cur, head);
                self.event(head, Event::Cond(cond));
                let body_entry = self.new_block();
                let exit = self.new_block();
                self.edge(head, body_entry);
                self.edge(head, exit);
                self.loops.push((head, exit));
                let body_end = self.lower_block(&body, body_entry);
                self.loops.pop();
                self.edge(body_end, head);
                exit
            }
            Stmt::Loop { body, .. } => {
                let body = body.clone();
                let head = self.new_block();
                self.edge(cur, head);
                let exit = self.new_block();
                self.loops.push((head, exit));
                let body_end = self.lower_block(&body, head);
                self.loops.pop();
                self.edge(body_end, head);
                exit
            }
            Stmt::For { iter, body, .. } => {
                let iter = *iter;
                let body = body.clone();
                self.event(cur, Event::Cond(iter));
                let head = self.new_block();
                self.edge(cur, head);
                let body_entry = self.new_block();
                let exit = self.new_block();
                self.edge(head, body_entry);
                self.edge(head, exit);
                self.loops.push((head, exit));
                // The loop pattern binds from the iterated expression.
                self.event(body_entry, Event::ArmBind { stmt: sid, arm: 0 });
                let body_end = self.lower_block(&body, body_entry);
                self.loops.pop();
                self.edge(body_end, head);
                exit
            }
            Stmt::Match { scrutinee, arms } => {
                self.event(cur, Event::Cond(*scrutinee));
                let join = self.new_block();
                let arms_cloned: Vec<AstBlock> = arms.iter().map(|(_, b)| b.clone()).collect();
                if arms_cloned.is_empty() {
                    self.edge(cur, join);
                }
                for (ix, arm_body) in arms_cloned.iter().enumerate() {
                    let entry = self.new_block();
                    self.edge(cur, entry);
                    self.event(entry, Event::ArmBind { stmt: sid, arm: ix });
                    let end = self.lower_block(arm_body, entry);
                    self.edge(end, join);
                }
                join
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::parse;
    use crate::lexer::tokenize;

    fn cfg_of(src: &str) -> (crate::ast::FileAst, Cfg) {
        let toks = tokenize(src);
        let filtered: Vec<&crate::lexer::Token> = toks.iter().filter(|t| !t.is_comment()).collect();
        let ast = parse(&filtered);
        // invariant: the test sources below each declare exactly one fn
        assert!(!ast.fns.is_empty(), "no fn parsed from test source");
        let cfg = build(&ast.arena, &ast.fns[0].body);
        (ast, cfg)
    }

    #[test]
    fn straight_line_is_one_block_chain() {
        let (_, cfg) = cfg_of("fn f() { let a = 1; let b = 2; }");
        assert_eq!(cfg.blocks[0].events.len(), 2);
        assert!(cfg.blocks[0].succs.is_empty());
    }

    #[test]
    fn if_has_two_paths_to_join() {
        let (_, cfg) = cfg_of("fn f(x: u64) { if x > 0 { let a = 1; } let b = 2; }");
        // Entry forks to the then-block and the join.
        assert_eq!(cfg.blocks[0].succs.len(), 2);
    }

    #[test]
    fn while_loop_has_back_edge() {
        let (_, cfg) = cfg_of("fn f(x: u64) { while x > 0 { let a = 1; } }");
        let has_back_edge = cfg
            .blocks
            .iter()
            .enumerate()
            .any(|(i, b)| b.succs.iter().any(|&s| s <= i));
        assert!(has_back_edge, "loop must produce a back edge: {cfg:?}");
    }

    #[test]
    fn return_ends_the_path() {
        let (_, cfg) = cfg_of("fn f() { return; }");
        assert!(cfg.blocks[0].succs.is_empty());
    }

    #[test]
    fn match_fans_out_per_arm() {
        let (_, cfg) = cfg_of("fn f(x: u64) { match x { 0 => { let a = 1; }, _ => {} } }");
        assert_eq!(cfg.blocks[0].succs.len(), 2);
    }
}
