//! `rampage-lint` — standalone entry point for the workspace analyzer.
//!
//! Exit codes: 0 = clean (no unwaived diagnostics), 1 = findings,
//! 2 = usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

use rampage_analysis::{analyze_workspace_tier, diag, find_workspace_root, sarif, Tier};

const USAGE: &str = "\
rampage-lint — static analysis for the rampage workspace

USAGE:
    cargo run -p rampage-analysis [--] [OPTIONS]

OPTIONS:
    --tier TIER      rule tier: `token` (fast default) or `dataflow`
                     (adds unit-mix, nondet-taint, claim-readback,
                     cancel-poll)
    --format FMT     output format: `text` (default), `json`, `sarif`
    --json           shorthand for --format json
    --explain RULE   print the help text for one rule and exit
    --root PATH      workspace root (default: nearest [workspace] ancestor)
    --quiet          suppress per-diagnostic output; summary only
    -h, --help       show this help
";

fn main() -> ExitCode {
    let mut format = "text".to_string();
    let mut quiet = false;
    let mut tier = Tier::Token;
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => format = "json".to_string(),
            "--quiet" => quiet = true,
            "--format" => match args.next() {
                Some(f) if matches!(f.as_str(), "text" | "json" | "sarif") => format = f,
                _ => {
                    eprintln!("error: --format requires text|json|sarif\n\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--tier" => match args.next().as_deref().and_then(Tier::from_flag) {
                Some(t) => tier = t,
                None => {
                    eprintln!("error: --tier requires token|dataflow\n\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--explain" => {
                return match args
                    .next()
                    .as_deref()
                    .and_then(diag::RuleId::from_waiver_str_or_meta)
                {
                    Some(rule) => {
                        println!("{}", rule.explain());
                        ExitCode::SUCCESS
                    }
                    None => {
                        let ids: Vec<&str> = diag::RuleId::ALL.iter().map(|r| r.as_str()).collect();
                        eprintln!("error: --explain requires one of: {}", ids.join(", "));
                        ExitCode::from(2)
                    }
                };
            }
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => {
                    eprintln!("error: --root requires a path\n\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "-h" | "--help" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                // Accept `--tier=dataflow` / `--format=sarif` spellings.
                if let Some(t) = other.strip_prefix("--tier=") {
                    match Tier::from_flag(t) {
                        Some(t) => {
                            tier = t;
                            continue;
                        }
                        None => {
                            eprintln!("error: --tier requires token|dataflow\n\n{USAGE}");
                            return ExitCode::from(2);
                        }
                    }
                }
                if let Some(f) = other.strip_prefix("--format=") {
                    if matches!(f, "text" | "json" | "sarif") {
                        format = f.to_string();
                        continue;
                    }
                    eprintln!("error: --format requires text|json|sarif\n\n{USAGE}");
                    return ExitCode::from(2);
                }
                eprintln!("error: unknown argument `{other}`\n\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }

    let root = match root {
        Some(r) => r,
        None => {
            let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
            match find_workspace_root(&cwd) {
                Some(r) => r,
                None => cwd,
            }
        }
    };

    let started = Instant::now();
    let report = match analyze_workspace_tier(&root, tier) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: failed to analyze {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    let elapsed = started.elapsed();
    let diags = report.diagnostics;

    let active = diags.iter().filter(|d| d.is_active()).count();
    let waived = diags.len() - active;
    match format.as_str() {
        "json" => println!("{}", diag::render_json_report(&diags)),
        "sarif" => println!("{}", sarif::render_sarif(&diags)),
        _ => {
            if !quiet {
                for d in &diags {
                    println!("{}", d.render_text());
                }
            }
            println!("analysis: {active} finding(s), {waived} waived");
            println!(
                "analysis: tier={} files={} elapsed={:.0}ms",
                tier.as_str(),
                report.files,
                elapsed.as_secs_f64() * 1000.0
            );
        }
    }
    if active == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
