//! `rampage-lint` — standalone entry point for the workspace analyzer.
//!
//! Exit codes: 0 = clean (no unwaived diagnostics), 1 = findings,
//! 2 = usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

use rampage_analysis::{analyze_workspace, diag, find_workspace_root};

const USAGE: &str = "\
rampage-lint — static analysis for the rampage workspace

USAGE:
    cargo run -p rampage-analysis [--] [OPTIONS]

OPTIONS:
    --json         emit machine-readable JSON diagnostics
    --root PATH    workspace root (default: nearest [workspace] ancestor)
    --quiet        suppress per-diagnostic output; summary only
    -h, --help     show this help
";

fn main() -> ExitCode {
    let mut json = false;
    let mut quiet = false;
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--quiet" => quiet = true,
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => {
                    eprintln!("error: --root requires a path\n\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "-h" | "--help" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("error: unknown argument `{other}`\n\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }

    let root = match root {
        Some(r) => r,
        None => {
            let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
            match find_workspace_root(&cwd) {
                Some(r) => r,
                None => cwd,
            }
        }
    };

    let diags = match analyze_workspace(&root) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("error: failed to analyze {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    let active = diags.iter().filter(|d| d.is_active()).count();
    let waived = diags.len() - active;
    if json {
        println!("{}", diag::render_json_report(&diags));
    } else {
        if !quiet {
            for d in &diags {
                println!("{}", d.render_text());
            }
        }
        println!("analysis: {active} finding(s), {waived} waived");
    }
    if active == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
