//! `rampage-analysis` — an offline, dependency-free static analyzer for
//! the workspace's determinism, panic-discipline, and structural
//! invariants.
//!
//! The analyzer lexes every `.rs` file with its own hand-rolled lexer
//! (see [`lexer`]) and runs repo-specific rule passes (see [`rules`])
//! that clippy cannot express: hash-ordered iteration in simulation
//! crates, wall-clock reads outside the timing allowlist, undocumented
//! panics, `impl MemorySystem` structure, experiment-file routing, and
//! exhaustive error matching. Findings can be suppressed site-by-site
//! with `// lint: allow(<rule>) — <reason>` waivers; a waiver without a
//! reason or without a matching finding is itself a diagnostic.
//!
//! The rule catalog, the waiver syntax, and the timing allowlist policy
//! are documented in `EXPERIMENTS.md` § Static analysis.

#![forbid(unsafe_code)]

pub mod ast;
pub mod cfg;
pub mod dataflow;
pub mod diag;
pub mod lexer;
pub mod rules;
pub mod sarif;
pub mod tier2;

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use diag::Diagnostic;
use rules::StructuralFacts;

/// Which rule families run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Tier {
    /// The fast default: token-stream passes only.
    #[default]
    Token,
    /// Token passes plus the AST/CFG/dataflow rules (unit-mix,
    /// nondet-taint, claim-readback, cancel-poll).
    Dataflow,
}

impl Tier {
    /// Parse a `--tier=` value.
    pub fn from_flag(s: &str) -> Option<Tier> {
        match s {
            "token" => Some(Tier::Token),
            "dataflow" => Some(Tier::Dataflow),
            _ => None,
        }
    }

    /// The flag spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            Tier::Token => "token",
            Tier::Dataflow => "dataflow",
        }
    }
}

/// How a file's path classifies it for rule selection.
#[derive(Debug, Clone, Default)]
pub struct FileClass {
    /// Test/bench/example/fixture code: exempt from every rule.
    pub is_test: bool,
    /// Library code (crate `src/` trees, minus binaries): panic
    /// discipline, unwrap, and error-match apply.
    pub is_lib: bool,
    /// Determinism-critical simulation path: hash-iter and env-read
    /// apply.
    pub sim_path: bool,
    /// On the timing allowlist: wall-clock reads permitted (sweep-runner
    /// timing, binaries, benches).
    pub wall_clock_allowed: bool,
    /// `experiments/table*.rs` / `fig*.rs`: must route through
    /// `SweepRunner`.
    pub sweep_routed: bool,
    /// Unit-domain-checked timing code: the DRAM backends, the channel
    /// router, and `SystemConfig` (dataflow tier).
    pub unit_checked: bool,
    /// The sweep-runner tree: journal/lease protocol conformance and
    /// cancel-token polling apply (dataflow tier).
    pub runner_protocol: bool,
}

/// Path prefixes whose contents count as simulation code.
const SIM_PREFIXES: [&str; 6] = [
    "crates/cache/src/",
    "crates/vm/src/",
    "crates/dram/src/",
    "crates/trace/src/",
    "crates/core/src/system/",
    "crates/core/src/obs/",
];

/// Individual files that count as simulation code. `channel.rs` routes
/// every DRAM request into the flat or banked backend, so its
/// determinism matters as much as the engine's.
const SIM_FILES: [&str; 3] = [
    "crates/core/src/engine.rs",
    "crates/core/src/metrics.rs",
    "crates/core/src/channel.rs",
];

/// The timing allowlist: where `Instant::now` is legitimate. The policy
/// (documented in EXPERIMENTS.md) is that wall-clock may only feed
/// *reporting* — sweep-runner cell timing, journal/lease timestamps and
/// watchdog budgets (the `runner` module tree), progress callbacks,
/// bench harnesses, and CLI heartbeats — never simulated state. The
/// fault-injection module's hang points carry a wall-clock self-expiry
/// deadline (test-only code, but compiled as library under the `fault`
/// feature).
const WALL_CLOCK_ALLOW: [&str; 6] = [
    "crates/core/src/experiments/runner",
    "crates/core/src/experiments/fault.rs",
    "src/bin/",
    "crates/bench/",
    "crates/criterion/",
    "crates/analysis/",
];

/// Classify a workspace-relative path (forward slashes).
pub fn classify(rel: &str) -> FileClass {
    let p = rel.replace('\\', "/");
    let is_fixture = p.contains("fixtures/");
    let is_test = is_fixture
        || p.starts_with("tests/")
        || p.contains("/tests/")
        || p.starts_with("benches/")
        || p.contains("/benches/")
        || p.contains("/examples/");
    let is_bin = p.contains("/bin/")
        || p == "src/main.rs"
        || p.ends_with("/src/main.rs")
        || p.ends_with("build.rs");
    let in_crate_src = p.starts_with("crates/") && p.contains("/src/");
    let in_root_src = p.starts_with("src/");
    let is_lib = !is_test && !is_bin && (in_crate_src || in_root_src);
    let sim_path = !is_test
        && (SIM_PREFIXES.iter().any(|pre| p.starts_with(pre)) || SIM_FILES.contains(&p.as_str()));
    let wall_clock_allowed =
        is_test || is_bin || WALL_CLOCK_ALLOW.iter().any(|a| p.starts_with(a) || p == *a);
    let file_name = p.rsplit('/').next().unwrap_or("");
    let sweep_routed = !is_test
        && p.contains("experiments/")
        && (file_name.starts_with("table") || file_name.starts_with("fig"))
        && file_name.ends_with(".rs");
    let unit_checked = sim_path || (!is_test && p == "crates/core/src/config.rs");
    let runner_protocol = !is_test && p.starts_with("crates/core/src/experiments/runner");
    FileClass {
        is_test,
        is_lib,
        sim_path,
        wall_clock_allowed,
        sweep_routed,
        unit_checked,
        runner_protocol,
    }
}

/// Analyze a set of in-memory sources (used by the fixture tests): runs
/// the per-file rules plus the workspace-level structural finalizer.
pub fn analyze_sources(files: &[(&str, &str)]) -> Vec<Diagnostic> {
    analyze_sources_tier(files, Tier::Token)
}

/// [`analyze_sources`] at an explicit tier.
pub fn analyze_sources_tier(files: &[(&str, &str)], tier: Tier) -> Vec<Diagnostic> {
    let mut facts = StructuralFacts::default();
    let mut diags = Vec::new();
    for (rel, text) in files {
        let class = classify(rel);
        let (file_diags, file_facts) = rules::analyze_source_tier(rel, &class, text, tier);
        diags.extend(file_diags);
        facts.merge(file_facts);
    }
    diags.extend(rules::finalize_structural(&facts));
    sort_diags(&mut diags);
    diags
}

/// Analyze one in-memory source with an explicit class (fixture tests).
pub fn analyze_one(rel: &str, text: &str) -> Vec<Diagnostic> {
    analyze_sources(&[(rel, text)])
}

/// [`analyze_one`] at an explicit tier.
pub fn analyze_one_tier(rel: &str, text: &str, tier: Tier) -> Vec<Diagnostic> {
    analyze_sources_tier(&[(rel, text)], tier)
}

/// Walk the workspace rooted at `root` and analyze every `.rs` file at
/// the token tier.
pub fn analyze_workspace(root: &Path) -> io::Result<Vec<Diagnostic>> {
    analyze_workspace_tier(root, Tier::Token).map(|r| r.diagnostics)
}

/// A workspace analysis run: the findings plus what the timing line
/// reports.
#[derive(Debug)]
pub struct WorkspaceReport {
    /// All findings, sorted by (file, line, col, rule).
    pub diagnostics: Vec<Diagnostic>,
    /// How many `.rs` files were analyzed.
    pub files: usize,
}

/// Walk the workspace rooted at `root` and analyze every `.rs` file at
/// the chosen tier. Files are read up front, then analyzed in parallel
/// with scoped threads; each file is tokenized exactly once and the
/// token stream is shared across every pass of both tiers. The final
/// sort makes the report order independent of scheduling.
pub fn analyze_workspace_tier(root: &Path, tier: Tier) -> io::Result<WorkspaceReport> {
    let mut files = Vec::new();
    collect_rs_files(root, &mut files)?;
    files.sort();
    let mut sources: Vec<(String, String)> = Vec::with_capacity(files.len());
    for path in &files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        let text = fs::read_to_string(path)?;
        sources.push((rel, text));
    }

    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(sources.len().max(1));
    let chunk = sources.len().div_ceil(workers.max(1)).max(1);
    let mut per_chunk: Vec<(Vec<Diagnostic>, StructuralFacts)> = Vec::new();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for slice in sources.chunks(chunk) {
            handles.push(scope.spawn(move || {
                let mut diags = Vec::new();
                let mut facts = StructuralFacts::default();
                for (rel, text) in slice {
                    let class = classify(rel);
                    let (file_diags, file_facts) =
                        rules::analyze_source_tier(rel, &class, text, tier);
                    diags.extend(file_diags);
                    facts.merge(file_facts);
                }
                (diags, facts)
            }));
        }
        for h in handles {
            if let Ok(part) = h.join() {
                per_chunk.push(part);
            }
        }
    });

    let mut facts = StructuralFacts::default();
    let mut diags = Vec::new();
    for (part_diags, part_facts) in per_chunk {
        diags.extend(part_diags);
        facts.merge(part_facts);
    }
    diags.extend(rules::finalize_structural(&facts));
    sort_diags(&mut diags);
    Ok(WorkspaceReport {
        diagnostics: diags,
        files: sources.len(),
    })
}

/// Recursively collect `.rs` files, skipping build output, VCS state,
/// and the analyzer's own lint fixtures. Directory entries are sorted so
/// the walk (and therefore the report order) is deterministic.
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        let name = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        if path.is_dir() {
            if name == "target" || name == "fixtures" || name.starts_with('.') {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn sort_diags(diags: &mut [Diagnostic]) {
    diags.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.col, a.rule).cmp(&(b.file.as_str(), b.line, b.col, b.rule))
    });
}

/// Locate the workspace root: the nearest ancestor of `start` whose
/// `Cargo.toml` declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut cur = Some(start.to_path_buf());
    while let Some(dir) = cur {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        cur = dir.parent().map(Path::to_path_buf);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_of_known_paths() {
        let c = classify("crates/cache/src/classify.rs");
        assert!(c.sim_path && c.is_lib && !c.is_test && !c.wall_clock_allowed);

        let c = classify("crates/core/src/experiments/runner/mod.rs");
        assert!(!c.sim_path && c.is_lib && c.wall_clock_allowed);

        let c = classify("crates/core/src/experiments/runner/watchdog.rs");
        assert!(c.wall_clock_allowed, "the whole runner tree may read time");

        let c = classify("crates/core/src/experiments/fault.rs");
        assert!(
            c.wall_clock_allowed,
            "hang points carry a wall-clock expiry"
        );

        let c = classify("crates/core/src/experiments/table3.rs");
        assert!(c.sweep_routed && c.is_lib && !c.sim_path);

        let c = classify("crates/core/src/experiments/figures.rs");
        assert!(c.sweep_routed);

        let c = classify("src/bin/repro.rs");
        assert!(!c.is_lib && c.wall_clock_allowed && !c.is_test);

        let c = classify("tests/runner_golden.rs");
        assert!(c.is_test && !c.is_lib);

        let c = classify("crates/analysis/tests/fixtures/bad/hash_iter.rs");
        assert!(c.is_test);

        let c = classify("crates/core/src/system/mod.rs");
        assert!(c.sim_path && c.is_lib);

        let c = classify("crates/core/src/channel.rs");
        assert!(
            c.sim_path && c.is_lib && !c.wall_clock_allowed,
            "the DRAM channel router is determinism-critical"
        );

        for f in ["bank.rs", "channel.rs", "mapping.rs"] {
            let c = classify(&format!("crates/dram/src/{f}"));
            assert!(c.sim_path && c.is_lib, "banked backend module {f}");
        }

        let c = classify("src/lib.rs");
        assert!(c.is_lib && !c.sim_path);
    }

    #[test]
    fn dataflow_scopes_of_known_paths() {
        let c = classify("crates/dram/src/bank.rs");
        assert!(c.unit_checked && !c.runner_protocol);

        let c = classify("crates/core/src/channel.rs");
        assert!(c.unit_checked, "the channel router carries Picos timing");

        let c = classify("crates/core/src/config.rs");
        assert!(
            c.unit_checked && !c.sim_path,
            "SystemConfig declares the timing vocabulary"
        );

        let c = classify("crates/core/src/experiments/runner/mod.rs");
        assert!(c.runner_protocol && !c.unit_checked);

        let c = classify("crates/core/src/experiments/runner/journal.rs");
        assert!(c.runner_protocol);

        let c = classify("crates/core/src/experiments/grids.rs");
        assert!(!c.runner_protocol && !c.unit_checked);

        let c = classify("crates/analysis/tests/fixtures/bad/unit_mix.rs");
        assert!(c.is_test && !c.unit_checked && !c.runner_protocol);
    }

    #[test]
    fn tier_flag_round_trips() {
        assert_eq!(Tier::from_flag("token"), Some(Tier::Token));
        assert_eq!(Tier::from_flag("dataflow"), Some(Tier::Dataflow));
        assert_eq!(Tier::from_flag("bogus"), None);
        assert_eq!(Tier::default(), Tier::Token);
        for t in [Tier::Token, Tier::Dataflow] {
            assert_eq!(Tier::from_flag(t.as_str()), Some(t));
        }
    }
}
