//! `rampage-analysis` — an offline, dependency-free static analyzer for
//! the workspace's determinism, panic-discipline, and structural
//! invariants.
//!
//! The analyzer lexes every `.rs` file with its own hand-rolled lexer
//! (see [`lexer`]) and runs repo-specific rule passes (see [`rules`])
//! that clippy cannot express: hash-ordered iteration in simulation
//! crates, wall-clock reads outside the timing allowlist, undocumented
//! panics, `impl MemorySystem` structure, experiment-file routing, and
//! exhaustive error matching. Findings can be suppressed site-by-site
//! with `// lint: allow(<rule>) — <reason>` waivers; a waiver without a
//! reason or without a matching finding is itself a diagnostic.
//!
//! The rule catalog, the waiver syntax, and the timing allowlist policy
//! are documented in `EXPERIMENTS.md` § Static analysis.

#![forbid(unsafe_code)]

pub mod diag;
pub mod lexer;
pub mod rules;

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use diag::Diagnostic;
use rules::StructuralFacts;

/// How a file's path classifies it for rule selection.
#[derive(Debug, Clone, Default)]
pub struct FileClass {
    /// Test/bench/example/fixture code: exempt from every rule.
    pub is_test: bool,
    /// Library code (crate `src/` trees, minus binaries): panic
    /// discipline, unwrap, and error-match apply.
    pub is_lib: bool,
    /// Determinism-critical simulation path: hash-iter and env-read
    /// apply.
    pub sim_path: bool,
    /// On the timing allowlist: wall-clock reads permitted (sweep-runner
    /// timing, binaries, benches).
    pub wall_clock_allowed: bool,
    /// `experiments/table*.rs` / `fig*.rs`: must route through
    /// `SweepRunner`.
    pub sweep_routed: bool,
}

/// Path prefixes whose contents count as simulation code.
const SIM_PREFIXES: [&str; 6] = [
    "crates/cache/src/",
    "crates/vm/src/",
    "crates/dram/src/",
    "crates/trace/src/",
    "crates/core/src/system/",
    "crates/core/src/obs/",
];

/// Individual files that count as simulation code. `channel.rs` routes
/// every DRAM request into the flat or banked backend, so its
/// determinism matters as much as the engine's.
const SIM_FILES: [&str; 3] = [
    "crates/core/src/engine.rs",
    "crates/core/src/metrics.rs",
    "crates/core/src/channel.rs",
];

/// The timing allowlist: where `Instant::now` is legitimate. The policy
/// (documented in EXPERIMENTS.md) is that wall-clock may only feed
/// *reporting* — sweep-runner cell timing, journal/lease timestamps and
/// watchdog budgets (the `runner` module tree), progress callbacks,
/// bench harnesses, and CLI heartbeats — never simulated state. The
/// fault-injection module's hang points carry a wall-clock self-expiry
/// deadline (test-only code, but compiled as library under the `fault`
/// feature).
const WALL_CLOCK_ALLOW: [&str; 6] = [
    "crates/core/src/experiments/runner",
    "crates/core/src/experiments/fault.rs",
    "src/bin/",
    "crates/bench/",
    "crates/criterion/",
    "crates/analysis/",
];

/// Classify a workspace-relative path (forward slashes).
pub fn classify(rel: &str) -> FileClass {
    let p = rel.replace('\\', "/");
    let is_fixture = p.contains("fixtures/");
    let is_test = is_fixture
        || p.starts_with("tests/")
        || p.contains("/tests/")
        || p.starts_with("benches/")
        || p.contains("/benches/")
        || p.contains("/examples/");
    let is_bin = p.contains("/bin/")
        || p == "src/main.rs"
        || p.ends_with("/src/main.rs")
        || p.ends_with("build.rs");
    let in_crate_src = p.starts_with("crates/") && p.contains("/src/");
    let in_root_src = p.starts_with("src/");
    let is_lib = !is_test && !is_bin && (in_crate_src || in_root_src);
    let sim_path = !is_test
        && (SIM_PREFIXES.iter().any(|pre| p.starts_with(pre)) || SIM_FILES.contains(&p.as_str()));
    let wall_clock_allowed =
        is_test || is_bin || WALL_CLOCK_ALLOW.iter().any(|a| p.starts_with(a) || p == *a);
    let file_name = p.rsplit('/').next().unwrap_or("");
    let sweep_routed = !is_test
        && p.contains("experiments/")
        && (file_name.starts_with("table") || file_name.starts_with("fig"))
        && file_name.ends_with(".rs");
    FileClass {
        is_test,
        is_lib,
        sim_path,
        wall_clock_allowed,
        sweep_routed,
    }
}

/// Analyze a set of in-memory sources (used by the fixture tests): runs
/// the per-file rules plus the workspace-level structural finalizer.
pub fn analyze_sources(files: &[(&str, &str)]) -> Vec<Diagnostic> {
    let mut facts = StructuralFacts::default();
    let mut diags = Vec::new();
    for (rel, text) in files {
        let class = classify(rel);
        let (file_diags, file_facts) = rules::analyze_source(rel, &class, text);
        diags.extend(file_diags);
        facts.merge(file_facts);
    }
    diags.extend(rules::finalize_structural(&facts));
    sort_diags(&mut diags);
    diags
}

/// Analyze one in-memory source with an explicit class (fixture tests).
pub fn analyze_one(rel: &str, text: &str) -> Vec<Diagnostic> {
    analyze_sources(&[(rel, text)])
}

/// Walk the workspace rooted at `root` and analyze every `.rs` file.
pub fn analyze_workspace(root: &Path) -> io::Result<Vec<Diagnostic>> {
    let mut files = Vec::new();
    collect_rs_files(root, &mut files)?;
    files.sort();
    let mut facts = StructuralFacts::default();
    let mut diags = Vec::new();
    for path in &files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        let class = classify(&rel);
        let text = fs::read_to_string(path)?;
        let (file_diags, file_facts) = rules::analyze_source(&rel, &class, &text);
        diags.extend(file_diags);
        facts.merge(file_facts);
    }
    diags.extend(rules::finalize_structural(&facts));
    sort_diags(&mut diags);
    Ok(diags)
}

/// Recursively collect `.rs` files, skipping build output, VCS state,
/// and the analyzer's own lint fixtures. Directory entries are sorted so
/// the walk (and therefore the report order) is deterministic.
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        let name = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        if path.is_dir() {
            if name == "target" || name == "fixtures" || name.starts_with('.') {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn sort_diags(diags: &mut [Diagnostic]) {
    diags.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.col, a.rule).cmp(&(b.file.as_str(), b.line, b.col, b.rule))
    });
}

/// Locate the workspace root: the nearest ancestor of `start` whose
/// `Cargo.toml` declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut cur = Some(start.to_path_buf());
    while let Some(dir) = cur {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        cur = dir.parent().map(Path::to_path_buf);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_of_known_paths() {
        let c = classify("crates/cache/src/classify.rs");
        assert!(c.sim_path && c.is_lib && !c.is_test && !c.wall_clock_allowed);

        let c = classify("crates/core/src/experiments/runner/mod.rs");
        assert!(!c.sim_path && c.is_lib && c.wall_clock_allowed);

        let c = classify("crates/core/src/experiments/runner/watchdog.rs");
        assert!(c.wall_clock_allowed, "the whole runner tree may read time");

        let c = classify("crates/core/src/experiments/fault.rs");
        assert!(
            c.wall_clock_allowed,
            "hang points carry a wall-clock expiry"
        );

        let c = classify("crates/core/src/experiments/table3.rs");
        assert!(c.sweep_routed && c.is_lib && !c.sim_path);

        let c = classify("crates/core/src/experiments/figures.rs");
        assert!(c.sweep_routed);

        let c = classify("src/bin/repro.rs");
        assert!(!c.is_lib && c.wall_clock_allowed && !c.is_test);

        let c = classify("tests/runner_golden.rs");
        assert!(c.is_test && !c.is_lib);

        let c = classify("crates/analysis/tests/fixtures/bad/hash_iter.rs");
        assert!(c.is_test);

        let c = classify("crates/core/src/system/mod.rs");
        assert!(c.sim_path && c.is_lib);

        let c = classify("crates/core/src/channel.rs");
        assert!(
            c.sim_path && c.is_lib && !c.wall_clock_allowed,
            "the DRAM channel router is determinism-critical"
        );

        for f in ["bank.rs", "channel.rs", "mapping.rs"] {
            let c = classify(&format!("crates/dram/src/{f}"));
            assert!(c.sim_path && c.is_lib, "banked backend module {f}");
        }

        let c = classify("src/lib.rs");
        assert!(c.is_lib && !c.sim_path);
    }
}
